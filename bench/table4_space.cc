/**
 * @file
 * Table 4: space efficiency (MB of main memory used for trace data) of
 * the four schemes across the thirteen benchmarks, with four worker
 * threads/cores and a 0.5 s tracing period, as in the paper. StaSam
 * stores sampled stacks, eBPF stores sys_enter records — both small but
 * non-chronological; NHT stores the full instruction trace of the whole
 * period; EXIST bounds space with the UMA budget and compulsory STOP
 * buffers. Includes the per-core vs per-thread buffer ablation.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "workload/app_profile.h"

using namespace exist;
using namespace exist::bench;

namespace {

ExperimentSpec
specFor(const std::string &app, const std::string &backend)
{
    AppProfile profile = AppCatalog::find(app);
    ExperimentSpec spec;
    spec.node.num_cores = 4;
    WorkloadSpec w{.app = app, .target = true};
    w.workers = 4;  // paper: threads and cores set to 4
    if (profile.is_service)
        w.closed_clients = 10;
    spec.workloads.push_back(std::move(w));
    spec.backend = backend;
    spec.session.period = scaledSeconds(0.5);
    // The paper's 500 MB budget is spread over many-core servers; on
    // this 4-core node the equivalent pressure is ~60 MB per core.
    spec.session.budget_mb = 240;
    spec.warmup = secondsToCycles(0.05);
    return spec;
}

}  // namespace

int
main()
{
    printBanner("Table 4: space efficiency (MB), 4 threads/cores, "
                "0.5 s period");

    const std::vector<std::string> apps = {"pb", "gcc", "mcf", "om",
                                           "xa", "x264", "de", "le",
                                           "ex", "xz", "mc", "ng", "ms"};
    const std::vector<std::string> schemes = {"StaSam", "eBPF", "NHT",
                                              "EXIST"};

    TableWriter table(
        {"Scheme", "pb", "gcc", "mcf", "om", "xa", "x264", "de", "le",
         "ex", "xz", "mc", "ng", "ms"});

    for (const std::string &scheme : schemes) {
        std::vector<std::string> row = {scheme};
        for (const std::string &app : apps) {
            ExperimentResult r = Testbed::run(specFor(app, scheme));
            row.push_back(
                TableWriter::mb(r.backend_stats.trace_real_bytes, 1));
        }
        table.row(std::move(row));
    }
    table.print();

    // Ablation (§3.3): EXIST's per-core STOP buffers vs ring buffers.
    printBanner("Ablation: compulsory STOP vs ring buffers (EXIST, om)");
    for (bool ring : {false, true}) {
        ExperimentSpec spec = specFor("om", "EXIST");
        spec.session.ring_buffers = ring;
        spec.session.max_core_buffer_mb = 32;  // force overflow
        ExperimentResult r = Testbed::run(spec);
        std::printf("  %-14s accepted=%s MB dropped=%s MB\n",
                    ring ? "ring" : "compulsory",
                    TableWriter::mb(r.backend_stats.trace_real_bytes)
                        .c_str(),
                    TableWriter::mb(r.backend_stats.dropped_real_bytes)
                        .c_str());
    }
    return 0;
}
