/**
 * @file
 * Figure 11 (motivation for UMA): host memory allocation vs actual
 * utilization over time on a typical server. Pods reserve memory near
 * the node's ceiling while average utilization stays low — the slack
 * EXIST's trace buffers must fit into (0.5-1 GB facility budget), and
 * the reason buffers must be allocated carefully rather than maximally
 * (128 cores x 128 MB = 16 GB would be wasted).
 */
#include <cstdio>
#include <vector>

#include "common.h"
#include "util/rng.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 11: host memory allocation vs utilization "
                "over time");

    // A 384 GB node running a mix of pods; each pod reserves its limit
    // up front (allocation) but touches a workload-dependent fraction
    // (utilization), fluctuating with diurnal-ish load.
    const double capacity_gb = 384.0;
    struct PodMem {
        const char *app;
        double reserved_gb;
        double base_util;  ///< fraction of the reservation touched
    };
    std::vector<PodMem> pods = {
        {"Search1", 96, 0.55}, {"Search2", 96, 0.50},
        {"Cache", 120, 0.70},  {"Pred", 48, 0.45},
        {"Agent", 4, 0.30},
    };

    double reserved = 0;
    for (const PodMem &p : pods)
        reserved += p.reserved_gb;

    Rng rng(2024);
    TableWriter table({"t(x10min)", "Alloc(%)", "UtilAvg(%)",
                       "UtilMax(%)"});
    double util_peak_overall = 0;
    for (int t = 0; t < 24; ++t) {
        // Load wave over the day plus noise.
        double wave =
            0.5 + 0.35 * std::sin(2 * 3.14159 * t / 24.0 + 1.0);
        double util_avg = 0, util_max = 0;
        for (const PodMem &p : pods) {
            double u =
                p.reserved_gb *
                std::min(1.0, p.base_util * (0.7 + 0.6 * wave) +
                                  rng.uniform(-0.03, 0.03));
            util_avg += u;
            util_max += p.reserved_gb *
                        std::min(1.0, p.base_util *
                                          (0.7 + 0.6 * wave) + 0.08);
        }
        util_peak_overall = std::max(util_peak_overall, util_max);
        table.row({std::to_string(t),
                   TableWriter::num(100 * reserved / capacity_gb, 1),
                   TableWriter::num(100 * util_avg / capacity_gb, 1),
                   TableWriter::num(100 * util_max / capacity_gb, 1)});
    }
    table.print();
    std::printf("\nAllocation sits near the ceiling (%.0f%%) while "
                "utilization stays well below it — the facility's "
                "0.5-1 GB trace budget must be placed in that gap, "
                "per-core and usage-aware (paper Fig. 11, §3.3).\n",
                100 * reserved / capacity_gb);
    return 0;
}
