/**
 * @file
 * Figure 16: end-to-end 99th-percentile response times of Search1's
 * request chain under the five schemes across load levels. The paper's
 * shape: EXIST degrades the 99% tail by only 0.9-2.7% while the
 * single-digit-overhead baselines inflate it by 10-60%, and the
 * amplification grows with load.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

ExperimentSpec
chainSpec(double rps, const std::string &backend)
{
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    WorkloadSpec front{.app = "Search1", .target = true,
                       .load_rps = rps};
    front.downstream = "Cache";
    front.workers = 16;
    WorkloadSpec store{.app = "Cache"};
    store.workers = 16;
    spec.workloads.push_back(std::move(front));
    spec.workloads.push_back(std::move(store));
    spec.backend = backend;
    spec.session.period = scaledSeconds(1.5);
    spec.warmup = secondsToCycles(0.25);
    return spec;
}

}  // namespace

int
main()
{
    printBanner("Figure 16: E2E p99 response time of the Search1 chain "
                "(ms), with tail slowdown vs Oracle");

    const std::vector<double> loads = {800, 2000, 2600};
    const std::vector<std::string> schemes = {"EXIST", "StaSam", "eBPF",
                                              "NHT"};

    TableWriter table({"Load(rps)", "Oracle(ms)", "EXIST", "StaSam",
                       "eBPF", "NHT"});
    for (double rps : loads) {
        ExperimentResult oracle =
            Testbed::run(chainSpec(rps, "Oracle"));
        double base = oracle.at("Search1").latencies_us.percentile(99) /
                      1000.0;
        std::vector<std::string> row = {TableWriter::num(rps, 0),
                                        TableWriter::num(base, 2)};
        for (const std::string &scheme : schemes) {
            ExperimentResult r = Testbed::run(chainSpec(rps, scheme));
            double p99 =
                r.at("Search1").latencies_us.percentile(99) / 1000.0;
            row.push_back(TableWriter::num(p99, 2) + " (" +
                          TableWriter::pct(p99 / base - 1.0, 1) + ")");
        }
        table.row(std::move(row));
    }
    table.print();
    std::printf("\nPaper shape: per-mille EXIST keeps the p99 within a "
                "few percent; single-digit-overhead baselines amplify "
                "to >10%%, growing with load.\n");
    return 0;
}
