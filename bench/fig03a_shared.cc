/**
 * @file
 * Figure 3a (motivation): intra-service tracing overhead grows in
 * shared execution environments, and tracing one application slows its
 * innocent co-runner. A = om (620.omnetpp) is profiled; B = xz
 * (657.xz) runs co-located without profiling. Three bar groups:
 * exclusive A, shared A, shared B — for sampling (perf -F 4000) and
 * hardware tracing (perf intel_pt).
 */
#include <cstdio>

#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

double
slowdownShared(const char *backend, const char *measure_app,
               bool shared)
{
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    spec.workloads.push_back(WorkloadSpec{
        .app = "om", .cores = {0, 1}, .target = true});
    if (shared) {
        WorkloadSpec b{.app = "xz", .cores = {0, 1}};
        b.workers = 2;
        spec.workloads.push_back(std::move(b));
    }
    spec.backend = backend;
    spec.session.period = scaledSeconds(0.3);
    spec.warmup = secondsToCycles(0.05);
    auto cmp = Testbed::compare(spec);
    return cmp.slowdownOf(measure_app) - 1.0;
}

}  // namespace

int
main()
{
    printBanner("Figure 3a: tracing overhead in shared scenarios");

    TableWriter table({"Scenario", "Sampling(F=4000)", "Tracing(IPT)"});
    table.row({"Exclusive Pod A w/ Profiling",
               TableWriter::pct(slowdownShared("StaSam", "om", false)),
               TableWriter::pct(slowdownShared("NHT", "om", false))});
    table.row({"Shared Pod A w/ Profiling",
               TableWriter::pct(slowdownShared("StaSam", "om", true)),
               TableWriter::pct(slowdownShared("NHT", "om", true))});
    table.row({"Shared Pod B w/o Profiling",
               TableWriter::pct(slowdownShared("StaSam", "xz", true)),
               TableWriter::pct(slowdownShared("NHT", "xz", true))});
    table.print();
    std::printf("\nPaper shape: overhead increases under sharing; the "
                "co-located, un-profiled B is also slowed.\n");
    return 0;
}
