/**
 * @file
 * Figure 6: the three-way design trade-off of hardware-tracing
 * abstractions. We configure the per-thread-buffer backend the way each
 * prior system uses it — REPT-style reverse debugging (tiny rings),
 * Griffin-style security (small rings, control at every switch),
 * JPortal-style exhaustive tracing (huge buffers) — and compare time
 * efficiency, space overhead and data coverage against EXIST.
 */
#include <cstdio>

#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

struct Row {
    const char *name;
    const char *objective;
    double slowdown = 1.0;
    double space_mb = 0.0;
    double coverage_ms = 0.0;
};

Row
evaluate(const char *name, const char *objective, const char *backend,
         std::uint64_t aux_mb, bool ring_only = false)
{
    ExperimentSpec spec = onlineSpec("mc", backend);
    spec.decode = true;
    spec.session.nht_aux_mb = aux_mb;
    spec.session.nht_ring_only = ring_only;
    auto cmp = Testbed::compare(spec);

    Row r{name, objective};
    double ratio = cmp.throughputRatio("mc");
    r.slowdown = ratio > 0 ? 1.0 / ratio : 1.0;
    r.space_mb = static_cast<double>(
                     cmp.traced.backend_stats.trace_real_bytes) /
                 (1024.0 * 1024.0);
    if (cmp.traced.truth_branches > 0) {
        r.coverage_ms =
            cyclesToMs(cmp.traced.window) *
            static_cast<double>(cmp.traced.decoded_branches) /
            static_cast<double>(cmp.traced.truth_branches);
    }
    return r;
}

}  // namespace

int
main()
{
    printBanner("Figure 6: design trade-offs of hardware tracing "
                "abstractions (measured on mc)");

    TableWriter table({"Scheme", "Objective", "TimeOverhead", "SpaceMB",
                       "Coverage(ms)"});
    Row rows[] = {
        // REPT: tiny per-thread post-mortem rings, no draining.
        evaluate("REPT-like", "Debugging", "NHT", 1, true),
        // Griffin: small rings drained at every fill/switch.
        evaluate("Griffin-like", "Security", "NHT", 4),
        // JPortal: huge buffers for continuous full-coverage tracing.
        evaluate("JPortal-like", "Tracing", "NHT", 64),
        evaluate("EXIST", "Tracing", "EXIST", 0),
    };
    for (const Row &r : rows) {
        table.row({r.name, r.objective,
                   TableWriter::pct(r.slowdown - 1.0, 2),
                   TableWriter::num(r.space_mb, 1),
                   TableWriter::num(r.coverage_ms, 1)});
    }
    table.print();
    std::printf("\nPaper shape: prior designs sacrifice time efficiency;"
                " EXIST keeps <1%% overhead with bounded space and "
                "milliseconds-to-seconds coverage.\n");
    return 0;
}
