/**
 * @file
 * Control-plane reconcile throughput: one submit stream of trace
 * requests against a demo cluster, reconciled by the serial Master
 * (threads=1, the historical loop) and by the ShardedMaster at shard
 * counts 1/2/4/8. Reports wall-clock requests/s and the p99 reconcile
 * latency from the control plane's own metrics registry, and verifies
 * on every configuration that the sharded plane's output — reports,
 * OSS bytes, ODPS rows, coverage ledger — is bit-identical to the
 * serial baseline.
 *
 * Besides the human-readable table, each configuration emits one
 * machine-readable JSON line (prefix "JSON ") so CI can track the
 * trajectory via tools/bench_trends.py --set cluster:
 *   JSON {"bench":"reconcile_throughput","shards":4,...}
 */
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/master.h"
#include "cluster/metrics.h"
#include "cluster/shard/sharded_master.h"
#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

ClusterConfig
demoConfig()
{
    ClusterConfig cc;
    cc.num_nodes = 10;
    cc.cores_per_node = 4;
    cc.seed = 2024;
    return cc;
}

void
deployDemo(Cluster &cluster)
{
    cluster.deploy("Search2", 3);
    cluster.deploy("Cache", 3);
    cluster.deploy("Prediction", 2);
}

/** The benchmark submit stream: anomaly and routine requests mixed
 *  across the deployed apps, period scaled for smoke runs. */
std::vector<std::string>
manifests()
{
    int period_ms =
        static_cast<int>(30.0 * periodScale() + 0.5);
    if (period_ms < 5)
        period_ms = 5;
    std::string p = " period_ms=" + std::to_string(period_ms) +
                    " budget_mb=64";
    std::vector<std::string> out;
    const char *apps[] = {"Search2", "Cache", "Prediction"};
    for (int i = 0; i < 12; ++i) {
        std::string m = "app=" + std::string(apps[i % 3]);
        if (i % 2 == 0)
            m += " anomaly=true";
        out.push_back(m + p);
    }
    return out;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int
main()
{
    printBanner("Reconcile throughput: serial Master vs ShardedMaster "
                "at 1/2/4/8 shards");

    const std::vector<std::string> stream = manifests();
    std::printf("submit stream: %zu requests over 3 apps "
                "(scale %.2f)\n\n",
                stream.size(), periodScale());

    // Serial baseline: the historical single-threaded controller loop.
    Cluster serial_cluster(demoConfig());
    deployDemo(serial_cluster);
    Master serial(&serial_cluster, {}, 1);
    std::vector<std::uint64_t> ids;
    for (const std::string &m : stream)
        ids.push_back(serial.apply(m));
    auto t0 = std::chrono::steady_clock::now();
    serial.reconcile();
    double serial_s = secondsSince(t0);
    double serial_rps = stream.size() / serial_s;

    TableWriter table({"Mode", "Shards", "Time(ms)", "Requests/s",
                       "p99(us)", "Speedup", "Identical"});
    table.row({"serial", "-", TableWriter::num(serial_s * 1e3),
               TableWriter::num(serial_rps), "-", "1.00", "ref"});
    std::printf("JSON {\"bench\":\"reconcile_throughput\","
                "\"mode\":\"serial\",\"shards\":0,\"requests\":%zu,"
                "\"sessions\":%llu,\"seconds\":%.6f,"
                "\"requests_per_sec\":%.3f,\"p99_latency_us\":0,"
                "\"speedup\":1.0,\"identical\":true}\n",
                stream.size(), (unsigned long long)serial.sessionsRun(),
                serial_s, serial_rps);

    bool all_identical = true;
    for (int shards : {1, 2, 4, 8}) {
        Cluster cluster(demoConfig());
        deployDemo(cluster);
        metrics::Registry registry;
        ShardedMaster master(&cluster, {}, shards, shards, &registry);
        for (const std::string &m : stream)
            master.apply(m);

        auto t1 = std::chrono::steady_clock::now();
        master.reconcile();
        double s = secondsSince(t1);
        double rps = stream.size() / s;
        double speedup = serial_s / s;
        std::uint64_t p99 =
            registry.histogram("reconcile.latency_us").percentile(0.99);

        // The whole point: the sharded plane must be bit-identical to
        // the serial one, or the speedup is meaningless.
        bool identical = true;
        for (std::uint64_t id : ids) {
            const TraceReport *a = serial.report(id);
            const TraceReport *b = master.report(id);
            if ((a == nullptr) != (b == nullptr) ||
                (a != nullptr && !(*a == *b)))
                identical = false;
        }
        identical = identical &&
                    serial.oss().totalBytes() ==
                        master.oss().totalBytes() &&
                    serial.odps().rowCount() == master.odps().rowCount() &&
                    serial.coverage() == master.coverage();
        all_identical = all_identical && identical;

        table.row({"sharded", std::to_string(shards),
                   TableWriter::num(s * 1e3), TableWriter::num(rps),
                   std::to_string(p99), TableWriter::num(speedup),
                   identical ? "yes" : "NO"});
        std::printf("JSON {\"bench\":\"reconcile_throughput\","
                    "\"mode\":\"sharded\",\"shards\":%d,"
                    "\"requests\":%zu,\"sessions\":%llu,"
                    "\"seconds\":%.6f,\"requests_per_sec\":%.3f,"
                    "\"p99_latency_us\":%llu,\"speedup\":%.3f,"
                    "\"identical\":%s}\n",
                    shards, stream.size(),
                    (unsigned long long)master.sessionsRun(), s, rps,
                    (unsigned long long)p99, speedup,
                    identical ? "true" : "false");
    }

    std::printf("\n");
    table.print();
    std::printf("\nshard speedup saturates at min(shards, pending "
                "requests, hardware threads)\n");
    if (!all_identical) {
        std::fputs("sharded reconcile diverged from serial!\n", stderr);
        return 1;
    }
    return 0;
}
