/**
 * @file
 * Figure 18: tracing accuracy of EXIST on the five real-world cloud
 * applications for 0.1 s / 0.5 s / 1 s tracing periods.
 *
 * Methodology follows the paper: long-running cloud applications are
 * too dynamic to capture identical windows, so EXIST's decoded function
 * profile is scored with Wall's weight matching against an exhaustive
 * NHT reference captured in a *separate* window of the same workload.
 * The same-run branch coverage is also shown for context. The paper
 * reports averages of 83.7% / 82.6% / 86.2% for the three periods.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/accuracy.h"
#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

ExperimentSpec
cloudRun(const std::string &app, const std::string &backend,
         double period_s, std::uint64_t seed)
{
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    WorkloadSpec w{.app = app, .target = true};
    w.closed_clients = 12;
    spec.workloads.push_back(std::move(w));
    // Background best-effort co-runner, as on a shared node.
    spec.workloads.push_back(WorkloadSpec{.app = "xz"});
    spec.backend = backend;
    spec.session.period = scaledSeconds(period_s);
    spec.session.budget_mb = 96;  // paper budget scaled to 8 cores
    spec.warmup = secondsToCycles(0.08);
    spec.decode = true;
    spec.seed = seed;
    return spec;
}

}  // namespace

int
main()
{
    printBanner("Figure 18: EXIST accuracy on real-world applications "
                "(vs separately-captured NHT reference)");

    const std::vector<std::string> apps = {"Search1", "Search2",
                                           "Cache", "Pred", "Agent"};
    const std::vector<double> periods = {0.1, 0.5, 1.0};

    TableWriter table({"App", "Period(s)", "Accuracy", "FuncRatio",
                       "SameRunCoverage", "SpaceMB"});
    std::vector<double> period_sum(periods.size(), 0.0);

    for (const std::string &app : apps) {
        for (std::size_t pi = 0; pi < periods.size(); ++pi) {
            // The EXIST capture and the exhaustive NHT reference come
            // from different windows (different seeds).
            ExperimentResult exist_run = Testbed::run(
                cloudRun(app, "EXIST", periods[pi], 1));
            ExperimentResult nht_run = Testbed::run(
                cloudRun(app, "NHT", periods[pi], 2));

            double acc = wallWeightAccuracy(
                exist_run.decoded_function_insns,
                nht_run.decoded_function_insns);
            period_sum[pi] += acc;

            std::size_t nht_funcs = 0, exist_funcs = 0;
            for (std::size_t f = 0;
                 f < nht_run.decoded_function_insns.size(); ++f) {
                if (nht_run.decoded_function_insns[f] > 0) {
                    ++nht_funcs;
                    if (f < exist_run.decoded_function_insns.size() &&
                        exist_run.decoded_function_insns[f] > 0)
                        ++exist_funcs;
                }
            }
            table.row(
                {app, TableWriter::num(periods[pi], 1),
                 TableWriter::pct(acc, 1),
                 TableWriter::pct(
                     nht_funcs
                         ? static_cast<double>(exist_funcs) /
                               static_cast<double>(nht_funcs)
                         : 1.0,
                     1),
                 TableWriter::pct(exist_run.accuracy_coverage, 1),
                 TableWriter::mb(
                     exist_run.backend_stats.trace_real_bytes)});
        }
    }
    table.print();

    std::printf("\nAverage accuracy per period (paper: 83.7%% / 82.6%% "
                "/ 86.2%%):\n");
    for (std::size_t pi = 0; pi < periods.size(); ++pi)
        std::printf("  %.1fs: %.1f%%\n", periods[pi],
                    100.0 * period_sum[pi] /
                        static_cast<double>(apps.size()));
    return 0;
}
