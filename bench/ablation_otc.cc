/**
 * @file
 * Ablation of EXIST's central design claim (paper §3.2): the
 * operation-aware controller reduces tracing-control operations from
 * O(#context switches) to O(#cores). We run EXIST twice on the same
 * heavily-switching shared node — once with the enable-once hooker and
 * once with conventional enable/disable at every switch — keeping
 * everything else (UMA buffers, CR3 filter, cache-bypass output)
 * identical, so the difference is purely the control paradigm.
 */
#include <cstdio>

#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

struct Outcome {
    double slowdown;
    std::uint64_t control_ops;
    std::uint64_t msr_writes;
    std::uint64_t switches;
};

Outcome
run(bool eager)
{
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    // Overcommitted shared cores: a service under load plus compute
    // co-runners produce thousands of switches per second.
    WorkloadSpec target{.app = "mc", .cores = {0, 1}, .target = true,
                        .closed_clients = 8};
    spec.workloads.push_back(std::move(target));
    WorkloadSpec bg{.app = "xz", .cores = {0, 1}};
    bg.workers = 2;
    spec.workloads.push_back(std::move(bg));
    spec.backend = "EXIST";
    spec.session.period = scaledSeconds(0.5);
    spec.session.exist_eager_control = eager;
    spec.warmup = secondsToCycles(0.08);

    auto cmp = Testbed::compare(spec);
    Outcome o;
    o.slowdown = 1.0 / cmp.throughputRatio("mc");
    o.control_ops = cmp.traced.backend_stats.control_ops;
    o.msr_writes = cmp.traced.backend_stats.msr_writes;
    o.switches = cmp.traced.context_switch_total;
    return o;
}

}  // namespace

int
main()
{
    printBanner("Ablation: OTC enable-once vs conventional per-switch "
                "tracer control (EXIST otherwise unchanged)");

    Outcome once = run(false);
    Outcome eager = run(true);

    TableWriter table({"Controller", "ControlOps", "MSR writes",
                       "CtxSwitches", "Overhead"});
    table.row({"enable-once (OTC)", std::to_string(once.control_ops),
               std::to_string(once.msr_writes),
               std::to_string(once.switches),
               TableWriter::pct(once.slowdown - 1.0, 2)});
    table.row({"per-switch (conv.)",
               std::to_string(eager.control_ops),
               std::to_string(eager.msr_writes),
               std::to_string(eager.switches),
               TableWriter::pct(eager.slowdown - 1.0, 2)});
    table.print();

    std::printf("\nControl operations: O(#cores)=%llu vs "
                "O(#switches)=%llu (%.0fx reduction) — the mechanism "
                "behind paper §3.2 and Figure 8's argument.\n",
                (unsigned long long)once.control_ops,
                (unsigned long long)eager.control_ops,
                once.control_ops
                    ? static_cast<double>(eager.control_ops) /
                          static_cast<double>(once.control_ops)
                    : 0.0);
    return 0;
}
