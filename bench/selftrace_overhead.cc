/**
 * @file
 * Self-observability overhead gate (DESIGN.md §14): the always-on
 * span plane must cost at most 1% of decode throughput, or it cannot
 * be always-on. Collects one loop-heavy lbm session, then decodes the
 * buffers through the instrumented ParallelDecoder path (pool.task +
 * decode.buffer spans on every unit of work) with span recording ON
 * and OFF, interleaved min-of-reps so host noise hits both modes
 * alike. Exits nonzero when the measured overhead exceeds the gate.
 *
 * A second section prices the raw emit path (one instant event in a
 * tight loop) in ns/event — the number that justifies "four relaxed
 * stores and a release" as the design budget.
 *
 * JSON lines (prefix "JSON ") feed tools/bench_trends.py --set
 * observability -> BENCH_observability.json.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.h"
#include "decode/parallel_decoder.h"
#include "obs/trace_plane.h"

using namespace exist;
using namespace exist::bench;

namespace {

constexpr double kMaxOverheadPct = 1.0;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int
main()
{
    printBanner("Self-trace overhead: decode throughput with span "
                "recording on vs off (gate: <= 1%)");

    // Loop-heavy stencil profile: the decode-bound workload where any
    // per-unit-of-work cost shows up most directly in segments/s.
    ExperimentSpec spec = computeSpec("lbm", "EXIST", 0.4, 4);
    spec.workloads.front().workers = 4;
    spec.keep_traces = true;
    spec.session.cyc_timing = false;
    ExperimentResult r = Testbed::run(spec);
    auto binary = Testbed::binaryForApp("lbm");
    if (r.raw_traces.empty()) {
        std::fputs("no trace buffers collected; aborting\n", stderr);
        return 1;
    }

    std::uint64_t bytes = 0;
    for (const CollectedTrace &ct : r.raw_traces)
        bytes += ct.bytes.size();

    const int threads = 2;
    ParallelDecoder decoder(binary.get(), {}, threads);
    std::uint64_t segments = 0;
    for (const auto &[core, dt] : decoder.decodeAll(r.raw_traces))
        segments += dt.segments.size();
    std::printf("collected %zu buffers, %.1f MB, %llu segments\n\n",
                r.raw_traces.size(), bytes / 1048576.0,
                (unsigned long long)segments);

    // Interleave ON/OFF repetitions and keep the fastest of each:
    // identical work every rep, so the minimum is the measurement
    // least polluted by scheduler noise, and interleaving means a
    // noisy stretch of the host cannot bias one mode.
    const int kReps = 7;
    double best_on = 0.0, best_off = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        for (int mode = 0; mode < 2; ++mode) {
            bool on = (rep + mode) % 2 == 0;
            obs::setEnabled(on);
            auto t0 = std::chrono::steady_clock::now();
            decoder.decodeAll(r.raw_traces);
            double s = secondsSince(t0);
            double &best = on ? best_on : best_off;
            if (best == 0.0 || s < best)
                best = s;
        }
    }
    obs::setEnabled(true);

    double thr_on = static_cast<double>(segments) / best_on;
    double thr_off = static_cast<double>(segments) / best_off;
    double overhead_pct = 100.0 * (best_on - best_off) / best_off;
    bool pass = overhead_pct <= kMaxOverheadPct;

    TableWriter table({"Spans", "Time(ms)", "Segments/s", "Overhead"});
    table.row({"off", TableWriter::num(best_off * 1e3),
               TableWriter::num(thr_off, 0), "-"});
    table.row({"on", TableWriter::num(best_on * 1e3),
               TableWriter::num(thr_on, 0),
               TableWriter::num(overhead_pct, 2) + "%"});
    table.print();
    std::printf("JSON {\"bench\":\"selftrace_overhead\","
                "\"mode\":\"decode\",\"app\":\"lbm\",\"threads\":%d,"
                "\"segments\":%llu,\"bytes\":%llu,"
                "\"off_seconds\":%.6f,\"on_seconds\":%.6f,"
                "\"segments_per_sec_on\":%.1f,"
                "\"segments_per_sec_off\":%.1f,"
                "\"overhead_pct\":%.3f,\"gate_pct\":%.1f,"
                "\"pass\":%s}\n",
                threads, (unsigned long long)segments,
                (unsigned long long)bytes, best_off, best_on, thr_on,
                thr_off, overhead_pct, kMaxOverheadPct,
                pass ? "true" : "false");

    // ------------------------------------------------------------------
    // Raw emit cost: one instant event in a tight loop, ns/event.
    // ------------------------------------------------------------------
    const std::uint64_t kEvents = 2'000'000;
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kEvents; ++i)
        obs::instant("selftrace_overhead.emit", i, i);
    double emit_s = secondsSince(t0);
    double ns_per_event = emit_s * 1e9 / static_cast<double>(kEvents);
    std::printf("\nemit path: %.1f ns/event (%llu events, ring "
                "wraps absorbed)\n",
                ns_per_event, (unsigned long long)kEvents);
    std::printf("JSON {\"bench\":\"selftrace_overhead\","
                "\"mode\":\"emit\",\"events\":%llu,"
                "\"ns_per_event\":%.2f}\n",
                (unsigned long long)kEvents, ns_per_event);

    if (!pass) {
        std::fprintf(stderr,
                     "FAIL: span overhead %.2f%% exceeds the %.1f%% "
                     "always-on budget\n",
                     overhead_pct, kMaxOverheadPct);
        return 1;
    }
    std::printf("\nPASS: span overhead %.2f%% within the %.1f%% "
                "always-on budget\n",
                overhead_pct, kMaxOverheadPct);
    return 0;
}
