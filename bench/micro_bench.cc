/**
 * @file
 * Micro-benchmarks (google-benchmark) of the substrate hot paths: trace
 * packet encoding, packet parsing, flow reconstruction, program
 * execution stepping, and the event queue. These bound the wall-clock
 * cost of the figure harnesses.
 */
#include <benchmark/benchmark.h>

#include "decode/flow_reconstructor.h"
#include "decode/packet_parser.h"
#include "hwtrace/packet_writer.h"
#include "hwtrace/topa.h"
#include "hwtrace/tracer.h"
#include "sim/event_queue.h"
#include "workload/execution.h"

namespace exist {
namespace {

const ProgramBinary &
testProgram()
{
    static ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("om"), 4242);
    return prog;
}

void
BM_ExecutionStep(benchmark::State &state)
{
    ExecutionContext exec(&testProgram(), 7);
    for (auto _ : state) {
        StepResult s = exec.step();
        benchmark::DoNotOptimize(s.branch.target_block);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutionStep);

void
BM_PacketEncode(benchmark::State &state)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{64ull << 20, false, false}}, true);
    PacketWriter writer(&buf);
    writer.resetState(0);
    ExecutionContext exec(&testProgram(), 7);
    Cycles now = 0;
    for (auto _ : state) {
        StepResult s = exec.step();
        now += s.insns;
        switch (s.branch.kind) {
          case BranchKind::kConditional:
            writer.tnt(s.branch.taken, now);
            break;
          case BranchKind::kIndirectJump:
          case BranchKind::kIndirectCall:
          case BranchKind::kReturn:
            writer.tip(
                testProgram().block(s.branch.target_block).address,
                now);
            break;
          default:
            break;
        }
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["bytes/branch"] = benchmark::Counter(
        static_cast<double>(buf.bytesAccepted()) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PacketEncode);

void
BM_FullTracerPath(benchmark::State &state)
{
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.cache_bypass = true;
    cfg.topa = {TopaEntry{256ull << 20, false, false}};
    cfg.topa_ring = true;
    tracer.configure(cfg);
    ExecutionContext exec(&testProgram(), 9);
    tracer.enable(0, 0, testProgram().block(exec.currentBlock()).address);
    Cycles now = 0;
    for (auto _ : state) {
        StepResult s = exec.step();
        now += s.insns;
        tracer.onBranch(s.branch, testProgram(), now, 0, true);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullTracerPath);

void
BM_DecodeRoundtrip(benchmark::State &state)
{
    // Pre-encode a trace, then measure decode throughput.
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.topa = {TopaEntry{64ull << 20, true, false}};
    tracer.configure(cfg);
    ExecutionContext exec(&testProgram(), 11);
    tracer.enable(0, 0, testProgram().block(exec.currentBlock()).address);
    Cycles now = 0;
    std::uint64_t branches = 0;
    for (int i = 0; i < 200000; ++i) {
        StepResult s = exec.step();
        now += s.insns;
        tracer.onBranch(s.branch, testProgram(), now, 0, true);
        ++branches;
    }
    tracer.disable(now);
    const TopaBuffer &buf = tracer.output();
    FlowReconstructor rec(&testProgram());
    for (auto _ : state) {
        DecodedTrace dt = rec.decode(
            buf.data().data(), buf.bytesAccepted());
        benchmark::DoNotOptimize(dt.branches_decoded);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(branches));
}
BENCHMARK(BM_DecodeRoundtrip);

void
BM_EventQueue(benchmark::State &state)
{
    EventQueue q;
    int depth = 0;
    for (auto _ : state) {
        q.scheduleAfter(10, [&depth] { ++depth; });
        q.step();
    }
    benchmark::DoNotOptimize(depth);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue);

}  // namespace
}  // namespace exist

BENCHMARK_MAIN();
