/**
 * @file
 * Micro-benchmarks (google-benchmark) of the substrate hot paths: trace
 * packet encoding, packet parsing, flow reconstruction, program
 * execution stepping, and the event queue. These bound the wall-clock
 * cost of the figure harnesses.
 */
#include <benchmark/benchmark.h>

#include "decode/flow_reconstructor.h"
#include "decode/packet_parser.h"
#include "hwtrace/packet_writer.h"
#include "hwtrace/topa.h"
#include "hwtrace/tracer.h"
#include "sim/event_queue.h"
#include "workload/execution.h"

namespace exist {
namespace {

const ProgramBinary &
testProgram()
{
    static ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("om"), 4242);
    return prog;
}

void
BM_ExecutionStep(benchmark::State &state)
{
    ExecutionContext exec(&testProgram(), 7);
    for (auto _ : state) {
        StepResult s = exec.step();
        benchmark::DoNotOptimize(s.branch.target_block);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutionStep);

void
BM_PacketEncode(benchmark::State &state)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{64ull << 20, false, false}}, true);
    PacketWriter writer(&buf);
    writer.resetState(0);
    ExecutionContext exec(&testProgram(), 7);
    Cycles now = 0;
    for (auto _ : state) {
        StepResult s = exec.step();
        now += s.insns;
        switch (s.branch.kind) {
          case BranchKind::kConditional:
            writer.tnt(s.branch.taken, now);
            break;
          case BranchKind::kIndirectJump:
          case BranchKind::kIndirectCall:
          case BranchKind::kReturn:
            writer.tip(
                testProgram().block(s.branch.target_block).address,
                now);
            break;
          default:
            break;
        }
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["bytes/branch"] = benchmark::Counter(
        static_cast<double>(buf.bytesAccepted()) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PacketEncode);

void
BM_FullTracerPath(benchmark::State &state)
{
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.cache_bypass = true;
    cfg.topa = {TopaEntry{256ull << 20, false, false}};
    cfg.topa_ring = true;
    tracer.configure(cfg);
    ExecutionContext exec(&testProgram(), 9);
    tracer.enable(0, 0, testProgram().block(exec.currentBlock()).address);
    Cycles now = 0;
    for (auto _ : state) {
        StepResult s = exec.step();
        now += s.insns;
        tracer.onBranch(s.branch, testProgram(), now, 0, true);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullTracerPath);

/** Encode a fixed-length trace of @p prog; returns branch count. */
std::uint64_t
encodeTrace(const ProgramBinary &prog, std::uint64_t seed,
            CoreTracer &tracer)
{
    TracerConfig cfg;
    cfg.topa = {TopaEntry{64ull << 20, true, false}};
    tracer.configure(cfg);
    ExecutionContext exec(&prog, seed);
    tracer.enable(0, 0, prog.block(exec.currentBlock()).address);
    Cycles now = 0;
    std::uint64_t branches = 0;
    for (int i = 0; i < 200000; ++i) {
        StepResult s = exec.step();
        now += s.insns;
        tracer.onBranch(s.branch, prog, now, 0, true);
        ++branches;
    }
    tracer.disable(now);
    return branches;
}

void
BM_DecodeRoundtrip(benchmark::State &state)
{
    // Pre-encode a trace, then measure decode throughput on the legacy
    // cache-off path (the fast path is covered by BM_TntMemoDecode).
    CoreTracer tracer(0);
    std::uint64_t branches = encodeTrace(testProgram(), 11, tracer);
    const TopaBuffer &buf = tracer.output();
    DecodeOptions opts;
    opts.block_cache = false;
    opts.tnt_memo_bits = 0;
    FlowReconstructor rec(&testProgram(), opts);
    for (auto _ : state) {
        DecodedTrace dt = rec.decode(
            buf.data().data(), buf.bytesAccepted());
        benchmark::DoNotOptimize(dt.branches_decoded);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(branches));
}
BENCHMARK(BM_DecodeRoundtrip);

void
BM_PacketParse(benchmark::State &state)
{
    // Parse-only pass over the loop-heavy trace: bounds how much of
    // full decode is the byte-stream parser vs the flow walk.
    static ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("ex"), 1717);
    CoreTracer tracer(0);
    std::uint64_t branches = encodeTrace(prog, 13, tracer);
    const TopaBuffer &buf = tracer.output();
    for (auto _ : state) {
        PacketParser parser(buf.data().data(), buf.bytesAccepted());
        Packet pkt;
        std::uint64_t n = 0;
        while (parser.next(pkt))
            ++n;
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(branches));
}
BENCHMARK(BM_PacketParse);

void
BM_TntMemoDecode(benchmark::State &state)
{
    // Decode fast path (DESIGN.md §11) over the loop-heavy stencil
    // profile (619.lbm_s stand-in) at varying TNT-memo window sizes.
    // Arg 0 = BlockCache only, no memoization.
    static ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("lbm"), 1717);
    CoreTracer tracer(0);
    std::uint64_t branches = encodeTrace(prog, 13, tracer);
    const TopaBuffer &buf = tracer.output();
    DecodeOptions opts;
    opts.block_cache = true;
    opts.tnt_memo_bits = static_cast<int>(state.range(0));
    FlowReconstructor rec(&prog, opts);
    std::uint64_t hits = 0, misses = 0;
    std::uint64_t fast_bits = 0, tnt_bits = 0;
    for (auto _ : state) {
        DecodedTrace dt = rec.decode(
            buf.data().data(), buf.bytesAccepted());
        benchmark::DoNotOptimize(dt.branches_decoded);
        hits = dt.cache_stats.memo_hits;
        misses = dt.cache_stats.memo_misses;
        fast_bits = dt.cache_stats.memo_fast_bits;
        tnt_bits = dt.tnt_bits_consumed;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(branches));
    state.counters["memo_hit%"] =
        hits + misses > 0 ? 100.0 * static_cast<double>(hits) /
                                static_cast<double>(hits + misses)
                          : 0.0;
    state.counters["fast_bits%"] =
        tnt_bits > 0 ? 100.0 * static_cast<double>(fast_bits) /
                           static_cast<double>(tnt_bits)
                     : 0.0;
}
BENCHMARK(BM_TntMemoDecode)->Arg(0)->Arg(1)->Arg(4)->Arg(5)->Arg(6)->Arg(8)->Arg(16);

void
BM_EventQueue(benchmark::State &state)
{
    EventQueue q;
    int depth = 0;
    for (auto _ : state) {
        q.scheduleAfter(10, [&depth] { ++depth; });
        q.step();
    }
    benchmark::DoNotOptimize(depth);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue);

}  // namespace
}  // namespace exist

BENCHMARK_MAIN();
