/**
 * @file
 * Figure 12 (motivation for RCO): tracing more repetitions of the same
 * workload yields linearly growing cost but diminishing coverage gains,
 * because replicas behave similarly. We trace 1..5 replicas of the same
 * application through the cluster master and report trace similarity
 * (mean pairwise overlap of decoded function sets), trace coverage
 * (union of decoded functions over the merged reference) and trace cost
 * (bytes, normalized to one repetition).
 */
#include <cstdio>
#include <vector>

#include "cluster/master.h"
#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

double
pairwiseSimilarity(const std::vector<const TraceRow *> &rows)
{
    if (rows.size() < 2)
        return 1.0;
    double sum = 0;
    int pairs = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t j = i + 1; j < rows.size(); ++j) {
            std::size_t inter = 0, uni = 0;
            std::size_t n = std::max(rows[i]->function_insns.size(),
                                     rows[j]->function_insns.size());
            for (std::size_t f = 0; f < n; ++f) {
                bool a = f < rows[i]->function_insns.size() &&
                         rows[i]->function_insns[f] > 0;
                bool b = f < rows[j]->function_insns.size() &&
                         rows[j]->function_insns[f] > 0;
                inter += (a && b) ? 1 : 0;
                uni += (a || b) ? 1 : 0;
            }
            sum += uni ? static_cast<double>(inter) /
                             static_cast<double>(uni)
                       : 1.0;
            ++pairs;
        }
    }
    return sum / pairs;
}

}  // namespace

int
main()
{
    printBanner("Figure 12: performance of tracing multiple "
                "repetitions");

    TableWriter table({"Repetitions", "Similarity(%)", "Coverage(%)",
                       "Cost(norm)"});
    double cost1 = 0;
    for (int reps = 1; reps <= 5; ++reps) {
        ClusterConfig cc;
        cc.num_nodes = 5;
        cc.cores_per_node = 6;
        cc.seed = 21;
        Cluster cluster(cc);
        cluster.deploy("Search1", 5);

        Master master(&cluster);
        TraceRequest req;
        req.app = "Search1";
        req.anomaly = true;  // trace all five; evaluate prefixes
        req.period_override = scaledSeconds(0.15);
        std::uint64_t id = master.submit(req);

        // Force the repetition count by adjusting RCO via priority is
        // indirect; instead trace through anomaly/threshold semantics:
        // run the request, then keep only the first `reps` rows.
        master.reconcile();
        auto rows_all = master.odps().queryRequest(id);
        std::vector<const TraceRow *> rows(
            rows_all.begin(),
            rows_all.begin() +
                std::min<std::size_t>(rows_all.size(),
                                      static_cast<std::size_t>(reps)));

        // Coverage: union of decoded functions over the exhaustive set
        // (approximated by the 5-worker union).
        std::vector<bool> unioned, full;
        auto extend = [](std::vector<bool> &v, std::size_t n) {
            if (v.size() < n)
                v.resize(n, false);
        };
        for (const TraceRow *r : rows_all) {
            extend(full, r->function_insns.size());
            for (std::size_t f = 0; f < r->function_insns.size(); ++f)
                full[f] = full[f] || r->function_insns[f] > 0;
        }
        for (const TraceRow *r : rows) {
            extend(unioned, r->function_insns.size());
            for (std::size_t f = 0; f < r->function_insns.size(); ++f)
                unioned[f] = unioned[f] || r->function_insns[f] > 0;
        }
        std::size_t cov = 0, tot = 0;
        for (std::size_t f = 0; f < full.size(); ++f) {
            if (full[f]) {
                ++tot;
                if (f < unioned.size() && unioned[f])
                    ++cov;
            }
        }

        double cost = 0;
        for (const TraceRow *r : rows)
            cost += static_cast<double>(r->decoded_branches);
        if (reps == 1)
            cost1 = cost;

        table.row({std::to_string(reps),
                   TableWriter::num(100 * pairwiseSimilarity(rows), 1),
                   TableWriter::num(
                       tot ? 100.0 * cov / static_cast<double>(tot)
                           : 100.0,
                       1),
                   TableWriter::num(cost1 > 0 ? cost / cost1 : 1.0,
                                    2)});
    }
    table.print();
    std::printf("\nPaper shape: cost grows linearly with repetitions; "
                "similarity stays high, so coverage gains diminish.\n");
    return 0;
}
