/**
 * @file
 * Figure 3b (motivation): in a stressed environment, a seemingly
 * tolerable ~2% single-service tracing overhead inflates end-to-end
 * response times by far more, and worse at higher load. We trace the
 * first service of a DeathStarBench-like ComposePost chain with
 * statistical sampling and report the E2E response-time slowdown at
 * the 50/75/90/99/99.9 percentiles across load levels.
 */
#include <cstdio>
#include <vector>

#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

ExperimentSpec
chainSpec(double rps, const char *backend)
{
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    // ComposePost-like chain: the traced frontend fans three RPCs into
    // a store tier per request.
    WorkloadSpec fe{.app = "Search1", .target = true, .load_rps = rps};
    fe.downstream = "Cache";
    fe.downstream_rpcs = 3;
    fe.workers = 16;  // CPU-bound, not worker-bound: queueing theory
                      // amplification needs utilization, not pool caps
    WorkloadSpec store{.app = "Cache"};
    store.workers = 16;
    spec.workloads.push_back(std::move(fe));
    spec.workloads.push_back(std::move(store));
    spec.backend = backend;
    spec.session.period = scaledSeconds(1.6);
    spec.warmup = secondsToCycles(0.2);
    return spec;
}

}  // namespace

int
main()
{
    printBanner("Figure 3b: E2E response-time slowdown under stress "
                "(tracing one service with ~2-3% overhead)");

    const std::vector<double> loads = {1000, 2000, 2600, 3000};
    const std::vector<double> pcts = {50, 75, 90, 99, 99.9};

    TableWriter table({"Load(rps)", "p50", "p75", "p90", "p99",
                       "p99.9"});
    for (double load : loads) {
        auto cmp = Testbed::compare(chainSpec(load, "StaSam"));
        std::vector<std::string> row = {TableWriter::num(load, 0)};
        for (double p : pcts) {
            double o =
                cmp.oracle.at("Search1").latencies_us.percentile(p);
            double t =
                cmp.traced.at("Search1").latencies_us.percentile(p);
            row.push_back(TableWriter::pct(o > 0 ? t / o - 1.0 : 0.0,
                                           1));
        }
        table.row(std::move(row));
    }
    table.print();
    std::printf("\nPaper shape: degradation grows with workload stress; "
                "tail percentiles degrade far more than the median "
                "(>10%% E2E from ~2%% single-service overhead under "
                "high load).\n");
    return 0;
}
