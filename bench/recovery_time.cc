/**
 * @file
 * Durability-plane recovery benchmark (DESIGN.md §12). Two headline
 * numbers, each as a machine-readable JSON line for
 * tools/bench_trends.py --set durability:
 *
 *  - WAL replay throughput (MB/s): raw Wal::replay over the full log
 *    of the longest un-snapshotted run;
 *  - end-to-end recovery latency (recover + rebuild + reconcile) as
 *    a function of snapshot_interval {0,2,4,8} at 8 vs 16 completed
 *    requests — demonstrating the snapshot contract: with snapshots
 *    on, the replayed tail (and hence recovery time) is bounded by
 *    the interval, not by how long the experiment ran.
 */
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/master.h"
#include "cluster/shard/sharded_master.h"
#include "common.h"
#include "durability/journal.h"
#include "durability/recovery.h"
#include "durability/spec.h"
#include "durability/wal.h"

using namespace exist;
using namespace exist::bench;

namespace {

namespace fs = std::filesystem;

constexpr int kShards = 2;
constexpr int kEpochRequests = 4;  ///< reconcile/snapshot cadence

ClusterConfig
demoConfig()
{
    ClusterConfig cc;
    cc.num_nodes = 6;
    cc.cores_per_node = 4;
    cc.seed = 2025;
    return cc;
}

std::string
manifest()
{
    int period_ms = static_cast<int>(15.0 * periodScale() + 0.5);
    if (period_ms < 5)
        period_ms = 5;
    return "app=Cache anomaly=true period_ms=" +
           std::to_string(period_ms) + " budget_mb=64";
}

durability::ClusterMeta
metaFor(std::uint64_t snapshot_interval)
{
    ClusterConfig cc = demoConfig();
    durability::ClusterMeta meta;
    meta.cluster_seed = cc.seed;
    meta.num_nodes = cc.num_nodes;
    meta.cores_per_node = cc.cores_per_node;
    meta.shards = kShards;
    meta.snapshot_interval = snapshot_interval;
    meta.deployments = {{"Cache", 3}};
    return meta;
}

/** Run `requests` to completion under a journal, snapshotting at
 *  every epoch boundary the interval allows. */
void
buildLog(const fs::path &dir, int requests,
         std::uint64_t snapshot_interval)
{
    fs::remove_all(dir);
    Cluster cluster(demoConfig());
    cluster.deploy("Cache", 3);
    durability::DurabilitySpec spec;
    spec.wal_dir = dir.string();
    spec.snapshot_interval = snapshot_interval;
    durability::Journal journal(spec, metaFor(snapshot_interval));
    ShardedMaster master(&cluster, {}, kShards, kShards);
    master.attachJournal(&journal);
    std::string m = manifest();
    for (int done = 0; done < requests; done += kEpochRequests) {
        for (int i = 0; i < kEpochRequests; ++i)
            master.apply(m);
        master.reconcile();
        journal.maybeSnapshot(
            [&master] { return master.dumpState(); });
    }
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int
main()
{
    printBanner("Durability plane: WAL replay throughput and "
                "recovery latency vs snapshot interval");
    std::printf("%d shards, %d-request reconcile epochs "
                "(scale %.2f)\n\n",
                kShards, kEpochRequests, periodScale());

    TableWriter table({"Requests", "Interval", "WAL recs", "WAL KB",
                       "Snapshot", "Recover(ms)"});

    for (int requests : {8, 16}) {
        for (std::uint64_t interval : {0, 2, 4, 8}) {
            fs::path dir = "recovery_bench_wal";
            buildLog(dir, requests, interval);

            auto t0 = std::chrono::steady_clock::now();
            durability::RecoveryResult rec =
                durability::recover(dir.string());
            if (!rec.ok) {
                std::fprintf(stderr, "recovery failed: %s\n",
                             rec.error.c_str());
                return 1;
            }
            // The recovered image must already hold every publish:
            // rebuild + reconcile is a no-op on a crash-free log, so
            // the timed region is the true recovery cost.
            Cluster cluster(demoConfig());
            cluster.deploy("Cache", 3);
            ShardedMaster master(&cluster, {}, kShards, kShards);
            master.restoreForRecovery(rec.state.dump);
            master.reconcile();
            double recover_s = secondsSince(t0);

            const auto &t = rec.state.telemetry;
            if (rec.state.dump.requests.size() !=
                    static_cast<std::size_t>(requests) ||
                t.pending_requests != 0) {
                std::fprintf(stderr,
                             "recovered state incomplete: %zu/%d "
                             "requests, %llu pending\n",
                             rec.state.dump.requests.size(), requests,
                             (unsigned long long)t.pending_requests);
                return 1;
            }

            table.row({std::to_string(requests),
                       interval == 0 ? "off"
                                     : std::to_string(interval),
                       std::to_string(t.wal_records),
                       TableWriter::num(t.wal_bytes / 1024.0),
                       t.snapshot_used ? "yes" : "no",
                       TableWriter::num(recover_s * 1e3)});
            std::printf(
                "JSON {\"bench\":\"recovery_time\","
                "\"requests\":%d,\"snapshot_interval\":%llu,"
                "\"wal_records\":%llu,\"wal_bytes\":%llu,"
                "\"snapshot_used\":%s,\"replayed_publishes\":%llu,"
                "\"recovery_s\":%.6f}\n",
                requests, (unsigned long long)interval,
                (unsigned long long)t.wal_records,
                (unsigned long long)t.wal_bytes,
                t.snapshot_used ? "true" : "false",
                (unsigned long long)t.replayed_publishes, recover_s);

            // Raw replay throughput over the longest full log.
            if (requests == 16 && interval == 0) {
                auto r0 = std::chrono::steady_clock::now();
                durability::Wal::ReplayResult rr =
                    durability::Wal::replay(dir.string(), 1);
                double replay_s = secondsSince(r0);
                if (!rr.ok) {
                    std::fprintf(stderr, "replay failed: %s\n",
                                 rr.error.c_str());
                    return 1;
                }
                double mb = rr.bytes_read / (1024.0 * 1024.0);
                std::printf(
                    "JSON {\"bench\":\"recovery_time\","
                    "\"mode\":\"wal_replay\",\"records\":%zu,"
                    "\"bytes\":%llu,\"seconds\":%.6f,"
                    "\"replay_mb_per_sec\":%.2f}\n",
                    rr.records.size(),
                    (unsigned long long)rr.bytes_read, replay_s,
                    replay_s > 0 ? mb / replay_s : 0.0);
                std::printf("\nfull-log replay: %.1f MB in %.1f ms "
                            "(%.0f MB/s)\n\n",
                            mb, replay_s * 1e3,
                            replay_s > 0 ? mb / replay_s : 0.0);
            }
            fs::remove_all(dir);
        }
    }

    table.print();
    std::printf("\nwith snapshots on, the replayed tail is bounded "
                "by the interval — recovery latency stays flat as "
                "the run doubles; interval=off replays the whole "
                "log and scales with it.\n");
    return 0;
}
