/**
 * @file
 * Decode-throughput benchmark for the parallel decode runtime: collects
 * the per-core trace buffers of one multi-core EXIST session, then
 * measures serial FlowReconstructor decode vs ParallelDecoder fan-out
 * at 1/2/4/8 threads. Wall-clock numbers (real time, not the
 * simulator's virtual time — the decoder is the offline stage and its
 * cost is real). Verifies on every configuration that the parallel
 * result is bit-identical to the serial baseline.
 *
 * Besides the human-readable table, each configuration emits one
 * machine-readable JSON line (prefix "JSON ") so CI can track the
 * trajectory:
 *   JSON {"bench":"decode_throughput","threads":4,...}
 */
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "decode/parallel_decoder.h"

using namespace exist;
using namespace exist::bench;

namespace {

bool
sameDecode(const DecodedTrace &a, const DecodedTrace &b)
{
    if (a.branches_decoded != b.branches_decoded ||
        a.insns_decoded != b.insns_decoded ||
        a.function_insns != b.function_insns ||
        a.function_entries != b.function_entries ||
        a.block_path != b.block_path || a.ptwrites != b.ptwrites ||
        a.tnt_bits_consumed != b.tnt_bits_consumed ||
        a.tips_consumed != b.tips_consumed ||
        a.decode_errors != b.decode_errors || a.resyncs != b.resyncs ||
        a.segments.size() != b.segments.size())
        return false;
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
        const DecodedSegment &x = a.segments[i];
        const DecodedSegment &y = b.segments[i];
        if (x.start_time != y.start_time || x.end_time != y.end_time ||
            x.first_offset != y.first_offset ||
            x.branches != y.branches)
            return false;
    }
    return true;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int
main()
{
    printBanner("Decode throughput: serial FlowReconstructor vs "
                "ParallelDecoder over one multi-core session");

    // An 8-core node under service load so every core collects trace
    // bytes; keep_traces hands us the raw per-core buffers.
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    WorkloadSpec w{.app = "Search1", .target = true,
                   .closed_clients = 12};
    w.workers = 16;
    spec.workloads.push_back(std::move(w));
    spec.backend = "EXIST";
    spec.session.period = scaledSeconds(0.4);
    spec.warmup = secondsToCycles(0.05);
    spec.keep_traces = true;
    ExperimentResult r = Testbed::run(spec);

    std::uint64_t total_bytes = 0;
    for (const CollectedTrace &ct : r.raw_traces)
        total_bytes += ct.bytes.size();
    std::printf("collected %zu per-core buffers, %.1f MB total\n\n",
                r.raw_traces.size(), total_bytes / 1048576.0);
    if (r.raw_traces.empty()) {
        std::fputs("no trace buffers collected; aborting\n", stderr);
        return 1;
    }

    auto binary = Testbed::binaryForApp("Search1");

    // Serial baseline: the historical one-thread decode loop.
    FlowReconstructor serial_rec(binary.get());
    std::vector<DecodedTrace> baseline;
    for (const CollectedTrace &ct : r.raw_traces)
        baseline.push_back(serial_rec.decode(ct.bytes));
    std::uint64_t total_segments = 0;
    for (const DecodedTrace &dt : baseline)
        total_segments += dt.segments.size();

    // Repeat each timed configuration until it accumulates enough wall
    // time for a stable rate.
    const double kMinSeconds = 0.25;
    const int kMinReps = 3;
    auto timeDecode = [&](const std::function<void()> &fn) {
        fn();  // warm caches
        int reps = 0;
        auto t0 = std::chrono::steady_clock::now();
        double elapsed = 0.0;
        while (reps < kMinReps || elapsed < kMinSeconds) {
            fn();
            ++reps;
            elapsed = secondsSince(t0);
        }
        return elapsed / reps;
    };

    double serial_s = timeDecode([&]() {
        for (const CollectedTrace &ct : r.raw_traces)
            serial_rec.decode(ct.bytes);
    });
    double serial_segs = total_segments / serial_s;

    TableWriter table({"Mode", "Threads", "Time(ms)", "Segments/s",
                       "MB/s", "Speedup", "Identical"});
    table.row({"serial", "1", TableWriter::num(serial_s * 1e3),
               TableWriter::num(serial_segs, 0),
               TableWriter::num(total_bytes / serial_s / 1048576.0),
               "1.00", "ref"});
    std::printf("JSON {\"bench\":\"decode_throughput\","
                "\"mode\":\"serial\",\"threads\":1,"
                "\"buffers\":%zu,\"bytes\":%llu,\"segments\":%llu,"
                "\"seconds\":%.6f,\"segments_per_sec\":%.1f,"
                "\"speedup\":1.0,\"identical\":true}\n",
                r.raw_traces.size(), (unsigned long long)total_bytes,
                (unsigned long long)total_segments, serial_s,
                serial_segs);

    for (int threads : {1, 2, 4, 8}) {
        ParallelDecoder dec(binary.get(), {}, threads);
        auto decoded = dec.decodeAll(r.raw_traces);
        bool identical = decoded.size() == baseline.size();
        for (std::size_t i = 0; identical && i < decoded.size(); ++i)
            identical = decoded[i].first == r.raw_traces[i].core &&
                        sameDecode(decoded[i].second, baseline[i]);

        double s = timeDecode([&]() { dec.decodeAll(r.raw_traces); });
        double speedup = s > 0 ? serial_s / s : 0.0;
        table.row({"parallel", std::to_string(threads),
                   TableWriter::num(s * 1e3),
                   TableWriter::num(total_segments / s, 0),
                   TableWriter::num(total_bytes / s / 1048576.0),
                   TableWriter::num(speedup), identical ? "yes" : "NO"});
        std::printf("JSON {\"bench\":\"decode_throughput\","
                    "\"mode\":\"parallel\",\"threads\":%d,"
                    "\"buffers\":%zu,\"bytes\":%llu,\"segments\":%llu,"
                    "\"seconds\":%.6f,\"segments_per_sec\":%.1f,"
                    "\"speedup\":%.3f,\"identical\":%s}\n",
                    threads, r.raw_traces.size(),
                    (unsigned long long)total_bytes,
                    (unsigned long long)total_segments, s,
                    total_segments / s, speedup,
                    identical ? "true" : "false");
        if (!identical) {
            std::fputs("parallel decode diverged from serial!\n",
                       stderr);
            return 1;
        }
    }
    std::printf("\n");
    table.print();
    std::printf("\nhardware threads available: %u (speedup saturates "
                "at min(buffers, hardware threads))\n",
                std::thread::hardware_concurrency());
    return 0;
}
