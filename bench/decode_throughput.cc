/**
 * @file
 * Decode-throughput benchmark for the parallel decode runtime: collects
 * the per-core trace buffers of one multi-core EXIST session, then
 * measures serial FlowReconstructor decode vs ParallelDecoder fan-out
 * at 1/2/4/8 threads. Wall-clock numbers (real time, not the
 * simulator's virtual time — the decoder is the offline stage and its
 * cost is real). Verifies on every configuration that the parallel
 * result is bit-identical to the serial baseline.
 *
 * A second section compares the repetition-aware decode fast path
 * (per-binary BlockCache + TNT-run memoization, DESIGN.md §11) against
 * the legacy cache-off reference on the same buffers, plus a
 * loop-heavy compute profile where repetition dominates. The fast path
 * must be bit-identical to the reference; the benchmark fails if not.
 *
 * Besides the human-readable table, each configuration emits one
 * machine-readable JSON line (prefix "JSON ") so CI can track the
 * trajectory:
 *   JSON {"bench":"decode_throughput","threads":4,...}
 */
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "decode/parallel_decoder.h"

using namespace exist;
using namespace exist::bench;

namespace {

bool
sameDecode(const DecodedTrace &a, const DecodedTrace &b)
{
    if (a.branches_decoded != b.branches_decoded ||
        a.insns_decoded != b.insns_decoded ||
        a.function_insns != b.function_insns ||
        a.function_entries != b.function_entries ||
        a.block_path != b.block_path || a.ptwrites != b.ptwrites ||
        a.tnt_bits_consumed != b.tnt_bits_consumed ||
        a.tips_consumed != b.tips_consumed ||
        a.decode_errors != b.decode_errors || a.resyncs != b.resyncs ||
        a.segments.size() != b.segments.size())
        return false;
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
        const DecodedSegment &x = a.segments[i];
        const DecodedSegment &y = b.segments[i];
        if (x.start_time != y.start_time || x.end_time != y.end_time ||
            x.first_offset != y.first_offset ||
            x.branches != y.branches)
            return false;
    }
    return true;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int
main()
{
    printBanner("Decode throughput: serial FlowReconstructor vs "
                "ParallelDecoder over one multi-core session");

    // An 8-core node under service load so every core collects trace
    // bytes; keep_traces hands us the raw per-core buffers.
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    WorkloadSpec w{.app = "Search1", .target = true,
                   .closed_clients = 12};
    w.workers = 16;
    spec.workloads.push_back(std::move(w));
    spec.backend = "EXIST";
    spec.session.period = scaledSeconds(0.4);
    spec.warmup = secondsToCycles(0.05);
    spec.keep_traces = true;
    ExperimentResult r = Testbed::run(spec);

    std::uint64_t total_bytes = 0;
    for (const CollectedTrace &ct : r.raw_traces)
        total_bytes += ct.bytes.size();
    std::printf("collected %zu per-core buffers, %.1f MB total\n\n",
                r.raw_traces.size(), total_bytes / 1048576.0);
    if (r.raw_traces.empty()) {
        std::fputs("no trace buffers collected; aborting\n", stderr);
        return 1;
    }

    auto binary = Testbed::binaryForApp("Search1");

    // Serial baseline: the historical one-thread decode loop.
    FlowReconstructor serial_rec(binary.get());
    std::vector<DecodedTrace> baseline;
    for (const CollectedTrace &ct : r.raw_traces)
        baseline.push_back(serial_rec.decode(ct.bytes));
    std::uint64_t total_segments = 0;
    for (const DecodedTrace &dt : baseline)
        total_segments += dt.segments.size();

    // Repeat each timed configuration until it accumulates enough wall
    // time, and report the fastest repetition: decode does identical
    // work every rep, so the minimum is the measurement least polluted
    // by scheduler and container noise (means drift with whatever else
    // the host is doing).
    const double kMinSeconds = 0.25;
    const int kMinReps = 3;
    auto timeDecode = [&](const std::function<void()> &fn) {
        fn();  // warm caches
        int reps = 0;
        auto t0 = std::chrono::steady_clock::now();
        double elapsed = 0.0;
        double best = 0.0;
        while (reps < kMinReps || elapsed < kMinSeconds) {
            double rep0 = secondsSince(t0);
            fn();
            ++reps;
            elapsed = secondsSince(t0);
            double rep = elapsed - rep0;
            if (best == 0.0 || rep < best)
                best = rep;
        }
        return best;
    };

    // The cache on/off comparison interleaves its repetitions (off,
    // on, off, on, ...) inside one window and takes each side's
    // minimum: a load spike then lands on both sides instead of on
    // whichever loop happened to be running, which is what keeps the
    // reported ratio stable on a busy host.
    auto timePair = [&](const std::function<void()> &off,
                        const std::function<void()> &on) {
        off();
        on();  // warm caches
        int reps = 0;
        auto t0 = std::chrono::steady_clock::now();
        double elapsed = 0.0;
        double best_off = 0.0, best_on = 0.0;
        while (reps < kMinReps || elapsed < 4 * kMinSeconds) {
            double a = secondsSince(t0);
            off();
            double b = secondsSince(t0);
            on();
            elapsed = secondsSince(t0);
            ++reps;
            double off_rep = b - a;
            double on_rep = elapsed - b;
            if (best_off == 0.0 || off_rep < best_off)
                best_off = off_rep;
            if (best_on == 0.0 || on_rep < best_on)
                best_on = on_rep;
        }
        return std::make_pair(best_off, best_on);
    };

    double serial_s = timeDecode([&]() {
        for (const CollectedTrace &ct : r.raw_traces)
            serial_rec.decode(ct.bytes);
    });
    double serial_segs = total_segments / serial_s;

    TableWriter table({"Mode", "Threads", "Time(ms)", "Segments/s",
                       "MB/s", "Speedup", "Identical"});
    table.row({"serial", "1", TableWriter::num(serial_s * 1e3),
               TableWriter::num(serial_segs, 0),
               TableWriter::num(total_bytes / serial_s / 1048576.0),
               "1.00", "ref"});
    std::printf("JSON {\"bench\":\"decode_throughput\","
                "\"mode\":\"serial\",\"threads\":1,"
                "\"buffers\":%zu,\"bytes\":%llu,\"segments\":%llu,"
                "\"seconds\":%.6f,\"segments_per_sec\":%.1f,"
                "\"speedup\":1.0,\"identical\":true}\n",
                r.raw_traces.size(), (unsigned long long)total_bytes,
                (unsigned long long)total_segments, serial_s,
                serial_segs);

    for (int threads : {1, 2, 4, 8}) {
        ParallelDecoder dec(binary.get(), {}, threads);
        auto decoded = dec.decodeAll(r.raw_traces);
        bool identical = decoded.size() == baseline.size();
        for (std::size_t i = 0; identical && i < decoded.size(); ++i)
            identical = decoded[i].first == r.raw_traces[i].core &&
                        sameDecode(decoded[i].second, baseline[i]);

        double s = timeDecode([&]() { dec.decodeAll(r.raw_traces); });
        double speedup = s > 0 ? serial_s / s : 0.0;
        table.row({"parallel", std::to_string(threads),
                   TableWriter::num(s * 1e3),
                   TableWriter::num(total_segments / s, 0),
                   TableWriter::num(total_bytes / s / 1048576.0),
                   TableWriter::num(speedup), identical ? "yes" : "NO"});
        std::printf("JSON {\"bench\":\"decode_throughput\","
                    "\"mode\":\"parallel\",\"threads\":%d,"
                    "\"buffers\":%zu,\"bytes\":%llu,\"segments\":%llu,"
                    "\"seconds\":%.6f,\"segments_per_sec\":%.1f,"
                    "\"speedup\":%.3f,\"identical\":%s}\n",
                    threads, r.raw_traces.size(),
                    (unsigned long long)total_bytes,
                    (unsigned long long)total_segments, s,
                    total_segments / s, speedup,
                    identical ? "true" : "false");
        if (!identical) {
            std::fputs("parallel decode diverged from serial!\n",
                       stderr);
            return 1;
        }
    }
    std::printf("\n");
    table.print();
    std::printf("\nhardware threads available: %u (speedup saturates "
                "at min(buffers, hardware threads))\n",
                std::thread::hardware_concurrency());

    // ------------------------------------------------------------------
    // Decode fast path: cache-off reference vs BlockCache + TNT memo.
    // Run on the service traces from above, on a branchy compute
    // profile (648.exchange2_s: recursive kernels, w_cond 0.66 but
    // return-heavy, so TIPs bound the memo runs), and on the loop-heavy
    // stencil profile (619.lbm_s stand-in: long strongly-biased TNT
    // stretches) where TNT-run repetition dominates the stream.
    // ------------------------------------------------------------------
    std::printf("\nDecode fast path: cache-off reference vs "
                "BlockCache + TNT-run memo\n\n");

    // The compute profiles trace in the control-flow-only configuration
    // (no CYC packets): that is how a decode-throughput deployment runs
    // them — per-function attribution needs no intra-segment
    // timestamps, and CYC would otherwise be roughly half the trace
    // bytes on these branch-dense kernels, diluting the decode work
    // being measured with timing-packet parsing.
    ExperimentSpec exspec = computeSpec("ex", "EXIST", 0.4, 4);
    WorkloadSpec &exw = exspec.workloads.front();
    exw.workers = 4;
    exspec.keep_traces = true;
    exspec.session.cyc_timing = false;
    ExperimentResult rex = Testbed::run(exspec);
    auto ex_binary = Testbed::binaryForApp("ex");

    ExperimentSpec lbmspec = computeSpec("lbm", "EXIST", 0.4, 4);
    WorkloadSpec &lbmw = lbmspec.workloads.front();
    lbmw.workers = 4;
    lbmspec.keep_traces = true;
    lbmspec.session.cyc_timing = false;
    ExperimentResult rlbm = Testbed::run(lbmspec);
    auto lbm_binary = Testbed::binaryForApp("lbm");

    TableWriter cache_table({"App", "Cache", "Time(ms)", "Segments/s",
                             "MB/s", "Speedup", "Hit%", "Identical"});
    bool cache_identical = true;

    auto cacheCompare = [&](const char *app,
                            const std::vector<CollectedTrace> &traces,
                            const ProgramBinary *bin) {
        DecodeOptions off_opts;
        off_opts.block_cache = false;
        off_opts.tnt_memo_bits = 0;
        FlowReconstructor off_rec(bin, off_opts);
        FlowReconstructor on_rec(bin);  // defaults: cache + memo on

        std::uint64_t bytes = 0, segments = 0;
        std::uint64_t branches = 0, tnt_bits = 0, tips = 0;
        std::vector<DecodedTrace> ref;
        for (const CollectedTrace &ct : traces) {
            bytes += ct.bytes.size();
            ref.push_back(off_rec.decode(ct.bytes));
            segments += ref.back().segments.size();
            branches += ref.back().branches_decoded;
            tnt_bits += ref.back().tnt_bits_consumed;
            tips += ref.back().tips_consumed;
        }
        bool identical = true;
        std::uint64_t hits = 0, misses = 0;
        for (std::size_t i = 0; i < traces.size(); ++i) {
            DecodedTrace dt = on_rec.decode(traces[i].bytes);
            identical = identical && sameDecode(dt, ref[i]);
            hits += dt.cache_stats.memo_hits;
            misses += dt.cache_stats.memo_misses;
        }
        double hit_pct = hits + misses > 0
                             ? 100.0 * static_cast<double>(hits) /
                                   static_cast<double>(hits + misses)
                             : 0.0;

        auto [off_s, on_s] = timePair(
            [&]() {
                for (const CollectedTrace &ct : traces)
                    off_rec.decode(ct.bytes);
            },
            [&]() {
                for (const CollectedTrace &ct : traces)
                    on_rec.decode(ct.bytes);
            });
        double speedup = on_s > 0 ? off_s / on_s : 0.0;

        cache_table.row({app, "off", TableWriter::num(off_s * 1e3),
                         TableWriter::num(segments / off_s, 0),
                         TableWriter::num(bytes / off_s / 1048576.0),
                         "1.00", "-", "ref"});
        cache_table.row({app, "on", TableWriter::num(on_s * 1e3),
                         TableWriter::num(segments / on_s, 0),
                         TableWriter::num(bytes / on_s / 1048576.0),
                         TableWriter::num(speedup),
                         TableWriter::num(hit_pct, 1),
                         identical ? "yes" : "NO"});
        std::printf("JSON {\"bench\":\"decode_throughput\","
                    "\"mode\":\"cache\",\"app\":\"%s\",\"threads\":1,"
                    "\"buffers\":%zu,\"bytes\":%llu,\"segments\":%llu,"
                    "\"branches\":%llu,\"tnt_bits\":%llu,\"tips\":%llu,"
                    "\"cache_off_seconds\":%.6f,"
                    "\"cache_on_seconds\":%.6f,"
                    "\"segments_per_sec\":%.1f,\"speedup\":%.3f,"
                    "\"memo_hit_pct\":%.1f,\"identical\":%s}\n",
                    app, traces.size(), (unsigned long long)bytes,
                    (unsigned long long)segments,
                    (unsigned long long)branches,
                    (unsigned long long)tnt_bits,
                    (unsigned long long)tips, off_s, on_s,
                    segments / on_s, speedup, hit_pct,
                    identical ? "true" : "false");
        cache_identical = cache_identical && identical;
    };

    cacheCompare("Search1", r.raw_traces, binary.get());
    if (!rex.raw_traces.empty())
        cacheCompare("ex", rex.raw_traces, ex_binary.get());
    else
        std::fputs("warning: branchy session collected no buffers\n",
                   stderr);
    if (!rlbm.raw_traces.empty())
        cacheCompare("lbm", rlbm.raw_traces, lbm_binary.get());
    else
        std::fputs("warning: loop-heavy session collected no buffers\n",
                   stderr);

    std::printf("\n");
    cache_table.print();
    if (!cache_identical) {
        std::fputs("cached decode diverged from cache-off reference!\n",
                   stderr);
        return 1;
    }
    return 0;
}
