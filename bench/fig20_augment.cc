/**
 * @file
 * Figure 20: cluster-level trace augmentation. Search1 runs on ten
 * workers; traces from 1, 3 and 10 workers are merged (dedup +
 * complement, §3.4). The paper reports up to +11% accuracy from
 * merging, with no extra node-level cost.
 */
#include <cstdio>
#include <vector>

#include "analysis/accuracy.h"
#include "cluster/master.h"
#include "common.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 20: accuracy under cluster-level sampling and "
                "trace augmentation (Search1)");

    const std::vector<double> periods = {0.1, 0.5, 1.0};
    const std::vector<int> worker_counts = {1, 3, 10};

    TableWriter table({"Period(s)", "Workers", "MeanSingle",
                       "Merged", "Gain"});
    for (double period : periods) {
        ClusterConfig cc;
        cc.num_nodes = 10;
        cc.cores_per_node = 6;
        cc.seed = 33;
        Cluster cluster(cc);
        cluster.deploy("Search1", 10);
        Master master(&cluster);

        // Anomaly request: RCO traces all ten repetitions; we then
        // evaluate merging prefixes of 1, 3 and 10 workers.
        TraceRequest req;
        req.app = "Search1";
        req.anomaly = true;
        req.period_override = scaledSeconds(period);
        req.budget_mb = 72;
        std::uint64_t id = master.submit(req);
        master.reconcile();
        const TraceReport *rep = master.report(id);
        auto rows = master.odps().queryRequest(id);

        for (int count : worker_counts) {
            std::size_t n = std::min<std::size_t>(
                rows.size(), static_cast<std::size_t>(count));
            std::vector<std::vector<std::uint64_t>> profiles;
            double single_sum = 0;
            for (std::size_t i = 0; i < n; ++i) {
                profiles.push_back(rows[i]->function_insns);
                // Single-worker accuracy vs the common reference: one
                // worker sees only its own phases of the application.
                single_sum += wallWeightAccuracy(
                    rows[i]->function_insns,
                    rep->merged_truth_function_insns);
            }
            std::vector<std::uint64_t> merged =
                mergeFunctionProfiles(profiles);
            // Reference: the merged exhaustive (ground-truth) profile
            // across all ten workers — the best approximation of the
            // application's true behaviour.
            double merged_acc = wallWeightAccuracy(
                merged, rep->merged_truth_function_insns);
            double mean_single = single_sum / static_cast<double>(n);
            table.row({TableWriter::num(period, 1),
                       std::to_string(count),
                       TableWriter::pct(mean_single, 1),
                       TableWriter::pct(merged_acc, 1),
                       TableWriter::pct(merged_acc - mean_single, 1)});
        }
    }
    table.print();
    std::printf("\nPaper shape: synthesizing traces from more workers "
                "improves accuracy (up to ~11%%) with no extra "
                "node-level tracing cost.\n");
    return 0;
}
