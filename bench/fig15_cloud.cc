/**
 * @file
 * Figure 15: tracing overhead on the five real-world cloud applications
 * under low and high workload stress, measured as CPI inflation and
 * CPU-utilization increase (long-running services have no end-to-end
 * execution time). The paper reports EXIST ~2.2% CPI overhead at low
 * stress vs 5.1%/4.9%/20.8% for StaSam/eBPF/NHT, and ~1.1% utilization
 * increase, stable across stress levels.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "workload/app_profile.h"

using namespace exist;
using namespace exist::bench;

namespace {

ExperimentSpec
cloudSpec(const std::string &app, const std::string &backend,
          bool high_load)
{
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    AppProfile profile = AppCatalog::find(app);
    WorkloadSpec w{.app = app, .target = true};
    if (profile.provision == ProvisionMode::kCpuSet)
        w.cores = {0, 1, 2, 3};
    w.load_rps = high_load ? 6000 : 150;
    if (app == "Pred" || app == "Agent")
        w.load_rps = high_load ? 1200 : 60;
    spec.workloads.push_back(std::move(w));
    // Background co-runner, as on shared production nodes.
    spec.workloads.push_back(
        WorkloadSpec{.app = "xz", .cores = {4, 5, 6, 7}});
    spec.backend = backend;
    spec.session.period = scaledSeconds(0.4);
    spec.warmup = secondsToCycles(0.08);
    return spec;
}

}  // namespace

int
main()
{
    printBanner("Figure 15: CPI and utilization overheads on cloud "
                "applications (5 schemes x low/high load)");

    const std::vector<std::string> apps = {"Search1", "Search2",
                                           "Cache", "Pred", "Agent"};
    const std::vector<std::string> schemes = {"EXIST", "StaSam", "eBPF",
                                              "NHT"};

    TableWriter table({"App", "Scheme", "CPI ovh (low)",
                       "CPI ovh (high)", "Util increase"});
    double exist_util_sum = 0;
    double exist_cpi_low_sum = 0;
    for (const std::string &app : apps) {
        for (const std::string &scheme : schemes) {
            auto low = Testbed::compare(cloudSpec(app, scheme, false));
            auto high = Testbed::compare(cloudSpec(app, scheme, true));
            auto share = [](const ExperimentResult &r,
                            const std::string &name) {
                const AppResult &a = r.at(name);
                return static_cast<double>(a.user_cycles +
                                           a.kernel_cycles) /
                       (static_cast<double>(r.window) * 8);
            };
            double util_delta = share(high.traced, app) -
                                share(high.oracle, app);
            if (scheme == "EXIST") {
                exist_util_sum += util_delta;
                exist_cpi_low_sum += low.cpiOverheadOf(app);
            }
            table.row({app, scheme,
                       TableWriter::pct(low.cpiOverheadOf(app), 2),
                       TableWriter::pct(high.cpiOverheadOf(app), 2),
                       TableWriter::pct(util_delta, 2)});
        }
    }
    table.print();
    std::printf("\nEXIST averages: CPI overhead (low load) %.2f%% "
                "(paper ~2.2%%), utilization increase %.2f%% (paper "
                "~1.1%%). EXIST stays stable from low to high stress; "
                "the baselines waste more cycles under stress.\n",
                100 * exist_cpi_low_sum / apps.size(),
                100 * exist_util_sum / apps.size());
    return 0;
}
