/**
 * @file
 * Shared helpers for the benchmark harness binaries. Each binary
 * regenerates one table or figure of the paper's evaluation, printing
 * the same rows/series the paper reports.
 *
 * EXIST_BENCH_SCALE (env) scales tracing periods: 1.0 (default)
 * matches the paper's settings; smaller values give quick smoke runs.
 */
#ifndef EXIST_BENCH_COMMON_H
#define EXIST_BENCH_COMMON_H

#include <cstdlib>
#include <string>

#include "analysis/report.h"
#include "analysis/testbed.h"
#include "util/types.h"

namespace exist::bench {

/** Period scale from the environment (for fast CI runs). */
inline double
periodScale()
{
    const char *env = std::getenv("EXIST_BENCH_SCALE");
    if (env == nullptr)
        return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
}

inline Cycles
scaledSeconds(double s)
{
    return secondsToCycles(s * periodScale());
}

/** Build a single-target compute experiment on a small shared node. */
inline ExperimentSpec
computeSpec(const std::string &app, const std::string &backend,
            double period_s = 0.3, int cores = 4)
{
    ExperimentSpec spec;
    spec.node.num_cores = cores;
    spec.workloads.push_back(WorkloadSpec{.app = app, .target = true});
    spec.backend = backend;
    spec.session.period = scaledSeconds(period_s);
    spec.warmup = secondsToCycles(0.03);
    return spec;
}

/** Build a closed-loop online-benchmark experiment (memtier/ab style:
 *  ten concurrent clients, as in the paper's §5.1). */
inline ExperimentSpec
onlineSpec(const std::string &app, const std::string &backend,
           int clients = 10, double period_s = 0.4, int cores = 4)
{
    ExperimentSpec spec;
    spec.node.num_cores = cores;
    spec.workloads.push_back(WorkloadSpec{
        .app = app, .target = true, .closed_clients = clients});
    spec.backend = backend;
    spec.session.period = scaledSeconds(period_s);
    spec.warmup = secondsToCycles(0.08);
    return spec;
}

}  // namespace exist::bench

#endif  // EXIST_BENCH_COMMON_H
