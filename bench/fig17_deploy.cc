/**
 * @file
 * Figure 17: deployment overheads of EXIST itself — the node-level
 * startup cost (insmod spike, then near-zero tracing-facility CPU) and
 * the cluster-level orchestration footprint (the RCO management pod's
 * cores and memory on a ten-node cluster, extrapolated to thousand
 * scale).
 */
#include <cstdio>

#include "cluster/master.h"
#include "common.h"
#include "core/exist_backend.h"
#include "os/costs.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 17 (left): node-level startup and tracing "
                "facility cost");

    // Node-level: run one EXIST session and report the facility's own
    // CPU consumption phases.
    ExperimentSpec spec = computeSpec("om", "EXIST", 0.4);
    spec.decode = false;
    ExperimentResult r = Testbed::run(spec);

    double insmod_cores =
        static_cast<double>(costs::kInsmodCost) /
        static_cast<double>(secondsToCycles(1.0));
    TableWriter node_table({"Phase", "CPU cores", "Notes"});
    node_table.row({"insmod (startup)",
                    TableWriter::num(insmod_cores, 3),
                    "one-time kernel module load"});
    node_table.row(
        {"tracing (steady)",
         TableWriter::num(
             r.backend_stats.msr_writes * 1e-6, 4),
         std::to_string(r.backend_stats.control_ops) +
             " control ops for the whole session"});
    node_table.print();

    printBanner("Figure 17 (right): cluster-level orchestration "
                "footprint");
    TableWriter mgmt({"Cluster size", "RCO cores", "RCO memory (MB)",
                      "Per-node overhead"});
    for (int nodes : {10, 100, 1000}) {
        ClusterConfig cc;
        cc.num_nodes = nodes;
        Cluster cluster(cc);
        Master master(&cluster);
        auto fp = master.managementFootprint();
        mgmt.row({std::to_string(nodes),
                  TableWriter::num(fp.cores, 4),
                  TableWriter::num(fp.memory_mb, 1),
                  TableWriter::pct(fp.cores / nodes /
                                       cluster.config().cores_per_node,
                                   4)});
    }
    mgmt.print();
    std::printf("\nPaper shape: ~0.05-core startup spike, then "
                "negligible facility CPU; <3e-3 cores and ~40 MB of "
                "management for ten nodes; sub-permille management "
                "overhead at thousand scale.\n");
    return 0;
}
