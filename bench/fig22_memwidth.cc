/**
 * @file
 * Figure 22 (case study): memory-access-width mixes (1/2/4/8 bytes) for
 * read-only, write-only and read-write accesses of the five case-study
 * applications, derived from decoded instruction volumes and the
 * binaries' access-width signatures. Paper finding: ML-based
 * applications perform significantly more quad-width (8-byte) accesses
 * (25-70%), consistent with reduced-precision/high-throughput serving.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "workload/app_profile.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 22: memory access width analysis (percent per "
                "width 1/2/4/8)");

    const std::vector<std::string> apps = {"Search", "Cache",
                                           "Prediction", "Matching",
                                           "Recommend"};

    TableWriter table({"App", "Type", "w1", "w2", "w4", "w8",
                       "Accesses(M)"});
    for (const std::string &app : apps) {
        ExperimentSpec spec;
        spec.node.num_cores = 8;
        WorkloadSpec w{.app = app, .target = true};
        w.closed_clients = 12;
        spec.workloads.push_back(std::move(w));
        spec.backend = "EXIST";
        spec.session.period = scaledSeconds(0.3);
        spec.warmup = secondsToCycles(0.08);
        spec.decode = true;
        ExperimentResult r = Testbed::run(spec);

        AppProfile profile = AppCatalog::find(app);
        double insns = 0;
        for (std::uint64_t v : r.decoded_function_insns)
            insns += static_cast<double>(v);
        double accesses =
            insns * profile.mem_access_per_kinsn / 1000.0;
        double ro = accesses * profile.read_only_ratio;
        double wo = accesses * profile.write_only_ratio;
        double rw = accesses - ro - wo;

        auto rowFor = [&](const char *type, double count,
                          const WidthMix &mix) {
            table.row({app, type, TableWriter::pct(mix[0], 0),
                       TableWriter::pct(mix[1], 0),
                       TableWriter::pct(mix[2], 0),
                       TableWriter::pct(mix[3], 0),
                       TableWriter::num(count / 1e6, 1)});
        };
        rowFor("RO", ro, profile.width_ro);
        rowFor("WO", wo, profile.width_wo);
        rowFor("RW", rw, profile.width_rw);
    }
    table.print();
    std::printf("\nPaper shape: ML-based applications show markedly "
                "higher 8-byte access ratios (25-70%%).\n");
    return 0;
}
