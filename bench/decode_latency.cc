/**
 * @file
 * Trace-end-to-report-ready latency: batch ParallelDecoder vs the
 * streaming decode pipeline. Both modes run the identical seeded
 * session (same node, workload, period), so they collect identical
 * trace bytes; the only difference is *when* flow reconstruction
 * happens. Batch starts decoding after the session stops; streaming
 * reconstructs each ToPA region as it fills, so at trace end only the
 * stream tails remain. The measured quantity is real wall-clock time
 * from tracing stop to decoded results ready (ExperimentResult
 * report_latency_s) — the simulator's virtual time is untouched by
 * either mode.
 *
 * Verifies on every configuration that the streaming run's decode
 * fields are bit-identical to the batch run's (exit 1 otherwise).
 *
 * Each configuration emits one machine-readable JSON line
 * (prefix "JSON ") so CI can track the trajectory:
 *   JSON {"bench":"decode_latency","mode":"streaming","threads":2,...}
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

/** The decode-derived results two runs must agree on. */
bool
sameReport(const ExperimentResult &a, const ExperimentResult &b)
{
    return a.truth_branches == b.truth_branches &&
           a.decoded_branches == b.decoded_branches &&
           a.decode_errors == b.decode_errors &&
           a.decoded_function_insns == b.decoded_function_insns &&
           a.decoded_function_entries == b.decoded_function_entries &&
           a.truth_function_insns == b.truth_function_insns &&
           a.accuracy_coverage == b.accuracy_coverage &&
           a.accuracy_wall == b.accuracy_wall &&
           a.path_precision == b.path_precision;
}

ExperimentSpec
makeSpec(bool streaming, int threads)
{
    // Same shape as decode_throughput: an 8-core node under service
    // load so every core collects trace bytes worth decoding.
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    WorkloadSpec w{.app = "Search1", .target = true,
                   .closed_clients = 12};
    w.workers = 16;
    spec.workloads.push_back(std::move(w));
    spec.backend = "EXIST";
    spec.session.period = scaledSeconds(0.4);
    spec.warmup = secondsToCycles(0.05);
    spec.decode = true;
    spec.ground_truth = true;
    spec.record_paths = true;
    spec.streaming = streaming;
    spec.decode_threads = threads;
    return spec;
}

}  // namespace

int
main()
{
    printBanner("Decode latency: trace-end to report-ready, batch vs "
                "streaming pipeline");

    // Latency is a one-shot quantity per session; repeat each
    // configuration and keep the best (min) run, the usual convention
    // for latency microbenchmarks.
    const int kReps = 3;

    TableWriter table({"Mode", "Threads", "Latency(ms)", "vs batch",
                       "Identical"});
    bool all_identical = true;

    for (int threads : {1, 2, 8}) {
        ExperimentResult batch;
        double batch_ms = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            ExperimentResult r = Testbed::run(makeSpec(false, threads));
            if (rep == 0 || r.report_latency_s * 1e3 < batch_ms)
                batch_ms = r.report_latency_s * 1e3;
            batch = std::move(r);
        }

        ExperimentResult stream;
        double stream_ms = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            ExperimentResult r = Testbed::run(makeSpec(true, threads));
            if (rep == 0 || r.report_latency_s * 1e3 < stream_ms)
                stream_ms = r.report_latency_s * 1e3;
            stream = std::move(r);
        }

        bool identical = sameReport(batch, stream) && stream.streamed &&
                         !batch.streamed;
        all_identical = all_identical && identical;
        double ratio = stream_ms > 0 ? batch_ms / stream_ms : 0.0;

        table.row({"batch", std::to_string(threads),
                   TableWriter::num(batch_ms), "1.00", "ref"});
        table.row({"streaming", std::to_string(threads),
                   TableWriter::num(stream_ms),
                   TableWriter::num(ratio) + "x",
                   identical ? "yes" : "NO"});
        std::printf("JSON {\"bench\":\"decode_latency\","
                    "\"mode\":\"batch\",\"threads\":%d,"
                    "\"trace_end_to_report_s\":%.6f,"
                    "\"decoded_branches\":%llu,\"identical\":true}\n",
                    threads, batch_ms / 1e3,
                    (unsigned long long)batch.decoded_branches);
        std::printf("JSON {\"bench\":\"decode_latency\","
                    "\"mode\":\"streaming\",\"threads\":%d,"
                    "\"trace_end_to_report_s\":%.6f,"
                    "\"decoded_branches\":%llu,"
                    "\"speedup_vs_batch\":%.3f,\"identical\":%s}\n",
                    threads, stream_ms / 1e3,
                    (unsigned long long)stream.decoded_branches, ratio,
                    identical ? "true" : "false");
    }

    std::printf("\n");
    table.print();
    std::printf("\nstreaming decodes regions while tracing runs, so "
                "only the stream tails remain at trace end\n");
    if (!all_identical) {
        std::fputs("streaming decode diverged from batch!\n", stderr);
        return 1;
    }
    return 0;
}
