/**
 * @file
 * Collection-plane throughput: ship one decoded session's payload
 * from a node agent to the master ingest over the simulated fabric,
 * swept across loss rates {0, 0.01, 0.05, 0.10} (with reordering and
 * a small duplicate rate at every point). Reports wall-clock
 * transfers/s, wire bytes vs payload bytes (goodput), retransmits and
 * virtual completion time, and verifies on every transfer that the
 * re-applied result is byte-identical to the in-process baseline —
 * the repo's headline invariant extended over the wire.
 *
 * Besides the human-readable table, each loss rate emits one
 * machine-readable JSON line (prefix "JSON ") so CI can track the
 * trajectory via tools/bench_trends.py --set net:
 *   JSON {"bench":"collect_throughput","loss":0.05,...}
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/collection.h"
#include "cluster/session_payload.h"
#include "util/rng.h"
#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

ExperimentSpec
sessionSpec()
{
    ExperimentSpec spec = computeSpec("Cache", "EXIST", 0.3);
    spec.decode = true;
    spec.ground_truth = true;
    spec.keep_traces = true;
    spec.seed = 11;
    return spec;
}

bool
resultsIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    if (a.decoded_branches != b.decoded_branches ||
        a.accuracy_wall != b.accuracy_wall ||
        a.decoded_function_insns != b.decoded_function_insns ||
        a.decoded_function_entries != b.decoded_function_entries ||
        a.truth_function_insns != b.truth_function_insns ||
        a.raw_traces.size() != b.raw_traces.size())
        return false;
    for (std::size_t i = 0; i < a.raw_traces.size(); ++i)
        if (a.raw_traces[i].core != b.raw_traces[i].core ||
            a.raw_traces[i].thread != b.raw_traces[i].thread ||
            a.raw_traces[i].bytes != b.raw_traces[i].bytes)
            return false;
    return true;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int
main()
{
    printBanner("Collection-plane throughput: agent -> fabric -> "
                "ingest across loss rates");

    // One decoded session, reused as the payload for every transfer.
    // A single smoke session serializes to well under one batch, so
    // pad it with deterministic synthetic trace bytes up to a
    // datacenter-session size — the transport treats payload bytes as
    // opaque, and a multi-batch transfer is what exercises windows,
    // credit and retransmission.
    ExperimentResult baseline = Testbed::run(sessionSpec());
    std::uint64_t target_bytes = static_cast<std::uint64_t>(
        256.0 * 1024.0 * periodScale());
    if (target_bytes < 64 * 1024)
        target_bytes = 64 * 1024;
    Rng pad_rng(42);
    while (SessionPayload::fromResult(baseline, "Cache")
               .encode()
               .size() < target_bytes) {
        CollectedTrace t;
        t.core = static_cast<CoreId>(baseline.raw_traces.size() % 4);
        t.bytes.resize(16 * 1024);
        for (auto &b : t.bytes)
            b = static_cast<std::uint8_t>(pad_rng.next());
        baseline.raw_traces.push_back(std::move(t));
    }
    std::uint64_t payload_bytes =
        SessionPayload::fromResult(baseline, "Cache").encode().size();

    int iters = static_cast<int>(20.0 * periodScale() + 0.5);
    if (iters < 2)
        iters = 2;
    std::printf("payload: %.1f KB serialized (%zu raw traces), "
                "%d transfers per loss rate (scale %.2f)\n\n",
                payload_bytes / 1024.0, baseline.raw_traces.size(),
                iters, periodScale());

    TableWriter table({"Loss", "Transfers/s", "Wire(KB)", "Goodput",
                       "Retransmits", "Virtual(ms)", "Identical"});
    bool all_identical = true;

    for (double loss : {0.0, 0.01, 0.05, 0.10}) {
        net::NetSpec spec;
        spec.enabled = true;
        spec.drop_rate = loss;
        spec.reorder_rate = 0.1;
        spec.duplicate_rate = 0.01;

        std::uint64_t wire_bytes = 0, retransmits = 0, degraded = 0;
        double virtual_ms = 0.0;
        bool identical = true;
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) {
            ExperimentResult r = baseline;
            CollectionOutcome co = collectSessionResult(
                r, spec, collectSeed(2024, static_cast<std::uint64_t>(i)),
                "Cache", nullptr);
            wire_bytes += co.fabric.bytes_on_wire;
            retransmits += co.agents.retransmits;
            degraded += co.degraded;
            if (!co.fabric.delivery_us.empty())
                virtual_ms +=
                    co.fabric.delivery_us.back() / 1000.0 / iters;
            identical = identical && resultsIdentical(r, baseline);
        }
        double s = secondsSince(t0);
        double tps = iters / s;
        double goodput =
            wire_bytes > 0
                ? static_cast<double>(payload_bytes) * iters /
                      static_cast<double>(wire_bytes)
                : 0.0;
        all_identical = all_identical && identical && degraded == 0;

        table.row({TableWriter::pct(loss), TableWriter::num(tps),
                   TableWriter::num(wire_bytes / 1024.0 / iters),
                   TableWriter::pct(goodput),
                   std::to_string(retransmits),
                   TableWriter::num(virtual_ms),
                   identical && degraded == 0 ? "yes" : "NO"});
        std::printf("JSON {\"bench\":\"collect_throughput\","
                    "\"loss\":%.2f,\"transfers\":%d,\"seconds\":%.6f,"
                    "\"transfers_per_sec\":%.3f,\"payload_bytes\":%llu,"
                    "\"wire_bytes\":%llu,\"goodput\":%.4f,"
                    "\"retransmits\":%llu,\"virtual_ms\":%.3f,"
                    "\"degraded\":%llu,\"identical\":%s}\n",
                    loss, iters, s, tps,
                    (unsigned long long)payload_bytes,
                    (unsigned long long)(wire_bytes / iters), goodput,
                    (unsigned long long)retransmits, virtual_ms,
                    (unsigned long long)degraded,
                    identical ? "true" : "false");
    }

    std::printf("\n");
    table.print();
    std::printf("\nwire bytes grow with loss (retransmits); the "
                "re-applied result stays byte-identical at every "
                "rate the retry budget covers\n");
    if (!all_identical) {
        std::fputs("collection diverged from in-process delivery!\n",
                   stderr);
        return 1;
    }
    return 0;
}
