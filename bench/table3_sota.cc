/**
 * @file
 * Table 3: time-efficiency comparison with state-of-the-art schemes.
 * EXIST's average and worst overheads are measured on the compute and
 * online suites in this repo; the SOTA columns reproduce the numbers
 * those papers report (the paper compares against published results,
 * since those systems are not publicly reproducible).
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Table 3: time efficiency vs SOTA (avg / worst "
                "overhead)");

    // Measure EXIST on the compute suite...
    const std::vector<std::string> compute = {"pb", "gcc", "mcf", "om",
                                              "xa", "x264", "de", "le",
                                              "ex", "xz"};
    double csum = 0, cworst = 0;
    for (const std::string &app : compute) {
        auto cmp = Testbed::compare(computeSpec(app, "EXIST", 0.25));
        double ovh = cmp.slowdownOf(app) - 1.0;
        csum += ovh;
        cworst = std::max(cworst, ovh);
    }
    double cavg = csum / static_cast<double>(compute.size());

    // ...and on the online suite.
    const std::vector<std::string> online = {"mc", "ng", "ms"};
    double osum = 0, oworst = 0;
    for (const std::string &app : online) {
        auto cmp = Testbed::compare(onlineSpec(app, "EXIST"));
        double ovh = 1.0 - cmp.throughputRatio(app);
        osum += ovh;
        oworst = std::max(oworst, ovh);
    }
    double oavg = osum / static_cast<double>(online.size());

    struct Sota {
        const char *scheme;
        const char *kind;
        const char *avg;
        const char *worst;
    };
    const Sota sota[] = {
        {"REPT [28]", "hw,online", "5.35%", "9.68%"},
        {"FlowGuard [60]", "hw,compute", "3.79%", "30%"},
        {"Upgradvisor [21]", "hw,compute", "6.4%", "16%"},
        {"JPortal [102]", "hw,online", "11.3%", "16.5%"},
        {"Log20 [98]", "instr,online", "-0.2%", "0.9%"},
        {"Hubble [68]", "instr,compute", "5%", "25%"},
        {"DMon [50]", "instr,online", "1.36%", "4.92%"},
        {"Argus [88]", "instr,online", "3.36%", "5%"},
    };

    TableWriter table({"Scheme", "Kind", "Average", "Worst"});
    for (const Sota &s : sota)
        table.row({s.scheme, s.kind, s.avg, s.worst});
    table.row({"EXIST (this repo)", "compute",
               TableWriter::pct(cavg, 2), TableWriter::pct(cworst, 2)});
    table.row({"EXIST (this repo)", "online", TableWriter::pct(oavg, 2),
               TableWriter::pct(oworst, 2)});
    table.print();
    std::printf("\nPaper targets: EXIST 0.9%% avg / 1.5%% worst on "
                "compute; 1.1%% avg / 1.6%% worst on online.\n");
    return 0;
}
