/**
 * @file
 * Figure 4 (motivation): software events (context switches, CPU
 * migrations, kernel time) and hardware events (branch misses, L1
 * misses, LLC misses) with and without hardware tracing, at three
 * co-location densities: exclusive om; om+xz; om+xz+mysql. The paper
 * finds context switches grow strongly with density, tracing control at
 * every switch drives the overhead up, and tracing itself only adds
 * ~1.3% LLC misses.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

ExperimentSpec
densitySpec(int density, const char *backend)
{
    // All pods share the same two cores, like the paper's co-located
    // setup: overcommit is what drives the context-switch growth.
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    spec.workloads.push_back(WorkloadSpec{
        .app = "om", .cores = {0, 1}, .target = true});
    if (density >= 2) {
        WorkloadSpec b{.app = "xz", .cores = {0, 1}};
        b.workers = 2;
        spec.workloads.push_back(std::move(b));
    }
    if (density >= 3) {
        WorkloadSpec c{.app = "ms", .cores = {0, 1},
                       .closed_clients = 8};
        c.workers = 4;
        spec.workloads.push_back(std::move(c));
    }
    spec.backend = backend;
    spec.session.period = scaledSeconds(0.3);
    spec.warmup = secondsToCycles(0.05);
    return spec;
}

}  // namespace

int
main()
{
    printBanner("Figure 4: software/hardware events vs co-location "
                "density, with and without tracing (NHT)");

    TableWriter table({"Scenario", "CtxSwitch/s", "Migr/s",
                       "KernelTime(%)", "BrMiss/Ginsn(M)",
                       "L1Miss/Ginsn(M)", "LLCMiss/Ginsn(M)"});

    const char *names[] = {"Exclusive A", "Shared A with B",
                           "Shared A with B and C"};
    double llc_base = 0, llc_traced = 0;
    for (int density = 1; density <= 3; ++density) {
        for (const char *backend : {"Oracle", "NHT"}) {
            ExperimentResult r =
                Testbed::run(densitySpec(density, backend));
            std::uint64_t switches = 0, migrations = 0;
            double bm = 0, l1 = 0, llc = 0, insns = 0;
            Cycles kernel = r.node_kernel_cycles;
            for (const auto &a : r.apps) {
                switches += a.context_switches;
                migrations += a.migrations;
                bm += a.branch_misses;
                l1 += a.l1_misses;
                llc += a.llc_misses;
                insns += static_cast<double>(a.insns);
            }
            double seconds = cyclesToSeconds(r.window);
            double ginsns = insns / 1e9;
            if (density == 3) {
                if (std::string(backend) == "Oracle")
                    llc_base = llc / ginsns;
                else
                    llc_traced = llc / ginsns;
            }
            table.row(
                {std::string(names[density - 1]) +
                     (std::string(backend) == "Oracle" ? " w/o tracing"
                                                       : " w/ tracing"),
                 TableWriter::num(switches / seconds, 0),
                 TableWriter::num(migrations / seconds, 0),
                 TableWriter::pct(
                     static_cast<double>(kernel) /
                         (static_cast<double>(r.window) * 2),
                     2),
                 TableWriter::num(bm / ginsns / 1e6, 1),
                 TableWriter::num(l1 / ginsns / 1e6, 1),
                 TableWriter::num(llc / ginsns / 1e6, 2)});
        }
    }
    table.print();
    if (llc_base > 0)
        std::printf("\nLLC-miss increase from tracing at full density: "
                    "%.1f%% (paper: ~1.3%%)\n",
                    (llc_traced / llc_base - 1.0) * 100.0);
    return 0;
}
