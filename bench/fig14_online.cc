/**
 * @file
 * Figure 14: normalized throughput of the online benchmarks
 * (Memcached under memtier, Nginx under ab, MySQL under sysbench —
 * ten concurrent closed-loop clients each) under the four schemes.
 * The paper reports EXIST reducing tracing overhead by 6.4x/7.3x/12.2x
 * vs StaSam/eBPF/NHT, with EXIST around 1.1% overhead.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 14: normalized throughput on online benchmarks");

    const std::vector<std::string> apps = {"mc", "ng", "ms"};
    const std::vector<std::string> schemes = {"EXIST", "StaSam", "eBPF",
                                              "NHT"};

    TableWriter table({"App", "Oracle", "EXIST", "StaSam", "eBPF",
                       "NHT"});
    std::vector<double> sums(schemes.size(), 0.0);

    for (const std::string &app : apps) {
        std::vector<std::string> row = {app, "1.000"};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            ExperimentSpec spec = onlineSpec(app, schemes[s]);
            auto cmp = Testbed::compare(spec);
            double ratio = cmp.throughputRatio(app);
            sums[s] += ratio;
            row.push_back(TableWriter::num(ratio, 3));
        }
        table.row(std::move(row));
    }

    std::vector<std::string> avg_row = {"Avg.", "1.000"};
    std::vector<double> avgs;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        double avg = sums[s] / static_cast<double>(apps.size());
        avgs.push_back(avg);
        avg_row.push_back(TableWriter::num(avg, 3));
    }
    table.row(std::move(avg_row));
    table.print();

    double exist_loss = 1.0 - avgs[0];
    std::printf("\nEXIST average throughput overhead: %.2f%%\n",
                exist_loss * 100);
    const char *names[] = {"StaSam", "eBPF", "NHT"};
    for (int s = 1; s <= 3; ++s) {
        double factor =
            exist_loss > 0
                ? (1.0 - avgs[static_cast<std::size_t>(s)]) / exist_loss
                : 0.0;
        std::printf("EXIST overhead reduction vs %-6s: %.1fx "
                    "(paper: %s)\n",
                    names[s - 1], factor,
                    s == 1 ? "6.4x" : (s == 2 ? "7.3x" : "12.2x"));
    }
    return 0;
}
