/**
 * @file
 * Figure 8: CDF of sched_switch periods on a realistic shared node —
 * all context switches, grouped by core, and grouped by process. The
 * paper's observation: most cores/threads switch in under 1 ms, so
 * per-switch tracing control means ~1000x more MSR operations than a
 * seconds-scale control period; a few processes switch much more
 * rarely, so the all-switch CDF dominates the grouped ones.
 */
#include <cstdio>
#include <algorithm>
#include <map>
#include <vector>

#include "common.h"
#include "os/kernel.h"
#include "os/loadgen.h"
#include "os/service.h"
#include "util/stats.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 8: CDF of context-switch periods (ms)");

    // A shared node: two services under load plus compute co-runners.
    NodeConfig nc;
    nc.num_cores = 8;
    nc.seed = 11;
    Kernel kernel(nc);

    std::vector<std::unique_ptr<Service>> services;
    std::vector<std::unique_ptr<ClosedLoopLoadGen>> gens;
    auto addService = [&](const char *app, int clients) {
        auto bin = Testbed::binaryForApp(app);
        Process *p = kernel.createProcess(app, bin, {});
        services.push_back(std::make_unique<Service>(
            &kernel, p, static_cast<std::uint64_t>(1000 + clients)));
        services.back()->spawnWorkers(bin->profile().num_threads);
        gens.push_back(std::make_unique<ClosedLoopLoadGen>(
            &kernel, services.back().get(), clients,
            static_cast<std::uint64_t>(77 + clients)));
        gens.back()->start();
    };
    addService("mc", 8);
    addService("ms", 6);
    for (const char *app : {"om", "xz"}) {
        Process *p =
            kernel.createProcess(app, Testbed::binaryForApp(app), {});
        for (int i = 0; i < p->profile().num_threads; ++i)
            kernel.startThread(kernel.createThread(p, nullptr));
    }

    kernel.runFor(secondsToCycles(0.1));
    kernel.armSwitchLog(kInvalidId);  // all pids
    kernel.runFor(scaledSeconds(1.0));
    std::vector<SwitchRecord> log = kernel.takeSwitchLog();
    // Per-core execution cursors may append slightly out of global
    // order; sort by timestamp like trace post-processing would.
    std::sort(log.begin(), log.end(),
              [](const SwitchRecord &a, const SwitchRecord &b) {
                  return a.timestamp < b.timestamp;
              });

    // Periods between consecutive switch-in events: overall, per core,
    // per process.
    std::vector<double> all, by_core, by_proc;
    std::uint64_t last_any = 0;
    std::map<int, std::uint64_t> last_core, last_proc;
    for (const SwitchRecord &r : log) {
        if (r.op != 1)
            continue;
        if (last_any)
            all.push_back(cyclesToMs(r.timestamp - last_any));
        last_any = r.timestamp;
        if (auto it = last_core.find(r.cpu); it != last_core.end())
            by_core.push_back(cyclesToMs(r.timestamp - it->second));
        last_core[r.cpu] = r.timestamp;
        if (auto it = last_proc.find(r.pid); it != last_proc.end())
            by_proc.push_back(cyclesToMs(r.timestamp - it->second));
        last_proc[r.pid] = r.timestamp;
    }

    Cdf cdf_all(all), cdf_core(by_core), cdf_proc(by_proc);
    TableWriter table({"Period(ms)", "AllSwitches", "ByCore",
                       "ByProcess"});
    for (double x : {0.01, 0.1, 0.5, 1.0, 10.0, 100.0}) {
        table.row({TableWriter::num(x, 2),
                   TableWriter::num(cdf_all.at(x), 3),
                   TableWriter::num(cdf_core.at(x), 3),
                   TableWriter::num(cdf_proc.at(x), 3)});
    }
    table.print();
    std::printf("\nTotal switches: %zu; switch rate: %.0f /s\n",
                log.size() / 2,
                static_cast<double>(all.size()) / periodScale());
    std::printf("Paper shape: most mass below 1 ms -> per-switch MSR "
                "control is ~1000x a seconds-scale control period; the "
                "all-switch CDF lies above the grouped ones.\n");
    return 0;
}
