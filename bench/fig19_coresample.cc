/**
 * @file
 * Figure 19: impact of UMA's core-sampling mechanism on CPU-share
 * Search2. Sweeping the sampled fraction of the mapped core set
 * (30/50/80/100%) across tracing periods: accuracy barely moves, while
 * space shrinks with fewer (bigger-buffered) cores — because the target
 * actually runs on few cores, so tracing fewer cores with bigger
 * buffers is the better trade.
 */
#include <cstdio>
#include <vector>

#include "common.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 19: impact of the UMA core sampling ratio "
                "(CPU-share Search2)");

    const std::vector<double> ratios = {0.3, 0.5, 0.8, 1.0};
    const std::vector<double> periods = {0.1, 0.5, 1.0};

    TableWriter table({"Period(s)", "Ratio", "TracedCores", "Accuracy",
                       "SpaceRatio", "FuncRatio"});
    for (double period : periods) {
        double space_full = 0;
        std::vector<std::vector<std::string>> rows;
        for (double ratio : ratios) {
            ExperimentSpec spec;
            spec.node.num_cores = 16;
            WorkloadSpec w{.app = "Search2", .target = true};
            w.closed_clients = 12;
            spec.workloads.push_back(std::move(w));
            spec.workloads.push_back(WorkloadSpec{.app = "xz"});
            spec.backend = "EXIST";
            spec.session.period = scaledSeconds(period);
            spec.session.core_sample_ratio = ratio;
            spec.session.budget_mb = 96;
            spec.warmup = secondsToCycles(0.08);
            spec.decode = true;

            ExperimentResult r = Testbed::run(spec);
            double space =
                static_cast<double>(r.backend_stats.trace_real_bytes);
            if (ratio == 1.0)
                space_full = space;

            std::size_t truth_funcs = 0, decoded_funcs = 0;
            for (std::size_t f = 0;
                 f < r.truth_function_insns.size(); ++f) {
                if (r.truth_function_insns[f] > 0) {
                    ++truth_funcs;
                    if (f < r.decoded_function_insns.size() &&
                        r.decoded_function_insns[f] > 0)
                        ++decoded_funcs;
                }
            }
            rows.push_back(
                {TableWriter::num(period, 1),
                 TableWriter::pct(ratio, 0),
                 std::to_string(r.backend_stats.traced_cores),
                 TableWriter::pct(r.accuracy_wall, 1),
                 TableWriter::num(space, 0),
                 TableWriter::pct(
                     truth_funcs
                         ? static_cast<double>(decoded_funcs) /
                               static_cast<double>(truth_funcs)
                         : 1.0,
                     1)});
        }
        for (auto &row : rows) {
            double space = std::stod(row[4]);
            row[4] = TableWriter::pct(
                space_full > 0 ? space / space_full : 1.0, 0);
            table.row(std::move(row));
        }
    }
    table.print();
    std::printf("\nPaper shape: accuracy is largely insensitive to the "
                "sampling ratio, but the mechanism strongly affects "
                "space: the sampled 30%% of cores covers all executed "
                "cores and traces MORE useful data with its bigger "
                "per-core buffers (paper Fig. 19 discussion).\n");
    return 0;
}
