/**
 * @file
 * Figure 13: normalized execution slowdown of the ten SPEC CPU 2017
 * Integer stand-ins under EXIST, StaSam, eBPF and NHT, plus the average
 * and EXIST's improvement factors over each baseline. Closer to Oracle
 * (1.0) is better; the paper reports EXIST in 0.4-1.5% with 3.5x/4.4x/
 * 6.6x average improvements.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 13: normalized slowdown on SPEC-like compute "
                "benchmarks");

    const std::vector<std::string> apps = {"pb", "gcc", "mcf", "om",
                                           "xa", "x264", "de", "le",
                                           "ex", "xz"};
    const std::vector<std::string> schemes = {"EXIST", "StaSam", "eBPF",
                                              "NHT"};

    TableWriter table({"App", "Oracle", "EXIST", "StaSam", "eBPF",
                       "NHT"});
    std::vector<double> sums(schemes.size(), 0.0);

    for (const std::string &app : apps) {
        std::vector<std::string> row = {app, "1.000"};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            ExperimentSpec spec = computeSpec(app, schemes[s]);
            auto cmp = Testbed::compare(spec);
            double slowdown = cmp.slowdownOf(app);
            sums[s] += slowdown;
            row.push_back(TableWriter::num(slowdown, 3));
        }
        table.row(std::move(row));
    }

    std::vector<std::string> avg_row = {"Avg.", "1.000"};
    std::vector<double> avgs;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        double avg = sums[s] / static_cast<double>(apps.size());
        avgs.push_back(avg);
        avg_row.push_back(TableWriter::num(avg, 3));
    }
    table.row(std::move(avg_row));
    table.print();

    double exist_over = avgs[0] - 1.0;
    std::printf("\nEXIST average overhead: %.2f%%\n", exist_over * 100);
    const char *names[] = {"StaSam", "eBPF", "NHT"};
    for (int s = 1; s <= 3; ++s) {
        double factor = exist_over > 0
                            ? (avgs[static_cast<std::size_t>(s)] - 1.0) /
                                  exist_over
                            : 0.0;
        std::printf("EXIST overhead reduction vs %-6s: %.1fx "
                    "(paper: %s)\n",
                    names[s - 1], factor,
                    s == 1 ? "3.5x" : (s == 2 ? "4.4x" : "6.6x"));
    }
    return 0;
}
