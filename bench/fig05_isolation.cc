/**
 * @file
 * Figure 5 (motivation): isolating which shared hardware resource the
 * tracing overhead comes from. MySQL's throughput is measured with and
 * without tracing while sharing (a) nothing, (b) an SMT sibling,
 * (c) a timeshared core, (d) only the LLC. The paper finds no single
 * resource dominates: HT/core/LLC sharing add ~1.4/1.5/1.0% each.
 */
#include <cstdio>

#include "common.h"

using namespace exist;
using namespace exist::bench;

namespace {

struct Scenario {
    const char *name;
    bool smt;
    std::vector<CoreId> ms_cores;
    std::vector<CoreId> bg_cores;
};

double
throughput(const Scenario &sc, const char *backend)
{
    ExperimentSpec spec;
    spec.node.num_cores = 4;
    spec.node.smt = sc.smt;
    WorkloadSpec ms{.app = "ms", .cores = sc.ms_cores, .target = true};
    ms.closed_clients = 8;
    ms.workers = 2;
    spec.workloads.push_back(std::move(ms));
    if (!sc.bg_cores.empty()) {
        WorkloadSpec bg{.app = "xz", .cores = sc.bg_cores};
        bg.workers = 2;
        spec.workloads.push_back(std::move(bg));
    }
    spec.backend = backend;
    spec.session.period = scaledSeconds(0.4);
    spec.warmup = secondsToCycles(0.08);
    ExperimentResult r = Testbed::run(spec);
    return static_cast<double>(r.at("ms").completed);
}

}  // namespace

int
main()
{
    printBanner("Figure 5: throughput slowdown isolating shared "
                "resources (MySQL, X vs X+Tracing)");

    // Scenarios: Exclusive = ms alone on cores 0,1; Share HT = bg on
    // the SMT siblings (2,3 are siblings of... pairs are (0,1),(2,3)),
    // so ms on 0,2 and bg on 1,3 shares physical cores; Share Core =
    // both timeshare cores 0,1; Share LLC = disjoint cores, same LLC.
    std::vector<Scenario> scenarios = {
        {"Exclusive", false, {0, 1}, {}},
        {"Share HT", true, {0, 2}, {1, 3}},
        {"Share Core", false, {0, 1}, {0, 1}},
        {"Share LLC", false, {0, 1}, {2, 3}},
    };

    TableWriter table({"Scenario", "Baseline", "X+T(normalized)",
                       "Tracing slowdown"});
    double exclusive_base = 0;
    for (const Scenario &sc : scenarios) {
        double base = throughput(sc, "Oracle");
        double traced = throughput(sc, "NHT");
        if (exclusive_base == 0)
            exclusive_base = base;
        table.row({sc.name,
                   TableWriter::num(base / exclusive_base, 3),
                   TableWriter::num(traced / exclusive_base, 3),
                   TableWriter::pct(1.0 - traced / base, 1)});
    }
    table.print();
    std::printf("\nPaper shape: no single resource dominates the "
                "tracing overhead (each contributes ~1-1.5%%).\n");
    return 0;
}
