/**
 * @file
 * Figure 21 (case study): execution-time shares of costly functions in
 * three categories — memory operations, synchronization, kernel
 * operations — for five production applications, reconstructed from
 * EXIST traces by text-matching decoded functions against the symbol
 * table. Paper findings: ML-based apps (Prediction/Matching/Recommend)
 * differ from classical ones; Recommend is heavily multi-threaded, so
 * KERNEL_IRQ and SYNC_MUTEX dominate its panels.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "workload/function_category.h"

using namespace exist;
using namespace exist::bench;

int
main()
{
    printBanner("Figure 21: function-category profiles from decoded "
                "traces (per-panel % of instructions)");

    const std::vector<std::string> apps = {"Search", "Cache",
                                           "Prediction", "Matching",
                                           "Recommend"};

    for (const std::string &app : apps) {
        ExperimentSpec spec;
        spec.node.num_cores = 8;
        WorkloadSpec w{.app = app, .target = true};
        w.closed_clients = 12;
        spec.workloads.push_back(std::move(w));
        spec.backend = "EXIST";
        spec.session.period = scaledSeconds(0.4);
        spec.warmup = secondsToCycles(0.08);
        spec.decode = true;
        ExperimentResult r = Testbed::run(spec);

        // Aggregate decoded per-function instruction counts into the
        // category taxonomy via the symbol table.
        auto binary = Testbed::binaryForApp(app);
        std::vector<double> by_cat(kNumFunctionCategories, 0.0);
        for (std::size_t f = 0; f < r.decoded_function_insns.size();
             ++f) {
            by_cat[static_cast<std::size_t>(
                binary->function(static_cast<std::uint32_t>(f))
                    .category)] +=
                static_cast<double>(r.decoded_function_insns[f]);
        }

        auto panel = [&](const char *title, FunctionCategory lo,
                         FunctionCategory hi) {
            double total = 0;
            for (auto c = static_cast<std::size_t>(lo);
                 c <= static_cast<std::size_t>(hi); ++c)
                total += by_cat[c];
            std::printf("  %-22s", title);
            for (auto c = static_cast<std::size_t>(lo);
                 c <= static_cast<std::size_t>(hi); ++c) {
                std::printf(" %s=%2.0f%%",
                            functionCategoryName(
                                static_cast<FunctionCategory>(c)),
                            total > 0 ? 100 * by_cat[c] / total : 0.0);
            }
            std::printf("\n");
        };

        std::printf("%s (accuracy %.1f%%):\n", app.c_str(),
                    100 * r.accuracy_wall);
        panel("(a) Memory ops:", FunctionCategory::kMemJe,
              FunctionCategory::kMemMove);
        panel("(b) Synchronization:", FunctionCategory::kSyncAtomic,
              FunctionCategory::kSyncCas);
        panel("(c) Kernel ops:", FunctionCategory::kKernelSche,
              FunctionCategory::kKernelNet);
    }
    std::printf("\nPaper shape: Recommend shows elevated KERNEL_IRQ "
                "followed by SYNC_MUTEX (rescheduling interrupts + "
                "mutex convoys in a heavily multi-threaded service).\n");
    return 0;
}
