/**
 * @file
 * Property/fuzz tests: randomized inputs against invariants that must
 * hold for any input — byte conservation in ToPA, parser termination
 * on arbitrary bytes, writer/parser agreement on random packet
 * sequences, CRD manifest round-trips, and the durability plane's
 * loud-failure contract: a corrupted WAL or snapshot (bit flips,
 * torn tails, duplicated segments) must either recover to a
 * byte-identical id-order prefix of the golden log or fail with an
 * explicit error — never crash, never silently diverge.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "cluster/crd.h"
#include "decode/packet_parser.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "hwtrace/packet_writer.h"
#include "hwtrace/topa.h"
#include "net/frame.h"
#include "util/rng.h"

namespace exist {
namespace {

TEST(Fuzz, TopaConservesBytesUnderRandomWrites)
{
    Rng rng(101);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<TopaEntry> entries;
        int nregions = 1 + static_cast<int>(rng.uniformInt(4));
        for (int i = 0; i < nregions; ++i)
            entries.push_back(TopaEntry{
                16 + rng.uniformInt(256),
                /*stop=*/i == nregions - 1 && rng.bernoulli(0.5),
                /*intr=*/rng.bernoulli(0.3)});
        bool ring = !entries.back().stop && rng.bernoulli(0.7);
        if (!entries.back().stop && !ring)
            entries.back().stop = true;

        TopaBuffer buf;
        buf.configure(entries, ring);
        std::uint64_t sent = 0;
        std::uint8_t chunk[64];
        for (int w = 0; w < 40; ++w) {
            std::uint64_t n = 1 + rng.uniformInt(sizeof(chunk));
            TopaWriteResult r = buf.write(chunk, n);
            sent += n;
            ASSERT_EQ(r.accepted + r.dropped, n);
        }
        ASSERT_EQ(buf.bytesAccepted() + buf.bytesDropped(), sent);
        if (!ring)
            ASSERT_LE(buf.bytesAccepted(), buf.capacity());
    }
}

TEST(Fuzz, ParserTerminatesOnArbitraryBytes)
{
    Rng rng(202);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint8_t> junk(
            1 + rng.uniformInt(4096));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next());
        PacketParser parser(junk.data(), junk.size());
        Packet pkt;
        std::size_t guard = 0;
        std::size_t last_off = 0;
        while (parser.next(pkt)) {
            // Progress: the offset must strictly advance.
            ASSERT_GT(parser.offset(), last_off);
            last_off = parser.offset();
            ASSERT_LT(++guard, junk.size() + 16);
        }
    }
}

TEST(Fuzz, WriterParserAgreeOnRandomSequences)
{
    Rng rng(303);
    for (int trial = 0; trial < 20; ++trial) {
        TopaBuffer buf;
        buf.configure({TopaEntry{1 << 20, true, false}}, false);
        PacketWriter writer(&buf);
        writer.resetState(0);

        struct Expect {
            int kind;  // 0 tnt-bit, 1 tip, 2 pge, 3 pgd
            std::uint64_t value;
        };
        std::vector<Expect> script;
        Cycles now = 0;
        std::uint64_t ip = 0x400000;
        bool on = false;
        for (int i = 0; i < 3000; ++i) {
            now += 1 + rng.uniformInt(500);
            double u = rng.uniform();
            if (!on || u < 0.1) {
                ip = 0x400000 + rng.uniformInt(1 << 20) * 4;
                writer.pge(ip, now);
                script.push_back({2, ip});
                on = true;
            } else if (u < 0.75) {
                bool taken = rng.bernoulli(0.6);
                writer.tnt(taken, now);
                script.push_back({0, taken ? 1u : 0u});
            } else if (u < 0.95) {
                ip = 0x400000 + rng.uniformInt(1 << 20) * 4;
                writer.tip(ip, now);
                script.push_back({1, ip});
            } else {
                writer.pgd(now);
                script.push_back({3, 0});
                on = false;
            }
        }
        writer.flushTnt(now);

        // Parse back; TNT bits may arrive later than TIPs (deferred
        // TNT), so compare per-kind streams.
        std::vector<std::uint64_t> want_tips, got_tips;
        std::vector<int> want_bits, got_bits;
        int want_pge = 0, got_pge = 0, want_pgd = 0, got_pgd = 0;
        for (const Expect &e : script) {
            switch (e.kind) {
              case 0: want_bits.push_back(static_cast<int>(e.value));
                      break;
              case 1: want_tips.push_back(e.value); break;
              case 2: ++want_pge; break;
              case 3: ++want_pgd; break;
            }
        }
        PacketParser parser(buf.data().data(), buf.bytesAccepted());
        Packet pkt;
        while (parser.next(pkt)) {
            switch (pkt.op) {
              case PacketOp::kTnt6:
                for (int i = 0; i < pkt.tnt_count; ++i)
                    got_bits.push_back((pkt.tnt_bits >> i) & 1);
                break;
              case PacketOp::kTip:
                got_tips.push_back(pkt.value);
                break;
              case PacketOp::kTipPge:
                ++got_pge;
                break;
              case PacketOp::kTipPgd:
                ++got_pgd;
                break;
              default:
                break;
            }
        }
        ASSERT_EQ(got_tips, want_tips);
        ASSERT_EQ(got_bits, want_bits);
        ASSERT_EQ(got_pge, want_pge);
        ASSERT_EQ(got_pgd, want_pgd);
        ASSERT_EQ(parser.resyncCount(), 0u);
    }
}

TEST(Fuzz, FrameRoundTripsRandomPayloads)
{
    Rng rng(505);
    for (int trial = 0; trial < 200; ++trial) {
        net::TraceRegionBatchMsg msg;
        msg.node = static_cast<NodeId>(rng.uniformInt(64));
        msg.stream = rng.uniformInt(1 << 20);
        msg.batch_seq = rng.uniformInt(1 << 16);
        msg.total_batches = msg.batch_seq + 1 + rng.uniformInt(100);
        msg.chunk.resize(rng.uniformInt(4096));
        for (auto &b : msg.chunk)
            b = static_cast<std::uint8_t>(rng.next());

        std::vector<std::uint8_t> wire = net::encodeFrame(msg);
        net::Frame frame;
        std::size_t consumed = 0;
        ASSERT_EQ(net::decodeFrame(wire.data(), wire.size(), &frame,
                                   &consumed),
                  net::DecodeStatus::kOk);
        ASSERT_EQ(consumed, wire.size());
        ASSERT_EQ(frame.type, net::MsgType::kTraceRegionBatch);
        ASSERT_EQ(frame.batch.node, msg.node);
        ASSERT_EQ(frame.batch.stream, msg.stream);
        ASSERT_EQ(frame.batch.batch_seq, msg.batch_seq);
        ASSERT_EQ(frame.batch.total_batches, msg.total_batches);
        ASSERT_EQ(frame.batch.chunk, msg.chunk);
    }
}

TEST(Fuzz, TruncatedFramesReportTruncatedNeverCrash)
{
    Rng rng(606);
    for (int trial = 0; trial < 50; ++trial) {
        net::BehaviorReportMsg msg;
        msg.node = static_cast<NodeId>(rng.uniformInt(8));
        msg.stream = rng.uniformInt(100);
        msg.degraded = rng.bernoulli(0.5);
        msg.summary.assign(rng.uniformInt(512), 's');
        std::vector<std::uint8_t> wire = net::encodeFrame(msg);

        // Every strict prefix must decode as kTruncated with zero
        // bytes consumed — never a crash, never a partial parse.
        std::size_t cut = rng.uniformInt(wire.size());
        net::Frame frame;
        std::size_t consumed = 1;
        ASSERT_EQ(net::decodeFrame(wire.data(), cut, &frame,
                                   &consumed),
                  net::DecodeStatus::kTruncated);
        ASSERT_EQ(consumed, 0u);
    }
}

TEST(Fuzz, CorruptedFramesAreRejected)
{
    Rng rng(707);
    for (int trial = 0; trial < 200; ++trial) {
        net::AckMsg msg;
        msg.node = static_cast<NodeId>(rng.uniformInt(8));
        msg.stream = rng.uniformInt(100);
        msg.batch_seq = rng.uniformInt(1000);
        msg.cumulative = rng.uniformInt(1000);
        msg.window = static_cast<std::uint32_t>(rng.uniformInt(64));
        std::vector<std::uint8_t> wire = net::encodeFrame(msg);

        // Flip one random bit anywhere in the frame: decode must
        // either reject it or (if the flip hit a then-self-consistent
        // header field... it cannot: magic, version, length and
        // checksum all cross-check the payload) — assert rejection.
        std::size_t pos = rng.uniformInt(wire.size());
        wire[pos] ^= static_cast<std::uint8_t>(
            1u << rng.uniformInt(8));
        net::Frame frame;
        std::size_t consumed = 0;
        net::DecodeStatus st =
            net::decodeFrame(wire.data(), wire.size(), &frame,
                             &consumed);
        ASSERT_NE(st, net::DecodeStatus::kOk)
            << "single-bit corruption at byte " << pos
            << " decoded as a valid frame";
        ASSERT_EQ(consumed, 0u);
    }
}

TEST(Fuzz, DecoderTerminatesOnArbitraryFrameBytes)
{
    Rng rng(808);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint8_t> junk(1 + rng.uniformInt(8192));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next());
        // Occasionally splice a real header in front so the length /
        // checksum paths are hit too, not just kBadMagic.
        if (rng.bernoulli(0.5)) {
            net::HeartbeatMsg hb;
            hb.node = 1;
            hb.seq = rng.uniformInt(100);
            std::vector<std::uint8_t> real = net::encodeFrame(hb);
            std::copy(real.begin(),
                      real.begin() +
                          static_cast<std::ptrdiff_t>(std::min(
                              real.size(), junk.size())),
                      junk.begin());
            if (junk.size() > 6)
                junk[6] ^= 0xff;  // corrupt the length prefix
        }
        net::Frame frame;
        std::size_t consumed = 0;
        net::DecodeStatus st = net::decodeFrame(
            junk.data(), junk.size(), &frame, &consumed);
        if (st != net::DecodeStatus::kOk)
            ASSERT_EQ(consumed, 0u);
        else
            ASSERT_LE(consumed, junk.size());
    }
}

TEST(Fuzz, CrdManifestRoundTrips)
{
    Rng rng(404);
    const char *apps[] = {"Search1", "Cache", "mc", "a-b_c.9"};
    for (int trial = 0; trial < 100; ++trial) {
        TraceRequest req;
        req.app = apps[rng.uniformInt(4)];
        req.anomaly = rng.bernoulli(0.5);
        req.budget_mb = 1 + rng.uniformInt(2000);
        req.ring_buffers = rng.bernoulli(0.3);
        if (rng.bernoulli(0.5))
            req.period_override =
                kCyclesPerMs * (1 + rng.uniformInt(2000));
        if (rng.bernoulli(0.4))
            req.core_sample_ratio = 0.1 + 0.9 * rng.uniform();

        TraceRequest again = TraceRequest::parse(req.toManifest());
        EXPECT_EQ(again.app, req.app);
        EXPECT_EQ(again.anomaly, req.anomaly);
        EXPECT_EQ(again.budget_mb, req.budget_mb);
        EXPECT_EQ(again.ring_buffers, req.ring_buffers);
        EXPECT_NEAR(static_cast<double>(again.period_override),
                    static_cast<double>(req.period_override),
                    static_cast<double>(kCyclesPerMs) * 0.01);
        EXPECT_NEAR(again.core_sample_ratio, req.core_sample_ratio,
                    1e-6);
    }
}

// ----------------------------------------------------------------
// Durability-plane corruption fuzz (DESIGN.md §12)
// ----------------------------------------------------------------

namespace fsys = std::filesystem;

fsys::path
fuzzDir(const std::string &tag)
{
    static int counter = 0;
    fsys::path p = fsys::temp_directory_path() /
                   ("exist_fuzz_" + std::to_string(::getpid()) + "_" +
                    tag + "_" + std::to_string(counter++));
    fsys::remove_all(p);
    fsys::create_directories(p);
    return p;
}

std::vector<std::uint8_t>
slurp(const fsys::path &p)
{
    std::ifstream in(p, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
spit(const fsys::path &p, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

void
copyDir(const fsys::path &from, const fsys::path &to)
{
    fsys::remove_all(to);
    fsys::create_directories(to);
    for (const auto &e : fsys::directory_iterator(from))
        fsys::copy_file(e.path(), to / e.path().filename());
}

/** A small multi-segment golden WAL of admit records. */
std::vector<durability::WalRecord>
buildGoldenWal(const fsys::path &dir, int records)
{
    durability::Wal wal(durability::Wal::Config{dir.string(), 96});
    durability::WalRecord meta;
    meta.type = durability::RecordType::kMeta;
    meta.meta.cluster_seed = 3;
    meta.meta.num_nodes = 4;
    meta.meta.cores_per_node = 2;
    meta.meta.deployments = {{"Cache", 3}};
    wal.append(meta);
    for (int i = 1; i < records; ++i) {
        durability::WalRecord rec;
        rec.type = durability::RecordType::kAdmit;
        rec.request_id = static_cast<std::uint64_t>(i);
        rec.manifest = "app=Cache anomaly=true budget_mb=" +
                       std::to_string(64 + i);
        wal.append(rec);
    }
    durability::Wal::ReplayResult golden =
        durability::Wal::replay(dir.string(), 1);
    EXPECT_TRUE(golden.ok) << golden.error;
    EXPECT_EQ(golden.records.size(),
              static_cast<std::size_t>(records));
    return golden.records;
}

/** The invariant every corruption must preserve: replay yields an
 *  exact LSN-order prefix of the golden records, or an explicit
 *  error. */
void
expectPrefixOrLoudError(
    const durability::Wal::ReplayResult &rr,
    const std::vector<durability::WalRecord> &golden)
{
    if (!rr.ok) {
        EXPECT_FALSE(rr.error.empty());
        return;
    }
    ASSERT_LE(rr.records.size(), golden.size());
    for (std::size_t i = 0; i < rr.records.size(); ++i) {
        const durability::WalRecord &got = rr.records[i];
        const durability::WalRecord &want = golden[i];
        ASSERT_EQ(got.lsn, want.lsn);
        ASSERT_EQ(got.type, want.type);
        ASSERT_EQ(got.request_id, want.request_id);
        ASSERT_EQ(got.manifest, want.manifest);
    }
}

TEST(Fuzz, WalBitFlipsRecoverPrefixOrFailLoudly)
{
    fsys::path golden_dir = fuzzDir("walflip_golden");
    std::vector<durability::WalRecord> golden =
        buildGoldenWal(golden_dir, 8);
    std::vector<std::string> segs =
        durability::Wal::listSegments(golden_dir.string());
    ASSERT_GE(segs.size(), 2u);

    Rng rng(505);
    fsys::path work = fuzzDir("walflip_work");
    for (int trial = 0; trial < 60; ++trial) {
        copyDir(golden_dir, work);
        std::vector<std::string> wsegs =
            durability::Wal::listSegments(work.string());
        // Flip 1-3 random bits across random segments.
        int flips = 1 + static_cast<int>(rng.uniformInt(3));
        for (int f = 0; f < flips; ++f) {
            const std::string &seg =
                wsegs[rng.uniformInt(wsegs.size())];
            std::vector<std::uint8_t> bytes(slurp(seg));
            ASSERT_FALSE(bytes.empty());
            std::uint64_t at = rng.uniformInt(bytes.size());
            bytes[at] ^= static_cast<std::uint8_t>(
                1u << rng.uniformInt(8));
            spit(seg, bytes);
        }
        expectPrefixOrLoudError(
            durability::Wal::replay(work.string(), 1), golden);
    }
    fsys::remove_all(golden_dir);
    fsys::remove_all(work);
}

TEST(Fuzz, WalTornTailsRecoverPrefixOrFailLoudly)
{
    fsys::path golden_dir = fuzzDir("waltorn_golden");
    std::vector<durability::WalRecord> golden =
        buildGoldenWal(golden_dir, 8);

    Rng rng(606);
    fsys::path work = fuzzDir("waltorn_work");
    for (int trial = 0; trial < 30; ++trial) {
        copyDir(golden_dir, work);
        std::vector<std::string> wsegs =
            durability::Wal::listSegments(work.string());
        // Truncate a random segment at a random length; on the last
        // segment that is a clean torn tail, mid-log it loses
        // records and must fail.
        std::size_t victim = rng.uniformInt(wsegs.size());
        std::uint64_t size = fsys::file_size(wsegs[victim]);
        fsys::resize_file(wsegs[victim], rng.uniformInt(size));

        durability::Wal::ReplayResult rr =
            durability::Wal::replay(work.string(), 1);
        expectPrefixOrLoudError(rr, golden);
        if (victim + 1 < wsegs.size())
            EXPECT_FALSE(rr.ok) << "mid-log truncation must be loud";
    }
    fsys::remove_all(golden_dir);
    fsys::remove_all(work);
}

TEST(Fuzz, WalDuplicatedSegmentsNeverSilentlyDiverge)
{
    fsys::path golden_dir = fuzzDir("waldup_golden");
    std::vector<durability::WalRecord> golden =
        buildGoldenWal(golden_dir, 8);

    Rng rng(707);
    fsys::path work = fuzzDir("waldup_work");
    for (int trial = 0; trial < 20; ++trial) {
        copyDir(golden_dir, work);
        std::vector<std::string> wsegs =
            durability::Wal::listSegments(work.string());
        // Duplicate a random segment under a fresh name whose LSN
        // slots after the log: the header no longer matches the
        // name, which replay must reject (re-delivered-bytes shape).
        const std::string &src = wsegs[rng.uniformInt(wsegs.size())];
        char name[64];
        std::snprintf(name, sizeof name, "wal-%016llx.seg",
                      (unsigned long long)(100 + trial));
        fsys::copy_file(src, work / name);

        durability::Wal::ReplayResult rr =
            durability::Wal::replay(work.string(), 1);
        expectPrefixOrLoudError(rr, golden);
        EXPECT_FALSE(rr.ok) << "mismatched segment must be loud";
    }
    fsys::remove_all(golden_dir);
    fsys::remove_all(work);
}

TEST(Fuzz, SnapshotBitFlipsLoadIntactOrFallBack)
{
    fsys::path dir = fuzzDir("snapflip");
    durability::SnapshotState older;
    older.meta.cluster_seed = 3;
    older.meta.num_nodes = 4;
    older.meta.cores_per_node = 2;
    older.meta.deployments = {{"Cache", 3}};
    older.barrier_lsn = 4;
    older.dump.next_id = 2;
    durability::SnapshotState newer = older;
    newer.barrier_lsn = 9;
    newer.dump.next_id = 5;
    newer.dump.objects = {{"traces/4/n2", {7, 7, 7}}};

    std::string error;
    ASSERT_TRUE(writeSnapshot(dir.string(), older, &error)) << error;
    ASSERT_TRUE(writeSnapshot(dir.string(), newer, &error)) << error;
    auto snaps = durability::listSnapshots(dir.string());
    ASSERT_EQ(snaps.size(), 2u);
    std::vector<std::uint8_t> newest(slurp(snaps[1].second));

    Rng rng(808);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<std::uint8_t> bytes = newest;
        std::uint64_t at = rng.uniformInt(bytes.size());
        bytes[at] ^=
            static_cast<std::uint8_t>(1u << rng.uniformInt(8));
        spit(snaps[1].second, bytes);

        durability::SnapshotLoad load =
            durability::loadNewestSnapshot(dir.string());
        ASSERT_TRUE(load.found);
        // Either the flip was caught (fall back to the older
        // barrier, reason recorded) or the image validated — in
        // which case it must be bit-identical to what was written:
        // a validated-but-diverged load would be silent corruption.
        ASSERT_TRUE(load.ok) << load.error;
        if (load.state.barrier_lsn == 9) {
            EXPECT_EQ(load.state.dump.next_id, 5u);
            EXPECT_EQ(load.state.dump.objects, newer.dump.objects);
            EXPECT_EQ(load.state.meta, newer.meta);
        } else {
            EXPECT_EQ(load.state.barrier_lsn, 4u);
            EXPECT_EQ(load.state.dump.next_id, 2u);
            EXPECT_FALSE(load.error.empty());
        }
    }
    fsys::remove_all(dir);
}

}  // namespace
}  // namespace exist
