/**
 * @file
 * Property/fuzz tests: randomized inputs against invariants that must
 * hold for any input — byte conservation in ToPA, parser termination
 * on arbitrary bytes, writer/parser agreement on random packet
 * sequences, and CRD manifest round-trips.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/crd.h"
#include "decode/packet_parser.h"
#include "hwtrace/packet_writer.h"
#include "hwtrace/topa.h"
#include "net/frame.h"
#include "util/rng.h"

namespace exist {
namespace {

TEST(Fuzz, TopaConservesBytesUnderRandomWrites)
{
    Rng rng(101);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<TopaEntry> entries;
        int nregions = 1 + static_cast<int>(rng.uniformInt(4));
        for (int i = 0; i < nregions; ++i)
            entries.push_back(TopaEntry{
                16 + rng.uniformInt(256),
                /*stop=*/i == nregions - 1 && rng.bernoulli(0.5),
                /*intr=*/rng.bernoulli(0.3)});
        bool ring = !entries.back().stop && rng.bernoulli(0.7);
        if (!entries.back().stop && !ring)
            entries.back().stop = true;

        TopaBuffer buf;
        buf.configure(entries, ring);
        std::uint64_t sent = 0;
        std::uint8_t chunk[64];
        for (int w = 0; w < 40; ++w) {
            std::uint64_t n = 1 + rng.uniformInt(sizeof(chunk));
            TopaWriteResult r = buf.write(chunk, n);
            sent += n;
            ASSERT_EQ(r.accepted + r.dropped, n);
        }
        ASSERT_EQ(buf.bytesAccepted() + buf.bytesDropped(), sent);
        if (!ring)
            ASSERT_LE(buf.bytesAccepted(), buf.capacity());
    }
}

TEST(Fuzz, ParserTerminatesOnArbitraryBytes)
{
    Rng rng(202);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint8_t> junk(
            1 + rng.uniformInt(4096));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next());
        PacketParser parser(junk.data(), junk.size());
        Packet pkt;
        std::size_t guard = 0;
        std::size_t last_off = 0;
        while (parser.next(pkt)) {
            // Progress: the offset must strictly advance.
            ASSERT_GT(parser.offset(), last_off);
            last_off = parser.offset();
            ASSERT_LT(++guard, junk.size() + 16);
        }
    }
}

TEST(Fuzz, WriterParserAgreeOnRandomSequences)
{
    Rng rng(303);
    for (int trial = 0; trial < 20; ++trial) {
        TopaBuffer buf;
        buf.configure({TopaEntry{1 << 20, true, false}}, false);
        PacketWriter writer(&buf);
        writer.resetState(0);

        struct Expect {
            int kind;  // 0 tnt-bit, 1 tip, 2 pge, 3 pgd
            std::uint64_t value;
        };
        std::vector<Expect> script;
        Cycles now = 0;
        std::uint64_t ip = 0x400000;
        bool on = false;
        for (int i = 0; i < 3000; ++i) {
            now += 1 + rng.uniformInt(500);
            double u = rng.uniform();
            if (!on || u < 0.1) {
                ip = 0x400000 + rng.uniformInt(1 << 20) * 4;
                writer.pge(ip, now);
                script.push_back({2, ip});
                on = true;
            } else if (u < 0.75) {
                bool taken = rng.bernoulli(0.6);
                writer.tnt(taken, now);
                script.push_back({0, taken ? 1u : 0u});
            } else if (u < 0.95) {
                ip = 0x400000 + rng.uniformInt(1 << 20) * 4;
                writer.tip(ip, now);
                script.push_back({1, ip});
            } else {
                writer.pgd(now);
                script.push_back({3, 0});
                on = false;
            }
        }
        writer.flushTnt(now);

        // Parse back; TNT bits may arrive later than TIPs (deferred
        // TNT), so compare per-kind streams.
        std::vector<std::uint64_t> want_tips, got_tips;
        std::vector<int> want_bits, got_bits;
        int want_pge = 0, got_pge = 0, want_pgd = 0, got_pgd = 0;
        for (const Expect &e : script) {
            switch (e.kind) {
              case 0: want_bits.push_back(static_cast<int>(e.value));
                      break;
              case 1: want_tips.push_back(e.value); break;
              case 2: ++want_pge; break;
              case 3: ++want_pgd; break;
            }
        }
        PacketParser parser(buf.data().data(), buf.bytesAccepted());
        Packet pkt;
        while (parser.next(pkt)) {
            switch (pkt.op) {
              case PacketOp::kTnt6:
                for (int i = 0; i < pkt.tnt_count; ++i)
                    got_bits.push_back((pkt.tnt_bits >> i) & 1);
                break;
              case PacketOp::kTip:
                got_tips.push_back(pkt.value);
                break;
              case PacketOp::kTipPge:
                ++got_pge;
                break;
              case PacketOp::kTipPgd:
                ++got_pgd;
                break;
              default:
                break;
            }
        }
        ASSERT_EQ(got_tips, want_tips);
        ASSERT_EQ(got_bits, want_bits);
        ASSERT_EQ(got_pge, want_pge);
        ASSERT_EQ(got_pgd, want_pgd);
        ASSERT_EQ(parser.resyncCount(), 0u);
    }
}

TEST(Fuzz, FrameRoundTripsRandomPayloads)
{
    Rng rng(505);
    for (int trial = 0; trial < 200; ++trial) {
        net::TraceRegionBatchMsg msg;
        msg.node = static_cast<NodeId>(rng.uniformInt(64));
        msg.stream = rng.uniformInt(1 << 20);
        msg.batch_seq = rng.uniformInt(1 << 16);
        msg.total_batches = msg.batch_seq + 1 + rng.uniformInt(100);
        msg.chunk.resize(rng.uniformInt(4096));
        for (auto &b : msg.chunk)
            b = static_cast<std::uint8_t>(rng.next());

        std::vector<std::uint8_t> wire = net::encodeFrame(msg);
        net::Frame frame;
        std::size_t consumed = 0;
        ASSERT_EQ(net::decodeFrame(wire.data(), wire.size(), &frame,
                                   &consumed),
                  net::DecodeStatus::kOk);
        ASSERT_EQ(consumed, wire.size());
        ASSERT_EQ(frame.type, net::MsgType::kTraceRegionBatch);
        ASSERT_EQ(frame.batch.node, msg.node);
        ASSERT_EQ(frame.batch.stream, msg.stream);
        ASSERT_EQ(frame.batch.batch_seq, msg.batch_seq);
        ASSERT_EQ(frame.batch.total_batches, msg.total_batches);
        ASSERT_EQ(frame.batch.chunk, msg.chunk);
    }
}

TEST(Fuzz, TruncatedFramesReportTruncatedNeverCrash)
{
    Rng rng(606);
    for (int trial = 0; trial < 50; ++trial) {
        net::BehaviorReportMsg msg;
        msg.node = static_cast<NodeId>(rng.uniformInt(8));
        msg.stream = rng.uniformInt(100);
        msg.degraded = rng.bernoulli(0.5);
        msg.summary.assign(rng.uniformInt(512), 's');
        std::vector<std::uint8_t> wire = net::encodeFrame(msg);

        // Every strict prefix must decode as kTruncated with zero
        // bytes consumed — never a crash, never a partial parse.
        std::size_t cut = rng.uniformInt(wire.size());
        net::Frame frame;
        std::size_t consumed = 1;
        ASSERT_EQ(net::decodeFrame(wire.data(), cut, &frame,
                                   &consumed),
                  net::DecodeStatus::kTruncated);
        ASSERT_EQ(consumed, 0u);
    }
}

TEST(Fuzz, CorruptedFramesAreRejected)
{
    Rng rng(707);
    for (int trial = 0; trial < 200; ++trial) {
        net::AckMsg msg;
        msg.node = static_cast<NodeId>(rng.uniformInt(8));
        msg.stream = rng.uniformInt(100);
        msg.batch_seq = rng.uniformInt(1000);
        msg.cumulative = rng.uniformInt(1000);
        msg.window = static_cast<std::uint32_t>(rng.uniformInt(64));
        std::vector<std::uint8_t> wire = net::encodeFrame(msg);

        // Flip one random bit anywhere in the frame: decode must
        // either reject it or (if the flip hit a then-self-consistent
        // header field... it cannot: magic, version, length and
        // checksum all cross-check the payload) — assert rejection.
        std::size_t pos = rng.uniformInt(wire.size());
        wire[pos] ^= static_cast<std::uint8_t>(
            1u << rng.uniformInt(8));
        net::Frame frame;
        std::size_t consumed = 0;
        net::DecodeStatus st =
            net::decodeFrame(wire.data(), wire.size(), &frame,
                             &consumed);
        ASSERT_NE(st, net::DecodeStatus::kOk)
            << "single-bit corruption at byte " << pos
            << " decoded as a valid frame";
        ASSERT_EQ(consumed, 0u);
    }
}

TEST(Fuzz, DecoderTerminatesOnArbitraryFrameBytes)
{
    Rng rng(808);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint8_t> junk(1 + rng.uniformInt(8192));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next());
        // Occasionally splice a real header in front so the length /
        // checksum paths are hit too, not just kBadMagic.
        if (rng.bernoulli(0.5)) {
            net::HeartbeatMsg hb;
            hb.node = 1;
            hb.seq = rng.uniformInt(100);
            std::vector<std::uint8_t> real = net::encodeFrame(hb);
            std::copy(real.begin(),
                      real.begin() +
                          static_cast<std::ptrdiff_t>(std::min(
                              real.size(), junk.size())),
                      junk.begin());
            if (junk.size() > 6)
                junk[6] ^= 0xff;  // corrupt the length prefix
        }
        net::Frame frame;
        std::size_t consumed = 0;
        net::DecodeStatus st = net::decodeFrame(
            junk.data(), junk.size(), &frame, &consumed);
        if (st != net::DecodeStatus::kOk)
            ASSERT_EQ(consumed, 0u);
        else
            ASSERT_LE(consumed, junk.size());
    }
}

TEST(Fuzz, CrdManifestRoundTrips)
{
    Rng rng(404);
    const char *apps[] = {"Search1", "Cache", "mc", "a-b_c.9"};
    for (int trial = 0; trial < 100; ++trial) {
        TraceRequest req;
        req.app = apps[rng.uniformInt(4)];
        req.anomaly = rng.bernoulli(0.5);
        req.budget_mb = 1 + rng.uniformInt(2000);
        req.ring_buffers = rng.bernoulli(0.3);
        if (rng.bernoulli(0.5))
            req.period_override =
                kCyclesPerMs * (1 + rng.uniformInt(2000));
        if (rng.bernoulli(0.4))
            req.core_sample_ratio = 0.1 + 0.9 * rng.uniform();

        TraceRequest again = TraceRequest::parse(req.toManifest());
        EXPECT_EQ(again.app, req.app);
        EXPECT_EQ(again.anomaly, req.anomaly);
        EXPECT_EQ(again.budget_mb, req.budget_mb);
        EXPECT_EQ(again.ring_buffers, req.ring_buffers);
        EXPECT_NEAR(static_cast<double>(again.period_override),
                    static_cast<double>(req.period_override),
                    static_cast<double>(kCyclesPerMs) * 0.01);
        EXPECT_NEAR(again.core_sample_ratio, req.core_sample_ratio,
                    1e-6);
    }
}

}  // namespace
}  // namespace exist
