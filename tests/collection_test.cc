/**
 * @file
 * Collection-plane end-to-end tests: agent -> fabric -> ingest
 * transfers under loss/reorder/duplication, backpressure and
 * spill-and-summarize degradation, and the ISSUE 6 acceptance gates —
 * results and control-plane reports byte-identical to in-process
 * delivery at drop rates {0, 0.01, 0.05} with reordering, for the
 * Testbed path, the serial Master and the ShardedMaster.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agent/trace_agent.h"
#include "analysis/testbed.h"
#include "cluster/collection.h"
#include "cluster/ingest.h"
#include "cluster/master.h"
#include "cluster/session_payload.h"
#include "cluster/shard/sharded_master.h"
#include "util/rng.h"

namespace exist {
namespace {

std::vector<std::uint8_t>
randomPayload(std::size_t size, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> payload(size);
    for (std::uint8_t &b : payload)
        b = static_cast<std::uint8_t>(rng.next());
    return payload;
}

struct Harness {
    EventQueue q;
    net::Fabric fabric;
    Ingest ingest;
    agent::TraceAgent agent;

    explicit Harness(const net::NetSpec &spec, std::uint64_t seed = 1,
                     agent::AgentConfig cfg = {})
        : fabric(&q, spec, seed),
          ingest(&q, &fabric, kCollectorNode),
          agent(&q, &fabric, 0, kCollectorNode, cfg)
    {
        fabric.attach(kCollectorNode,
                      [this](NodeId src,
                             const std::vector<std::uint8_t> &b) {
                          ingest.onFrame(src, b);
                      });
        fabric.attach(0, [this](NodeId src,
                                const std::vector<std::uint8_t> &b) {
            agent.onFrame(src, b);
        });
    }

    void
    runToQuiescence(double deadline_s = 30.0)
    {
        Cycles deadline = q.now() + secondsToCycles(deadline_s);
        while (!q.empty() && q.now() < deadline)
            q.step();
    }
};

agent::AgentConfig
smallBatches()
{
    agent::AgentConfig cfg;
    cfg.batch_bytes = 1024;  // many batches from a small payload
    return cfg;
}

TEST(CollectionE2E, LosslessTransferIsByteIdentical)
{
    net::NetSpec spec;
    spec.enabled = true;
    Harness h(spec, 1, smallBatches());
    std::vector<std::uint8_t> payload = randomPayload(20'000, 5);
    h.agent.ship(0, payload, "summary text");
    h.runToQuiescence();

    EXPECT_TRUE(h.agent.idle());
    IngestedStream st = h.ingest.take(0, 0);
    EXPECT_TRUE(st.complete);
    EXPECT_FALSE(st.degraded);
    EXPECT_EQ(st.payload, payload);
    EXPECT_EQ(st.summary, "summary text");
    EXPECT_EQ(h.agent.stats().retransmits, 0u);
    EXPECT_EQ(h.agent.stats().batches_sent, 20u);  // ceil(20000/1024)
}

TEST(CollectionE2E, SurvivesLossReorderingAndDuplication)
{
    net::NetSpec spec;
    spec.enabled = true;
    spec.drop_rate = 0.05;
    spec.reorder_rate = 0.2;
    spec.duplicate_rate = 0.05;
    Harness h(spec, 77, smallBatches());
    std::vector<std::uint8_t> payload = randomPayload(40'000, 6);
    h.agent.ship(0, payload, "s");
    h.runToQuiescence();

    EXPECT_TRUE(h.agent.idle());
    IngestedStream st = h.ingest.take(0, 0);
    ASSERT_TRUE(st.complete);
    EXPECT_FALSE(st.degraded);
    EXPECT_EQ(st.payload, payload);  // reassembled despite the faults

    // The reliability machinery actually exercised.
    agent::AgentStats as = h.agent.stats();
    IngestStats is = h.ingest.stats();
    EXPECT_GT(as.retransmits + is.batches_duplicate, 0u);
    EXPECT_EQ(as.streams_degraded, 0u);
}

TEST(CollectionE2E, DuplicatesAreConsumedOnce)
{
    net::NetSpec spec;
    spec.enabled = true;
    spec.duplicate_rate = 0.5;  // half the frames arrive twice
    Harness h(spec, 3, smallBatches());
    std::vector<std::uint8_t> payload = randomPayload(30'000, 7);
    h.agent.ship(0, payload, "s");
    h.runToQuiescence();

    IngestedStream st = h.ingest.take(0, 0);
    ASSERT_TRUE(st.complete);
    EXPECT_EQ(st.payload, payload);  // dedup by (node, stream, seq)
    EXPECT_GT(h.ingest.stats().batches_duplicate, 0u);
}

TEST(CollectionE2E, BackpressurePausesThenResumes)
{
    net::NetSpec spec;
    spec.enabled = true;
    Harness h(spec, 11, smallBatches());
    std::vector<std::uint8_t> payload = randomPayload(60'000, 8);
    h.ingest.pause();
    // Resume well before the agent's stall budget expires.
    h.q.schedule(usToCycles(50'000),
                 [&h]() { h.ingest.resume(); });
    h.agent.ship(0, payload, "s");
    h.runToQuiescence();

    IngestedStream st = h.ingest.take(0, 0);
    ASSERT_TRUE(st.complete);
    EXPECT_FALSE(st.degraded);
    EXPECT_EQ(st.payload, payload);
    // The pause actually bit: frames were refused and retried.
    EXPECT_GT(h.ingest.stats().batches_refused, 0u);
    EXPECT_GT(h.agent.stats().retransmits, 0u);
}

TEST(CollectionE2E, PersistentBackpressureDegradesToSummary)
{
    net::NetSpec spec;
    spec.enabled = true;
    Harness h(spec, 13, smallBatches());
    std::vector<std::uint8_t> payload = randomPayload(50'000, 9);
    h.ingest.pause();  // never resumed: the master stays wedged
    h.agent.ship(0, payload, "the summary that must survive");
    h.runToQuiescence();

    // Spill-and-summarize: the stream degraded, the finale (which a
    // paused ingest still accepts) carried the summary through.
    EXPECT_TRUE(h.agent.idle());
    agent::AgentStats as = h.agent.stats();
    EXPECT_EQ(as.streams_degraded, 1u);
    EXPECT_GT(as.batches_spilled, 0u);

    IngestedStream st = h.ingest.take(0, 0);
    EXPECT_FALSE(st.complete);
    EXPECT_TRUE(st.degraded);
    EXPECT_EQ(st.summary, "the summary that must survive");
    EXPECT_GT(st.batches_spilled, 0u);
}

TEST(CollectionE2E, HeartbeatsFlowWhileStreaming)
{
    net::NetSpec spec;
    spec.enabled = true;
    spec.drop_rate = 0.1;
    Harness h(spec, 17, smallBatches());
    h.agent.ship(0, randomPayload(80'000, 10), "s");
    h.runToQuiescence();
    EXPECT_GT(h.agent.stats().heartbeats_sent, 0u);
    EXPECT_GT(h.ingest.stats().heartbeats_seen, 0u);
    EXPECT_TRUE(h.agent.idle());  // and the queue still drained
}

TEST(SessionPayloadTest, RoundTripsAllFields)
{
    SessionPayload p;
    p.app = "Cache";
    p.target_cpi = 1.0 / 3.0;  // bit-exactness matters
    p.decoded_branches = 123456;
    p.accuracy_wall = 0.987654321;
    p.decoded_function_insns = {10, 20, 15, 0, 99};
    p.decoded_function_entries = {1, 2, 3};
    p.truth_function_insns = {11, 21, 16, 0, 100};
    p.raw_traces.push_back(CollectedTrace{2, 7, {1, 2, 3, 4}});
    p.raw_traces.push_back(CollectedTrace{3, -1, {}});

    std::vector<std::uint8_t> bytes = p.encode();
    SessionPayload out;
    ASSERT_TRUE(SessionPayload::decode(bytes.data(), bytes.size(),
                                       &out));
    EXPECT_EQ(out.app, p.app);
    EXPECT_EQ(out.target_cpi, p.target_cpi);
    EXPECT_EQ(out.decoded_branches, p.decoded_branches);
    EXPECT_EQ(out.accuracy_wall, p.accuracy_wall);
    EXPECT_EQ(out.decoded_function_insns, p.decoded_function_insns);
    EXPECT_EQ(out.decoded_function_entries,
              p.decoded_function_entries);
    EXPECT_EQ(out.truth_function_insns, p.truth_function_insns);
    ASSERT_EQ(out.raw_traces.size(), 2u);
    EXPECT_EQ(out.raw_traces[0].core, 2);
    EXPECT_EQ(out.raw_traces[0].thread, 7);
    EXPECT_EQ(out.raw_traces[0].bytes,
              (std::vector<std::uint8_t>{1, 2, 3, 4}));
    EXPECT_EQ(out.raw_traces[1].thread, -1);

    SessionPayload summary;
    ASSERT_TRUE(SessionPayload::decodeSummary(p.encodeSummary(),
                                              &summary));
    EXPECT_EQ(summary.app, p.app);
    EXPECT_EQ(summary.target_cpi, p.target_cpi);
    EXPECT_EQ(summary.decoded_branches, p.decoded_branches);
    EXPECT_EQ(summary.accuracy_wall, p.accuracy_wall);
}

/** Compare the collection-borne slice of two results. */
void
expectResultsEqual(const ExperimentResult &a, const ExperimentResult &b,
                   const std::string &app)
{
    EXPECT_EQ(a.decoded_branches, b.decoded_branches);
    EXPECT_EQ(a.accuracy_wall, b.accuracy_wall);
    EXPECT_EQ(a.decoded_function_insns, b.decoded_function_insns);
    EXPECT_EQ(a.decoded_function_entries, b.decoded_function_entries);
    EXPECT_EQ(a.truth_function_insns, b.truth_function_insns);
    EXPECT_EQ(a.at(app).cpi, b.at(app).cpi);
    ASSERT_EQ(a.raw_traces.size(), b.raw_traces.size());
    for (std::size_t i = 0; i < a.raw_traces.size(); ++i) {
        EXPECT_EQ(a.raw_traces[i].core, b.raw_traces[i].core);
        EXPECT_EQ(a.raw_traces[i].bytes, b.raw_traces[i].bytes);
    }
}

ExperimentSpec
sessionSpec()
{
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    spec.workloads.push_back(
        WorkloadSpec{.app = "Cache", .target = true});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.03);
    spec.decode = true;
    spec.ground_truth = true;
    spec.keep_traces = true;
    spec.seed = 21;
    return spec;
}

/** ISSUE 6 acceptance: a Testbed result routed through the collection
 *  plane at drop rates {0, 0.01, 0.05} + reordering is byte-identical
 *  to the in-process result at the same seed. */
TEST(CollectionAcceptance, TestbedResultIdenticalAcrossDropRates)
{
    ExperimentResult baseline = Testbed::run(sessionSpec());
    ASSERT_FALSE(baseline.raw_traces.empty());

    for (double drop : {0.0, 0.01, 0.05}) {
        ExperimentResult transported = Testbed::run(sessionSpec());
        net::NetSpec spec;
        spec.enabled = true;
        spec.drop_rate = drop;
        spec.reorder_rate = 0.2;
        CollectionOutcome co = collectSessionResult(
            transported, spec, collectSeed(99, 4), "Cache", nullptr);
        EXPECT_TRUE(co.ran);
        EXPECT_EQ(co.complete, 1u) << "drop=" << drop;
        EXPECT_EQ(co.degraded, 0u) << "drop=" << drop;
        expectResultsEqual(transported, baseline, "Cache");
        EXPECT_GT(co.fabric.frames_sent, 0u);
        // A single session's payload is a handful of frames, so low
        // drop rates may not hit any of them — only require retries
        // when the fabric actually dropped something. (The E2E tests
        // above force losses with big payloads.)
        if (co.fabric.frames_dropped > 0)
            EXPECT_GT(co.agents.retransmits, 0u) << "drop=" << drop;
    }
}

TEST(CollectionAcceptance, WireLogIdenticalAcrossRunsAtSameSeed)
{
    // Determinism regression at the collection level: two identical
    // runs at one seed produce identical wire-level event logs.
    net::NetSpec spec;
    spec.enabled = true;
    spec.drop_rate = 0.05;
    spec.reorder_rate = 0.2;
    spec.duplicate_rate = 0.02;
    spec.record_wire_log = true;

    std::string logs[2];
    for (int run = 0; run < 2; ++run) {
        ExperimentResult r = Testbed::run(sessionSpec());
        CollectionOutcome co = collectSessionResult(
            r, spec, collectSeed(7, 1), "Cache", nullptr);
        ASSERT_TRUE(co.ran);
        logs[run] = co.wire_log;
    }
    EXPECT_FALSE(logs[0].empty());
    EXPECT_EQ(logs[0], logs[1]);
}

std::vector<std::string>
netManifests(double drop)
{
    std::string net = " net=true reorder=0.2";
    if (drop > 0)
        net += " loss=" + std::to_string(drop);
    return {
        "app=Cache anomaly=true period_ms=40 budget_mb=64" + net,
        "app=Cache period_ms=30 budget_mb=64" + net,
    };
}

ClusterConfig
demoConfig()
{
    ClusterConfig cc;
    cc.num_nodes = 3;
    cc.cores_per_node = 4;
    cc.seed = 7;
    return cc;
}

/** ISSUE 6 acceptance: Master reports with net enabled at drop rates
 *  {0, 0.01, 0.05} + reordering equal the in-process reports. */
TEST(CollectionAcceptance, MasterReportsIdenticalAcrossDropRates)
{
    // In-process baseline (no net= keys).
    Cluster base_cluster(demoConfig());
    base_cluster.deploy("Cache", 3);
    Master baseline(&base_cluster, {}, 1);
    std::vector<std::uint64_t> base_ids;
    for (const std::string &m : netManifests(0.0)) {
        std::string stripped = m.substr(0, m.find(" net="));
        base_ids.push_back(baseline.apply(stripped));
    }
    baseline.reconcile();

    for (double drop : {0.0, 0.01, 0.05}) {
        Cluster cluster(demoConfig());
        cluster.deploy("Cache", 3);
        Master master(&cluster, {}, 1);
        std::vector<std::uint64_t> ids;
        for (const std::string &m : netManifests(drop))
            ids.push_back(master.apply(m));
        master.reconcile();

        ASSERT_EQ(ids.size(), base_ids.size());
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const TraceReport *a = baseline.report(base_ids[i]);
            const TraceReport *b = master.report(ids[i]);
            ASSERT_NE(a, nullptr);
            ASSERT_NE(b, nullptr);
            EXPECT_TRUE(*a == *b) << "drop=" << drop << " req=" << i;
        }
        // The data path landed the same bytes too.
        EXPECT_EQ(baseline.oss().totalBytes(),
                  master.oss().totalBytes())
            << "drop=" << drop;
        EXPECT_EQ(baseline.odps().rowCount(), master.odps().rowCount());
    }
}

/** Sharded reports with net enabled stay bit-identical to the serial
 *  Master's — the fabric is seeded per request, not per shard. */
TEST(CollectionAcceptance, ShardedMasterMatchesSerialWithNet)
{
    std::vector<std::string> manifests = netManifests(0.05);

    Cluster serial_cluster(demoConfig());
    serial_cluster.deploy("Cache", 3);
    Master serial(&serial_cluster, {}, 1);
    std::vector<std::uint64_t> serial_ids;
    for (const std::string &m : manifests)
        serial_ids.push_back(serial.apply(m));
    serial.reconcile();

    for (int shards : {1, 4}) {
        Cluster cluster(demoConfig());
        cluster.deploy("Cache", 3);
        metrics::Registry registry;
        ShardedMaster sharded(&cluster, {}, shards, 0, &registry);
        std::vector<std::uint64_t> ids;
        for (const std::string &m : manifests)
            ids.push_back(sharded.apply(m));
        sharded.reconcile();

        for (std::size_t i = 0; i < ids.size(); ++i) {
            const TraceReport *a = serial.report(serial_ids[i]);
            const TraceReport *b = sharded.report(ids[i]);
            ASSERT_NE(a, nullptr);
            ASSERT_NE(b, nullptr);
            EXPECT_TRUE(*a == *b)
                << "shards=" << shards << " req=" << i;
        }
        // Collection-plane metrics were recorded.
        EXPECT_GT(registry.counter("net.frames_sent").value(), 0u);
        EXPECT_GT(registry.counter("agent.batches_sent").value(), 0u);
    }
}

TEST(Crd, NetKnobsParseAndRoundTrip)
{
    TraceRequest req = TraceRequest::parse(
        "app=Cache net=true loss=0.05 reorder=0.1 duplicate=0.02 "
        "link_latency_us=80");
    EXPECT_TRUE(req.net);
    EXPECT_DOUBLE_EQ(req.net_loss, 0.05);
    EXPECT_DOUBLE_EQ(req.net_reorder, 0.1);
    EXPECT_DOUBLE_EQ(req.net_duplicate, 0.02);
    EXPECT_DOUBLE_EQ(req.net_link_latency_us, 80);

    net::NetSpec spec = req.netSpec();
    EXPECT_TRUE(spec.enabled);
    EXPECT_DOUBLE_EQ(spec.drop_rate, 0.05);
    EXPECT_DOUBLE_EQ(spec.link_latency_us, 80);

    TraceRequest again = TraceRequest::parse(req.toManifest());
    EXPECT_TRUE(again.netSpec() == spec);

    TraceRequest off = TraceRequest::parse("app=Cache");
    EXPECT_FALSE(off.netSpec().enabled);
}

}  // namespace
}  // namespace exist
