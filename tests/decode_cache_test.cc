/**
 * @file
 * Decode fast-path equivalence (DESIGN.md §11): the BlockCache +
 * TNT-run memo must be bit-identical to the cache-off reference for
 * every memo window size, for any chunking of the byte stream, with
 * path recording on, and across warm memo-pool reuse. Also exercises
 * one BlockCache and one TntMemoPool shared by concurrent decoders —
 * the file is part of the concurrency suite so that runs under TSan.
 */
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "analysis/testbed.h"
#include "decode/block_cache.h"
#include "decode/flow_reconstructor.h"

namespace exist {
namespace {

void
expectSameDecode(const DecodedTrace &a, const DecodedTrace &b)
{
    EXPECT_EQ(a.branches_decoded, b.branches_decoded);
    EXPECT_EQ(a.insns_decoded, b.insns_decoded);
    EXPECT_EQ(a.function_insns, b.function_insns);
    EXPECT_EQ(a.function_entries, b.function_entries);
    EXPECT_EQ(a.block_path, b.block_path);
    EXPECT_EQ(a.ptwrites, b.ptwrites);
    EXPECT_EQ(a.tnt_bits_consumed, b.tnt_bits_consumed);
    EXPECT_EQ(a.tips_consumed, b.tips_consumed);
    EXPECT_EQ(a.decode_errors, b.decode_errors);
    EXPECT_EQ(a.resyncs, b.resyncs);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
        EXPECT_EQ(a.segments[i].start_time, b.segments[i].start_time);
        EXPECT_EQ(a.segments[i].end_time, b.segments[i].end_time);
        EXPECT_EQ(a.segments[i].first_offset,
                  b.segments[i].first_offset);
        EXPECT_EQ(a.segments[i].branches, b.segments[i].branches);
    }
}

/** The traced buffers every test decodes (one session, collected
 *  once). */
const std::vector<CollectedTrace> &
sessionTraces()
{
    static const std::vector<CollectedTrace> traces = [] {
        ExperimentSpec spec;
        spec.node.num_cores = 8;
        spec.workloads.push_back(WorkloadSpec{
            .app = "mc", .target = true, .closed_clients = 8});
        spec.backend = "EXIST";
        spec.session.period = secondsToCycles(0.12);
        spec.warmup = secondsToCycles(0.03);
        spec.keep_traces = true;
        return Testbed::run(spec).raw_traces;
    }();
    return traces;
}

DecodeOptions
offOptions()
{
    DecodeOptions o;
    o.block_cache = false;
    o.tnt_memo_bits = 0;
    return o;
}

/** Split [0, n) into random-sized chunks (at least 1 byte each). */
std::vector<std::size_t>
randomChunks(std::size_t n, std::uint32_t seed, std::size_t max_chunk)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> dist(1, max_chunk);
    std::vector<std::size_t> sizes;
    std::size_t placed = 0;
    while (placed < n) {
        std::size_t sz = std::min(dist(rng), n - placed);
        sizes.push_back(sz);
        placed += sz;
    }
    return sizes;
}

TEST(DecodeCache, OnOffIdenticalAcrossMemoBits)
{
    const auto &traces = sessionTraces();
    ASSERT_FALSE(traces.empty());
    auto bin = Testbed::binaryForApp("mc");
    FlowReconstructor off_rec(bin.get(), offOptions());
    for (const CollectedTrace &ct : traces) {
        const DecodedTrace ref = off_rec.decode(ct.bytes);
        for (int k : {0, 1, 4, 8, 16}) {
            DecodeOptions on;
            on.tnt_memo_bits = k;
            FlowReconstructor on_rec(bin.get(), on);
            expectSameDecode(on_rec.decode(ct.bytes), ref);
        }
    }
}

TEST(DecodeCache, RecordPathIdenticalOnOff)
{
    const auto &traces = sessionTraces();
    ASSERT_FALSE(traces.empty());
    auto bin = Testbed::binaryForApp("mc");
    DecodeOptions off = offOptions();
    off.record_path = true;
    DecodeOptions on;
    on.record_path = true;  // disables the memo, keeps the BlockCache
    FlowReconstructor off_rec(bin.get(), off);
    FlowReconstructor on_rec(bin.get(), on);
    const CollectedTrace &ct = traces.front();
    const DecodedTrace a = off_rec.decode(ct.bytes);
    const DecodedTrace b = on_rec.decode(ct.bytes);
    EXPECT_FALSE(a.block_path.empty());
    expectSameDecode(b, a);
}

TEST(DecodeCache, ChunkedStreamingIdenticalAcrossMemoBits)
{
    const auto &traces = sessionTraces();
    ASSERT_FALSE(traces.empty());
    auto bin = Testbed::binaryForApp("mc");
    const CollectedTrace &ct = traces.front();
    FlowReconstructor off_rec(bin.get(), offOptions());
    const DecodedTrace ref = off_rec.decode(ct.bytes);
    for (int k : {1, 6, 16}) {
        DecodeOptions on;
        on.tnt_memo_bits = k;
        FlowReconstructor rec(bin.get(), on);
        for (std::uint32_t seed : {11u, 12u, 13u}) {
            // Mix tiny chunks (mid-packet boundaries) with large ones.
            const std::size_t max_chunk = seed % 2 ? 7 : 1024;
            FlowStream fs = rec.stream();
            std::size_t off_bytes = 0;
            for (std::size_t sz :
                 randomChunks(ct.bytes.size(), seed, max_chunk)) {
                fs.append(ct.bytes.data() + off_bytes, sz);
                off_bytes += sz;
            }
            expectSameDecode(fs.finish(), ref);
        }
    }
}

TEST(DecodeCache, WarmMemoPoolReuseIsIdentical)
{
    const auto &traces = sessionTraces();
    ASSERT_FALSE(traces.empty());
    auto bin = Testbed::binaryForApp("mc");
    const CollectedTrace &ct = traces.front();
    FlowReconstructor rec(bin.get());
    const DecodedTrace first = rec.decode(ct.bytes);
    const DecodedTrace second = rec.decode(ct.bytes);
    expectSameDecode(second, first);
    // The second decode acquires the first's memo from the pool: same
    // bytes, so every window it re-replays is already resident.
    EXPECT_GT(second.cache_stats.memo_hits, 0u);
    EXPECT_LE(second.cache_stats.memo_misses,
              first.cache_stats.memo_misses);
}

TEST(DecodeCache, SharedBlockCacheAcrossThreads)
{
    const auto &traces = sessionTraces();
    ASSERT_FALSE(traces.empty());
    auto bin = Testbed::binaryForApp("mc");
    // One reconstructor: all threads read its BlockCache and recycle
    // memos through its internally-locked pool.
    FlowReconstructor rec(bin.get());
    std::vector<DecodedTrace> serial;
    for (const CollectedTrace &ct : traces)
        serial.push_back(rec.decode(ct.bytes));

    std::vector<DecodedTrace> parallel(traces.size());
    std::vector<std::thread> workers;
    const std::size_t nthreads = std::min<std::size_t>(4, traces.size());
    for (std::size_t t = 0; t < nthreads; ++t) {
        workers.emplace_back([&, t] {
            for (std::size_t i = t; i < traces.size(); i += nthreads)
                parallel[i] = rec.decode(traces[i].bytes);
        });
    }
    for (std::thread &w : workers)
        w.join();
    for (std::size_t i = 0; i < traces.size(); ++i)
        expectSameDecode(parallel[i], serial[i]);
}

}  // namespace
}  // namespace exist
