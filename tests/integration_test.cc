/**
 * @file
 * Integration tests across the whole stack, including the paper's
 * headline properties as parameterized sweeps: EXIST's per-mille
 * overhead ordering against every baseline on multiple workloads, and
 * decode fidelity through the cluster data path.
 */
#include <gtest/gtest.h>

#include "analysis/accuracy.h"
#include "analysis/testbed.h"
#include "cluster/master.h"
#include "decode/flow_reconstructor.h"

namespace exist {
namespace {

TEST(Determinism, SameSpecSameResult)
{
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    spec.workloads.push_back(WorkloadSpec{.app = "om", .target = true});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.05);
    spec.warmup = secondsToCycles(0.01);
    spec.decode = true;

    ExperimentResult a = Testbed::run(spec);
    ExperimentResult b = Testbed::run(spec);
    EXPECT_EQ(a.at("om").insns, b.at("om").insns);
    EXPECT_EQ(a.truth_branches, b.truth_branches);
    EXPECT_EQ(a.decoded_branches, b.decoded_branches);
    EXPECT_EQ(a.backend_stats.trace_real_bytes,
              b.backend_stats.trace_real_bytes);
}

TEST(Determinism, OracleAndTracedRunSameWorkload)
{
    // The comparison methodology requires that only the backend
    // differs: the Oracle run and the traced run execute the same
    // arrival/demand sequences.
    ExperimentSpec spec;
    spec.node.num_cores = 4;
    spec.workloads.push_back(WorkloadSpec{
        .app = "mc", .target = true, .closed_clients = 8});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.1);
    auto cmp = Testbed::compare(spec);
    // Identical oracle-side workload: issued counts within a hair.
    EXPECT_NEAR(
        static_cast<double>(cmp.oracle.at("mc").completed),
        static_cast<double>(cmp.traced.at("mc").completed),
        static_cast<double>(cmp.oracle.at("mc").completed) * 0.05);
}

/** The paper's headline: EXIST under 1%; baselines visibly above. */
class OverheadOrdering : public ::testing::TestWithParam<std::string>
{
};

TEST_P(OverheadOrdering, ExistIsPerMilleAndLowest)
{
    ExperimentSpec spec;
    spec.node.num_cores = 4;
    spec.workloads.push_back(
        WorkloadSpec{.app = GetParam(), .target = true});
    spec.session.period = secondsToCycles(0.2);
    spec.warmup = secondsToCycles(0.02);

    auto slowdown = [&](const char *backend) {
        ExperimentSpec s = spec;
        s.backend = backend;
        return Testbed::compare(s).slowdownOf(GetParam());
    };
    double exist = slowdown("EXIST");
    double stasam = slowdown("StaSam");
    double nht = slowdown("NHT");

    EXPECT_LT(exist, 1.015) << "EXIST must be (near) per-mille";
    EXPECT_LT(exist, stasam);
    EXPECT_LT(exist, nht);
    EXPECT_GT(nht, 1.03) << "NHT pays for WB buffers + per-switch ops";
}

INSTANTIATE_TEST_SUITE_P(ComputeApps, OverheadOrdering,
                         ::testing::Values("pb", "mcf", "om", "x264",
                                           "de", "xz"));

TEST(Accuracy, ExistDecodesMostOfTheExecution)
{
    ExperimentSpec spec;
    spec.node.num_cores = 4;
    spec.workloads.push_back(WorkloadSpec{
        .app = "mc", .target = true, .closed_clients = 10});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.2);
    spec.decode = true;
    ExperimentResult r = Testbed::run(spec);
    EXPECT_GT(r.truth_branches, 100'000u);
    EXPECT_GT(r.accuracy_coverage, 0.9);
    EXPECT_GT(r.accuracy_wall, 0.95);
    // Per-core buffers multiplex same-CR3 threads; a PGE cannot always
    // be attributed perfectly without the switch-log sidecar, so a
    // tiny residual error rate is expected (and realistic).
    EXPECT_LT(static_cast<double>(r.decode_errors),
              static_cast<double>(r.truth_branches) * 1e-3);
}

TEST(Accuracy, BudgetPressureCostsCoverageNotCorrectness)
{
    // Single-threaded target: per-core streams then have no thread
    // ambiguity, so whatever decodes must match the truth exactly.
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    spec.workloads.push_back(WorkloadSpec{.app = "om", .target = true});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.3);
    spec.decode = true;
    spec.record_paths = true;

    ExperimentSpec tight = spec;
    tight.session.budget_mb = 24;
    tight.session.min_core_buffer_mb = 1;

    ExperimentResult roomy = Testbed::run(spec);
    ExperimentResult starved = Testbed::run(tight);
    EXPECT_LT(starved.accuracy_coverage, roomy.accuracy_coverage);
    // The STOP bit halted tracing well before the period's end: a
    // large part of the execution is simply not in the buffer. (The
    // byte "dropped" counter may be tiny — once Stopped is set, the
    // tracer generates nothing further to drop.)
    EXPECT_LT(starved.accuracy_coverage, 0.9);
    // Whatever was decoded is still exactly right.
    EXPECT_GT(starved.path_precision, 0.99);
}

TEST(Accuracy, MergingWorkersImprovesCoverage)
{
    std::vector<std::vector<std::uint64_t>> decoded, truth;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        ExperimentSpec spec;
        spec.node.num_cores = 4;
        spec.workloads.push_back(WorkloadSpec{
            .app = "Search1", .target = true, .closed_clients = 8});
        spec.backend = "EXIST";
        spec.session.period = secondsToCycles(0.12);
        spec.session.budget_mb = 48;
        spec.decode = true;
        spec.seed = seed;
        ExperimentResult r = Testbed::run(spec);
        decoded.push_back(r.decoded_function_insns);
        truth.push_back(r.truth_function_insns);
    }
    std::vector<std::uint64_t> merged_truth =
        mergeFunctionProfiles(truth);
    double single = wallWeightAccuracy(decoded[0], merged_truth);
    double merged = wallWeightAccuracy(mergeFunctionProfiles(decoded),
                                       merged_truth);
    EXPECT_GE(merged, single);
}

TEST(ClusterDataPath, OssObjectsDecodeIdentically)
{
    // Decoding the uploaded OSS objects reproduces the ODPS rows the
    // controller wrote: the data path is lossless.
    ClusterConfig cc;
    cc.num_nodes = 2;
    cc.cores_per_node = 4;
    Cluster cluster(cc);
    cluster.deploy("Cache", 2);
    Master master(&cluster);
    std::uint64_t id =
        master.apply("app=Cache anomaly=true period_ms=80");
    master.reconcile();

    auto binary = Testbed::binaryForApp("Cache");
    FlowReconstructor rec(binary.get());
    std::uint64_t decoded_from_oss = 0;
    for (const std::string &key :
         master.oss().listPrefix("traces/Cache/")) {
        DecodedTrace dt = rec.decode(master.oss().get(key));
        decoded_from_oss += dt.branches_decoded;
    }
    std::uint64_t decoded_rows = 0;
    for (const TraceRow *row : master.odps().queryRequest(id))
        decoded_rows += row->decoded_branches;
    EXPECT_EQ(decoded_from_oss, decoded_rows);
    EXPECT_GT(decoded_from_oss, 0u);
}

TEST(Ablation, RingBuffersKeepSuffixStopKeepsPrefix)
{
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    spec.workloads.push_back(WorkloadSpec{.app = "ex", .target = true});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.2);
    spec.session.budget_mb = 8;  // force overflow either way
    spec.session.min_core_buffer_mb = 1;
    spec.decode = true;

    ExperimentSpec ring_spec = spec;
    ring_spec.session.ring_buffers = true;

    ExperimentResult stop = Testbed::run(spec);
    ExperimentResult ring = Testbed::run(ring_spec);
    // Compulsory STOP drops the tail; the ring overwrites the head but
    // keeps tracing (more accepted bytes overall, counting overwrites).
    EXPECT_GT(stop.backend_stats.dropped_real_bytes, 0u);
    EXPECT_GT(ring.backend_stats.trace_real_bytes,
              stop.backend_stats.trace_real_bytes);
    // Both decode *something* correct.
    EXPECT_GT(stop.decoded_branches, 0u);
    EXPECT_GT(ring.decoded_branches, 0u);
}

}  // namespace
}  // namespace exist
