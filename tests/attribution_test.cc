/**
 * @file
 * Tests for thread attribution via the five-tuple sidecar and for the
 * behaviour-report synthesis.
 */
#include <gtest/gtest.h>

#include "analysis/attribution.h"
#include "analysis/behavior_report.h"
#include "analysis/ground_truth.h"
#include "analysis/testbed.h"
#include "core/exist_backend.h"
#include "decode/flow_reconstructor.h"
#include "os/kernel.h"

namespace exist {
namespace {

SwitchRecord
rec(Cycles ts, CoreId cpu, ThreadId tid, bool in)
{
    return SwitchRecord{ts, cpu, 1, tid, in ? 1u : 0u};
}

TEST(Attributor, BuildsTimelineFromPairs)
{
    std::vector<SwitchRecord> log = {
        rec(100, 0, 7, true),  rec(200, 0, 7, false),
        rec(220, 0, 8, true),  rec(400, 0, 8, false),
        rec(500, 0, 7, true),
    };
    ThreadAttributor at(log);
    EXPECT_EQ(at.threadAt(0, 150), 7);
    EXPECT_EQ(at.threadAt(0, 210), kInvalidId);  // idle gap
    EXPECT_EQ(at.threadAt(0, 300), 8);
    EXPECT_EQ(at.threadAt(0, 999999), 7);  // still on-core (open end)
    EXPECT_EQ(at.threadAt(0, 50), kInvalidId);
    EXPECT_EQ(at.threadAt(3, 150), kInvalidId);  // unknown core
}

TEST(Attributor, HandlesSessionStartMidSlice)
{
    // First record is a sched-out: the thread was on-core when the
    // session (and its log) started.
    std::vector<SwitchRecord> log = {
        rec(300, 1, 9, false),
        rec(350, 1, 4, true),
    };
    ThreadAttributor at(log);
    EXPECT_EQ(at.threadAt(1, 100), 9);
    EXPECT_EQ(at.threadAt(1, 400), 4);
}

TEST(Attributor, AttributesSegmentsByTimestamp)
{
    std::vector<SwitchRecord> log = {
        rec(0, 0, 1, true),    rec(1000, 0, 1, false),
        rec(1000, 0, 2, true), rec(3000, 0, 2, false),
    };
    ThreadAttributor at(log);

    DecodedTrace trace;
    DecodedSegment s1;
    s1.start_time = 100;
    s1.end_time = 900;
    s1.branches = 50;
    DecodedSegment s2;
    s2.start_time = 1200;
    s2.end_time = 2800;
    s2.branches = 200;
    trace.segments = {s1, s2};

    auto per_thread = at.attribute(0, trace);
    ASSERT_EQ(per_thread.count(1), 1u);
    ASSERT_EQ(per_thread.count(2), 1u);
    EXPECT_EQ(per_thread[1].branches, 50u);
    EXPECT_EQ(per_thread[2].branches, 200u);
    EXPECT_EQ(per_thread[1].active_cycles, 800u);
}

TEST(Attributor, MergeAggregatesAcrossCores)
{
    ThreadTrace a{.tid = 5, .segments = 2, .branches = 10,
                  .active_cycles = 100, .longest_gap = 40};
    ThreadTrace b{.tid = 5, .segments = 1, .branches = 5,
                  .active_cycles = 50, .longest_gap = 90};
    auto merged = ThreadAttributor::merge(
        {{{5, a}}, {{5, b}}});
    EXPECT_EQ(merged[5].segments, 3u);
    EXPECT_EQ(merged[5].branches, 15u);
    EXPECT_EQ(merged[5].active_cycles, 150u);
    EXPECT_EQ(merged[5].longest_gap, 90u);
}

TEST(Attribution, EndToEndMatchesGroundTruthPerThread)
{
    // Two threads of one process timeshare one core; the per-core
    // trace must be attributable back to per-thread branch counts.
    Kernel kernel(NodeConfig{.num_cores = 1, .seed = 9});
    auto bin = Testbed::binaryForApp("om");
    Process *p = kernel.createProcess("om", bin, {0});
    Thread *t1 = kernel.createThread(p, nullptr);
    Thread *t2 = kernel.createThread(p, nullptr);
    kernel.startThread(t1);
    kernel.startThread(t2);
    kernel.runFor(secondsToCycles(0.01));

    GroundTruthRecorder truth;
    truth.arm(kernel, p->pid());
    ExistBackend backend;
    SessionSpec spec;
    spec.target = p;
    spec.period = secondsToCycles(0.1);
    backend.start(kernel, spec);
    kernel.runFor(spec.period);  // HRT stops the session right here
    backend.stop(kernel);
    truth.disarm(kernel);

    FlowReconstructor decoder(bin.get());
    ThreadAttributor attributor(backend.switchLog());
    std::vector<std::map<ThreadId, ThreadTrace>> parts;
    for (const CollectedTrace &ct : backend.collect())
        parts.push_back(
            attributor.attribute(ct.core, decoder.decode(ct.bytes)));
    auto merged = ThreadAttributor::merge(parts);

    const auto &want = truth.branchesPerThread();
    ASSERT_EQ(want.size(), 2u);
    std::uint64_t attributed = 0, unattributed = 0;
    for (const auto &[tid, tt] : merged) {
        if (tid == kInvalidId) {
            unattributed += tt.branches;
            continue;
        }
        attributed += tt.branches;
        ASSERT_EQ(want.count(tid), 1u) << "unknown tid " << tid;
        double expect = static_cast<double>(want.at(tid));
        EXPECT_NEAR(static_cast<double>(tt.branches), expect,
                    expect * 0.05)
            << "tid " << tid;
    }
    // Nearly everything decodes and attributes.
    EXPECT_LT(static_cast<double>(unattributed),
              static_cast<double>(attributed) * 0.02);
}

TEST(BehaviorReportTest, SynthesizesReadableReport)
{
    Kernel kernel(NodeConfig{.num_cores = 2, .seed = 10});
    auto bin = Testbed::binaryForApp("Recommend");
    Process *p = kernel.createProcess("Recommend", bin, {});
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.runFor(secondsToCycles(0.01));

    ExistBackend backend;
    SessionSpec spec;
    spec.target = p;
    spec.period = secondsToCycles(0.05);
    backend.start(kernel, spec);
    kernel.runFor(spec.period + secondsToCycles(0.01));
    backend.stop(kernel);

    FlowReconstructor decoder(bin.get());
    std::vector<std::pair<CoreId, DecodedTrace>> cores;
    for (const CollectedTrace &ct : backend.collect())
        cores.emplace_back(ct.core, decoder.decode(ct.bytes));

    std::string report = BehaviorReport::synthesize(
        *bin, cores, backend.switchLog());
    EXPECT_NE(report.find("behaviour report for 'Recommend'"),
              std::string::npos);
    EXPECT_NE(report.find("Hottest functions"), std::string::npos);
    EXPECT_NE(report.find("main_loop"), std::string::npos);
    EXPECT_NE(report.find("Per-thread activity"), std::string::npos);
    EXPECT_NE(report.find("synchronization"), std::string::npos);
}

}  // namespace
}  // namespace exist
