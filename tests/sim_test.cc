/**
 * @file
 * Unit tests for the discrete-event engine: ordering, cancellation,
 * and time advance semantics.
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace exist {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    EventId id = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.cancel(id);
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    int fired = 0;
    EventId id = q.schedule(5, [&] { ++fired; });
    q.run();
    q.cancel(id);  // already fired; must not affect later events
    q.schedule(q.now() + 1, [&] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesTime)
{
    EventQueue q;
    int fired = 0;
    q.schedule(100, [&] { ++fired; });
    q.runUntil(50);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.now(), 50u);
    q.runUntil(150);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 150u);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            q.scheduleAfter(5, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), 45u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Cycles seen = 0;
    q.schedule(10, [&] {
        q.scheduleAfter(7, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 17u);
}

TEST(EventQueue, NextTimeSkipsCancelled)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    q.schedule(25, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextTime(), 25u);
}

TEST(EventQueue, EmptyAfterDrain)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.schedule(1, [] {});
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.step());
}

}  // namespace
}  // namespace exist
