/**
 * @file
 * Tests for the program model: structural invariants of generated
 * binaries (parameterized over the whole application catalog) and
 * behavioural properties of the execution engine.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/app_profile.h"
#include "workload/execution.h"
#include "workload/program.h"

namespace exist {
namespace {

class GenerationInvariants
    : public ::testing::TestWithParam<std::string>
{
  protected:
    ProgramBinary
    make(std::uint64_t seed = 0x5eed) const
    {
        return ProgramBinary::generate(AppCatalog::find(GetParam()),
                                       seed);
    }
};

TEST_P(GenerationInvariants, TargetsAreValidBlocks)
{
    ProgramBinary prog = make();
    for (const BasicBlock &b : prog.blocks()) {
        switch (b.kind) {
          case BranchKind::kConditional:
            ASSERT_LT(b.target0, prog.numBlocks());
            ASSERT_LT(b.target1, prog.numBlocks());
            break;
          case BranchKind::kDirectJump:
          case BranchKind::kDirectCall:
            ASSERT_LT(b.target0, prog.numBlocks());
            break;
          case BranchKind::kSyscall:
            ASSERT_LT(b.target1, prog.numBlocks());
            break;
          case BranchKind::kIndirectJump:
          case BranchKind::kIndirectCall:
            ASSERT_GT(b.itable_count, 0u);
            for (std::uint32_t i = 0; i < b.itable_count; ++i)
                ASSERT_LT(prog.indirectTargets()[b.itable_begin + i]
                              .block,
                          prog.numBlocks());
            break;
          case BranchKind::kReturn:
            break;
        }
    }
}

TEST_P(GenerationInvariants, DirectCallsFormDag)
{
    // Callee function id strictly greater than caller id: statically
    // followed call chains must terminate (decoder liveness).
    ProgramBinary prog = make();
    for (const BasicBlock &b : prog.blocks()) {
        if (b.kind != BranchKind::kDirectCall)
            continue;
        const BasicBlock &callee = prog.block(b.target0);
        EXPECT_GT(callee.function_id, b.function_id);
    }
}

TEST_P(GenerationInvariants, DirectJumpsAreForward)
{
    ProgramBinary prog = make();
    for (std::uint32_t i = 0; i < prog.numBlocks(); ++i) {
        const BasicBlock &b = prog.block(i);
        if (b.kind != BranchKind::kDirectJump)
            continue;
        // Exception: the main loop's final block jumps back to entry.
        const ProgramFunction &fn = prog.function(b.function_id);
        if (b.function_id == 0 && i == fn.first_block + fn.num_blocks - 1)
            continue;
        EXPECT_GT(b.target0, i);
    }
}

TEST_P(GenerationInvariants, MainLoopHasNoReturns)
{
    ProgramBinary prog = make();
    const ProgramFunction &main_fn = prog.function(0);
    for (std::uint32_t i = 0; i < main_fn.num_blocks; ++i)
        EXPECT_NE(prog.block(main_fn.first_block + i).kind,
                  BranchKind::kReturn);
    // And its entry consumes a TNT bit (cycle-safety).
    EXPECT_EQ(prog.block(main_fn.entry_block).kind,
              BranchKind::kConditional);
}

TEST_P(GenerationInvariants, AddressesMonotonicAndResolvable)
{
    ProgramBinary prog = make();
    std::uint64_t prev_end = 0;
    for (std::uint32_t i = 0; i < prog.numBlocks(); ++i) {
        const BasicBlock &b = prog.block(i);
        ASSERT_GE(b.address, prev_end);
        prev_end = b.address + b.size_bytes;
        // Start, middle and last byte all resolve to this block.
        EXPECT_EQ(prog.blockAtAddress(b.address), i);
        EXPECT_EQ(prog.blockAtAddress(b.address + b.size_bytes / 2), i);
        EXPECT_EQ(prog.blockAtAddress(b.address + b.size_bytes - 1), i);
    }
    EXPECT_EQ(prog.blockAtAddress(0), kNoBlock);
    EXPECT_EQ(prog.blockAtAddress(prev_end + 1024), kNoBlock);
}

TEST_P(GenerationInvariants, DeterministicInSeed)
{
    ProgramBinary a = make(77), b = make(77), c = make(78);
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    for (std::uint32_t i = 0; i < a.numBlocks(); ++i) {
        EXPECT_EQ(a.block(i).address, b.block(i).address);
        EXPECT_EQ(a.block(i).kind, b.block(i).kind);
        EXPECT_EQ(a.block(i).target0, b.block(i).target0);
    }
    // A different seed must actually change the program.
    bool differs = a.numBlocks() != c.numBlocks();
    for (std::uint32_t i = 0; !differs && i < a.numBlocks(); ++i)
        differs = a.block(i).kind != c.block(i).kind ||
                  a.block(i).insns != c.block(i).insns;
    EXPECT_TRUE(differs);
}

TEST_P(GenerationInvariants, FunctionsPartitionBlocks)
{
    ProgramBinary prog = make();
    std::uint32_t covered = 0;
    for (const ProgramFunction &fn : prog.functions()) {
        EXPECT_EQ(fn.first_block, covered);
        EXPECT_EQ(fn.entry_block, fn.first_block);
        covered += fn.num_blocks;
        for (std::uint32_t i = 0; i < fn.num_blocks; ++i)
            EXPECT_EQ(prog.block(fn.first_block + i).function_id,
                      &fn - prog.functions().data());
    }
    EXPECT_EQ(covered, prog.numBlocks());
}

INSTANTIATE_TEST_SUITE_P(AllCatalogApps, GenerationInvariants,
                         ::testing::ValuesIn(AppCatalog::allNames()));

TEST(Execution, DeterministicForSameSeed)
{
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("om"), 1);
    ExecutionContext a(&prog, 9), b(&prog, 9);
    for (int i = 0; i < 20000; ++i) {
        StepResult sa = a.step(), sb = b.step();
        ASSERT_EQ(sa.branch.source_block, sb.branch.source_block);
        ASSERT_EQ(sa.branch.target_block, sb.branch.target_block);
        ASSERT_EQ(sa.syscall, sb.syscall);
    }
}

TEST(Execution, TransitionsFollowStaticStructure)
{
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("de"), 3);
    ExecutionContext exec(&prog, 5);
    for (int i = 0; i < 50000; ++i) {
        std::uint32_t before = exec.currentBlock();
        StepResult s = exec.step();
        ASSERT_EQ(s.branch.source_block, before);
        ASSERT_EQ(s.branch.target_block, exec.currentBlock());
        const BasicBlock &b = prog.block(before);
        if (b.kind == BranchKind::kConditional) {
            ASSERT_TRUE(s.branch.target_block == b.target0 ||
                        s.branch.target_block == b.target1);
        } else if (b.kind == BranchKind::kDirectJump ||
                   b.kind == BranchKind::kDirectCall) {
            ASSERT_EQ(s.branch.target_block, b.target0);
        }
    }
}

TEST(Execution, SyscallRateTracksProfile)
{
    AppProfile profile = AppCatalog::find("mc");
    profile.phase_strength = 0.0;  // isolate the rate property
    ProgramBinary prog = ProgramBinary::generate(profile, 6);
    ExecutionContext exec(&prog, 7);
    std::uint64_t insns = 0, syscalls = 0;
    for (int i = 0; i < 400000; ++i) {
        StepResult s = exec.step();
        insns += s.insns;
        syscalls += s.syscall ? 1 : 0;
    }
    double rate = 1000.0 * static_cast<double>(syscalls) /
                  static_cast<double>(insns);
    EXPECT_NEAR(rate, profile.syscalls_per_kinsn,
                profile.syscalls_per_kinsn * 0.15);
}

TEST(Execution, PhasesShiftFunctionMix)
{
    // With phases enabled, two far-apart windows of the same run have
    // visibly different function distributions; with phases disabled
    // they are nearly identical.
    auto window_profiles = [](double strength) {
        AppProfile profile = AppCatalog::find("Search1");
        profile.phase_strength = strength;
        ProgramBinary prog = ProgramBinary::generate(profile, 8);
        ExecutionContext exec(&prog, 9);
        std::map<std::uint32_t, double> w1, w2;
        for (int i = 0; i < 150000; ++i)
            w1[prog.block(exec.step().branch.source_block)
                   .function_id] += 1;
        for (int i = 0; i < 150000; ++i)
            exec.step();  // skip a phase
        for (int i = 0; i < 150000; ++i)
            w2[prog.block(exec.step().branch.source_block)
                   .function_id] += 1;
        double l1 = 0;
        std::set<std::uint32_t> keys;
        for (auto &[k, v] : w1)
            keys.insert(k);
        for (auto &[k, v] : w2)
            keys.insert(k);
        for (std::uint32_t k : keys)
            l1 += std::abs(w1[k] / 150000 - w2[k] / 150000);
        return l1;
    };
    EXPECT_GT(window_profiles(0.5), window_profiles(0.0));
}

TEST(Execution, CallDepthIsBounded)
{
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("de"), 10);
    ExecutionContext exec(&prog, 11);
    for (int i = 0; i < 200000; ++i) {
        exec.step();
        ASSERT_LE(exec.callDepth(), 96u);
    }
}

TEST(Catalog, FindsAllSuitesAndRejectsUnknown)
{
    EXPECT_EQ(AppCatalog::specSuite().size(), 10u);
    EXPECT_EQ(AppCatalog::onlineSuite().size(), 3u);
    EXPECT_EQ(AppCatalog::cloudSuite().size(), 5u);
    EXPECT_EQ(AppCatalog::caseStudySuite().size(), 5u);
    EXPECT_EQ(AppCatalog::find("mcf").name, "mcf");
    EXPECT_DEATH(AppCatalog::find("no-such-app"), "unknown");
}

TEST(Catalog, CategoryWeightsNormalized)
{
    for (const std::string &name : AppCatalog::allNames()) {
        AppProfile p = AppCatalog::find(name);
        double sum = 0;
        for (double w : p.category_weights)
            sum += w;
        EXPECT_NEAR(sum, 1.0, 1e-9) << name;
    }
}

}  // namespace
}  // namespace exist
