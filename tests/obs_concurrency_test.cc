/**
 * @file
 * Concurrency tests for the observability surfaces, run under TSan in
 * CI (`ctest -L concurrency` on the thread-sanitized build):
 *
 *  - many threads emitting spans/instants while a collector snapshots
 *    and exports concurrently — the emit path is lock-free and the
 *    snapshot must tolerate writers racing the copy;
 *  - the metrics registry serving counter/gauge/histogram writers on
 *    all stripes while toJson()/samples() render concurrently — the
 *    export must stay well-formed JSON with sorted keys throughout.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cluster/metrics.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/trace_plane.h"

namespace exist {
namespace {

TEST(ObsConcurrencyTest, EmittersRaceCollectorsSafely)
{
    constexpr int kWriters = 4;
    constexpr int kEventsPerWriter = 20000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([w] {
            obs::setThreadName("obs_conc.writer");
            for (int i = 0; i < kEventsPerWriter; ++i) {
                EXIST_SPAN("obs_conc.task",
                           obs::corrId(static_cast<std::uint64_t>(w),
                                       static_cast<std::uint64_t>(i)));
                obs::instant("obs_conc.tick",
                             obs::corrId(static_cast<std::uint64_t>(i)));
            }
        });
    }
    // Collectors hammer every read surface while writers are live.
    std::thread collector([&stop] {
        while (!stop.load(std::memory_order_acquire)) {
            std::vector<obs::ThreadSnapshot> snaps = obs::snapshot();
            for (const obs::ThreadSnapshot &s : snaps) {
                std::uint64_t prev = 0;
                for (const obs::EventView &e : s.events) {
                    // Events inside one ring snapshot are ordered per
                    // clock domain; just touch every field so TSan
                    // sees the reads.
                    if (e.clock == obs::Clock::kReal) {
                        EXPECT_GE(e.ts + 1, prev);
                        prev = e.ts;
                    }
                    ASSERT_NE(e.name, nullptr);
                }
            }
            std::string json = obs::chromeTraceJson();
            EXPECT_FALSE(json.empty());
            std::string dump = obs::flightDumpText(16);
            EXPECT_FALSE(dump.empty());
        }
    });

    for (std::thread &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    collector.join();

    // Everything emitted was counted (other tests may add more).
    EXPECT_GE(obs::eventsRecorded(),
              static_cast<std::uint64_t>(kWriters) * kEventsPerWriter);
}

/** Structural JSON check: balanced braces outside strings. */
bool
jsonBalanced(const std::string &json)
{
    long depth = 0;
    bool in_str = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (in_str) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{')
            ++depth;
        else if (c == '}' && --depth < 0)
            return false;
    }
    return depth == 0 && !in_str;
}

TEST(ObsConcurrencyTest, MetricsJsonExportUnderConcurrentWriters)
{
    metrics::Registry registry;
    constexpr int kWriters = 4;
    constexpr int kOpsPerWriter = 5000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&registry, w] {
            // Spread names across stripes and keep registering new
            // ones mid-export, so toJson() races real insertions.
            for (int i = 0; i < kOpsPerWriter; ++i) {
                std::string key = "conc." + std::to_string(w) + "." +
                                  std::to_string(i % 37);
                registry.counter(key).add(1);
                registry.gauge(key + ".g").set(i);
                registry.histogram(key + ".h")
                    .record(static_cast<std::uint64_t>(i % 1000));
            }
        });
    }
    std::thread exporter([&registry, &stop] {
        while (!stop.load(std::memory_order_acquire)) {
            std::string json = registry.toJson();
            ASSERT_TRUE(jsonBalanced(json));
            // Sorted-by-name discipline holds mid-churn too.
            std::vector<metrics::Registry::Sample> samples =
                registry.samples();
            for (std::size_t i = 1; i < samples.size(); ++i)
                ASSERT_LE(samples[i - 1].name, samples[i].name);
        }
    });

    for (std::thread &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    exporter.join();

    // Final export reflects every write that happened-before join.
    std::string json = registry.toJson();
    ASSERT_TRUE(jsonBalanced(json));
    for (int w = 0; w < kWriters; ++w) {
        std::string key = "\"conc." + std::to_string(w) + ".0\"";
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    std::vector<std::string> names = registry.names();
    for (std::size_t i = 1; i < names.size(); ++i)
        EXPECT_LE(names[i - 1], names[i]);
}

}  // namespace
}  // namespace exist
