/**
 * @file
 * ParallelDecoder correctness: decoding a multi-core session's buffers
 * across a pool must be bit-identical to the serial FlowReconstructor
 * path at every thread count — same segments, function profiles,
 * ptwrites and block paths, in the same (collection) order. Also
 * pins the Testbed decode fan-out: identical ExperimentResult decode
 * fields for decode_threads 1, 2 and 8.
 */
#include <gtest/gtest.h>

#include <vector>

#include "analysis/testbed.h"
#include "decode/flow_reconstructor.h"
#include "decode/parallel_decoder.h"
#include "runtime/thread_pool.h"

namespace exist {
namespace {

void
expectSameDecode(const DecodedTrace &a, const DecodedTrace &b)
{
    EXPECT_EQ(a.branches_decoded, b.branches_decoded);
    EXPECT_EQ(a.insns_decoded, b.insns_decoded);
    EXPECT_EQ(a.function_insns, b.function_insns);
    EXPECT_EQ(a.function_entries, b.function_entries);
    EXPECT_EQ(a.block_path, b.block_path);
    EXPECT_EQ(a.ptwrites, b.ptwrites);
    EXPECT_EQ(a.tnt_bits_consumed, b.tnt_bits_consumed);
    EXPECT_EQ(a.tips_consumed, b.tips_consumed);
    EXPECT_EQ(a.decode_errors, b.decode_errors);
    EXPECT_EQ(a.resyncs, b.resyncs);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
        EXPECT_EQ(a.segments[i].start_time, b.segments[i].start_time);
        EXPECT_EQ(a.segments[i].end_time, b.segments[i].end_time);
        EXPECT_EQ(a.segments[i].first_offset,
                  b.segments[i].first_offset);
        EXPECT_EQ(a.segments[i].branches, b.segments[i].branches);
    }
}

/** One multi-core traced session whose buffers the tests decode. */
ExperimentSpec
sessionSpec()
{
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    spec.workloads.push_back(WorkloadSpec{
        .app = "mc", .target = true, .closed_clients = 8});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.12);
    spec.warmup = secondsToCycles(0.03);
    spec.decode = true;
    spec.keep_traces = true;
    return spec;
}

TEST(ParallelDecode, BitIdenticalToSerialAcrossThreadCounts)
{
    ExperimentResult r = Testbed::run(sessionSpec());
    ASSERT_GT(r.raw_traces.size(), 1u)
        << "need a multi-core session to make parallelism meaningful";

    auto binary = Testbed::binaryForApp("mc");
    DecodeOptions opts;
    opts.record_path = true;  // include the memory-heavy path field

    FlowReconstructor serial(binary.get(), opts);
    std::vector<std::pair<CoreId, DecodedTrace>> baseline;
    for (const CollectedTrace &ct : r.raw_traces)
        baseline.emplace_back(ct.core, serial.decode(ct.bytes));

    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ParallelDecoder dec(binary.get(), opts, threads);
        auto decoded = dec.decodeAll(r.raw_traces);
        ASSERT_EQ(decoded.size(), baseline.size());
        for (std::size_t i = 0; i < decoded.size(); ++i) {
            SCOPED_TRACE("buffer " + std::to_string(i));
            // Merge order == collection order (stable core ids).
            EXPECT_EQ(decoded[i].first, baseline[i].first);
            expectSameDecode(decoded[i].second, baseline[i].second);
        }
    }
}

TEST(ParallelDecode, ThreadModesResolve)
{
    auto binary = Testbed::binaryForApp("mc");
    EXPECT_EQ(ParallelDecoder(binary.get(), {}, 1).threads(), 1);
    EXPECT_EQ(ParallelDecoder(binary.get(), {}, 4).threads(), 4);
    EXPECT_EQ(ParallelDecoder(binary.get(), {}, 0).threads(),
              ThreadPool::defaultThreads());
}

TEST(ParallelDecode, EmptyAndSingleBufferInputs)
{
    auto binary = Testbed::binaryForApp("mc");
    ParallelDecoder dec(binary.get(), {}, 4);
    EXPECT_TRUE(dec.decodeViews({}).empty());

    std::vector<std::uint8_t> empty_bytes;
    auto out = dec.decodeViews(
        {TraceBufferView{3, empty_bytes.data(), empty_bytes.size()}});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first, 3);
    EXPECT_EQ(out[0].second.branches_decoded, 0u);
}

TEST(ParallelDecode, TestbedResultsIdenticalAcrossDecodeThreads)
{
    ExperimentSpec spec = sessionSpec();
    spec.record_paths = true;
    spec.ground_truth = true;

    spec.decode_threads = 1;
    ExperimentResult serial = Testbed::run(spec);

    for (int threads : {2, 8}) {
        SCOPED_TRACE("decode_threads=" + std::to_string(threads));
        spec.decode_threads = threads;
        ExperimentResult parallel = Testbed::run(spec);
        EXPECT_EQ(parallel.decoded_branches, serial.decoded_branches);
        EXPECT_EQ(parallel.decode_errors, serial.decode_errors);
        EXPECT_EQ(parallel.decoded_function_insns,
                  serial.decoded_function_insns);
        EXPECT_EQ(parallel.decoded_function_entries,
                  serial.decoded_function_entries);
        EXPECT_DOUBLE_EQ(parallel.accuracy_coverage,
                         serial.accuracy_coverage);
        EXPECT_DOUBLE_EQ(parallel.accuracy_wall, serial.accuracy_wall);
        EXPECT_DOUBLE_EQ(parallel.path_precision,
                         serial.path_precision);
    }
}

}  // namespace
}  // namespace exist
