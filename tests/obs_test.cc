/**
 * @file
 * Unit tests for the self-observability plane (src/obs): corrId
 * determinism, ring recording and wrap behaviour, sim-domain packing,
 * the RAII span macro, flight-recorder text, Chrome trace-event JSON
 * export, and the flight-dump-at-crash-point path (via the throwing
 * crash handler, so the "death" stays in-process).
 *
 * The plane is process-global, so every test tags its events with
 * names unique to that test and filters snapshots by them — rings are
 * shared with whatever other tests emitted before.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "durability/crash_point.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/trace_plane.h"

namespace exist {
namespace {

/** All events named `name`, across every thread ring, oldest first
 *  per ring. */
std::vector<obs::EventView>
eventsNamed(const char *name)
{
    std::vector<obs::EventView> out;
    for (const obs::ThreadSnapshot &t : obs::snapshot())
        for (const obs::EventView &e : t.events)
            if (std::strcmp(e.name, name) == 0)
                out.push_back(e);
    return out;
}

TEST(ObsTest, CorrIdIsDeterministicAndKeySensitive)
{
    EXPECT_EQ(obs::corrId(1, 2, 3), obs::corrId(1, 2, 3));
    EXPECT_NE(obs::corrId(1, 2, 3), obs::corrId(1, 2, 4));
    EXPECT_NE(obs::corrId(1, 2), obs::corrId(2, 1));
    EXPECT_NE(obs::corrId(7), obs::corrId(7, 0, 1));
    // Single-key form equals the explicit zero-padded form.
    EXPECT_EQ(obs::corrId(7), obs::corrId(7, 0, 0));
}

TEST(ObsTest, InstantEventsAreRecordedInOrder)
{
    for (std::uint64_t i = 0; i < 5; ++i)
        obs::instant("obs_test.order", obs::corrId(i), i);
    std::vector<obs::EventView> got = eventsNamed("obs_test.order");
    ASSERT_EQ(got.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(got[i].kind, obs::Kind::kInstant);
        EXPECT_EQ(got[i].clock, obs::Clock::kReal);
        EXPECT_EQ(got[i].corr, obs::corrId(i));
        EXPECT_EQ(got[i].arg, i);
    }
    // Real timestamps are monotone within one thread.
    for (std::size_t i = 1; i < got.size(); ++i)
        EXPECT_GE(got[i].ts, got[i - 1].ts);
}

TEST(ObsTest, SpanMacroEmitsBalancedBeginEnd)
{
    {
        EXIST_SPAN("obs_test.span", obs::corrId(42));
        obs::instant("obs_test.span_mid", obs::corrId(42));
    }
    std::vector<obs::EventView> got = eventsNamed("obs_test.span");
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].kind, obs::Kind::kBegin);
    EXPECT_EQ(got[1].kind, obs::Kind::kEnd);
    EXPECT_EQ(got[0].corr, got[1].corr);
    EXPECT_GE(got[1].ts, got[0].ts);
}

TEST(ObsTest, RingWrapsKeepingNewestEvents)
{
    // Emit from a dedicated thread so the wrap exercises exactly one
    // ring; more than capacity => the oldest must be discarded and
    // the survivors must be the newest, still in order.
    const std::uint64_t n = 10000;  // > kRingCapacity (8192)
    std::thread t([n] {
        obs::setThreadName("obs_test.wrapper");
        for (std::uint64_t i = 0; i < n; ++i)
            obs::instant("obs_test.wrap", obs::corrId(i), i);
    });
    t.join();
    std::vector<obs::EventView> got = eventsNamed("obs_test.wrap");
    ASSERT_FALSE(got.empty());
    EXPECT_LE(got.size(), 8192u);
    EXPECT_GT(got.size(), 4096u);  // snapshot may trim a torn prefix
    // Newest survives, and payloads are consecutive to the end.
    EXPECT_EQ(got.back().arg, n - 1);
    for (std::size_t i = 1; i < got.size(); ++i)
        EXPECT_EQ(got[i].arg, got[i - 1].arg + 1);
}

TEST(ObsTest, ThreadTotalCountsEverythingEverRecorded)
{
    std::thread t([] {
        obs::setThreadName("obs_test.totals");
        for (int i = 0; i < 9000; ++i)
            obs::instant("obs_test.total", obs::corrId(1));
    });
    t.join();
    bool found = false;
    for (const obs::ThreadSnapshot &snap : obs::snapshot()) {
        if (snap.name != "obs_test.totals")
            continue;
        found = true;
        EXPECT_GE(snap.total, 9000u);
        EXPECT_LE(snap.events.size(), 8192u);
    }
    EXPECT_TRUE(found);
}

TEST(ObsTest, SimEventsCarryNodeAndPayload)
{
    obs::simInstant("obs_test.sim", obs::corrId(9), Cycles{12345}, 7,
                    99);
    std::vector<obs::EventView> got = eventsNamed("obs_test.sim");
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].clock, obs::Clock::kSim);
    EXPECT_EQ(got[0].ts, 12345u);
    EXPECT_EQ(got[0].arg & 0xffffu, 7u);        // node, low 16 bits
    EXPECT_EQ((got[0].arg >> 16) & 0xffffffffu, 99u);  // payload
}

TEST(ObsTest, DisabledPlaneRecordsNothing)
{
    obs::setEnabled(false);
    obs::instant("obs_test.disabled", obs::corrId(1));
    obs::setEnabled(true);
    EXPECT_TRUE(eventsNamed("obs_test.disabled").empty());
    obs::instant("obs_test.reenabled", obs::corrId(1));
    EXPECT_EQ(eventsNamed("obs_test.reenabled").size(), 1u);
}

TEST(ObsTest, FlightDumpRendersRecentEvents)
{
    obs::instant("obs_test.flight_marker", obs::corrId(0xabcd));
    std::string dump = obs::flightDumpText(64);
    EXPECT_NE(dump.find("exist flight recorder"), std::string::npos);
    EXPECT_NE(dump.find("obs_test.flight_marker"), std::string::npos);
}

TEST(ObsTest, ChromeTraceJsonIsWellFormedAndBalanced)
{
    {
        EXIST_SPAN("obs_test_json.span", obs::corrId(1));
    }
    obs::flowBegin("obs_test_json.flow", obs::corrId(2));
    obs::flowEnd("obs_test_json.flow", obs::corrId(2));
    obs::simSpan("obs_test_json.simspan", obs::corrId(3), Cycles{500},
                 Cycles{250}, 3);

    std::string json = obs::chromeTraceJson();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    // The document ends "}\n": a trailing newline after the root brace.
    EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
    // Structural balance (no quoted braces occur in event names).
    long depth = 0;
    bool in_str = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (in_str) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{')
            ++depth;
        else if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("obs_test_json.span"), std::string::npos);
    // Category of an event is its name up to the first dot.
    EXPECT_NE(json.find("\"cat\":\"obs_test_json\""),
              std::string::npos);
    // Sim-span exports as a complete "X" event on the sim node pid.
    EXPECT_NE(json.find("obs_test_json.simspan"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Flow link pair survives the export.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

    // Every B has a matching E: count them per export.
    auto count = [&json](const char *needle) {
        std::size_t n = 0;
        for (std::size_t pos = json.find(needle);
             pos != std::string::npos;
             pos = json.find(needle, pos + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
}

// ---------------------------------------------------------------
// Crash-point integration: the flight recorder must capture the
// events leading up to a crash point. The throwing handler keeps the
// death in-process (the existctl subprocess tests cover real _Exit).

std::string g_crash_dump;

[[noreturn]] void
dumpAndThrow(const std::string &point)
{
    // What defaultHandler does with the crash-dump hook, minus the
    // process exit: render the flight recorder at the crash point.
    g_crash_dump = obs::flightDumpText(64);
    throw durability::crashpoint::CrashInjected{point};
}

TEST(ObsTest, FlightRecorderCapturesCrashPointContext)
{
    namespace cp = durability::crashpoint;
    g_crash_dump.clear();
    cp::Handler prev = cp::setHandler(&dumpAndThrow);
    cp::arm("obs-test-point");

    bool crashed = false;
    try {
        EXIST_SPAN("obs_test.pre_crash", obs::corrId(0xdead));
        obs::instant("obs_test.last_words", obs::corrId(0xdead));
        cp::hit("obs-test-point");
    } catch (const cp::CrashInjected &c) {
        crashed = true;
        EXPECT_EQ(c.point, "obs-test-point");
    }
    cp::disarm();
    cp::setHandler(prev);

    ASSERT_TRUE(crashed);
    // The dump taken *at the crash point* holds the open span and the
    // instant emitted just before the hit.
    EXPECT_NE(g_crash_dump.find("obs_test.pre_crash"),
              std::string::npos);
    EXPECT_NE(g_crash_dump.find("obs_test.last_words"),
              std::string::npos);
}

}  // namespace
}  // namespace exist
