/**
 * @file
 * Tests for EXIST's three components: UMA allocation policy, OTC's
 * O(#cores) control property, and RCO's temporal/spatial policies.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/testbed.h"
#include "core/exist_backend.h"
#include "core/otc.h"
#include "core/rco.h"
#include "core/uma.h"
#include "os/kernel.h"

namespace exist {
namespace {

constexpr std::uint64_t kMb = 1024ull * 1024;

TEST(Uma, CpuSetSplitsBudgetEqually)
{
    Kernel kernel(NodeConfig{.num_cores = 8, .seed = 1});
    auto bin = Testbed::binaryForApp("Search1");  // CPU-set profile
    Process *p =
        kernel.createProcess("Search1", bin, {0, 1, 2, 3});
    UmaConfig cfg;
    cfg.budget_mb = 400;
    UmaPlan plan = UsageAwareMemoryAllocator::plan(kernel, *p, cfg);
    ASSERT_EQ(plan.allocations.size(), 4u);
    for (const CoreAllocation &a : plan.allocations) {
        EXPECT_EQ(a.real_bytes, 100 * kMb);
        EXPECT_TRUE(std::count(p->allowedCores().begin(),
                               p->allowedCores().end(), a.core));
    }
    EXPECT_EQ(plan.total_real_bytes, 400 * kMb);
}

TEST(Uma, PerCoreBufferIsClamped)
{
    Kernel kernel(NodeConfig{.num_cores = 4, .seed = 1});
    auto bin = Testbed::binaryForApp("Search1");
    Process *p = kernel.createProcess("Search1", bin, {0});
    UmaConfig cfg;
    cfg.budget_mb = 1000;  // would give 1000 MB to one core
    UmaPlan plan = UsageAwareMemoryAllocator::plan(kernel, *p, cfg);
    ASSERT_EQ(plan.allocations.size(), 1u);
    EXPECT_EQ(plan.allocations[0].real_bytes,
              cfg.max_core_buffer_mb * kMb);

    cfg.budget_mb = 16;  // 16/1 is fine, but with 8 mapped cores...
    Process *wide =
        kernel.createProcess("Search1b", bin, {0, 1, 2, 3});
    plan = UsageAwareMemoryAllocator::plan(kernel, *wide, cfg);
    for (const CoreAllocation &a : plan.allocations)
        EXPECT_EQ(a.real_bytes, cfg.min_core_buffer_mb * kMb);
}

TEST(Uma, CpuShareSamplesRequestedFraction)
{
    Kernel kernel(NodeConfig{.num_cores = 16, .seed = 2});
    auto bin = Testbed::binaryForApp("Search2");  // CPU-share profile
    Process *p = kernel.createProcess("Search2", bin, {});
    for (double ratio : {0.3, 0.5, 0.8, 1.0}) {
        UmaConfig cfg;
        cfg.sample_ratio = ratio;
        UmaPlan plan = UsageAwareMemoryAllocator::plan(kernel, *p, cfg);
        EXPECT_EQ(plan.allocations.size(),
                  static_cast<std::size_t>(std::ceil(16 * ratio)));
        // No duplicate cores.
        std::set<CoreId> cores;
        for (const CoreAllocation &a : plan.allocations)
            cores.insert(a.core);
        EXPECT_EQ(cores.size(), plan.allocations.size());
    }
}

TEST(Uma, CpuShareIncludesCoresRunningTheTarget)
{
    Kernel kernel(NodeConfig{.num_cores = 8, .seed = 3});
    auto bin = Testbed::binaryForApp("Search2");
    Process *p = kernel.createProcess("Search2", bin, {});
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.runFor(secondsToCycles(0.01));

    // Find where the thread is running.
    CoreId running = kInvalidId;
    for (int c = 0; c < 8; ++c)
        if (kernel.runningOn(c) != nullptr)
            running = c;
    ASSERT_NE(running, kInvalidId);

    UmaConfig cfg;
    cfg.sample_ratio = 0.25;  // only 2 of 8 cores
    UmaPlan plan = UsageAwareMemoryAllocator::plan(kernel, *p, cfg);
    bool included = false;
    for (const CoreAllocation &a : plan.allocations)
        included = included || a.core == running;
    EXPECT_TRUE(included) << "compulsory current core missing";
}

TEST(Otc, ControlOpsAreBoundedByCores)
{
    // The headline property: many context switches, few control ops.
    Kernel kernel(NodeConfig{.num_cores = 2, .seed = 4});
    auto bin = Testbed::binaryForApp("om");
    Process *target = kernel.createProcess("om", bin, {0, 1});
    Process *noise =
        kernel.createProcess("xz", Testbed::binaryForApp("xz"), {0, 1});
    kernel.startThread(kernel.createThread(target, nullptr));
    for (int i = 0; i < 3; ++i)
        kernel.startThread(kernel.createThread(noise, nullptr));
    kernel.runFor(secondsToCycles(0.02));

    ExistBackend backend;
    SessionSpec spec;
    spec.target = target;
    spec.period = secondsToCycles(0.3);
    std::uint64_t switches_before = kernel.totalContextSwitches();
    backend.start(kernel, spec);
    kernel.runFor(spec.period + secondsToCycles(0.01));
    std::uint64_t switches =
        kernel.totalContextSwitches() - switches_before;

    EXPECT_GT(switches, 200u);  // plenty of sched churn
    // Enable once per core + disable once per enabled core.
    EXPECT_LE(backend.controller().controlOps(),
              2u * 2u /* cores */);
    EXPECT_FALSE(kernel.tracer(0).enabled());
    EXPECT_FALSE(kernel.tracer(1).enabled());
}

TEST(Otc, HrtStopsTracingAtPeriodEnd)
{
    Kernel kernel(NodeConfig{.num_cores = 1, .seed = 5});
    auto bin = Testbed::binaryForApp("ex");
    Process *p = kernel.createProcess("ex", bin, {0});
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.runFor(secondsToCycles(0.01));

    ExistBackend backend;
    SessionSpec spec;
    spec.target = p;
    spec.period = secondsToCycles(0.05);
    backend.start(kernel, spec);
    kernel.runFor(secondsToCycles(0.02));
    EXPECT_TRUE(kernel.tracer(0).enabled());
    std::uint64_t bytes_mid = kernel.tracer(0).output().bytesAccepted();
    kernel.runFor(secondsToCycles(0.05));
    EXPECT_FALSE(kernel.tracer(0).enabled());
    std::uint64_t bytes_end = kernel.tracer(0).output().bytesAccepted();
    EXPECT_GT(bytes_end, bytes_mid);
    // Nothing more is traced after the HRT fired.
    kernel.runFor(secondsToCycles(0.05));
    EXPECT_EQ(kernel.tracer(0).output().bytesAccepted(), bytes_end);
}

TEST(Otc, OnlyPlannedCoresAreEnabled)
{
    Kernel kernel(NodeConfig{.num_cores = 4, .seed = 6});
    auto bin = Testbed::binaryForApp("om");
    Process *p = kernel.createProcess("om", bin, {0, 1, 2, 3});
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.runFor(secondsToCycles(0.01));

    OperationAwareController otc;
    OperationAwareController::Config cfg;
    cfg.target = p;
    cfg.period = secondsToCycles(0.05);
    cfg.plan.allocations = {CoreAllocation{2, 8 * kMb}};
    otc.start(kernel, cfg);
    kernel.runFor(secondsToCycles(0.06));
    for (CoreId c : otc.enabledCores())
        EXPECT_EQ(c, 2);
    otc.stop(kernel);
}

TEST(Rco, PeriodGrowsWithComplexityAndClamps)
{
    RepetitionAwareCoverageOptimizer rco;
    AppDeployment simple{.app = "a", .priority = 0.0,
                         .binary_bytes = 1 << 20,
                         .past_incidents = 0, .replicas = 1};
    AppDeployment complex{.app = "b", .priority = 1.0,
                          .binary_bytes = 1000ull << 20,
                          .past_incidents = 10, .replicas = 1};
    Cycles p_simple = rco.decidePeriod(simple);
    Cycles p_complex = rco.decidePeriod(complex);
    EXPECT_LT(p_simple, p_complex);
    EXPECT_GE(p_simple, rco.config().min_period);
    EXPECT_LE(p_complex, rco.config().max_period);
    EXPECT_NEAR(rco.complexity(complex), 1.0, 1e-9);
}

TEST(Rco, ReferenceOverheadShrinksPeriod)
{
    RepetitionAwareCoverageOptimizer rco;
    AppDeployment d{.app = "a", .priority = 0.9,
                    .binary_bytes = 500ull << 20, .past_incidents = 5,
                    .replicas = 4};
    d.reference_overhead = 0.001;
    Cycles cheap = rco.decidePeriod(d);
    d.reference_overhead = 0.02;  // 10x over budget
    Cycles expensive = rco.decidePeriod(d);
    EXPECT_LT(expensive, cheap);
}

TEST(Rco, AnomalyTracesEveryRepetition)
{
    RepetitionAwareCoverageOptimizer rco;
    AppDeployment d{.app = "a", .priority = 0.2,
                    .binary_bytes = 1 << 20, .past_incidents = 0,
                    .replicas = 12};
    d.anomaly = true;
    EXPECT_EQ(rco.decideRepetitions(d), 12);
    d.anomaly = false;
    int profiled = rco.decideRepetitions(d);
    EXPECT_LT(profiled, 12);
    EXPECT_GE(profiled, rco.config().deployment_threshold);
}

TEST(Rco, HigherPriorityTracesMoreRepetitions)
{
    RepetitionAwareCoverageOptimizer rco;
    AppDeployment lo{.app = "a", .priority = 0.1,
                     .binary_bytes = 1 << 20, .past_incidents = 0,
                     .replicas = 40};
    AppDeployment hi = lo;
    hi.priority = 1.0;
    EXPECT_LE(rco.decideRepetitions(lo), rco.decideRepetitions(hi));
}

TEST(Rco, SelectionIsUniqueSortedAndSized)
{
    RepetitionAwareCoverageOptimizer rco;
    Rng rng(7);
    AppDeployment d{.app = "a", .priority = 0.8,
                    .binary_bytes = 100ull << 20, .past_incidents = 2,
                    .replicas = 20};
    std::vector<int> workers = rco.selectWorkers(d, rng);
    EXPECT_EQ(static_cast<int>(workers.size()),
              rco.decideRepetitions(d));
    for (std::size_t i = 1; i < workers.size(); ++i)
        EXPECT_LT(workers[i - 1], workers[i]);
    for (int w : workers) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, 20);
    }
}

TEST(ExistBackendTest, CollectsPerPlannedCore)
{
    Kernel kernel(NodeConfig{.num_cores = 2, .seed = 8});
    auto bin = Testbed::binaryForApp("ex");
    Process *p = kernel.createProcess("ex", bin, {0, 1});
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.runFor(secondsToCycles(0.01));

    ExistBackend backend;
    SessionSpec spec;
    spec.target = p;
    spec.period = secondsToCycles(0.05);
    backend.start(kernel, spec);
    kernel.runFor(spec.period + secondsToCycles(0.01));
    backend.stop(kernel);

    auto traces = backend.collect();
    EXPECT_EQ(traces.size(), backend.plan().allocations.size());
    std::uint64_t total = 0;
    for (const CollectedTrace &ct : traces)
        total += ct.bytes.size();
    EXPECT_GT(total, 0u);
    EXPECT_TRUE(backend.producesInstructionTrace());
    // The five-tuple sidecar was captured with the session.
    EXPECT_GE(backend.switchLog().size(), 1u);
}

}  // namespace
}  // namespace exist
