/**
 * @file
 * Cluster-layer tests: CRD parsing, storage backends, placement, and
 * the master's reconcile loop end to end.
 */
#include <gtest/gtest.h>

#include "cluster/crd.h"
#include "cluster/master.h"
#include "cluster/storage.h"

namespace exist {
namespace {

TEST(Crd, ParsesManifest)
{
    TraceRequest req = TraceRequest::parse(
        "app=Search1 anomaly=true period_ms=250 budget_mb=300 "
        "ring=true core_sample_ratio=0.5");
    EXPECT_EQ(req.app, "Search1");
    EXPECT_TRUE(req.anomaly);
    EXPECT_EQ(req.period_override, 250 * kCyclesPerMs);
    EXPECT_EQ(req.budget_mb, 300u);
    EXPECT_TRUE(req.ring_buffers);
    EXPECT_DOUBLE_EQ(req.core_sample_ratio, 0.5);
    EXPECT_EQ(req.phase, RequestPhase::kPending);
}

TEST(Crd, DefaultsAndRoundTrip)
{
    TraceRequest req = TraceRequest::parse("app=Cache");
    EXPECT_FALSE(req.anomaly);
    EXPECT_EQ(req.period_override, 0u);
    EXPECT_EQ(req.budget_mb, 500u);
    TraceRequest again = TraceRequest::parse(req.toManifest());
    EXPECT_EQ(again.app, req.app);
    EXPECT_EQ(again.budget_mb, req.budget_mb);
}

TEST(Crd, RejectsMalformedManifests)
{
    EXPECT_DEATH(TraceRequest::parse("appSearch1"), "malformed");
    EXPECT_DEATH(TraceRequest::parse("app=x frobnicate=1"), "unknown");
    EXPECT_DEATH(TraceRequest::parse("anomaly=true"), "missing app");
}

TEST(ObjectStoreTest, PutGetListAndOverwrite)
{
    ObjectStore oss;
    oss.put("traces/a/1", {1, 2, 3});
    oss.put("traces/a/2", {4, 5});
    oss.put("traces/b/1", {6});
    EXPECT_TRUE(oss.exists("traces/a/1"));
    EXPECT_FALSE(oss.exists("traces/c"));
    EXPECT_EQ(oss.get("traces/a/2").size(), 2u);
    EXPECT_EQ(oss.listPrefix("traces/a/").size(), 2u);
    EXPECT_EQ(oss.totalBytes(), 6u);
    oss.put("traces/a/1", {9, 9, 9, 9});  // overwrite adjusts size
    EXPECT_EQ(oss.totalBytes(), 7u);
    EXPECT_EQ(oss.objectCount(), 3u);
}

TEST(OdpsTableTest, QueriesByAppAndRequest)
{
    OdpsTable odps;
    odps.insert(TraceRow{.app = "a", .node = 1, .request_id = 10});
    odps.insert(TraceRow{.app = "a", .node = 2, .request_id = 11});
    odps.insert(TraceRow{.app = "b", .node = 1, .request_id = 10});
    EXPECT_EQ(odps.queryApp("a").size(), 2u);
    EXPECT_EQ(odps.queryRequest(10).size(), 2u);
    EXPECT_EQ(odps.queryApp("c").size(), 0u);
}

TEST(ClusterTest, RoundRobinPlacement)
{
    Cluster cluster(ClusterConfig{.num_nodes = 4});
    cluster.deploy("a", 6);
    cluster.deploy("b", 2);
    EXPECT_EQ(cluster.replicasOf("a"), 6);
    EXPECT_EQ(cluster.replicasOf("b"), 2);
    // Six replicas over four nodes: max spread.
    int per_node[4] = {0, 0, 0, 0};
    for (const PodInstance *p : cluster.podsOf("a"))
        ++per_node[p->node];
    for (int n : per_node)
        EXPECT_GE(n, 1);
    EXPECT_EQ(cluster.podsOn(0).size() + cluster.podsOn(1).size() +
                  cluster.podsOn(2).size() + cluster.podsOn(3).size(),
              8u);
    EXPECT_EQ(cluster.deployedApps().size(), 2u);
}

TEST(ClusterTest, MetadataComesFromCatalog)
{
    Cluster cluster(ClusterConfig{.num_nodes = 2});
    cluster.deploy("Search1", 3);
    AppDeployment meta = cluster.metadataFor("Search1", true);
    EXPECT_EQ(meta.replicas, 3);
    EXPECT_TRUE(meta.anomaly);
    EXPECT_GT(meta.priority, 0.5);
    EXPECT_DEATH(cluster.metadataFor("Cache"), "not deployed");
}

TEST(MasterTest, ReconcileLifecycle)
{
    ClusterConfig cc;
    cc.num_nodes = 3;
    cc.cores_per_node = 4;
    Cluster cluster(cc);
    cluster.deploy("Cache", 3);
    Master master(&cluster);

    std::uint64_t id = master.apply(
        "app=Cache anomaly=true period_ms=60");
    EXPECT_EQ(master.request(id)->phase, RequestPhase::kPending);
    master.reconcile();
    EXPECT_EQ(master.request(id)->phase, RequestPhase::kCompleted);

    const TraceReport *rep = master.report(id);
    ASSERT_NE(rep, nullptr);
    EXPECT_EQ(rep->app, "Cache");
    EXPECT_EQ(rep->traced_nodes.size(), 3u);  // anomaly: all replicas
    EXPECT_EQ(rep->period, 60 * kCyclesPerMs);
    EXPECT_GT(rep->merged_accuracy, 0.5);
    EXPECT_GT(rep->total_trace_bytes, 0u);
    EXPECT_EQ(master.sessionsRun(), 3u);

    // Data plane artifacts exist and are queryable.
    EXPECT_GE(master.oss().objectCount(), 3u);
    EXPECT_EQ(master.odps().queryRequest(id).size(), 3u);
    EXPECT_EQ(master.oss().listPrefix("traces/Cache/").size(),
              master.oss().objectCount());
}

TEST(MasterTest, UndeployedAppFails)
{
    Cluster cluster(ClusterConfig{.num_nodes = 2});
    Master master(&cluster);
    std::uint64_t id = master.apply("app=NotThere");
    // Parsing accepts it (the app name is opaque until reconcile).
    master.reconcile();
    EXPECT_EQ(master.request(id)->phase, RequestPhase::kFailed);
    EXPECT_EQ(master.report(id), nullptr);
}

TEST(MasterTest, FootprintScalesSubLinearly)
{
    Cluster small(ClusterConfig{.num_nodes = 10});
    Cluster big(ClusterConfig{.num_nodes = 1000});
    Master m1(&small), m2(&big);
    auto f1 = m1.managementFootprint();
    auto f2 = m2.managementFootprint();
    EXPECT_LT(f1.cores, 0.005);  // paper: <3e-3 cores at ten nodes
    EXPECT_LT(f2.cores / 1000.0, 0.001);  // per-mille at scale
    EXPECT_GT(f2.memory_mb, f1.memory_mb);
}

TEST(MasterTest, PersonalizedOptionsAreHonored)
{
    // Ring buffers + explicit core-sampling ratio flow from the CRD
    // manifest all the way into the node session.
    ClusterConfig cc;
    cc.num_nodes = 2;
    cc.cores_per_node = 4;
    Cluster cluster(cc);
    cluster.deploy("Search2", 2);  // CPU-share profile
    Master master(&cluster);
    std::uint64_t id = master.apply(
        "app=Search2 anomaly=true period_ms=60 ring=true "
        "core_sample_ratio=0.5 budget_mb=64");
    master.reconcile();
    EXPECT_EQ(master.request(id)->phase, RequestPhase::kCompleted);
    const TraceReport *rep = master.report(id);
    ASSERT_NE(rep, nullptr);
    EXPECT_GT(rep->total_trace_bytes, 0u);
    // Half of the four cores sampled per worker: the OSS holds two
    // core objects per traced node.
    auto keys = master.oss().listPrefix("traces/Search2/");
    EXPECT_EQ(keys.size(), 2u * 2u);
}

TEST(MasterTest, RepeatedReconcileIsIdempotent)
{
    ClusterConfig cc;
    cc.num_nodes = 2;
    cc.cores_per_node = 4;
    Cluster cluster(cc);
    cluster.deploy("Cache", 2);
    Master master(&cluster);
    std::uint64_t id =
        master.apply("app=Cache anomaly=true period_ms=50");
    master.reconcile();
    std::uint64_t sessions = master.sessionsRun();
    master.reconcile();  // nothing pending: no new work
    EXPECT_EQ(master.sessionsRun(), sessions);
    EXPECT_EQ(master.odps().queryRequest(id).size(), 2u);
}

}  // namespace
}  // namespace exist
