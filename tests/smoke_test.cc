/**
 * @file
 * End-to-end smoke tests: the full pipeline (workload -> kernel ->
 * tracer -> decode -> accuracy) on small configurations.
 */
#include <gtest/gtest.h>

#include "analysis/testbed.h"
#include "util/logging.h"

namespace exist {
namespace {

TEST(Smoke, ComputeWorkloadRuns)
{
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    spec.workloads.push_back(WorkloadSpec{.app = "ex", .target = true});
    spec.backend = "Oracle";
    spec.session.period = secondsToCycles(0.05);
    spec.warmup = secondsToCycles(0.01);

    ExperimentResult r = Testbed::run(spec);
    EXPECT_GT(r.at("ex").insns, 1'000'000u);
    EXPECT_GT(r.node_utilization, 0.2);
}

TEST(Smoke, ExistDecodesWithHighAccuracy)
{
    ExperimentSpec spec;
    spec.node.num_cores = 2;
    spec.workloads.push_back(WorkloadSpec{.app = "ex", .target = true});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.05);
    spec.warmup = secondsToCycles(0.01);
    spec.decode = true;
    spec.record_paths = true;

    ExperimentResult r = Testbed::run(spec);
    EXPECT_GT(r.truth_branches, 10'000u);
    EXPECT_GT(r.decoded_branches, 0u);
    EXPECT_GT(r.accuracy_coverage, 0.5);
    EXPECT_GT(r.accuracy_wall, 0.8);
    // Everything decoded must have really happened, in order.
    EXPECT_GT(r.path_precision, 0.99);
}

TEST(Smoke, ExistOverheadBelowBaselines)
{
    auto slowdown = [](const std::string &backend) {
        ExperimentSpec spec;
        spec.node.num_cores = 2;
        spec.workloads.push_back(
            WorkloadSpec{.app = "om", .target = true});
        spec.backend = backend;
        spec.session.period = secondsToCycles(0.1);
        spec.warmup = secondsToCycles(0.02);
        auto cmp = Testbed::compare(spec);
        return cmp.slowdownOf("om");
    };

    double exist = slowdown("EXIST");
    double nht = slowdown("NHT");
    double stasam = slowdown("StaSam");

    EXPECT_LT(exist, stasam);
    EXPECT_LT(exist, nht);
    EXPECT_LT(exist, 1.02);  // per-mille-level target
    EXPECT_GT(nht, 1.02);
}

}  // namespace
}  // namespace exist
