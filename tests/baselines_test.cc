/**
 * @file
 * Baseline backend tests: each scheme's instrumentation fires where it
 * should, costs what it should, and produces its characteristic data.
 */
#include <gtest/gtest.h>

#include "analysis/testbed.h"
#include "baselines/ebpf.h"
#include "baselines/nht.h"
#include "baselines/oracle.h"
#include "baselines/stasam.h"
#include "decode/flow_reconstructor.h"
#include "os/kernel.h"

namespace exist {
namespace {

struct Rig {
    Kernel kernel;
    std::shared_ptr<const ProgramBinary> bin;
    Process *proc;

    explicit Rig(const char *app = "om", int cores = 2, int threads = 1)
        : kernel(NodeConfig{.num_cores = cores, .seed = 13}),
          bin(Testbed::binaryForApp(app)),
          proc(kernel.createProcess(app, bin, {}))
    {
        for (int i = 0; i < threads; ++i)
            kernel.startThread(kernel.createThread(proc, nullptr));
        kernel.runFor(secondsToCycles(0.01));
    }
};

TEST(Oracle, DoesNothing)
{
    Rig rig;
    OracleBackend backend;
    SessionSpec spec;
    spec.target = rig.proc;
    spec.period = secondsToCycles(0.02);
    backend.start(rig.kernel, spec);
    EXPECT_TRUE(backend.active());
    rig.kernel.runFor(spec.period);
    backend.stop(rig.kernel);
    BackendStats s = backend.stats();
    EXPECT_EQ(s.trace_real_bytes, 0u);
    EXPECT_EQ(s.msr_writes, 0u);
    EXPECT_FALSE(backend.producesInstructionTrace());
}

TEST(StaSam, SampleCountTracksFrequencyAndBusyCores)
{
    Rig rig("om", 2, 2);  // two busy cores
    StaSamBackend backend;
    SessionSpec spec;
    spec.target = rig.proc;
    spec.period = secondsToCycles(0.25);
    backend.start(rig.kernel, spec);
    rig.kernel.runFor(spec.period + secondsToCycles(0.01));
    EXPECT_FALSE(backend.active());  // stopped itself at the period

    // ~3999 Hz x 0.25 s x 2 busy cores.
    double expected = 3999.0 * 0.25 * 2;
    EXPECT_NEAR(static_cast<double>(backend.stats().samples), expected,
                expected * 0.1);
    EXPECT_EQ(backend.stats().trace_real_bytes,
              backend.stats().samples * StaSamBackend::kBytesPerSample);
    // The statistical profile covers the target's functions.
    EXPECT_GT(backend.functionSamples().size(), 10u);
}

TEST(StaSam, IdleCoresTakeNoSamples)
{
    Rig rig("om", 4, 1);  // one busy, three idle cores
    StaSamBackend backend;
    SessionSpec spec;
    spec.target = rig.proc;
    spec.period = secondsToCycles(0.2);
    backend.start(rig.kernel, spec);
    rig.kernel.runFor(spec.period + secondsToCycles(0.01));
    double expected = 3999.0 * 0.2;  // one busy core only
    EXPECT_NEAR(static_cast<double>(backend.stats().samples), expected,
                expected * 0.15);
}

TEST(Ebpf, CountsEverySyscallSystemWide)
{
    Rig rig("mc", 2, 2);
    // Add a second, non-target process: eBPF's sys_enter is global.
    Process *other =
        rig.kernel.createProcess("ms", Testbed::binaryForApp("ms"), {});
    rig.kernel.startThread(rig.kernel.createThread(other, nullptr));

    EbpfBackend backend;
    SessionSpec spec;
    spec.target = rig.proc;
    spec.period = secondsToCycles(0.1);
    backend.start(rig.kernel, spec);
    rig.kernel.runFor(spec.period + secondsToCycles(0.01));

    TaskCounters total = rig.kernel.aggregateCounters();
    // All syscalls during the window were probed (the window is a
    // subset of the run, so probed <= total).
    EXPECT_GT(backend.stats().probe_hits, 0u);
    EXPECT_LE(backend.stats().probe_hits, total.syscalls);
    EXPECT_GE(backend.targetEvents(), 1u);
    EXPECT_LT(backend.targetEvents(), backend.stats().probe_hits);
}

TEST(Nht, ReconfiguresAtEverySwitch)
{
    // Overcommit one core so the target switches often.
    Rig rig("om", 1, 2);
    NhtBackend backend;
    SessionSpec spec;
    spec.target = rig.proc;
    spec.period = secondsToCycles(0.2);
    backend.start(rig.kernel, spec);
    rig.kernel.runFor(spec.period + secondsToCycles(0.01));

    BackendStats s = backend.stats();
    // Both threads timeshare: ~200 quantum switches in 0.2 s, and each
    // sched-in of a target thread is a full control sequence.
    EXPECT_GT(s.control_ops, 100u);
    // Each attach is a full disable/configure/enable MSR
    // sequence; detaches add one more write.
    EXPECT_GT(s.msr_writes, s.control_ops * 2);
    EXPECT_GT(s.pmis, 0u);  // drains on switch-out
    EXPECT_GT(s.trace_real_bytes, 1u << 20);
}

TEST(Nht, PerThreadDumpsDecodeCleanly)
{
    Rig rig("om", 1, 2);
    NhtBackend backend;
    SessionSpec spec;
    spec.target = rig.proc;
    spec.period = secondsToCycles(0.1);
    backend.start(rig.kernel, spec);
    rig.kernel.runFor(spec.period + secondsToCycles(0.01));
    backend.stop(rig.kernel);

    FlowReconstructor rec(rig.bin.get());
    std::uint64_t branches = 0, errors = 0;
    auto traces = backend.collect();
    EXPECT_EQ(traces.size(), 2u);  // one dump per target thread
    for (const CollectedTrace &ct : traces) {
        ASSERT_NE(ct.thread, kInvalidId);
        DecodedTrace dt = rec.decode(ct.bytes);
        branches += dt.branches_decoded;
        errors += dt.decode_errors;
    }
    EXPECT_GT(branches, 100'000u);
    // Per-thread buffers drain at every switch-out: near-lossless.
    EXPECT_LT(static_cast<double>(errors),
              static_cast<double>(branches) * 0.01);
}

TEST(Nht, AuxSizeIsConfigurable)
{
    auto run = [](std::uint64_t aux_mb) {
        Rig rig("om", 1, 1);
        NhtBackend backend;
        SessionSpec spec;
        spec.target = rig.proc;
        spec.period = secondsToCycles(0.1);
        spec.nht_aux_mb = aux_mb;
        backend.start(rig.kernel, spec);
        rig.kernel.runFor(spec.period + secondsToCycles(0.01));
        backend.stop(rig.kernel);
        return backend.stats().pmis;
    };
    // Smaller aux buffers fill (and PMI) more often.
    EXPECT_GT(run(1), run(16));
}

TEST(Backends, FactoryMakesAllAndRejectsUnknown)
{
    for (const char *name :
         {"Oracle", "EXIST", "StaSam", "eBPF", "NHT"}) {
        auto backend = Testbed::makeBackend(name);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->name(), name);
    }
    EXPECT_DEATH(Testbed::makeBackend("perf"), "unknown backend");
}

}  // namespace
}  // namespace exist
