/**
 * @file
 * Lock-order validator tests (util/lock_order.h): the rank-inversion,
 * recursion and same-rank-cycle detectors via the raw hook API, the
 * exist::Mutex integration under EXIST_DEBUG_LOCK_ORDER, and the
 * zero-overhead guarantee when the hooks are compiled out.
 */
#include "util/lock_order.h"

#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace exist {
namespace {

using lockorder::LockRank;
using lockorder::Violation;

int
rank(LockRank r)
{
    return static_cast<int>(r);
}

/** Records violations instead of panicking; restores state on exit. */
class LockOrderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        lockorder::resetThread();
        lockorder::forgetEdges();
        previous_ = lockorder::setViolationHandler(
            [this](const Violation &v) { violations_.push_back(v); });
    }

    void
    TearDown() override
    {
        lockorder::setViolationHandler(std::move(previous_));
        lockorder::resetThread();
        lockorder::forgetEdges();
    }

    std::vector<Violation> violations_;

  private:
    lockorder::Handler previous_;
};

TEST_F(LockOrderTest, CleanAscendingOrderPasses)
{
    int pool = 0, shard = 0, metrics = 0;
    lockorder::onAcquire(&pool, rank(LockRank::kPool), "pool");
    lockorder::onAcquire(&shard, rank(LockRank::kShard), "shard");
    lockorder::onAcquire(&metrics, rank(LockRank::kMetrics), "metrics");
    EXPECT_EQ(lockorder::heldCount(), 3u);
    lockorder::onRelease(&metrics);
    lockorder::onRelease(&shard);
    lockorder::onRelease(&pool);
    EXPECT_EQ(lockorder::heldCount(), 0u);
    EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, RankInversionDetected)
{
    int shard = 0, pool = 0;
    lockorder::onAcquire(&shard, rank(LockRank::kShard), "shard");
    lockorder::onAcquire(&pool, rank(LockRank::kPool), "pool");
    ASSERT_EQ(violations_.size(), 1u);
    EXPECT_EQ(violations_[0].kind, Violation::Kind::kRankInversion);
    // The report names both ends of the inversion.
    EXPECT_NE(violations_[0].message.find("pool"), std::string::npos);
    EXPECT_NE(violations_[0].message.find("shard"), std::string::npos);
    lockorder::onRelease(&pool);
    lockorder::onRelease(&shard);
}

TEST_F(LockOrderTest, RecursiveAcquireDetected)
{
    int mu = 0;
    lockorder::onAcquire(&mu, rank(LockRank::kLeaf), "leaf");
    lockorder::onAcquire(&mu, rank(LockRank::kLeaf), "leaf");
    ASSERT_EQ(violations_.size(), 1u);
    EXPECT_EQ(violations_[0].kind, Violation::Kind::kRecursive);
    lockorder::onRelease(&mu);
    lockorder::onRelease(&mu);
    EXPECT_EQ(lockorder::heldCount(), 0u);
}

TEST_F(LockOrderTest, SameRankSingleOrderTolerated)
{
    int a = 0, b = 0;
    for (int i = 0; i < 3; ++i) {
        lockorder::onAcquire(&a, rank(LockRank::kLeaf), "cache.a");
        lockorder::onAcquire(&b, rank(LockRank::kLeaf), "cache.b");
        lockorder::onRelease(&b);
        lockorder::onRelease(&a);
    }
    EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, SameRankCycleDetected)
{
    int a = 0, b = 0;
    lockorder::onAcquire(&a, rank(LockRank::kLeaf), "cache.a");
    lockorder::onAcquire(&b, rank(LockRank::kLeaf), "cache.b");
    lockorder::onRelease(&b);
    lockorder::onRelease(&a);
    EXPECT_TRUE(violations_.empty());

    // The reverse nesting completes a deadlock candidate even though
    // this single-threaded pass can never actually deadlock.
    lockorder::onAcquire(&b, rank(LockRank::kLeaf), "cache.b");
    lockorder::onAcquire(&a, rank(LockRank::kLeaf), "cache.a");
    ASSERT_EQ(violations_.size(), 1u);
    EXPECT_EQ(violations_[0].kind, Violation::Kind::kSameRankCycle);
    lockorder::onRelease(&a);
    lockorder::onRelease(&b);
}

TEST_F(LockOrderTest, OutOfOrderReleaseIsLegal)
{
    // Hand-over-hand: release the earlier lock while keeping the later.
    int a = 0, b = 0;
    lockorder::onAcquire(&a, rank(LockRank::kPool), "a");
    lockorder::onAcquire(&b, rank(LockRank::kShard), "b");
    lockorder::onRelease(&a);
    EXPECT_EQ(lockorder::heldCount(), 1u);
    lockorder::onRelease(&b);
    EXPECT_EQ(lockorder::heldCount(), 0u);
    EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, ReleaseOfUntrackedLockIgnored)
{
    int stranger = 0;
    lockorder::onRelease(&stranger);
    EXPECT_EQ(lockorder::heldCount(), 0u);
    EXPECT_TRUE(violations_.empty());
}

#if defined(EXIST_DEBUG_LOCK_ORDER)

TEST_F(LockOrderTest, MutexHooksReportInversion)
{
    Mutex shard(LockRank::kShard, "test.shard");
    Mutex pool(LockRank::kPool, "test.pool");
    {
        MutexLock outer(shard);
        MutexLock inner(pool);  // descends the hierarchy: flagged
        EXPECT_EQ(lockorder::heldCount(), 2u);
    }
    ASSERT_EQ(violations_.size(), 1u);
    EXPECT_EQ(violations_[0].kind, Violation::Kind::kRankInversion);
    EXPECT_EQ(lockorder::heldCount(), 0u);
}

TEST_F(LockOrderTest, MutexHooksAcceptHierarchy)
{
    // The documented nesting the code actually performs: commit log,
    // then shard state, then a store stripe, then metrics.
    Mutex log(LockRank::kCommitLog, "test.log");
    Mutex shard(LockRank::kShard, "test.shard");
    Mutex store(LockRank::kStore, "test.store");
    Mutex metrics(LockRank::kMetrics, "test.metrics");
    {
        MutexLock l1(log);
        MutexLock l2(shard);
        MutexLock l3(store);
        MutexLock l4(metrics);
        EXPECT_EQ(lockorder::heldCount(), 4u);
    }
    EXPECT_TRUE(violations_.empty());
    EXPECT_EQ(lockorder::heldCount(), 0u);
}

TEST_F(LockOrderTest, CondVarWaitReacquiresThroughHooks)
{
    // CondVar::wait unlocks and relocks through the instrumented
    // Mutex, so a satisfied wait leaves the held stack unchanged.
    Mutex mu(LockRank::kLeaf, "test.cv");
    CondVar cv;
    {
        MutexLock lk(mu);
        cv.notify_all();  // nothing waits; just exercise the pair
        EXPECT_EQ(lockorder::heldCount(), 1u);
    }
    EXPECT_EQ(lockorder::heldCount(), 0u);
    EXPECT_TRUE(violations_.empty());
}

#else  // !EXIST_DEBUG_LOCK_ORDER

// Release builds must pay nothing for the validator: no rank/name
// storage in the mutex...
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "exist::Mutex must be layout-identical to std::mutex "
              "when EXIST_DEBUG_LOCK_ORDER is off");

TEST_F(LockOrderTest, HooksCompiledOut)
{
    // ...and no hook calls: locking never touches the held stack.
    Mutex mu(LockRank::kShard, "test.noop");
    MutexLock lk(mu);
    EXPECT_EQ(lockorder::heldCount(), 0u);
    EXPECT_TRUE(violations_.empty());
}

#endif  // EXIST_DEBUG_LOCK_ORDER

}  // namespace
}  // namespace exist
