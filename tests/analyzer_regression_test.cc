/**
 * @file
 * Regression tests for defects surfaced by tools/analyzer
 * (exist-analyzer).  Each test pins the concrete fix for a finding so
 * the defect cannot quietly return once the allowlist or the checks
 * evolve.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/testbed.h"
#include "baselines/nht.h"
#include "os/kernel.h"

namespace exist {
namespace {

// exist-analyzer [determinism/unordered-taint-return], nht.cc:
// NhtBackend::collect() used to return traces in unordered_map
// iteration order, so per-thread reports compared across runs (or
// across libstdc++ versions) in a scrambled order.  collect() must
// hand traces back sorted by thread id.
TEST(AnalyzerRegression, NhtCollectReturnsThreadSortedTraces)
{
    Kernel kernel(NodeConfig{.num_cores = 2, .seed = 13});
    auto bin = Testbed::binaryForApp("om");
    Process *proc = kernel.createProcess("om", bin, {});
    // Enough threads that hash order and id order disagree with
    // overwhelming probability.
    for (int i = 0; i < 6; ++i)
        kernel.startThread(kernel.createThread(proc, nullptr));
    kernel.runFor(secondsToCycles(0.01));

    NhtBackend backend;
    SessionSpec spec;
    spec.target = proc;
    spec.period = secondsToCycles(0.1);
    backend.start(kernel, spec);
    kernel.runFor(spec.period + secondsToCycles(0.01));
    backend.stop(kernel);

    auto traces = backend.collect();
    ASSERT_EQ(traces.size(), 6u);
    std::vector<ThreadId> order;
    for (const CollectedTrace &ct : traces)
        order.push_back(ct.thread);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
        << "collect() must not leak unordered_map iteration order";
    EXPECT_TRUE(std::adjacent_find(order.begin(), order.end()) ==
                order.end())
        << "one trace per thread";
}

}  // namespace
}  // namespace exist
