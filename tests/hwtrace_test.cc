/**
 * @file
 * Tests for the hardware-tracer model: MSR legality rules, ToPA
 * semantics (STOP, ring, PMI, drain), packet writer state machines and
 * the tracer's PacketEn filter transitions.
 */
#include <gtest/gtest.h>

#include "decode/flow_reconstructor.h"
#include "decode/packet_parser.h"
#include "hwtrace/msr.h"
#include "hwtrace/packet_writer.h"
#include "hwtrace/topa.h"
#include "hwtrace/tracer.h"
#include "workload/execution.h"

namespace exist {
namespace {

TEST(Msr, ConfigWhileEnabledFaults)
{
    MsrFile msrs;
    ASSERT_TRUE(msrs.write(RtitMsr::kCtl, rtit_ctl::kTraceEn).ok);
    // Changing CR3Match with TraceEn=1 is architecturally illegal.
    EXPECT_FALSE(msrs.write(RtitMsr::kCr3Match, 0x1234).ok);
    EXPECT_FALSE(msrs.write(RtitMsr::kOutputBase, 0x1000).ok);
    // Changing CTL bits other than TraceEn is illegal too.
    EXPECT_FALSE(
        msrs.write(RtitMsr::kCtl,
                   rtit_ctl::kTraceEn | rtit_ctl::kBranchEn)
            .ok);
    // Clearing TraceEn alone is fine.
    EXPECT_TRUE(msrs.write(RtitMsr::kCtl, 0).ok);
    EXPECT_TRUE(msrs.write(RtitMsr::kCr3Match, 0x1234).ok);
    EXPECT_EQ(msrs.cr3Match(), 0x1234u);
}

TEST(Msr, AccessesHaveCosts)
{
    MsrFile msrs;
    auto w = msrs.write(RtitMsr::kCr3Match, 1);
    EXPECT_GT(w.cost, 0u);
    std::uint64_t v;
    auto r = msrs.readCosted(RtitMsr::kCr3Match, v);
    EXPECT_EQ(v, 1u);
    EXPECT_GT(r.cost, 0u);
    EXPECT_LT(r.cost, w.cost);
    EXPECT_EQ(msrs.writeCount(), 1u);
}

TEST(Topa, StopSemanticsDropExcess)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{16, /*stop=*/true, false}}, false);
    std::uint8_t data[24] = {0};
    TopaWriteResult r = buf.write(data, 24);
    EXPECT_EQ(r.accepted, 16u);
    EXPECT_EQ(r.dropped, 8u);
    EXPECT_TRUE(r.stopped_now);
    EXPECT_TRUE(buf.stopped());
    // Further writes are fully dropped.
    r = buf.write(data, 4);
    EXPECT_EQ(r.accepted, 0u);
    EXPECT_EQ(r.dropped, 4u);
    EXPECT_EQ(buf.bytesAccepted(), 16u);
    EXPECT_EQ(buf.bytesDropped(), 12u);
}

TEST(Topa, MultiRegionChain)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{8, false, false},
                   TopaEntry{8, false, true},
                   TopaEntry{8, true, false}},
                  false);
    EXPECT_EQ(buf.capacity(), 24u);
    std::uint8_t data[32];
    for (int i = 0; i < 32; ++i)
        data[i] = static_cast<std::uint8_t>(i);
    TopaWriteResult r = buf.write(data, 32);
    EXPECT_EQ(r.accepted, 24u);
    EXPECT_EQ(r.pmis_fired, 1);  // the INT region filled
    EXPECT_TRUE(buf.stopped());
    EXPECT_EQ(buf.data()[23], 23);
}

TEST(Topa, RingWrapsAndDrainsOldestFirst)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{8, false, false}}, /*ring=*/true);
    std::uint8_t data[12];
    for (int i = 0; i < 12; ++i)
        data[i] = static_cast<std::uint8_t>(i);
    buf.write(data, 12);  // wraps once, overwriting bytes 0..3
    EXPECT_EQ(buf.wraps(), 1u);
    EXPECT_FALSE(buf.stopped());
    std::vector<std::uint8_t> out;
    std::uint64_t n = buf.drainTo(out);
    EXPECT_EQ(n, 8u);
    // Oldest-first: bytes 4..7 then 8..11.
    EXPECT_EQ(out[0], 4);
    EXPECT_EQ(out[7], 11);
}

TEST(Topa, DrainPreservesCumulativeCounters)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{64, false, true}}, true);
    std::uint8_t data[40] = {1};
    buf.write(data, 40);
    std::vector<std::uint8_t> out;
    buf.drainTo(out);
    buf.write(data, 40);
    EXPECT_EQ(buf.bytesAccepted(), 80u);
}

TEST(Topa, PartialDrainsAroundStopBoundary)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{8, /*stop=*/true, false}}, false);
    std::uint8_t data[16];
    for (int i = 0; i < 16; ++i)
        data[i] = static_cast<std::uint8_t>(i);

    // Partial fill, drain before the STOP boundary is reached.
    buf.write(data, 5);
    std::vector<std::uint8_t> out;
    EXPECT_EQ(buf.drainTo(out), 5u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[4], 4);
    EXPECT_FALSE(buf.stopped());

    // The drain re-arms the chain: the next write crosses the STOP
    // boundary exactly at capacity.
    TopaWriteResult r = buf.write(data + 5, 10);
    EXPECT_EQ(r.accepted, 8u);
    EXPECT_EQ(r.dropped, 2u);
    EXPECT_TRUE(r.stopped_now);
    EXPECT_TRUE(buf.stopped());
    EXPECT_EQ(buf.drainTo(out), 8u);
    ASSERT_EQ(out.size(), 13u);
    // Concatenated drains reproduce the accepted prefix of the input.
    for (int i = 0; i < 13; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
    // Cumulative counters survive both drains.
    EXPECT_EQ(buf.bytesAccepted(), 13u);
    EXPECT_EQ(buf.bytesDropped(), 2u);
}

TEST(Topa, DrainAfterWrapDoesNotReplayStaleData)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{8, false, false}}, /*ring=*/true);
    std::uint8_t data[16];
    for (int i = 0; i < 16; ++i)
        data[i] = static_cast<std::uint8_t>(i);

    buf.write(data, 12);  // wraps once
    std::vector<std::uint8_t> out;
    EXPECT_EQ(buf.drainTo(out), 8u);
    EXPECT_EQ(out[0], 4);

    // Only 4 fresh bytes since the drain: the drain layout must use
    // the wraps-since-last-drain epoch, not the cumulative count, or
    // it would hand back 8 bytes including a stale replay of the
    // previous epoch's data.
    buf.write(data + 12, 4);
    out.clear();
    EXPECT_EQ(buf.drainTo(out), 4u);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 12);
    EXPECT_EQ(out[3], 15);
    // The cumulative wrap statistic still counts the first epoch.
    EXPECT_EQ(buf.wraps(), 1u);
    EXPECT_FALSE(buf.hasWrapped());
}

TEST(Topa, RegionReadyPublishesFilledRegions)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{4, false, false},
                   TopaEntry{4, false, false},
                   TopaEntry{8, true, false}},
                  false);
    std::vector<std::uint8_t> published;
    std::vector<std::uint64_t> spans;
    buf.setRegionReadyCallback(
        [&](const std::uint8_t *d, std::uint64_t n) {
            published.insert(published.end(), d, d + n);
            spans.push_back(n);
        });

    std::uint8_t data[24];
    for (int i = 0; i < 24; ++i)
        data[i] = static_cast<std::uint8_t>(i);

    // Mid-region write publishes nothing.
    buf.write(data, 3);
    EXPECT_TRUE(published.empty());
    EXPECT_EQ(buf.publishedBytes(), 0u);

    // Crossing the first boundary publishes the filled region; one
    // write crossing several boundaries publishes each crossed span.
    buf.write(data + 3, 6);  // cursor 9: regions 0 and 1 filled
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0], 4u);
    EXPECT_EQ(spans[1], 4u);
    EXPECT_EQ(buf.publishedBytes(), 8u);

    // Filling the STOP region publishes it too; the overflow is
    // dropped, not published.
    TopaWriteResult r = buf.write(data + 9, 15);
    EXPECT_EQ(r.accepted, 7u);
    EXPECT_TRUE(buf.stopped());
    EXPECT_EQ(buf.publishedBytes(), 16u);

    // The concatenated published spans are exactly the stored bytes:
    // publishing is non-destructive and in order.
    ASSERT_EQ(published.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(published[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(buf.flushRegionReady(), 0u);  // nothing unpublished
}

TEST(Topa, FlushRegionReadyPublishesTail)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{8, true, false}}, false);
    std::vector<std::uint8_t> published;
    buf.setRegionReadyCallback(
        [&](const std::uint8_t *d, std::uint64_t n) {
            published.insert(published.end(), d, d + n);
        });
    std::uint8_t data[5] = {9, 8, 7, 6, 5};
    buf.write(data, 5);
    EXPECT_TRUE(published.empty());  // no boundary crossed yet
    EXPECT_EQ(buf.flushRegionReady(), 5u);
    ASSERT_EQ(published.size(), 5u);
    EXPECT_EQ(published[0], 9);
    EXPECT_EQ(published[4], 5);
    EXPECT_EQ(buf.flushRegionReady(), 0u);  // idempotent
    EXPECT_EQ(buf.publishedBytes(), 5u);
}

TEST(PacketWriter, TntPacksSixPerByte)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{4096, true, false}}, false);
    PacketWriter writer(&buf);
    writer.setCycEnabled(false);
    writer.setTscEnabled(false);
    writer.resetState(0);
    for (int i = 0; i < 12; ++i)
        writer.tnt(i % 2 == 0, 10 * i);
    EXPECT_EQ(writer.stats().tnt_packets, 2u);
    EXPECT_EQ(writer.stats().tnt_bits, 12u);
    EXPECT_EQ(buf.bytesAccepted(), 2u);  // one byte per 6 outcomes

    // A partial group flushes as the 2-byte form.
    writer.tnt(true, 130);
    writer.flushTnt(140);
    EXPECT_EQ(writer.stats().tnt_packets, 3u);
    EXPECT_EQ(buf.bytesAccepted(), 4u);
}

TEST(PacketWriter, RoundTripThroughParser)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{1 << 16, true, false}}, false);
    PacketWriter writer(&buf);
    writer.resetState(100);
    writer.pge(0x401000, 100);
    for (int i = 0; i < 6; ++i)
        writer.tnt(i & 1, 110 + static_cast<Cycles>(i));
    writer.tip(0x402345, 130);
    writer.tip(0x402349, 140);  // 2-byte compressed
    writer.pip(0xdeadb);
    writer.pgd(150);

    PacketParser parser(buf.data().data(), buf.bytesAccepted());
    Packet pkt;
    std::vector<PacketOp> ops;
    std::vector<std::uint64_t> values;
    while (parser.next(pkt)) {
        ops.push_back(pkt.op);
        values.push_back(pkt.value);
    }
    // CYC packets interleave; filter to the structural ones.
    std::vector<std::pair<PacketOp, std::uint64_t>> structural;
    for (std::size_t i = 0; i < ops.size(); ++i)
        if (ops[i] != PacketOp::kCyc && ops[i] != PacketOp::kTsc)
            structural.emplace_back(ops[i], values[i]);

    ASSERT_GE(structural.size(), 5u);
    EXPECT_EQ(structural[0].first, PacketOp::kTipPge);
    EXPECT_EQ(structural[0].second, 0x401000u);
    EXPECT_EQ(structural[1].first, PacketOp::kTnt6);
    EXPECT_EQ(structural[2].first, PacketOp::kTip);
    EXPECT_EQ(structural[2].second, 0x402345u);
    EXPECT_EQ(structural[3].first, PacketOp::kTip);
    EXPECT_EQ(structural[3].second, 0x402349u);
    EXPECT_EQ(structural[4].first, PacketOp::kPip);
    EXPECT_EQ(structural[4].second, 0xdeadbu);
    EXPECT_EQ(structural[5].first, PacketOp::kTipPgd);
}

TEST(PacketWriter, CycDeltasAccumulateTime)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{1 << 16, true, false}}, false);
    PacketWriter writer(&buf);
    writer.setTscEnabled(false);
    writer.resetState(1000);
    writer.tip(0x400000, 1250);
    writer.tip(0x400100, 1900);

    PacketParser parser(buf.data().data(), buf.bytesAccepted());
    Packet pkt;
    Cycles t = 1000;
    while (parser.next(pkt))
        if (pkt.op == PacketOp::kCyc)
            t += pkt.value;
    EXPECT_EQ(t, 1900u);
}

TEST(PacketWriter, PsbCadenceAndResync)
{
    TopaBuffer buf;
    buf.configure({TopaEntry{1 << 20, true, false}}, false);
    PacketWriter writer(&buf);
    writer.resetState(0);
    writer.pge(0x400000, 0);
    for (Cycles i = 0; i < 30000; ++i)
        writer.tnt(i % 3 == 0, i);
    EXPECT_GE(writer.stats().psb_packets, 1u);

    // A parser starting mid-stream can resync at a PSB.
    PacketParser parser(buf.data().data() + 3,
                        buf.bytesAccepted() - 3);
    ASSERT_TRUE(parser.resyncToPsb());
    Packet pkt;
    int parsed = 0;
    while (parser.next(pkt))
        ++parsed;
    EXPECT_GT(parsed, 100);
}

TEST(Tracer, PacketEnFollowsCr3Filter)
{
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.cr3_filter = true;
    cfg.cr3_match = 0xaaa;
    cfg.topa = {TopaEntry{1 << 16, true, false}};
    ASSERT_TRUE(tracer.configure(cfg).ok);
    ASSERT_TRUE(tracer.enable(0, 0xbbb, 0x400000).ok);
    EXPECT_TRUE(tracer.enabled());
    EXPECT_FALSE(tracer.packetEn());  // wrong process

    tracer.onContextSwitch(0xaaa, 0x400000, 10);
    EXPECT_TRUE(tracer.packetEn());  // matched: PGE emitted
    EXPECT_EQ(tracer.packetStats().pge_packets, 1u);

    tracer.onContextSwitch(0xccc, 0x500000, 20);
    EXPECT_FALSE(tracer.packetEn());  // PGD emitted
    EXPECT_EQ(tracer.packetStats().pgd_packets, 1u);
}

TEST(Tracer, SyscallPausesUserTracing)
{
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.topa = {TopaEntry{1 << 16, true, false}};
    ASSERT_TRUE(tracer.configure(cfg).ok);
    ASSERT_TRUE(tracer.enable(0, 0x1, 0x400000).ok);
    ASSERT_TRUE(tracer.packetEn());
    tracer.onSyscallEntry(50);
    EXPECT_FALSE(tracer.packetEn());
    tracer.onUserResume(0x1, 0x400400, 80);
    EXPECT_TRUE(tracer.packetEn());
}

TEST(Tracer, StopOnFullSetsStatus)
{
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("ex"), 2);
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.topa = {TopaEntry{256, true, false}};  // tiny: fills fast
    ASSERT_TRUE(tracer.configure(cfg).ok);
    ASSERT_TRUE(
        tracer.enable(0, 0x1, prog.block(prog.entryBlock()).address)
            .ok);
    ExecutionContext exec(&prog, 3);
    for (Cycles i = 0; i < 5000 && !tracer.stopped(); ++i) {
        StepResult s = exec.step();
        tracer.onBranch(s.branch, prog, i * 10, 0x1, true);
    }
    EXPECT_TRUE(tracer.stopped());
    EXPECT_FALSE(tracer.packetEn());
    EXPECT_GT(tracer.realBytesDropped(), 0u);
}

TEST(Tracer, ConfigureWhileEnabledFails)
{
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.topa = {TopaEntry{4096, true, false}};
    ASSERT_TRUE(tracer.configure(cfg).ok);
    ASSERT_TRUE(tracer.enable(0, 0, 0x400000).ok);
    EXPECT_FALSE(tracer.configure(cfg).ok);
    ASSERT_TRUE(tracer.disable(10).ok);
    EXPECT_TRUE(tracer.configure(cfg).ok);
}

TEST(Tracer, ExternalOutputIsUsed)
{
    TopaBuffer external;
    external.configure({TopaEntry{1 << 16, false, false}}, true);
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.external_output = &external;
    ASSERT_TRUE(tracer.configure(cfg).ok);
    ASSERT_TRUE(tracer.enable(0, 0, 0x400000).ok);
    EXPECT_EQ(&tracer.output(), &external);
    EXPECT_GT(external.bytesAccepted(), 0u);  // the PGE landed there
}

TEST(Tracer, PtWriteRoundTripsThroughDecode)
{
    // The SS6.1 data-flow enhancement: PTWRITE payloads interleave with
    // control flow and decode back in order with timestamps.
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("om"), 21);
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.topa = {TopaEntry{1 << 20, true, false}};
    ASSERT_TRUE(tracer.configure(cfg).ok);
    ExecutionContext exec(&prog, 22);
    ASSERT_TRUE(
        tracer.enable(0, 0x1, prog.block(exec.currentBlock()).address)
            .ok);

    std::vector<std::uint64_t> written;
    Cycles now = 0;
    for (int i = 0; i < 5000; ++i) {
        StepResult s = exec.step();
        now += s.insns;
        tracer.onBranch(s.branch, prog, now, 0x1, true);
        if (i % 500 == 250) {
            std::uint64_t v = 0xfeed0000ull + static_cast<unsigned>(i);
            tracer.onPtWrite(v, now);
            written.push_back(v);
        }
    }
    tracer.disable(now);
    EXPECT_EQ(tracer.packetStats().ptw_packets, written.size());

    FlowReconstructor rec(&prog);
    DecodedTrace dt = rec.decode(tracer.output().data().data(),
                                 tracer.output().bytesAccepted());
    ASSERT_EQ(dt.ptwrites.size(), written.size());
    Cycles prev = 0;
    for (std::size_t i = 0; i < written.size(); ++i) {
        EXPECT_EQ(dt.ptwrites[i].second, written[i]);
        EXPECT_GE(dt.ptwrites[i].first, prev);
        prev = dt.ptwrites[i].first;
    }
    // Control flow is unaffected by interleaved data packets.
    EXPECT_EQ(dt.decode_errors, 0u);
    EXPECT_GT(dt.branches_decoded, 4900u);
}

TEST(Tracer, PtWriteIgnoredWhilePacketsDisabled)
{
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.cr3_filter = true;
    cfg.cr3_match = 0xaaa;
    cfg.topa = {TopaEntry{1 << 16, true, false}};
    ASSERT_TRUE(tracer.configure(cfg).ok);
    ASSERT_TRUE(tracer.enable(0, 0xbbb, 0x400000).ok);  // no match
    ASSERT_FALSE(tracer.packetEn());
    tracer.onPtWrite(0x1234, 10);
    EXPECT_EQ(tracer.packetStats().ptw_packets, 0u);
}

}  // namespace
}  // namespace exist
