/**
 * @file
 * Tests for the ETM-style trace format (paper §6.2 portability): the
 * same execution round-trips through the CoreSight-flavoured wire
 * format, the transcoder lowers it to the common vocabulary, and the
 * unchanged decode pipeline reconstructs it exactly.
 */
#include <gtest/gtest.h>

#include "decode/flow_reconstructor.h"
#include "hwtrace/etm.h"
#include "workload/execution.h"

namespace exist {
namespace {

TEST(Etm, AtomsPackAndFlush)
{
    std::vector<std::uint8_t> bytes;
    etm::EtmPacketWriter writer(&bytes);
    writer.reset(0);
    for (int i = 0; i < 16; ++i)
        writer.atom(i % 3 == 0, 10 * static_cast<Cycles>(i));
    EXPECT_EQ(writer.atomPackets(), 2u);  // two full groups of 8
    writer.flushAtoms(200);
    EXPECT_EQ(writer.atomPackets(), 2u);  // nothing pending
    writer.atom(true, 210);
    writer.flushAtoms(220);
    EXPECT_EQ(writer.atomPackets(), 3u);  // the partial group
}

TEST(Etm, TranscodeRoundTripsExecution)
{
    // Drive a real execution through the ETM writer, lower it to the
    // common format, and decode with the shared pipeline.
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("om"), 51);
    ExecutionContext exec(&prog, 52);

    std::vector<std::uint8_t> etm_bytes;
    etm::EtmPacketWriter writer(&etm_bytes);
    writer.reset(0);
    writer.traceOn(prog.block(exec.currentBlock()).address, 0);

    std::vector<std::uint32_t> truth;
    Cycles now = 0;
    for (int i = 0; i < 25000; ++i) {
        truth.push_back(exec.currentBlock());
        StepResult s = exec.step();
        now += s.insns;
        switch (s.branch.kind) {
          case BranchKind::kConditional:
            writer.atom(s.branch.taken, now);
            break;
          case BranchKind::kIndirectJump:
          case BranchKind::kIndirectCall:
          case BranchKind::kReturn:
            writer.address(prog.block(s.branch.target_block).address,
                           now);
            break;
          case BranchKind::kSyscall:
            writer.traceOff(now);
            now += 150;
            writer.traceOn(
                prog.block(exec.currentBlock()).address, now);
            break;
          default:
            break;
        }
        if (s.syscall && s.branch.kind != BranchKind::kSyscall) {
            writer.traceOff(now);
            now += 150;
            writer.traceOn(
                prog.block(exec.currentBlock()).address, now);
        }
    }
    writer.flushAtoms(now);

    std::size_t errors = 0;
    std::vector<std::uint8_t> common =
        etm::transcodeToCommon(etm_bytes, &errors);
    EXPECT_EQ(errors, 0u);
    EXPECT_GT(common.size(), 1000u);

    DecodeOptions opts;
    opts.record_path = true;
    FlowReconstructor rec(&prog, opts);
    DecodedTrace dt = rec.decode(common);
    EXPECT_EQ(dt.decode_errors, 0u);
    ASSERT_GE(dt.block_path.size(), truth.size() * 95 / 100);
    std::size_t n = std::min(dt.block_path.size(), truth.size());
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(dt.block_path[i], truth[i]) << "at " << i;
}

TEST(Etm, AddressCompressionStates)
{
    std::vector<std::uint8_t> bytes;
    etm::EtmPacketWriter writer(&bytes);
    writer.reset(0);
    writer.traceOn(0x400000, 0);
    writer.address(0x400010, 10);   // short delta
    writer.address(0x400abc, 20);   // short delta
    writer.address(0x40400000, 30); // mid delta
    std::size_t errors = 0;
    std::vector<std::uint8_t> common =
        etm::transcodeToCommon(bytes, &errors);
    EXPECT_EQ(errors, 0u);
    EXPECT_GT(common.size(), 8u);
}

TEST(Etm, GarbageIsCountedNotFatal)
{
    std::vector<std::uint8_t> junk;
    for (int i = 0; i < 500; ++i)
        junk.push_back(static_cast<std::uint8_t>(i * 29 + 3));
    std::size_t errors = 0;
    std::vector<std::uint8_t> common =
        etm::transcodeToCommon(junk, &errors);
    EXPECT_GT(errors, 0u);
}

TEST(Etm, SyncCadenceReanchorsAddresses)
{
    // Enough atoms to cross the sync period several times; decode
    // must stay exact across sync points.
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("ex"), 53);
    ExecutionContext exec(&prog, 54);
    std::vector<std::uint8_t> etm_bytes;
    etm::EtmPacketWriter writer(&etm_bytes);
    writer.reset(0);
    writer.traceOn(prog.block(exec.currentBlock()).address, 0);
    Cycles now = 0;
    std::uint64_t branches = 0;
    for (int i = 0; i < 120000; ++i) {
        StepResult s = exec.step();
        now += s.insns;
        ++branches;
        switch (s.branch.kind) {
          case BranchKind::kConditional:
            writer.atom(s.branch.taken, now);
            break;
          case BranchKind::kIndirectJump:
          case BranchKind::kIndirectCall:
          case BranchKind::kReturn:
            writer.address(prog.block(s.branch.target_block).address,
                           now);
            break;
          default:
            break;
        }
        if (s.syscall) {
            writer.traceOff(now);
            now += 100;
            writer.traceOn(
                prog.block(exec.currentBlock()).address, now);
        }
    }
    writer.flushAtoms(now);
    ASSERT_GT(etm_bytes.size(), etm::kSyncPeriodBytes * 2);

    std::vector<std::uint8_t> common =
        etm::transcodeToCommon(etm_bytes);
    FlowReconstructor rec(&prog);
    DecodedTrace dt = rec.decode(common);
    EXPECT_EQ(dt.decode_errors, 0u);
    EXPECT_GT(dt.branches_decoded, branches * 95 / 100);
}

}  // namespace
}  // namespace exist
