/**
 * @file
 * Unit tests for the analysis layer: accuracy metrics, profile
 * merging, report rendering, and testbed plumbing.
 */
#include <gtest/gtest.h>

#include "analysis/accuracy.h"
#include "analysis/report.h"
#include "analysis/testbed.h"

namespace exist {
namespace {

TEST(CoverageAccuracy, ClampsAndHandlesZero)
{
    EXPECT_DOUBLE_EQ(coverageAccuracy(50, 100), 0.5);
    EXPECT_DOUBLE_EQ(coverageAccuracy(150, 100), 1.0);
    EXPECT_DOUBLE_EQ(coverageAccuracy(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(coverageAccuracy(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(coverageAccuracy(0, 10), 0.0);
}

TEST(WallAccuracy, IdenticalDistributionsScoreOne)
{
    std::vector<std::uint64_t> a = {10, 20, 30};
    EXPECT_DOUBLE_EQ(wallWeightAccuracy(a, a), 1.0);
    // Scale invariance: same distribution, different magnitude.
    std::vector<std::uint64_t> b = {100, 200, 300};
    EXPECT_NEAR(wallWeightAccuracy(a, b), 1.0, 1e-12);
}

TEST(WallAccuracy, DisjointDistributionsScoreZero)
{
    std::vector<std::uint64_t> a = {10, 0, 0};
    std::vector<std::uint64_t> b = {0, 5, 5};
    EXPECT_DOUBLE_EQ(wallWeightAccuracy(a, b), 0.0);
}

TEST(WallAccuracy, PartialOverlapInBetween)
{
    std::vector<std::uint64_t> a = {50, 50};
    std::vector<std::uint64_t> b = {100, 0};
    // L1 distance = |0.5-1| + |0.5-0| = 1 -> accuracy 0.5.
    EXPECT_DOUBLE_EQ(wallWeightAccuracy(a, b), 0.5);
}

TEST(WallAccuracy, DifferentLengthsAndEmpties)
{
    std::vector<std::uint64_t> a = {10, 10};
    std::vector<std::uint64_t> b = {10, 10, 0, 0};
    EXPECT_NEAR(wallWeightAccuracy(a, b), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(wallWeightAccuracy({}, {}), 1.0);
    EXPECT_DOUBLE_EQ(wallWeightAccuracy({1}, {}), 0.0);
}

TEST(MatchPath, ExactAndSubsequence)
{
    std::vector<std::uint32_t> truth = {1, 2, 3, 4, 5, 6};
    PathMatch exact = matchPath(truth, truth);
    EXPECT_DOUBLE_EQ(exact.precision, 1.0);
    EXPECT_DOUBLE_EQ(exact.recall, 1.0);

    PathMatch sub = matchPath({2, 4, 6}, truth);
    EXPECT_DOUBLE_EQ(sub.precision, 1.0);
    EXPECT_DOUBLE_EQ(sub.recall, 0.5);

    PathMatch wrong = matchPath({9, 9, 9}, truth);
    EXPECT_DOUBLE_EQ(wrong.precision, 0.0);

    PathMatch empty = matchPath({}, truth);
    EXPECT_DOUBLE_EQ(empty.precision, 1.0);
    EXPECT_DOUBLE_EQ(empty.recall, 0.0);
}

TEST(MergeProfiles, SumsElementWiseAcrossLengths)
{
    std::vector<std::vector<std::uint64_t>> workers = {
        {1, 2, 3}, {10, 0}, {0, 0, 0, 7}};
    std::vector<std::uint64_t> merged = mergeFunctionProfiles(workers);
    ASSERT_EQ(merged.size(), 4u);
    EXPECT_EQ(merged[0], 11u);
    EXPECT_EQ(merged[1], 2u);
    EXPECT_EQ(merged[2], 3u);
    EXPECT_EQ(merged[3], 7u);
    EXPECT_TRUE(mergeFunctionProfiles({}).empty());
}

TEST(MergeProfiles, ComplementsMissingMass)
{
    // Worker 1 missed function 2 entirely; worker 2 missed function 0.
    std::vector<std::uint64_t> truth = {100, 100, 100};
    std::vector<std::uint64_t> w1 = {100, 100, 0};
    std::vector<std::uint64_t> w2 = {0, 100, 100};
    double single = wallWeightAccuracy(w1, truth);
    double merged =
        wallWeightAccuracy(mergeFunctionProfiles({w1, w2}), truth);
    // merged = {100,200,100}: closer to uniform than either worker,
    // though the doubly-seen middle function stays over-weighted.
    EXPECT_GT(merged, single);
    EXPECT_GT(merged, 0.8);
}

TEST(TableWriterTest, AlignsAndFormats)
{
    TableWriter t({"A", "LongHeader"});
    t.row({"x", "1"});
    t.row({"yyyy", "2"});
    std::string s = t.str();
    EXPECT_NE(s.find("A     LongHeader"), std::string::npos);
    EXPECT_NE(s.find("yyyy  2"), std::string::npos);
    EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TableWriter::pct(0.123, 1), "12.3%");
    EXPECT_EQ(TableWriter::mb(1024 * 1024, 1), "1.0");
}

TEST(TestbedTest, BinaryRepositoryIsStable)
{
    auto a = Testbed::binaryForApp("om");
    auto b = Testbed::binaryForApp("om");
    EXPECT_EQ(a.get(), b.get());  // cached
    auto c = Testbed::binaryForApp("om", 123);
    EXPECT_NE(a.get(), c.get());
}

TEST(TestbedTest, ResultLookupByName)
{
    ExperimentSpec spec;
    spec.node.num_cores = 1;
    spec.workloads.push_back(WorkloadSpec{.app = "ex", .target = true});
    spec.session.period = secondsToCycles(0.01);
    spec.warmup = secondsToCycles(0.005);
    ExperimentResult r = Testbed::run(spec);
    EXPECT_NE(r.find("ex"), nullptr);
    EXPECT_EQ(r.find("nothere"), nullptr);
    EXPECT_DEATH(r.at("nothere"), "no app result");
}

TEST(TestbedTest, EagerControlAblationCostsMoreOps)
{
    ExperimentSpec spec;
    spec.node.num_cores = 1;
    WorkloadSpec t{.app = "mc", .cores = {0}, .target = true,
                   .closed_clients = 4};
    spec.workloads.push_back(std::move(t));
    WorkloadSpec bg{.app = "ex", .cores = {0}};
    bg.workers = 1;
    spec.workloads.push_back(std::move(bg));
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.1);

    ExperimentResult once = Testbed::run(spec);
    spec.session.exist_eager_control = true;
    ExperimentResult eager = Testbed::run(spec);
    EXPECT_LE(once.backend_stats.control_ops, 2u);
    EXPECT_GT(eager.backend_stats.control_ops,
              once.backend_stats.control_ops * 10);
}

}  // namespace
}  // namespace exist
