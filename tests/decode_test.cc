/**
 * @file
 * Decoder tests: the central property is exact reconstruction — encode
 * an execution through the tracer, decode the bytes, and get the same
 * block path back. Parameterized across applications and seeds, plus
 * robustness cases (truncation, ring wraps, filter churn).
 */
#include <gtest/gtest.h>

#include <tuple>

#include "decode/flow_reconstructor.h"
#include "decode/packet_parser.h"
#include "hwtrace/tracer.h"
#include "workload/execution.h"

namespace exist {
namespace {

struct Encoded {
    ProgramBinary prog;
    std::vector<std::uint32_t> truth;
    CoreTracer tracer{0};

    explicit Encoded(ProgramBinary p) : prog(std::move(p)) {}
};

/** Drive `steps` blocks through a tracer, recording the ground truth.
 *  Syscalls exercise the PGD/PGE pause-resume path. */
std::unique_ptr<Encoded>
encode(const std::string &app, std::uint64_t seed, int steps,
       std::uint64_t topa_bytes = 32 << 20, bool ring = false)
{
    auto enc = std::make_unique<Encoded>(
        ProgramBinary::generate(AppCatalog::find(app), seed));
    TracerConfig cfg;
    cfg.cr3_filter = true;
    cfg.cr3_match = 0x77;
    cfg.topa = {TopaEntry{topa_bytes, !ring, false}};
    cfg.topa_ring = ring;
    EXPECT_TRUE(enc->tracer.configure(cfg).ok);

    ExecutionContext exec(&enc->prog, seed ^ 0x1111);
    EXPECT_TRUE(enc->tracer
                    .enable(0, 0x77,
                            enc->prog.block(exec.currentBlock())
                                .address)
                    .ok);
    Cycles now = 0;
    for (int i = 0; i < steps; ++i) {
        enc->truth.push_back(exec.currentBlock());
        StepResult s = exec.step();
        now += s.insns;
        enc->tracer.onBranch(s.branch, enc->prog, now, 0x77, true);
        if (s.syscall) {
            if (s.branch.kind != BranchKind::kSyscall)
                enc->tracer.onSyscallEntry(now);
            now += 150;
            enc->tracer.onUserResume(
                0x77, enc->prog.block(exec.currentBlock()).address,
                now);
        }
    }
    enc->tracer.disable(now);
    return enc;
}

class RoundTrip : public ::testing::TestWithParam<
                      std::tuple<std::string, std::uint64_t>>
{
};

TEST_P(RoundTrip, DecodeReproducesExecution)
{
    auto [app, seed] = GetParam();
    auto enc = encode(app, seed, 30000);
    DecodeOptions opts;
    opts.record_path = true;
    FlowReconstructor rec(&enc->prog, opts);
    DecodedTrace dt = rec.decode(enc->tracer.output().data().data(),
                                 enc->tracer.output().bytesAccepted());

    EXPECT_EQ(dt.decode_errors, 0u);
    // The decoded path must be a prefix-exact match of the truth
    // (the tail may be missing: up to one static-walk overshoot or
    // in-flight TNT group at disable).
    ASSERT_GE(dt.block_path.size(), enc->truth.size() * 98 / 100);
    std::size_t n =
        std::min(dt.block_path.size(), enc->truth.size());
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(dt.block_path[i], enc->truth[i]) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndSeeds, RoundTrip,
    ::testing::Combine(::testing::Values("pb", "mcf", "om", "x264",
                                         "de", "ex", "mc", "Search1",
                                         "Recommend"),
                       ::testing::Values(1u, 99u)));

TEST(Decode, FunctionHistogramMatchesTruth)
{
    auto enc = encode("om", 5, 40000);
    FlowReconstructor rec(&enc->prog);
    DecodedTrace dt = rec.decode(enc->tracer.output().data().data(),
                                 enc->tracer.output().bytesAccepted());
    std::vector<std::uint64_t> truth_insns(enc->prog.numFunctions(), 0);
    for (std::uint32_t b : enc->truth)
        truth_insns[enc->prog.block(b).function_id] +=
            enc->prog.block(b).insns;
    // Every function with significant truth mass appears in the decode.
    for (std::uint32_t f = 0; f < enc->prog.numFunctions(); ++f) {
        if (truth_insns[f] > 1000)
            EXPECT_GT(dt.function_insns[f], 0u) << "function " << f;
    }
}

TEST(Decode, StopBufferYieldsExactPrefix)
{
    // A small STOP buffer: the decode must be a correct prefix.
    auto enc = encode("ex", 7, 50000, /*topa=*/20000);
    EXPECT_TRUE(enc->tracer.stopped());
    DecodeOptions opts;
    opts.record_path = true;
    FlowReconstructor rec(&enc->prog, opts);
    DecodedTrace dt = rec.decode(enc->tracer.output().data().data(),
                                 enc->tracer.output().bytesAccepted());
    ASSERT_GT(dt.block_path.size(), 100u);
    ASSERT_LT(dt.block_path.size(), enc->truth.size());
    for (std::size_t i = 0; i + 8 < dt.block_path.size(); ++i)
        ASSERT_EQ(dt.block_path[i], enc->truth[i]) << "at " << i;
}

TEST(Decode, RingWrapResyncsAtPsb)
{
    // A ring that wrapped: decode resyncs at a PSB and recovers the
    // recent suffix of the execution.
    auto enc = encode("ex", 9, 60000, /*topa=*/30000, /*ring=*/true);
    EXPECT_GT(enc->tracer.output().wraps(), 0u);
    std::vector<std::uint8_t> bytes;
    enc->tracer.output().drainTo(bytes);

    DecodeOptions opts;
    opts.record_path = true;
    FlowReconstructor rec(&enc->prog, opts);
    DecodedTrace dt = rec.decode(bytes);
    EXPECT_GT(dt.resyncs, 0u);
    ASSERT_GT(dt.block_path.size(), 100u);
    // The decoded path must be one contiguous run inside the truth,
    // located near its end (it is the most recent execution suffix).
    // The final block may be a static-walk overshoot past the last
    // encoded branch, so it is excluded from the match.
    const auto &path = dt.block_path;
    const auto &truth = enc->truth;
    std::size_t head = 32;
    std::size_t where = truth.size();
    for (std::size_t start = 0;
         start + head <= truth.size() && where == truth.size();
         ++start) {
        std::size_t k = 0;
        while (k < head && truth[start + k] == path[k])
            ++k;
        if (k == head)
            where = start;
    }
    ASSERT_LT(where, truth.size()) << "decoded head not in truth";
    EXPECT_GT(where, truth.size() / 4) << "should be a recent suffix";
    std::size_t match = 0;
    while (where + match < truth.size() && match < path.size() &&
           truth[where + match] == path[match])
        ++match;
    EXPECT_GE(match + 8, path.size())
        << "decoded run must match truth contiguously";
}

TEST(Decode, GarbageInputIsSafe)
{
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("ex"), 1);
    std::vector<std::uint8_t> junk(5000);
    for (std::size_t i = 0; i < junk.size(); ++i)
        junk[i] = static_cast<std::uint8_t>(i * 37 + 11);
    FlowReconstructor rec(&prog);
    DecodedTrace dt = rec.decode(junk);
    // Must terminate without crashing; nothing meaningful decoded.
    EXPECT_EQ(dt.branches_decoded + dt.decode_errors + dt.resyncs,
              dt.branches_decoded + dt.decode_errors + dt.resyncs);
}

TEST(Decode, TruncatedStreamIsSafe)
{
    auto enc = encode("om", 11, 5000);
    const auto &store = enc->tracer.output().data();
    std::uint64_t n = enc->tracer.output().bytesAccepted();
    FlowReconstructor rec(&enc->prog);
    // Every truncation point must parse without crashing.
    for (std::uint64_t cut = 0; cut < n; cut += 997) {
        DecodedTrace dt = rec.decode(store.data(), cut);
        EXPECT_LE(dt.branches_decoded, enc->truth.size());
    }
}

TEST(PacketParserTest, EmptyAndPadding)
{
    std::uint8_t pad[16] = {0};
    PacketParser parser(pad, sizeof(pad));
    Packet pkt;
    EXPECT_FALSE(parser.next(pkt));

    PacketParser empty(nullptr, 0);
    EXPECT_FALSE(empty.next(pkt));
}

}  // namespace
}  // namespace exist
