/**
 * @file
 * Service runtime and load generator tests: request completion,
 * queueing, RPC chains, closed-loop vs open-loop behaviour.
 */
#include <gtest/gtest.h>

#include "analysis/testbed.h"
#include "os/kernel.h"
#include "os/loadgen.h"
#include "os/service.h"

namespace exist {
namespace {

struct ServiceRig {
    Kernel kernel;
    std::shared_ptr<const ProgramBinary> bin;
    Process *proc;
    Service service;

    explicit ServiceRig(const char *app = "mc", int cores = 4,
                        int workers = 4)
        : kernel(NodeConfig{.num_cores = cores, .seed = 3}),
          bin(Testbed::binaryForApp(app)),
          proc(kernel.createProcess(app, bin, {})),
          service(&kernel, proc, 99)
    {
        service.spawnWorkers(workers);
    }
};

TEST(Service, CompletesSubmittedRequests)
{
    ServiceRig rig;
    int done = 0;
    for (int i = 0; i < 20; ++i)
        rig.service.submit(rig.kernel.now(),
                           [&](Cycles) { ++done; });
    rig.kernel.runFor(secondsToCycles(0.05));
    EXPECT_EQ(done, 20);
    EXPECT_EQ(rig.service.completedCount(), 20u);
    EXPECT_EQ(rig.service.queueDepth(), 0u);
}

TEST(Service, QueueDrainsInOrderUnderBacklog)
{
    ServiceRig rig("mc", 1, 1);
    std::vector<int> completion_order;
    for (int i = 0; i < 10; ++i)
        rig.service.submit(rig.kernel.now(), [&, i](Cycles) {
            completion_order.push_back(i);
        });
    rig.kernel.runFor(secondsToCycles(0.05));
    ASSERT_EQ(completion_order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(completion_order[static_cast<std::size_t>(i)], i);
}

TEST(Service, RpcChainTraversesDownstream)
{
    Kernel kernel(NodeConfig{.num_cores = 4, .seed = 4});
    auto front_bin = Testbed::binaryForApp("Search1");
    auto leaf_bin = Testbed::binaryForApp("Cache");
    Process *fp = kernel.createProcess("Search1", front_bin, {});
    Process *lp = kernel.createProcess("Cache", leaf_bin, {});
    Service front(&kernel, fp, 1);
    Service leaf(&kernel, lp, 2);
    front.spawnWorkers(4);
    leaf.spawnWorkers(4);
    front.setDownstream(&leaf);

    int done = 0;
    Cycles latency = 0;
    Cycles t0 = kernel.now();
    for (int i = 0; i < 10; ++i)
        front.submit(kernel.now(), [&](Cycles t) {
            ++done;
            latency = t - t0;
        });
    kernel.runFor(secondsToCycles(0.2));
    EXPECT_EQ(done, 10);
    // Each front request triggers downstream_rpcs leaf requests.
    EXPECT_EQ(leaf.completedCount(),
              10u * static_cast<unsigned>(
                        front_bin->profile().downstream_rpcs));
    // E2E latency includes at least the network round trips.
    EXPECT_GT(latency, 2 * costs::kRpcNetLatency);
}

TEST(LoadGen, PoissonRateIsApproximatelyRight)
{
    ServiceRig rig;
    PoissonLoadGen gen(&rig.kernel, &rig.service, 2000.0, 5);
    gen.start();
    rig.kernel.runFor(secondsToCycles(0.5));
    gen.stop();
    EXPECT_NEAR(static_cast<double>(gen.issued()), 1000.0, 150.0);
    EXPECT_GT(gen.completed(), gen.issued() * 9 / 10);
    EXPECT_GT(gen.latencies().count(), 0u);
}

TEST(LoadGen, WarmupDiscardsEarlySamples)
{
    ServiceRig rig;
    PoissonLoadGen gen(&rig.kernel, &rig.service, 2000.0, 6);
    gen.setWarmupUntil(secondsToCycles(0.25));
    gen.start();
    rig.kernel.runFor(secondsToCycles(0.5));
    // Roughly half the completions fall after warm-up.
    EXPECT_LT(gen.latencies().count(), gen.completed() * 7 / 10);
}

TEST(LoadGen, ClosedLoopKeepsClientsInFlight)
{
    ServiceRig rig;
    ClosedLoopLoadGen gen(&rig.kernel, &rig.service, 8, 7);
    gen.start();
    rig.kernel.runFor(secondsToCycles(0.3));
    gen.stop();
    // Completions track issues within the client count.
    EXPECT_GT(gen.completed(), 100u);
    EXPECT_LE(gen.issued() - gen.completed(), 8u);
}

TEST(LoadGen, ClosedLoopThroughputDropsWithSlowService)
{
    // The property Fig. 14 relies on: closed-loop throughput reflects
    // service time. Compare a fast and a slowed (higher-demand) run.
    auto run = [](double demand_scale) {
        AppProfile profile = AppCatalog::find("mc");
        profile.demand_mean_insns *= demand_scale;
        Kernel kernel(NodeConfig{.num_cores = 2, .seed = 8});
        auto bin = std::make_shared<const ProgramBinary>(
            ProgramBinary::generate(profile, 9));
        Process *p = kernel.createProcess("mc", bin, {});
        Service svc(&kernel, p, 10);
        svc.spawnWorkers(4);
        ClosedLoopLoadGen gen(&kernel, &svc, 10, 11);
        gen.start();
        kernel.runFor(secondsToCycles(0.2));
        return gen.completed();
    };
    std::uint64_t fast = run(1.0);
    std::uint64_t slow = run(1.2);
    EXPECT_LT(static_cast<double>(slow),
              static_cast<double>(fast) * 0.95);
}

}  // namespace
}  // namespace exist
