/**
 * @file
 * Unit tests for the util layer: RNG determinism and distribution
 * sanity, statistics containers, and the time conversions.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"
#include "util/types.h"

namespace exist {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkGivesIndependentStreams)
{
    Rng parent(7);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    EXPECT_NE(c1.next(), c2.next());

    // Forking with the same tag from identical parents reproduces.
    Rng p1(9), p2(9);
    EXPECT_EQ(p1.fork(5).next(), p2.fork(5).next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(42);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(43);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / 20000, 5.0, 0.2);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(44);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, LognormalIsPositive)
{
    Rng rng(45);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.lognormal(1.0, 0.5), 0.0);
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Samples, PercentilesInterpolate)
{
    Samples s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.011);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Samples, EmptyIsSafe)
{
    Samples s;
    EXPECT_EQ(s.percentile(50), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.bucketLow(5), 5.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(5), 6.0);
}

TEST(Cdf, FractionsAndQuantiles)
{
    Cdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Types, TimeConversionsRoundTrip)
{
    EXPECT_EQ(secondsToCycles(1.0), kCyclesPerSecond);
    EXPECT_DOUBLE_EQ(cyclesToSeconds(kCyclesPerSecond), 1.0);
    EXPECT_EQ(usToCycles(1000.0), kCyclesPerMs);
    EXPECT_DOUBLE_EQ(cyclesToMs(kCyclesPerMs), 1.0);
}

}  // namespace
}  // namespace exist
