/**
 * @file
 * Unit tests for the control-plane metrics registry
 * (cluster/metrics.h): counter/gauge/histogram semantics, stable
 * object identity across lookups, scoped naming, and JSON export.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/metrics.h"

namespace exist {
namespace {

TEST(MetricsTest, CounterAccumulates)
{
    metrics::Registry registry;
    metrics::Counter &c = registry.counter("reconciles");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, GaugeSetsAndAdjusts)
{
    metrics::Registry registry;
    metrics::Gauge &g = registry.gauge("pending");
    g.set(10);
    EXPECT_EQ(g.value(), 10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.set(-2);
    EXPECT_EQ(g.value(), -2);
}

TEST(MetricsTest, HistogramTracksDistribution)
{
    metrics::Registry registry;
    metrics::Histogram &h = registry.histogram("latency_us");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);

    for (std::uint64_t v : {1u, 2u, 4u, 8u, 1000u})
        h.record(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1015u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 203.0);
    // Log-bucketed estimates: loose bounds, not exact ranks.
    EXPECT_LE(h.percentile(0.5), 8u);
    EXPECT_GE(h.percentile(0.5), 1u);
    // The top percentile lands in the max's bucket, clamped to max.
    EXPECT_GE(h.percentile(0.99), 512u);
    EXPECT_LE(h.percentile(0.99), 1000u);
    // Estimates never escape the observed range.
    EXPECT_GE(h.percentile(0.0), h.min());
    EXPECT_LE(h.percentile(1.0), h.max());
}

TEST(MetricsTest, HistogramSingleValue)
{
    metrics::Registry registry;
    metrics::Histogram &h = registry.histogram("h");
    h.record(777);
    EXPECT_EQ(h.min(), 777u);
    EXPECT_EQ(h.max(), 777u);
    EXPECT_EQ(h.percentile(0.5), 777u);
    EXPECT_EQ(h.percentile(0.99), 777u);
}

TEST(MetricsTest, LookupsReturnSameObject)
{
    metrics::Registry registry;
    EXPECT_EQ(&registry.counter("x"), &registry.counter("x"));
    EXPECT_NE(&registry.counter("x"), &registry.counter("y"));
    EXPECT_EQ(&registry.gauge("x"), &registry.gauge("x"));
    EXPECT_EQ(&registry.histogram("x"), &registry.histogram("x"));
}

TEST(MetricsTest, NamesAreSortedAcrossKinds)
{
    metrics::Registry registry;
    registry.counter("b.count");
    registry.gauge("a.gauge");
    registry.histogram("c.hist");
    std::vector<std::string> names = registry.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.gauge");
    EXPECT_EQ(names[1], "b.count");
    EXPECT_EQ(names[2], "c.hist");
}

TEST(MetricsTest, ScopePrefixesNames)
{
    metrics::Registry registry;
    metrics::Scope scope(registry, "shard.3");
    scope.counter("reconciles").add(5);
    EXPECT_EQ(registry.counter("shard.3.reconciles").value(), 5u);
    scope.gauge("pending").set(2);
    EXPECT_EQ(registry.gauge("shard.3.pending").value(), 2);
    scope.histogram("latency_us").record(9);
    EXPECT_EQ(registry.histogram("shard.3.latency_us").count(), 1u);
}

TEST(MetricsTest, ToJsonRendersAllKinds)
{
    metrics::Registry registry;
    registry.counter("oss.puts").add(3);
    registry.gauge("shards").set(4);
    registry.histogram("reconcile.latency_us").record(100);
    std::string json = registry.toJson();
    EXPECT_NE(json.find("\"counters\":{\"oss.puts\":3}"),
              std::string::npos);
    EXPECT_NE(json.find("\"gauges\":{\"shards\":4}"),
              std::string::npos);
    EXPECT_NE(json.find("\"reconcile.latency_us\":{\"count\":1"),
              std::string::npos);
    EXPECT_NE(json.find("\"min\":100"), std::string::npos);
    EXPECT_NE(json.find("\"max\":100"), std::string::npos);
}

TEST(MetricsTest, ToJsonByteStableAcrossInsertionOrder)
{
    // The dump (and hence `existctl metrics` stdout) must not depend
    // on registration order or stripe layout: two registries fed the
    // same metrics in adversarially different orders render the same
    // bytes, sorted by scoped name within each section.
    const char *names[] = {"zeta.ops",   "shard.0.reconciles",
                           "alpha.ops",  "shard.10.reconciles",
                           "mid.bytes",  "shard.2.reconciles"};
    metrics::Registry fwd;
    for (const char *n : names) {
        fwd.counter(n).add(7);
        fwd.gauge(std::string(n) + ".g").set(-3);
        fwd.histogram(std::string(n) + ".h").record(64);
    }
    metrics::Registry rev;
    for (int i = 5; i >= 0; --i) {
        rev.histogram(std::string(names[i]) + ".h").record(64);
        rev.gauge(std::string(names[i]) + ".g").set(-3);
        rev.counter(names[i]).add(7);
    }
    EXPECT_EQ(fwd.toJson(), rev.toJson());

    // samples() obeys the same order: lexicographic by scoped name
    // (so "shard.10" sorts before "shard.2" — byte order, pinned).
    std::vector<metrics::Registry::Sample> s = fwd.samples();
    ASSERT_EQ(s.size(), 18u);
    for (std::size_t i = 1; i < s.size(); ++i)
        EXPECT_LE(s[i - 1].name, s[i].name);
    EXPECT_EQ(s.front().name, "alpha.ops");
    EXPECT_EQ(s.front().type, std::string("counter"));
    EXPECT_EQ(s.front().value, "7");
}

TEST(MetricsTest, ToJsonEmptyRegistry)
{
    metrics::Registry registry;
    EXPECT_EQ(registry.toJson(),
              "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsTest, GlobalRegistryIsAProcessSingleton)
{
    EXPECT_EQ(&metrics::Registry::global(),
              &metrics::Registry::global());
}

}  // namespace
}  // namespace exist
