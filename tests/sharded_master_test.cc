/**
 * @file
 * Sharded control-plane tests: the headline determinism guarantee
 * (ShardedMaster reports are bit-identical to the serial Master for
 * any shard count × submit order), commit-log ordering, and
 * TSan-targeted stress of concurrent submits, striped stores and the
 * lock-striped metrics registry (runs in the `concurrency` suite).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "cluster/master.h"
#include "cluster/metrics.h"
#include "cluster/shard/commit_log.h"
#include "cluster/shard/plan.h"
#include "cluster/shard/sharded_master.h"

namespace exist {
namespace {

ClusterConfig
smallConfig()
{
    ClusterConfig cc;
    cc.num_nodes = 3;
    cc.cores_per_node = 4;
    cc.seed = 7;
    return cc;
}

void
deployDemo(Cluster &cluster)
{
    cluster.deploy("Cache", 3);
    cluster.deploy("Search2", 2);
}

/** A submit stream mixing anomaly (all replicas) and routine
 *  (RNG-sampled workers) requests across two apps. */
std::vector<std::string>
demoManifests()
{
    return {
        "app=Cache anomaly=true period_ms=40 budget_mb=64",
        "app=Search2 period_ms=30 budget_mb=64",
        "app=Cache period_ms=30 budget_mb=64",
        "app=Search2 anomaly=true period_ms=40 budget_mb=64",
    };
}

void
expectReportsEqual(const TraceReport &a, const TraceReport &b)
{
    EXPECT_EQ(a.request_id, b.request_id);
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.period, b.period);
    EXPECT_EQ(a.traced_nodes, b.traced_nodes);
    EXPECT_EQ(a.per_worker_accuracy, b.per_worker_accuracy);
    EXPECT_EQ(a.merged_function_insns, b.merged_function_insns);
    EXPECT_EQ(a.merged_truth_function_insns,
              b.merged_truth_function_insns);
    EXPECT_EQ(a.total_trace_bytes, b.total_trace_bytes);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.merged_accuracy, b.merged_accuracy);
    EXPECT_EQ(a.mean_target_cpi, b.mean_target_cpi);
    EXPECT_TRUE(a == b);
}

std::vector<TraceRow>
sortedRows(std::vector<const TraceRow *> rows)
{
    std::vector<TraceRow> out;
    for (const TraceRow *r : rows)
        out.push_back(*r);
    std::sort(out.begin(), out.end(),
              [](const TraceRow &a, const TraceRow &b) {
                  if (a.request_id != b.request_id)
                      return a.request_id < b.request_id;
                  return a.node < b.node;
              });
    return out;
}

/** Run one submit stream through a serial Master and a ShardedMaster
 *  with `shards` shards and compare every observable artifact. */
void
compareSerialVsSharded(const std::vector<std::string> &manifests,
                       int shards)
{
    SCOPED_TRACE("shards=" + std::to_string(shards));

    Cluster serial_cluster(smallConfig());
    deployDemo(serial_cluster);
    Master serial(&serial_cluster, {}, 1);

    Cluster sharded_cluster(smallConfig());
    deployDemo(sharded_cluster);
    metrics::Registry registry;
    ShardedMaster sharded(&sharded_cluster, {}, shards, 2, &registry);

    std::vector<std::uint64_t> serial_ids, sharded_ids;
    for (const std::string &m : manifests) {
        serial_ids.push_back(serial.apply(m));
        sharded_ids.push_back(sharded.apply(m));
    }
    ASSERT_EQ(serial_ids, sharded_ids);  // same global id stream

    serial.reconcile();
    sharded.reconcile();

    for (std::uint64_t id : serial_ids) {
        SCOPED_TRACE("request " + std::to_string(id));
        ASSERT_NE(serial.request(id), nullptr);
        ASSERT_NE(sharded.request(id), nullptr);
        EXPECT_EQ(serial.request(id)->phase, sharded.request(id)->phase);
        const TraceReport *a = serial.report(id);
        const TraceReport *b = sharded.report(id);
        ASSERT_EQ(a == nullptr, b == nullptr);
        if (a != nullptr)
            expectReportsEqual(*a, *b);
        // ODPS rows for the request match field-for-field.
        EXPECT_EQ(sortedRows(serial.odps().queryRequest(id)),
                  sortedRows(sharded.odps().queryRequest(id)));
    }

    // OSS holds the same objects with the same bytes.
    auto serial_keys = serial.oss().listPrefix("traces/");
    auto sharded_keys = sharded.oss().listPrefix("traces/");
    EXPECT_EQ(serial_keys, sharded_keys);
    for (const std::string &key : serial_keys)
        EXPECT_EQ(serial.oss().get(key), sharded.oss().get(key));
    EXPECT_EQ(serial.oss().totalBytes(), sharded.oss().totalBytes());
    EXPECT_EQ(serial.odps().rowCount(), sharded.odps().rowCount());

    // Coverage accounting committed in request order matches exactly.
    EXPECT_TRUE(serial.coverage() == sharded.coverage());
    EXPECT_EQ(serial.sessionsRun(), sharded.sessionsRun());

    // The control plane observed itself.
    EXPECT_EQ(registry.counter("api.submits").value(),
              manifests.size());
    EXPECT_EQ(registry.counter("commitlog.commits").value(),
              manifests.size());
    EXPECT_EQ(registry.histogram("reconcile.latency_us").count(),
              manifests.size());
    std::uint64_t shard_reconciles = 0;
    for (int s = 0; s < sharded.shardCount(); ++s)
        shard_reconciles += registry
                                .counter("shard." + std::to_string(s) +
                                         ".reconciles")
                                .value();
    EXPECT_EQ(shard_reconciles, manifests.size());
}

TEST(ShardedMasterTest, BitIdenticalToSerialAcrossShardCounts)
{
    for (int shards : {1, 2, 4, 8})
        compareSerialVsSharded(demoManifests(), shards);
}

TEST(ShardedMasterTest, BitIdenticalUnderInterleavedSubmitOrders)
{
    // Same request set, different interleavings: each order forms its
    // own id stream; within an order, every shard count must agree
    // with the serial Master fed that same order.
    std::vector<std::string> reversed = demoManifests();
    std::reverse(reversed.begin(), reversed.end());
    std::vector<std::string> rotated = demoManifests();
    std::rotate(rotated.begin(), rotated.begin() + 2, rotated.end());

    for (const auto &order : {reversed, rotated})
        for (int shards : {2, 8})
            compareSerialVsSharded(order, shards);
}

TEST(ShardedMasterTest, FailedRequestsCommitInOrder)
{
    // An undeployed app mid-stream fails during planning but still
    // occupies its commit slot, so successors publish normally.
    Cluster cluster(smallConfig());
    deployDemo(cluster);
    metrics::Registry registry;
    ShardedMaster master(&cluster, {}, 4, 2, &registry);

    std::uint64_t ok1 =
        master.apply("app=Cache anomaly=true period_ms=30 budget_mb=64");
    std::uint64_t bad = master.apply("app=NotDeployed period_ms=30");
    std::uint64_t ok2 =
        master.apply("app=Search2 anomaly=true period_ms=30 budget_mb=64");
    master.reconcile();

    EXPECT_EQ(master.request(ok1)->phase, RequestPhase::kCompleted);
    EXPECT_EQ(master.request(bad)->phase, RequestPhase::kFailed);
    EXPECT_EQ(master.request(ok2)->phase, RequestPhase::kCompleted);
    EXPECT_EQ(master.report(bad), nullptr);
    ASSERT_NE(master.report(ok2), nullptr);
    EXPECT_GT(master.report(ok2)->total_trace_bytes, 0u);
    EXPECT_EQ(master.coverage().totalRequests(), 2u);
}

TEST(ShardedMasterTest, RepeatedReconcileIsIdempotent)
{
    Cluster cluster(smallConfig());
    deployDemo(cluster);
    metrics::Registry registry;
    ShardedMaster master(&cluster, {}, 2, 2, &registry);
    std::uint64_t id =
        master.apply("app=Cache anomaly=true period_ms=30 budget_mb=64");
    master.reconcile();
    std::uint64_t sessions = master.sessionsRun();
    master.reconcile();  // nothing pending: no new work
    EXPECT_EQ(master.sessionsRun(), sessions);
    EXPECT_EQ(master.odps().queryRequest(id).size(), 3u);
}

TEST(ShardedMasterTest, FootprintSumsPerShardAndPoolThreads)
{
    Cluster cluster(smallConfig());
    deployDemo(cluster);
    metrics::Registry registry;
    ShardedMaster m2(&cluster, {}, 2, 2, &registry);
    ShardedMaster m8(&cluster, {}, 8, 2, &registry);
    Master serial(&cluster, {}, 2);

    auto f2 = m2.managementFootprint();
    auto f8 = m8.managementFootprint();
    auto fs = serial.managementFootprint();
    // Sharding adds per-shard overhead, never reduces the total below
    // the serial plane's state.
    EXPECT_GT(f8.memory_mb, f2.memory_mb);
    EXPECT_GE(f2.memory_mb, fs.memory_mb);
    // Still per-mille territory on a small cluster.
    EXPECT_LT(f8.cores, 0.01);
}

TEST(ShardedMasterTest, FootprintScalesWithThreads)
{
    // Satellite fix: the footprint must depend on the pool width.
    Cluster cluster(smallConfig());
    Master narrow(&cluster, {}, 2);
    Master wide(&cluster, {}, 16);
    EXPECT_GT(wide.managementFootprint().memory_mb,
              narrow.managementFootprint().memory_mb);
    EXPECT_GT(wide.managementFootprint().cores,
              narrow.managementFootprint().cores);
}

TEST(ShardedMasterStress, ConcurrentSubmitsThenReconcile)
{
    // TSan target: racing API-server writes against the global id
    // stream + shard maps, then a multi-shard reconcile publishing
    // through striped stores and the commit log.
    ClusterConfig cc;
    cc.num_nodes = 2;
    cc.cores_per_node = 2;
    cc.seed = 11;
    Cluster cluster(cc);
    cluster.deploy("Cache", 2);

    metrics::Registry registry;
    ShardedMaster master(&cluster, {}, 4, 2, &registry);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 3;
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        submitters.emplace_back([&master]() {
            for (int i = 0; i < kPerThread; ++i)
                master.apply(
                    "app=Cache anomaly=true period_ms=20 budget_mb=32");
        });
    for (std::thread &t : submitters)
        t.join();

    master.reconcile();

    constexpr std::uint64_t kTotal = kThreads * kPerThread;
    for (std::uint64_t id = 1; id <= kTotal; ++id) {
        ASSERT_NE(master.request(id), nullptr);
        EXPECT_EQ(master.request(id)->phase, RequestPhase::kCompleted);
        ASSERT_NE(master.report(id), nullptr);
    }
    EXPECT_EQ(master.sessionsRun(), kTotal * 2);  // two replicas each
    EXPECT_EQ(master.coverage().totalRequests(), kTotal);
    EXPECT_EQ(master.coverage().totalSessions(), kTotal * 2);
    EXPECT_EQ(registry.counter("api.submits").value(), kTotal);
    EXPECT_EQ(registry.counter("odps.inserts").value(), kTotal * 2);
    EXPECT_EQ(registry.counter("oss.puts").value(),
              master.oss().objectCount());
    EXPECT_EQ(registry.counter("oss.bytes").value(),
              master.oss().totalBytes());
    EXPECT_EQ(registry.histogram("reconcile.latency_us").count(),
              kTotal);
}

TEST(ShardedMasterStress, PhaseReadersDuringReconcile)
{
    // Regression: request phases used to be written outside shard.mu
    // (by planRequest and by the commit action draining on another
    // shard's thread), so concurrent phase reads were racy. phaseOf()
    // now reads under the shard lock and every transition is applied
    // under it; readers polling throughout a reconcile must observe
    // only forward progress (TSan checks the rest).
    ClusterConfig cc;
    cc.num_nodes = 2;
    cc.cores_per_node = 2;
    cc.seed = 13;
    Cluster cluster(cc);
    cluster.deploy("Cache", 2);

    metrics::Registry registry;
    ShardedMaster master(&cluster, {}, 4, 2, &registry);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i)
        ids.push_back(master.apply(
            "app=Cache anomaly=true period_ms=20 budget_mb=32"));

    std::atomic<bool> done{false};
    std::atomic<int> regressions{0};
    std::vector<std::thread> readers;
    readers.reserve(2);
    for (int r = 0; r < 2; ++r)
        readers.emplace_back([&]() {
            std::vector<RequestPhase> last(ids.size(),
                                           RequestPhase::kPending);
            while (!done.load(std::memory_order_acquire)) {
                for (std::size_t i = 0; i < ids.size(); ++i) {
                    RequestPhase p = master.phaseOf(ids[i]);
                    // Pending -> Running -> Completed, never backward.
                    if (static_cast<int>(p) < static_cast<int>(last[i]))
                        regressions.fetch_add(1);
                    last[i] = p;
                }
            }
        });

    master.reconcile();
    done.store(true, std::memory_order_release);
    for (std::thread &t : readers)
        t.join();

    EXPECT_EQ(regressions.load(), 0);
    for (std::uint64_t id : ids) {
        EXPECT_EQ(master.phaseOf(id), RequestPhase::kCompleted);
        EXPECT_NE(master.report(id), nullptr);
    }
}

TEST(ShardedMasterStress, MetricsRegistryHammer)
{
    // TSan target: the lock-striped registry under concurrent lookup
    // and lock-free recording on shared metric objects.
    metrics::Registry registry;
    constexpr int kThreads = 8;
    constexpr int kOps = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&registry, t]() {
            metrics::Scope scope(registry,
                                 "shard." + std::to_string(t % 4));
            for (int i = 0; i < kOps; ++i) {
                registry.counter("total.ops").add();
                scope.counter("ops").add();
                registry.gauge("last.thread").set(t);
                registry.histogram("op.latency_us")
                    .record(static_cast<std::uint64_t>(i % 4096));
            }
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(registry.counter("total.ops").value(),
              static_cast<std::uint64_t>(kThreads) * kOps);
    std::uint64_t scoped = 0;
    for (int s = 0; s < 4; ++s)
        scoped += registry
                      .counter("shard." + std::to_string(s) + ".ops")
                      .value();
    EXPECT_EQ(scoped, static_cast<std::uint64_t>(kThreads) * kOps);
    EXPECT_EQ(registry.histogram("op.latency_us").count(),
              static_cast<std::uint64_t>(kThreads) * kOps);
    EXPECT_EQ(registry.histogram("op.latency_us").max(), 4095u);
}

TEST(CommitLogTest, AppliesOutOfOrderCommitsInSequence)
{
    CommitLog log;
    log.beginEpoch(4);
    std::vector<int> applied;
    EXPECT_EQ(log.commit(2, [&]() { applied.push_back(2); }), 0u);
    EXPECT_EQ(log.commit(1, [&]() { applied.push_back(1); }), 0u);
    EXPECT_FALSE(log.epochComplete());
    // Seq 0 unblocks 0,1,2 in one drain.
    EXPECT_EQ(log.commit(0, [&]() { applied.push_back(0); }), 3u);
    EXPECT_EQ(log.commit(3, [&]() { applied.push_back(3); }), 1u);
    EXPECT_EQ(applied, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_TRUE(log.epochComplete());

    // Epochs reset the sequence window; the id stream is global.
    log.beginEpoch(1);
    EXPECT_EQ(log.commit(0, []() {}), 1u);
    EXPECT_EQ(log.allocateId(), 1u);
    EXPECT_EQ(log.allocateId(), 2u);
}

TEST(RequestPlanSeedTest, PerRequestStreamsAreStable)
{
    // The planning stream is a pure function of (cluster seed, id) —
    // the anchor of the whole sharded-determinism argument.
    EXPECT_EQ(requestPlanSeed(7, 1), requestPlanSeed(7, 1));
    EXPECT_NE(requestPlanSeed(7, 1), requestPlanSeed(7, 2));
    EXPECT_NE(requestPlanSeed(7, 1), requestPlanSeed(8, 1));
}

}  // namespace
}  // namespace exist
