/**
 * @file
 * Streaming decode pipeline correctness: FlowStream must produce
 * bit-identical results to the batch FlowReconstructor for any chunking
 * of the byte stream; the StreamingDecoder must match ParallelDecoder
 * for any region size, publish interleaving and worker count; and the
 * Testbed streaming path must report exactly the batch path's decode
 * fields. Labelled `concurrency` so the suite runs under TSan.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "analysis/testbed.h"
#include "decode/flow_reconstructor.h"
#include "decode/parallel_decoder.h"
#include "decode/streaming_decoder.h"
#include "runtime/thread_pool.h"

namespace exist {
namespace {

void
expectSameDecode(const DecodedTrace &a, const DecodedTrace &b)
{
    EXPECT_EQ(a.branches_decoded, b.branches_decoded);
    EXPECT_EQ(a.insns_decoded, b.insns_decoded);
    EXPECT_EQ(a.function_insns, b.function_insns);
    EXPECT_EQ(a.function_entries, b.function_entries);
    EXPECT_EQ(a.block_path, b.block_path);
    EXPECT_EQ(a.ptwrites, b.ptwrites);
    EXPECT_EQ(a.tnt_bits_consumed, b.tnt_bits_consumed);
    EXPECT_EQ(a.tips_consumed, b.tips_consumed);
    EXPECT_EQ(a.decode_errors, b.decode_errors);
    EXPECT_EQ(a.resyncs, b.resyncs);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
        EXPECT_EQ(a.segments[i].start_time, b.segments[i].start_time);
        EXPECT_EQ(a.segments[i].end_time, b.segments[i].end_time);
        EXPECT_EQ(a.segments[i].first_offset,
                  b.segments[i].first_offset);
        EXPECT_EQ(a.segments[i].branches, b.segments[i].branches);
    }
}

/** One multi-core traced session whose buffers the tests stream. */
ExperimentSpec
sessionSpec()
{
    ExperimentSpec spec;
    spec.node.num_cores = 8;
    spec.workloads.push_back(WorkloadSpec{
        .app = "mc", .target = true, .closed_clients = 8});
    spec.backend = "EXIST";
    spec.session.period = secondsToCycles(0.12);
    spec.warmup = secondsToCycles(0.03);
    spec.decode = true;
    spec.keep_traces = true;
    return spec;
}

/** Split [0, n) into random-sized chunks (at least 1 byte each). */
std::vector<std::size_t>
randomChunks(std::size_t n, std::uint32_t seed, std::size_t max_chunk)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> dist(1, max_chunk);
    std::vector<std::size_t> sizes;
    std::size_t placed = 0;
    while (placed < n) {
        std::size_t sz = std::min(dist(rng), n - placed);
        sizes.push_back(sz);
        placed += sz;
    }
    return sizes;
}

TEST(RegionQueue, FifoAndCloseDrain)
{
    RegionQueue q(8);
    for (std::uint64_t i = 0; i < 5; ++i) {
        TraceRegion r;
        r.core = 1;
        r.seq = i;
        r.bytes = {static_cast<std::uint8_t>(i)};
        EXPECT_TRUE(q.push(std::move(r)));
    }
    q.close();
    // Pending regions still drain after close, in FIFO order.
    TraceRegion out;
    for (std::uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out.seq, i);
        EXPECT_EQ(out.bytes[0], static_cast<std::uint8_t>(i));
    }
    EXPECT_FALSE(q.pop(out));  // closed and drained
    // Push after close is rejected.
    EXPECT_FALSE(q.push(TraceRegion{}));
    EXPECT_EQ(q.highWater(), 5u);
}

TEST(RegionQueue, BackpressureBoundsDepth)
{
    RegionQueue q(2);
    const std::uint64_t kRegions = 64;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kRegions; ++i) {
            TraceRegion r;
            r.core = 0;
            r.seq = i;
            ASSERT_TRUE(q.push(std::move(r)));
        }
        q.close();
    });
    // Slow consumer: the producer must block rather than let the queue
    // grow past its capacity.
    TraceRegion out;
    std::uint64_t next = 0;
    while (q.pop(out)) {
        EXPECT_EQ(out.seq, next++);
        std::this_thread::yield();
    }
    producer.join();
    EXPECT_EQ(next, kRegions);
    EXPECT_LE(q.highWater(), 2u);
}

TEST(FlowStream, ChunkedEqualsBatchUnderRandomizedSplits)
{
    ExperimentResult r = Testbed::run(sessionSpec());
    ASSERT_GT(r.raw_traces.size(), 1u);

    auto binary = Testbed::binaryForApp("mc");
    DecodeOptions opts;
    opts.record_path = true;
    FlowReconstructor rec(binary.get(), opts);

    for (const CollectedTrace &ct : r.raw_traces) {
        SCOPED_TRACE("core " + std::to_string(ct.core));
        DecodedTrace batch = rec.decode(ct.bytes);
        // Several chunkings per buffer, from single bytes (every packet
        // split) to region-sized pieces.
        for (std::uint32_t seed : {1u, 2u, 3u}) {
            for (std::size_t max_chunk : {std::size_t{1},
                                          std::size_t{7},
                                          std::size_t{4096}}) {
                SCOPED_TRACE("seed=" + std::to_string(seed) +
                             " max_chunk=" + std::to_string(max_chunk));
                FlowStream stream = rec.stream();
                std::size_t off = 0;
                for (std::size_t sz : randomChunks(
                         ct.bytes.size(), seed, max_chunk)) {
                    stream.append(ct.bytes.data() + off, sz);
                    off += sz;
                }
                expectSameDecode(stream.finish(), batch);
            }
        }
    }
}

TEST(FlowStream, EmptyStream)
{
    auto binary = Testbed::binaryForApp("mc");
    FlowStream stream(binary.get());
    DecodedTrace dt = stream.finish();
    EXPECT_EQ(dt.branches_decoded, 0u);
    EXPECT_TRUE(dt.segments.empty());
    EXPECT_TRUE(stream.finished());
}

TEST(StreamingDecoder, MatchesParallelDecoderAcrossThreadsAndChunks)
{
    ExperimentResult r = Testbed::run(sessionSpec());
    ASSERT_GT(r.raw_traces.size(), 1u);

    auto binary = Testbed::binaryForApp("mc");
    DecodeOptions opts;
    opts.record_path = true;
    ParallelDecoder batch(binary.get(), opts, 0);
    auto baseline = batch.decodeAll(r.raw_traces);

    for (int threads : {1, 2, 8}) {
        for (std::uint32_t seed : {11u, 12u}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " seed=" + std::to_string(seed));
            StreamingDecoder sd(binary.get(), opts, threads,
                                /*queue_capacity=*/4);
            for (const CollectedTrace &ct : r.raw_traces)
                sd.addCore(ct.core);

            // Publish every buffer in random-sized regions, round-robin
            // across cores (arrival interleaving a live session would
            // produce).
            struct Cursor {
                std::vector<std::size_t> chunks;
                std::size_t next_chunk = 0;
                std::size_t off = 0;
            };
            std::vector<Cursor> cursors(r.raw_traces.size());
            for (std::size_t i = 0; i < r.raw_traces.size(); ++i)
                cursors[i].chunks = randomChunks(
                    r.raw_traces[i].bytes.size(), seed + (std::uint32_t)i,
                    8192);
            bool progress = true;
            while (progress) {
                progress = false;
                for (std::size_t i = 0; i < cursors.size(); ++i) {
                    Cursor &c = cursors[i];
                    if (c.next_chunk >= c.chunks.size())
                        continue;
                    std::size_t sz = c.chunks[c.next_chunk++];
                    sd.publish(r.raw_traces[i].core,
                               r.raw_traces[i].bytes.data() + c.off, sz);
                    c.off += sz;
                    progress = true;
                }
            }

            auto decoded = sd.finish();
            ASSERT_EQ(decoded.size(), baseline.size());
            for (std::size_t i = 0; i < decoded.size(); ++i) {
                SCOPED_TRACE("buffer " + std::to_string(i));
                EXPECT_EQ(decoded[i].first, baseline[i].first);
                expectSameDecode(decoded[i].second, baseline[i].second);
            }

            StreamingDecoder::Stats st = sd.stats();
            std::uint64_t total_bytes = 0;
            for (const CollectedTrace &ct : r.raw_traces)
                total_bytes += ct.bytes.size();
            EXPECT_EQ(st.bytes_published, total_bytes);
            EXPECT_GT(st.regions_published, r.raw_traces.size());
        }
    }
}

TEST(StreamingDecoder, ConcurrentPerCorePublishersWithStatsPoller)
{
    // Regression: inline publishing and finish() used to touch the
    // per-core FlowStream/stash without core_state.mu, so concurrent
    // publishers racing a stats poller were unsynchronized. Each core
    // now appends and finishes under its own lock; this TSan target
    // publishes every core from its own thread while a poller reads
    // stats(), then requires the batch decode byte-for-byte.
    ExperimentResult r = Testbed::run(sessionSpec());
    ASSERT_GT(r.raw_traces.size(), 1u);

    auto binary = Testbed::binaryForApp("mc");
    DecodeOptions opts;
    opts.record_path = true;
    ParallelDecoder batch(binary.get(), opts, 0);
    auto baseline = batch.decodeAll(r.raw_traces);

    for (int threads : {1, 2}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        StreamingDecoder sd(binary.get(), opts, threads,
                            /*queue_capacity=*/4);
        for (const CollectedTrace &ct : r.raw_traces)
            sd.addCore(ct.core);

        std::atomic<bool> done{false};
        std::thread poller([&]() {
            std::uint64_t last = 0;
            while (!done.load(std::memory_order_acquire)) {
                StreamingDecoder::Stats st = sd.stats();
                EXPECT_GE(st.bytes_published, last);
                last = st.bytes_published;
                std::this_thread::yield();
            }
        });

        std::vector<std::thread> publishers;
        publishers.reserve(r.raw_traces.size());
        for (const CollectedTrace &ct : r.raw_traces)
            publishers.emplace_back([&sd, &ct]() {
                std::size_t off = 0;
                for (std::size_t sz :
                     randomChunks(ct.bytes.size(), 21, 8192)) {
                    sd.publish(ct.core, ct.bytes.data() + off, sz);
                    off += sz;
                }
            });
        for (std::thread &t : publishers)
            t.join();
        done.store(true, std::memory_order_release);
        poller.join();

        auto decoded = sd.finish();
        ASSERT_EQ(decoded.size(), baseline.size());
        for (std::size_t i = 0; i < decoded.size(); ++i) {
            SCOPED_TRACE("buffer " + std::to_string(i));
            EXPECT_EQ(decoded[i].first, baseline[i].first);
            expectSameDecode(decoded[i].second, baseline[i].second);
        }
    }
}

TEST(StreamingDecoder, ThreadModesResolve)
{
    auto binary = Testbed::binaryForApp("mc");
    EXPECT_EQ(StreamingDecoder(binary.get(), {}, 1).threads(), 1);
    EXPECT_EQ(StreamingDecoder(binary.get(), {}, 3).threads(), 3);
    EXPECT_EQ(StreamingDecoder(binary.get(), {}, 0).threads(),
              ThreadPool::defaultThreads());
}

TEST(StreamingDecoder, AbandonedPipelineShutsDownCleanly)
{
    auto binary = Testbed::binaryForApp("mc");
    StreamingDecoder sd(binary.get(), {}, 2);
    sd.addCore(0);
    std::uint8_t byte = 0;
    sd.publish(0, &byte, 1);
    // Destructor without finish() must release the parked consumers.
}

TEST(StreamingTestbed, ResultsIdenticalToBatchAcrossConfigs)
{
    ExperimentSpec spec = sessionSpec();
    spec.record_paths = true;
    spec.ground_truth = true;
    spec.decode_threads = 1;
    ExperimentResult batch = Testbed::run(spec);
    EXPECT_FALSE(batch.streamed);
    EXPECT_GT(batch.decoded_branches, 0u);

    for (int threads : {1, 2, 8}) {
        for (std::uint64_t region_kb : {std::uint64_t{0},
                                        std::uint64_t{64}}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " region_kb=" + std::to_string(region_kb));
            ExperimentSpec s = spec;
            s.streaming = true;
            s.decode_threads = threads;
            s.stream_region_kb = region_kb;
            ExperimentResult stream = Testbed::run(s);
            EXPECT_TRUE(stream.streamed);
            EXPECT_GE(stream.report_latency_s, 0.0);
            EXPECT_EQ(stream.truth_branches, batch.truth_branches);
            EXPECT_EQ(stream.decoded_branches, batch.decoded_branches);
            EXPECT_EQ(stream.decode_errors, batch.decode_errors);
            EXPECT_EQ(stream.decoded_function_insns,
                      batch.decoded_function_insns);
            EXPECT_EQ(stream.decoded_function_entries,
                      batch.decoded_function_entries);
            EXPECT_DOUBLE_EQ(stream.accuracy_coverage,
                             batch.accuracy_coverage);
            EXPECT_DOUBLE_EQ(stream.accuracy_wall, batch.accuracy_wall);
            EXPECT_DOUBLE_EQ(stream.path_precision,
                             batch.path_precision);
            // Raw collection is non-destructive under streaming.
            ASSERT_EQ(stream.raw_traces.size(), batch.raw_traces.size());
            for (std::size_t i = 0; i < stream.raw_traces.size(); ++i) {
                EXPECT_EQ(stream.raw_traces[i].core,
                          batch.raw_traces[i].core);
                EXPECT_EQ(stream.raw_traces[i].bytes,
                          batch.raw_traces[i].bytes);
            }
        }
    }
}

TEST(StreamingTestbed, RingSessionsFallBackToBatch)
{
    ExperimentSpec spec = sessionSpec();
    spec.streaming = true;
    spec.session.ring_buffers = true;
    ExperimentResult r = Testbed::run(spec);
    EXPECT_FALSE(r.streamed);
    EXPECT_GT(r.decoded_branches, 0u);
}

}  // namespace
}  // namespace exist
