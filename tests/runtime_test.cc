/**
 * @file
 * Work-stealing thread pool tests: scheduling reaches every worker,
 * skewed local queues get drained by stealing, exceptions travel
 * through futures, and shutdown drains queued work. Synchronization is
 * latches and atomics only — no sleeps, so the suite is deterministic
 * under TSan (ctest -L concurrency).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.h"

namespace exist {
namespace {

TEST(ThreadPool, SubmitReturnsResultThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::defaultThreads());
}

TEST(ThreadPool, TasksRunOnAllWorkers)
{
    constexpr int kWorkers = 4;
    ThreadPool pool(kWorkers);

    // Each task blocks until all kWorkers tasks have started, so no
    // thread can run two of them: every worker must pick one up
    // (directly or by stealing).
    std::latch all_started(kWorkers);
    std::mutex mu;
    std::set<std::thread::id> ids;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < kWorkers; ++i) {
        futures.push_back(pool.submit([&]() {
            {
                std::lock_guard<std::mutex> lk(mu);
                ids.insert(std::this_thread::get_id());
            }
            all_started.arrive_and_wait();
        }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(kWorkers));
}

TEST(ThreadPool, StealingDrainsASkewedQueue)
{
    constexpr int kWorkers = 4;
    constexpr int kSubtasks = 64;
    ThreadPool pool(kWorkers);

    // The producer task enqueues kSubtasks from inside a worker (they
    // land on that worker's local deque) and then blocks until every
    // subtask has finished. The producer's thread is parked, so the
    // subtasks can only complete if other workers steal them.
    std::latch subtasks_done(kSubtasks);
    std::atomic<int> ran{0};
    std::mutex mu;
    std::set<std::thread::id> runners;
    std::thread::id producer_id;

    auto producer = pool.submit([&]() {
        producer_id = std::this_thread::get_id();
        for (int i = 0; i < kSubtasks; ++i) {
            pool.submit([&]() {
                {
                    std::lock_guard<std::mutex> lk(mu);
                    runners.insert(std::this_thread::get_id());
                }
                ran.fetch_add(1);
                subtasks_done.count_down();
            });
        }
        subtasks_done.wait();
    });
    producer.get();

    EXPECT_EQ(ran.load(), kSubtasks);
    EXPECT_FALSE(runners.empty());
    // Every subtask was stolen: the producer never ran one.
    EXPECT_EQ(runners.count(producer_id), 0u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("decode failed"); });
    EXPECT_THROW(f.get(), std::runtime_error);

    // The pool survives a throwing task.
    auto g = pool.submit([]() { return 1; });
    EXPECT_EQ(g.get(), 1);
}

TEST(ThreadPool, ParallelForExceptionPropagates)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("i37");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    constexpr int kTasks = 200;
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < kTasks; ++i)
            pool.submit([&]() { ran.fetch_add(1); });
        // Destroy immediately: queued tasks must still run.
    }
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(0, kN,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyAndSingle)
{
    ThreadPool pool(2);
    std::atomic<int> hits{0};
    pool.parallelFor(5, 5, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 0);
    pool.parallelFor(7, 8, [&](std::size_t i) {
        EXPECT_EQ(i, 7u);
        hits.fetch_add(1);
    });
    EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, NestedParallelForFromWorkerDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    // Outer iterations run on pool workers; each runs an inner
    // parallelFor on the same pool, exercising the help-while-waiting
    // path that prevents self-deadlock.
    pool.parallelFor(0, 4, [&](std::size_t) {
        pool.parallelFor(0, 8,
                         [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ExternalSubmittersRaceWorkersWithoutCounterWrap)
{
    // Regression: push() used to increment the pending-task counter
    // *after* publishing the task, so a fast worker could pop and
    // decrement first, transiently wrapping the counter past zero and
    // tripping the drained-shutdown assert. Hammer the push/pop race
    // from several external threads against a small pool; every task
    // must run and the pool must still shut down drained.
    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = 500;
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        std::vector<std::thread> submitters;
        submitters.reserve(kSubmitters);
        for (int s = 0; s < kSubmitters; ++s)
            submitters.emplace_back([&]() {
                for (int i = 0; i < kPerSubmitter; ++i)
                    pool.submit([&]() { ran.fetch_add(1); });
            });
        for (auto &t : submitters)
            t.join();
        // Destructor drains whatever is still queued.
    }
    EXPECT_EQ(ran.load(), kSubmitters * kPerSubmitter);
}

TEST(ThreadPool, ManySmallTasksComplete)
{
    ThreadPool pool(4);
    constexpr int kTasks = 5000;
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i)
        futures.push_back(pool.submit([&]() { ran.fetch_add(1); }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(ran.load(), kTasks);
}

}  // namespace
}  // namespace exist
