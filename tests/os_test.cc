/**
 * @file
 * Kernel/scheduler tests: affinity, preemption, blocking syscalls,
 * tracepoint hooks, the five-tuple switch log, periodic interrupt
 * sources, and accounting invariants.
 */
#include <gtest/gtest.h>

#include "analysis/testbed.h"
#include "os/kernel.h"

namespace exist {
namespace {

std::shared_ptr<const ProgramBinary>
binary(const char *app)
{
    return Testbed::binaryForApp(app);
}

TEST(Kernel, AffinityIsRespected)
{
    NodeConfig cfg;
    cfg.num_cores = 4;
    Kernel kernel(cfg);
    Process *p = kernel.createProcess("om", binary("om"), {1, 2});
    for (int i = 0; i < 3; ++i)
        kernel.startThread(kernel.createThread(p, nullptr));
    kernel.runFor(secondsToCycles(0.02));
    EXPECT_EQ(kernel.coreBusyCycles(0), 0u);
    EXPECT_EQ(kernel.coreBusyCycles(3), 0u);
    EXPECT_GT(kernel.coreBusyCycles(1), 0u);
    EXPECT_GT(kernel.coreBusyCycles(2), 0u);
}

TEST(Kernel, QuantumPreemptionSharesACore)
{
    NodeConfig cfg;
    cfg.num_cores = 1;
    Kernel kernel(cfg);
    Process *p = kernel.createProcess("ex", binary("ex"), {0});
    Thread *t1 = kernel.createThread(p, nullptr);
    Thread *t2 = kernel.createThread(p, nullptr);
    kernel.startThread(t1);
    kernel.startThread(t2);
    kernel.runFor(secondsToCycles(0.05));
    // Both threads make progress and switch roughly per quantum.
    EXPECT_GT(t1->counters().insns, 1'000'000u);
    EXPECT_GT(t2->counters().insns, 1'000'000u);
    double ratio = static_cast<double>(t1->counters().insns) /
                   static_cast<double>(t2->counters().insns);
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.4);
    EXPECT_GT(kernel.totalContextSwitches(), 40u);
}

TEST(Kernel, FullyProvisionedThreadsDoNotSwitch)
{
    NodeConfig cfg;
    cfg.num_cores = 4;
    Kernel kernel(cfg);
    // Use a profile without syscalls so threads never block.
    AppProfile profile = AppCatalog::find("ex");
    profile.syscalls_per_kinsn = 0.0;
    profile.blocking_fraction = 0.0;  // structural syscalls never block
    auto bin = std::make_shared<const ProgramBinary>(
        ProgramBinary::generate(profile, 1));
    Process *p = kernel.createProcess("ex", bin, {});
    for (int i = 0; i < 4; ++i)
        kernel.startThread(kernel.createThread(p, nullptr));
    kernel.runFor(secondsToCycles(0.05));
    // One switch-in per thread; nothing further.
    EXPECT_LE(kernel.totalContextSwitches(), 4u);
}

TEST(Kernel, BlockingSyscallsParkAndWake)
{
    NodeConfig cfg;
    cfg.num_cores = 1;
    Kernel kernel(cfg);
    AppProfile profile = AppCatalog::find("ex");
    profile.syscalls_per_kinsn = 0.5;
    profile.blocking_fraction = 0.5;
    profile.blocking_io_us_mean = 50.0;
    auto bin = std::make_shared<const ProgramBinary>(
        ProgramBinary::generate(profile, 2));
    Process *p = kernel.createProcess("io", bin, {0});
    Thread *t = kernel.createThread(p, nullptr);
    kernel.startThread(t);
    kernel.runFor(secondsToCycles(0.05));
    EXPECT_GT(t->counters().syscalls, 100u);
    // The thread kept making progress despite repeated blocking.
    EXPECT_GT(t->counters().insns, 100'000u);
    // The core was idle a noticeable fraction of the time.
    EXPECT_LT(kernel.coreBusyCycles(0), secondsToCycles(0.05));
}

TEST(Kernel, SwitchLogRecordsFiveTuples)
{
    NodeConfig cfg;
    cfg.num_cores = 1;
    Kernel kernel(cfg);
    Process *p = kernel.createProcess("om", binary("om"), {0});
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.armSwitchLog(p->pid());
    kernel.runFor(secondsToCycles(0.02));
    std::vector<SwitchRecord> log = kernel.takeSwitchLog();
    ASSERT_GT(log.size(), 8u);
    for (std::size_t i = 1; i < log.size(); ++i)
        EXPECT_GE(log[i].timestamp, log[i - 1].timestamp);
    for (const SwitchRecord &r : log) {
        EXPECT_EQ(r.pid, p->pid());
        EXPECT_EQ(r.cpu, 0);
        EXPECT_TRUE(r.op == 0 || r.op == 1);
    }
}

TEST(Kernel, SwitchLogFilterExcludesOthers)
{
    NodeConfig cfg;
    cfg.num_cores = 1;
    Kernel kernel(cfg);
    Process *a = kernel.createProcess("om", binary("om"), {0});
    Process *b = kernel.createProcess("ex", binary("ex"), {0});
    kernel.startThread(kernel.createThread(a, nullptr));
    kernel.startThread(kernel.createThread(b, nullptr));
    kernel.armSwitchLog(a->pid());
    kernel.runFor(secondsToCycles(0.02));
    for (const SwitchRecord &r : kernel.switchLog())
        EXPECT_EQ(r.pid, a->pid());
}

TEST(Kernel, SchedSwitchHooksFireAndCharge)
{
    NodeConfig cfg;
    cfg.num_cores = 1;
    Kernel kernel(cfg);
    Process *p = kernel.createProcess("ex", binary("ex"), {0});
    kernel.startThread(kernel.createThread(p, nullptr));
    kernel.startThread(kernel.createThread(p, nullptr));

    int hook_calls = 0;
    int id = kernel.addSchedSwitchHook(
        [&](Cycles, CoreId, Thread *, Thread *) -> Cycles {
            ++hook_calls;
            return usToCycles(5.0);
        });
    kernel.runFor(secondsToCycles(0.02));
    int calls_while_armed = hook_calls;
    EXPECT_GT(calls_while_armed, 5);
    Cycles kernel_time = kernel.coreKernelCycles(0);
    EXPECT_GE(kernel_time,
              static_cast<Cycles>(calls_while_armed) * usToCycles(5.0));

    kernel.removeSchedSwitchHook(id);
    kernel.runFor(secondsToCycles(0.02));
    EXPECT_EQ(hook_calls, calls_while_armed);
}

TEST(Kernel, SyscallHooksSeeEverySyscall)
{
    NodeConfig cfg;
    cfg.num_cores = 2;
    Kernel kernel(cfg);
    Process *p = kernel.createProcess("mc", binary("mc"), {});
    Thread *t = kernel.createThread(p, nullptr);
    kernel.startThread(t);
    std::uint64_t hook_count = 0;
    kernel.addSyscallHook([&](Cycles, CoreId, Thread &) -> Cycles {
        ++hook_count;
        return 0;
    });
    kernel.runFor(secondsToCycles(0.03));
    EXPECT_EQ(hook_count, t->counters().syscalls);
    EXPECT_GT(hook_count, 50u);
}

TEST(Kernel, InterruptSourceTicksPerCore)
{
    NodeConfig cfg;
    cfg.num_cores = 2;
    Kernel kernel(cfg);
    Process *p = kernel.createProcess("ex", binary("ex"), {0});
    kernel.startThread(kernel.createThread(p, nullptr));

    int busy_hits = 0, idle_hits = 0;
    InterruptSource src;
    src.period = usToCycles(100.0);
    src.cost = usToCycles(2.0);
    src.handler = [&](CoreId, Thread *t) {
        (t != nullptr ? busy_hits : idle_hits) += 1;
    };
    int id = kernel.addInterruptSource(src);
    kernel.runFor(secondsToCycles(0.01));
    // ~100 ticks per core over 10ms at 100us.
    EXPECT_NEAR(busy_hits, 100, 20);   // core 0 busy
    EXPECT_NEAR(idle_hits, 100, 20);   // core 1 idle
    kernel.removeInterruptSource(id);
    int total = busy_hits + idle_hits;
    kernel.runFor(secondsToCycles(0.01));
    EXPECT_EQ(busy_hits + idle_hits, total);
}

TEST(Kernel, TimersFireAtTheRightTime)
{
    NodeConfig cfg;
    Kernel kernel(cfg);
    Cycles fired_at = 0;
    kernel.setTimer(kernel.now() + secondsToCycles(0.01),
                    [&] { fired_at = kernel.now(); });
    kernel.runFor(secondsToCycles(0.02));
    EXPECT_EQ(fired_at, secondsToCycles(0.01));
}

TEST(Kernel, CountersAddUp)
{
    NodeConfig cfg;
    cfg.num_cores = 2;
    Kernel kernel(cfg);
    Process *p = kernel.createProcess("om", binary("om"), {});
    Thread *t = kernel.createThread(p, nullptr);
    kernel.startThread(t);
    kernel.runFor(secondsToCycles(0.05));
    const TaskCounters &c = t->counters();
    EXPECT_GT(c.insns, 0u);
    EXPECT_GT(c.user_cycles, 0u);
    // CPI must be at least the profile's base CPI.
    EXPECT_GE(t->cpi(), AppCatalog::find("om").base_cpi * 0.99);
    // Total busy time across cores at least the thread's cpu time.
    EXPECT_GE(kernel.coreBusyCycles(t->lastCore()), c.user_cycles / 2);
}

TEST(Kernel, MigrationsAreCounted)
{
    NodeConfig cfg;
    cfg.num_cores = 2;
    Kernel kernel(cfg);
    AppProfile profile = AppCatalog::find("mc");
    auto bin = std::make_shared<const ProgramBinary>(
        ProgramBinary::generate(profile, 4));
    Process *p = kernel.createProcess("mc", bin, {});
    // Overcommit with blocking syscalls: wakeups will migrate.
    for (int i = 0; i < 5; ++i)
        kernel.startThread(kernel.createThread(p, nullptr));
    kernel.runFor(secondsToCycles(0.05));
    TaskCounters total = kernel.aggregateCounters();
    EXPECT_GT(total.context_switches, 20u);
}

}  // namespace
}  // namespace exist
