/**
 * @file
 * Edge-case coverage: configurations and paths the main suites don't
 * reach — CYC/TSC-disabled tracing, SMT topology contention, the
 * periodic load generator, empty-input report synthesis, UMA corner
 * cases, and tracer misuse.
 */
#include <gtest/gtest.h>

#include "analysis/behavior_report.h"
#include "analysis/testbed.h"
#include "core/uma.h"
#include "decode/flow_reconstructor.h"
#include "hwtrace/tracer.h"
#include "os/loadgen.h"
#include "os/service.h"
#include "workload/execution.h"

namespace exist {
namespace {

TEST(EdgeTracer, DecodesWithoutCycAndTsc)
{
    // Timing packets off: control flow must still reconstruct exactly;
    // only segment timestamps degenerate.
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("de"), 31);
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.cyc_en = false;
    cfg.tsc_en = false;
    cfg.topa = {TopaEntry{8 << 20, true, false}};
    ASSERT_TRUE(tracer.configure(cfg).ok);
    ExecutionContext exec(&prog, 32);
    ASSERT_TRUE(
        tracer.enable(0, 0, prog.block(exec.currentBlock()).address)
            .ok);
    std::vector<std::uint32_t> truth;
    Cycles now = 0;
    for (int i = 0; i < 20000; ++i) {
        truth.push_back(exec.currentBlock());
        StepResult s = exec.step();
        now += s.insns;
        tracer.onBranch(s.branch, prog, now, 0, true);
    }
    tracer.disable(now);
    EXPECT_EQ(tracer.packetStats().cyc_packets, 0u);

    DecodeOptions opts;
    opts.record_path = true;
    FlowReconstructor rec(&prog, opts);
    DecodedTrace dt = rec.decode(tracer.output().data().data(),
                                 tracer.output().bytesAccepted());
    EXPECT_EQ(dt.decode_errors, 0u);
    std::size_t n = std::min(dt.block_path.size(), truth.size());
    ASSERT_GT(n, 19000u);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(dt.block_path[i], truth[i]);
    // Dropping CYC shrinks the stream substantially.
    TracerConfig with_cyc = cfg;
    with_cyc.cyc_en = true;
    CoreTracer tracer2(1);
    ASSERT_TRUE(tracer2.configure(with_cyc).ok);
    ExecutionContext exec2(&prog, 32);
    ASSERT_TRUE(tracer2
                    .enable(0, 0,
                            prog.block(exec2.currentBlock()).address)
                    .ok);
    now = 0;
    for (int i = 0; i < 20000; ++i) {
        StepResult s = exec2.step();
        now += s.insns;
        tracer2.onBranch(s.branch, prog, now, 0, true);
    }
    tracer2.disable(now);
    EXPECT_LT(tracer.output().bytesAccepted(),
              tracer2.output().bytesAccepted());
}

TEST(EdgeKernel, SmtSiblingsContend)
{
    // With SMT topology, running on a sibling-busy physical core costs
    // CPI (the Fig. 5 "Share HT" path).
    auto cpi_with = [](bool sibling_busy) {
        NodeConfig cfg;
        cfg.num_cores = 2;
        cfg.smt = true;  // cores 0,1 are one physical core
        Kernel kernel(cfg);
        auto bin = Testbed::binaryForApp("om");
        Process *a = kernel.createProcess("om", bin, {0});
        Thread *t = kernel.createThread(a, nullptr);
        kernel.startThread(t);
        if (sibling_busy) {
            Process *b =
                kernel.createProcess("ex", Testbed::binaryForApp("ex"),
                                     {1});
            kernel.startThread(kernel.createThread(b, nullptr));
        }
        kernel.runFor(secondsToCycles(0.03));
        return t->cpi();
    };
    double alone = cpi_with(false);
    double contended = cpi_with(true);
    EXPECT_GT(contended, alone * 1.05);
}

TEST(EdgeLoadGen, PeriodicGeneratorTicksSteadily)
{
    Kernel kernel(NodeConfig{.num_cores = 2, .seed = 33});
    auto bin = Testbed::binaryForApp("Agent");
    Process *p = kernel.createProcess("Agent", bin, {});
    Service svc(&kernel, p, 34);
    svc.spawnWorkers(2);
    PeriodicLoadGen gen(&kernel, &svc, usToCycles(5000.0));
    gen.start();
    kernel.runFor(secondsToCycles(0.1));
    gen.stop();
    EXPECT_NEAR(static_cast<double>(gen.issued()), 20.0, 2.0);
    kernel.runFor(secondsToCycles(0.05));
    EXPECT_EQ(svc.completedCount(), gen.issued());
}

TEST(EdgeReport, EmptyInputsAreSafe)
{
    auto bin = Testbed::binaryForApp("mc");
    std::string report =
        BehaviorReport::synthesize(*bin, {}, {});
    EXPECT_NE(report.find("0 branches"), std::string::npos);
    // No sidecar: the per-thread section is simply absent.
    EXPECT_EQ(report.find("Per-thread activity"), std::string::npos);
}

TEST(EdgeUma, SingleCoreNodePlans)
{
    Kernel kernel(NodeConfig{.num_cores = 1, .seed = 35});
    auto bin = Testbed::binaryForApp("Search2");  // CPU-share
    Process *p = kernel.createProcess("Search2", bin, {});
    UmaConfig cfg;
    cfg.sample_ratio = 0.3;
    UmaPlan plan = UsageAwareMemoryAllocator::plan(kernel, *p, cfg);
    ASSERT_EQ(plan.allocations.size(), 1u);
    EXPECT_EQ(plan.allocations[0].core, 0);
}

TEST(EdgeUma, FreshNodeHasNoUtilizationHistory)
{
    // Planning at t=0 (no busy history) must not divide by zero or
    // produce degenerate buffers.
    Kernel kernel(NodeConfig{.num_cores = 8, .seed = 36});
    auto bin = Testbed::binaryForApp("Search2");
    Process *p = kernel.createProcess("Search2", bin, {});
    UmaPlan plan =
        UsageAwareMemoryAllocator::plan(kernel, *p, UmaConfig{});
    EXPECT_GE(plan.allocations.size(), 1u);
    for (const CoreAllocation &a : plan.allocations)
        EXPECT_GE(a.real_bytes, 4ull << 20);
}

TEST(EdgeTracer, DisableWithoutEnableIsSafe)
{
    CoreTracer tracer(0);
    TracerConfig cfg;
    cfg.topa = {TopaEntry{4096, true, false}};
    ASSERT_TRUE(tracer.configure(cfg).ok);
    auto res = tracer.disable(10);  // never enabled
    EXPECT_TRUE(res.ok);
    EXPECT_FALSE(tracer.enabled());
}

TEST(EdgeTracer, ReconfigureBetweenSessions)
{
    // A tracer is reused across sessions with different targets; the
    // second session must not see the first's data.
    ProgramBinary prog =
        ProgramBinary::generate(AppCatalog::find("ex"), 37);
    CoreTracer tracer(0);
    for (std::uint64_t cr3 : {0x111ull, 0x222ull}) {
        TracerConfig cfg;
        cfg.cr3_filter = true;
        cfg.cr3_match = cr3;
        cfg.topa = {TopaEntry{1 << 18, true, false}};
        ASSERT_TRUE(tracer.configure(cfg).ok);
        ExecutionContext exec(&prog, cr3);
        ASSERT_TRUE(tracer
                        .enable(0, cr3,
                                prog.block(exec.currentBlock())
                                    .address)
                        .ok);
        Cycles now = 0;
        for (int i = 0; i < 500; ++i) {
            StepResult s = exec.step();
            now += s.insns;
            tracer.onBranch(s.branch, prog, now, cr3, true);
        }
        ASSERT_TRUE(tracer.disable(now).ok);
        EXPECT_GT(tracer.output().bytesAccepted(), 0u);
    }
}

TEST(EdgeWorkload, TinyProfileStillGenerates)
{
    AppProfile p = AppCatalog::find("ex");
    p.num_functions = 2;
    p.min_blocks_per_fn = 2;
    p.max_blocks_per_fn = 2;
    ProgramBinary prog = ProgramBinary::generate(p, 38);
    EXPECT_GE(prog.numFunctions(), 2u);
    ExecutionContext exec(&prog, 39);
    for (int i = 0; i < 10000; ++i)
        exec.step();  // must not trap or crash
}

TEST(EdgeService, SubmitWithNullCallback)
{
    Kernel kernel(NodeConfig{.num_cores = 1, .seed = 40});
    auto bin = Testbed::binaryForApp("mc");
    Process *p = kernel.createProcess("mc", bin, {});
    Service svc(&kernel, p, 41);
    svc.spawnWorkers(1);
    svc.submit(kernel.now(), nullptr);  // fire-and-forget request
    kernel.runFor(secondsToCycles(0.01));
    EXPECT_EQ(svc.completedCount(), 1u);
}

}  // namespace
}  // namespace exist
