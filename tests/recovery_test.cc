/**
 * @file
 * Durability-plane tests (DESIGN.md §12): WAL framing and replay
 * rules, snapshot round-trips and fallback, and the headline crash
 * matrix — kill the control plane at every named crash point (and at
 * randomized journal-order steps) across shard counts, batch vs
 * streaming decode, and in-process vs fabric collection, recover
 * from the WAL, and require the recovered artifacts byte-identical
 * to a crash-free run.
 *
 * Crash style here is the in-process one: a test handler throws
 * CrashInjected, the masters run with threads=1 so the exception
 * unwinds to the driver, the "dead" master is discarded, and
 * recovery runs in the same process (the existctl subprocess tests
 * cover the real _Exit(42) death). Registered under the `recovery`
 * ctest label.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/control_journal.h"
#include "cluster/crd.h"
#include "cluster/master.h"
#include "cluster/shard/sharded_master.h"
#include "durability/crash_point.h"
#include "durability/journal.h"
#include "durability/recovery.h"
#include "durability/snapshot.h"
#include "durability/spec.h"
#include "durability/wal.h"
#include "util/rng.h"

namespace exist::durability {
namespace {

namespace fs = std::filesystem;

fs::path
freshDir(const std::string &tag)
{
    static int counter = 0;
    fs::path p = fs::temp_directory_path() /
                 ("exist_recovery_" + std::to_string(::getpid()) +
                  "_" + tag + "_" + std::to_string(counter++));
    fs::remove_all(p);
    fs::create_directories(p);
    return p;
}

std::vector<std::uint8_t>
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFile(const fs::path &p, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

[[noreturn]] void
throwCrash(const std::string &point)
{
    throw crashpoint::CrashInjected{point};
}

/** Arm one crash spec with the throwing handler; restores the
 *  default _Exit handler and disarms on scope exit. */
struct CrashGuard {
    explicit CrashGuard(const std::string &spec)
    {
        prev_ = crashpoint::setHandler(&throwCrash);
        crashpoint::resetSteps();
        crashpoint::arm(spec);
    }
    ~CrashGuard()
    {
        crashpoint::disarm();
        crashpoint::setHandler(prev_);
    }
    crashpoint::Handler prev_;
};

// ---------------------------------------------------------------
// WAL unit tests
// ---------------------------------------------------------------

WalRecord
admitRecord(std::uint64_t id, const std::string &manifest)
{
    WalRecord rec;
    rec.type = RecordType::kAdmit;
    rec.request_id = id;
    rec.manifest = manifest;
    return rec;
}

TEST(WalTest, AppendReplayRoundTripAcrossSegments)
{
    fs::path dir = freshDir("roundtrip");
    {
        // Tiny segments so four records force several rotations.
        Wal wal(Wal::Config{dir.string(), 64});
        WalRecord meta;
        meta.type = RecordType::kMeta;
        meta.meta.cluster_seed = 11;
        meta.meta.num_nodes = 4;
        meta.meta.cores_per_node = 2;
        meta.meta.shards = 2;
        meta.meta.snapshot_interval = 8;
        meta.meta.deployments = {{"Cache", 3}};
        EXPECT_EQ(wal.append(meta), 1u);
        EXPECT_EQ(wal.append(admitRecord(
                      1, "app=Cache anomaly=true budget_mb=64")),
                  2u);
        WalRecord plan;
        plan.type = RecordType::kPlan;
        plan.request_id = 1;
        plan.plan_seed = 0xfeedbeefULL;
        plan.outcome =
            static_cast<std::uint8_t>(RequestPhase::kRunning);
        EXPECT_EQ(wal.append(plan), 3u);
        WalRecord batch;
        batch.type = RecordType::kIngestBatch;
        batch.request_id = 1;
        batch.node = 2;
        batch.stream = 1;
        batch.seq = 5;
        batch.total_batches = 9;
        batch.chunk = {0xde, 0xad, 0xbe, 0xef};
        EXPECT_EQ(wal.append(batch), 4u);
        EXPECT_EQ(wal.nextLsn(), 5u);
    }
    EXPECT_GT(Wal::listSegments(dir.string()).size(), 1u);

    Wal::ReplayResult rr = Wal::replay(dir.string(), 1);
    ASSERT_TRUE(rr.ok) << rr.error;
    EXPECT_FALSE(rr.torn_tail);
    ASSERT_EQ(rr.records.size(), 4u);
    EXPECT_EQ(rr.next_lsn, 5u);
    EXPECT_EQ(rr.records[0].type, RecordType::kMeta);
    EXPECT_EQ(rr.records[0].meta.cluster_seed, 11u);
    EXPECT_EQ(rr.records[0].meta.deployments.size(), 1u);
    EXPECT_EQ(rr.records[1].manifest,
              "app=Cache anomaly=true budget_mb=64");
    EXPECT_EQ(rr.records[2].plan_seed, 0xfeedbeefULL);
    EXPECT_EQ(rr.records[3].seq, 5u);
    EXPECT_EQ(rr.records[3].total_batches, 9u);
    EXPECT_EQ(rr.records[3].chunk,
              (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));

    // Replay from a mid-log LSN returns only the tail.
    Wal::ReplayResult tail = Wal::replay(dir.string(), 3);
    ASSERT_TRUE(tail.ok) << tail.error;
    ASSERT_EQ(tail.records.size(), 2u);
    EXPECT_EQ(tail.records[0].lsn, 3u);
    fs::remove_all(dir);
}

TEST(WalTest, TornTailStopsCleanlyAndReopenResumes)
{
    fs::path dir = freshDir("torn");
    {
        Wal wal(Wal::Config{dir.string()});
        for (std::uint64_t i = 1; i <= 3; ++i)
            wal.append(admitRecord(i, "app=Cache budget_mb=64"));
    }
    // Chop bytes off the final record: a torn tail, not corruption.
    std::vector<std::string> segs = Wal::listSegments(dir.string());
    ASSERT_EQ(segs.size(), 1u);
    fs::resize_file(segs.back(), fs::file_size(segs.back()) - 3);

    Wal::ReplayResult rr = Wal::replay(dir.string(), 1);
    ASSERT_TRUE(rr.ok) << rr.error;
    EXPECT_TRUE(rr.torn_tail);
    ASSERT_EQ(rr.records.size(), 2u);
    EXPECT_EQ(rr.next_lsn, 3u);

    // Reopening never appends after the torn bytes: a new segment
    // starts at the expected LSN, which replay accepts mid-log.
    {
        Wal wal(Wal::Config{dir.string()});
        EXPECT_EQ(wal.nextLsn(), 3u);
        EXPECT_EQ(wal.append(admitRecord(3, "app=Cache budget_mb=64")),
                  3u);
    }
    Wal::ReplayResult rr2 = Wal::replay(dir.string(), 1);
    ASSERT_TRUE(rr2.ok) << rr2.error;
    EXPECT_FALSE(rr2.torn_tail);
    ASSERT_EQ(rr2.records.size(), 3u);
    EXPECT_EQ(rr2.records.back().lsn, 3u);
    fs::remove_all(dir);
}

TEST(WalTest, MissingSegmentIsAHardError)
{
    fs::path dir = freshDir("gap");
    {
        Wal wal(Wal::Config{dir.string(), 64});
        for (std::uint64_t i = 1; i <= 6; ++i)
            wal.append(admitRecord(i, "app=Cache budget_mb=64"));
    }
    std::vector<std::string> segs = Wal::listSegments(dir.string());
    ASSERT_GE(segs.size(), 3u);
    fs::remove(segs[1]);  // records vanish from the middle of the log

    Wal::ReplayResult rr = Wal::replay(dir.string(), 1);
    EXPECT_FALSE(rr.ok);
    EXPECT_FALSE(rr.error.empty());
    fs::remove_all(dir);
}

TEST(WalTest, DuplicateRecordsAreSkipped)
{
    // Splice a later segment's records onto the end of an earlier
    // one: replay sees valid records below the expected LSN (the
    // re-delivered-segment shape) and must skip them, then accept
    // the real successors.
    fs::path dir = freshDir("dup");
    {
        Wal wal(Wal::Config{dir.string(), 64});
        for (std::uint64_t i = 1; i <= 4; ++i)
            wal.append(admitRecord(i, "app=Cache budget_mb=64"));
    }
    std::vector<std::string> segs = Wal::listSegments(dir.string());
    ASSERT_GE(segs.size(), 2u);
    constexpr std::size_t kHeaderBytes = 4 + 1 + 8;
    std::vector<std::uint8_t> first = readFile(segs[0]);
    std::vector<std::uint8_t> second = readFile(segs[1]);
    ASSERT_GT(second.size(), kHeaderBytes);
    first.insert(first.end(), second.begin() + kHeaderBytes,
                 second.end());
    writeFile(segs[0], first);

    Wal::ReplayResult rr = Wal::replay(dir.string(), 1);
    ASSERT_TRUE(rr.ok) << rr.error;
    ASSERT_EQ(rr.records.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(rr.records[i].lsn, i + 1);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// Snapshot unit tests
// ---------------------------------------------------------------

SnapshotState
demoSnapshot(std::uint64_t barrier)
{
    SnapshotState st;
    st.meta.cluster_seed = 11;
    st.meta.num_nodes = 4;
    st.meta.cores_per_node = 2;
    st.meta.shards = 2;
    st.meta.snapshot_interval = 4;
    st.meta.deployments = {{"Cache", 3}};
    st.barrier_lsn = barrier;
    st.dump.next_id = 3;
    TraceRequest req =
        TraceRequest::parse("app=Cache anomaly=true budget_mb=64");
    req.id = 1;
    req.phase = RequestPhase::kCompleted;
    st.dump.requests[1] = req;
    st.dump.objects = {{"traces/1/a", {1, 2, 3}}};
    StreamResume cur;
    cur.total_batches = 7;
    cur.cumulative = 2;
    cur.prefix = {9, 9};
    st.cursors[{2, NodeId{1}, 0}] = cur;
    return st;
}

TEST(SnapshotTest, RoundTripAndPrune)
{
    fs::path dir = freshDir("snap");
    std::string error;
    ASSERT_TRUE(writeSnapshot(dir.string(), demoSnapshot(5), &error))
        << error;
    ASSERT_TRUE(writeSnapshot(dir.string(), demoSnapshot(9), &error))
        << error;
    ASSERT_TRUE(writeSnapshot(dir.string(), demoSnapshot(14), &error))
        << error;

    EXPECT_EQ(pruneSnapshots(dir.string(), 2), 1u);
    auto snaps = listSnapshots(dir.string());
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].first, 9u);
    EXPECT_EQ(snaps[1].first, 14u);

    SnapshotLoad load = loadNewestSnapshot(dir.string());
    ASSERT_TRUE(load.found);
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.state.barrier_lsn, 14u);
    EXPECT_EQ(load.state.meta, demoSnapshot(14).meta);
    EXPECT_EQ(load.state.dump.requests.size(), 1u);
    EXPECT_EQ(load.state.dump.requests.at(1).phase,
              RequestPhase::kCompleted);
    EXPECT_EQ(load.state.dump.objects, demoSnapshot(14).dump.objects);
    ASSERT_EQ(load.state.cursors.size(), 1u);
    EXPECT_EQ(load.state.cursors.begin()->second.prefix,
              (std::vector<std::uint8_t>{9, 9}));
    fs::remove_all(dir);
}

TEST(SnapshotTest, CorruptNewestFallsBackToOlder)
{
    fs::path dir = freshDir("snapfall");
    std::string error;
    ASSERT_TRUE(writeSnapshot(dir.string(), demoSnapshot(5), &error));
    ASSERT_TRUE(writeSnapshot(dir.string(), demoSnapshot(9), &error));
    auto snaps = listSnapshots(dir.string());
    ASSERT_EQ(snaps.size(), 2u);

    std::vector<std::uint8_t> img = readFile(snaps[1].second);
    img[img.size() / 2] ^= 0x40;  // body bit flip -> checksum fails
    writeFile(snaps[1].second, img);

    SnapshotLoad load = loadNewestSnapshot(dir.string());
    ASSERT_TRUE(load.found);
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.state.barrier_lsn, 5u);
    EXPECT_FALSE(load.error.empty());  // the skip reason is recorded
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// CRD + crash-point unit tests
// ---------------------------------------------------------------

TEST(DurabilityCrdTest, WalKeysParseAndManifestOmitsWalDir)
{
    TraceRequest req = TraceRequest::parse(
        "app=Cache budget_mb=64 wal=/tmp/exist-wal "
        "snapshot_interval=4");
    EXPECT_EQ(req.wal_dir, "/tmp/exist-wal");
    EXPECT_EQ(req.snapshot_interval, 4u);

    std::string manifest = req.toManifest();
    EXPECT_EQ(manifest.find("wal="), std::string::npos);
    EXPECT_NE(manifest.find("snapshot_interval=4"),
              std::string::npos);
    // Round-trip keeps the cadence; the wal dir is host-local.
    TraceRequest again = TraceRequest::parse(manifest);
    EXPECT_EQ(again.snapshot_interval, 4u);
    EXPECT_TRUE(again.wal_dir.empty());
}

TEST(CrashPointTest, NamedCountAndStepArming)
{
    CrashGuard guard("p:2");
    crashpoint::hit("q");  // different point: no fire
    crashpoint::hit("p");  // first crossing: no fire
    EXPECT_THROW(crashpoint::hit("p"), crashpoint::CrashInjected);
    EXPECT_EQ(crashpoint::steps(), 3u);
    // One-shot: only the exact nth crossing fires, later ones pass.
    EXPECT_NO_THROW(crashpoint::hit("p"));

    crashpoint::resetSteps();
    crashpoint::arm("step:3");
    crashpoint::hit("a");
    crashpoint::hit("b");
    EXPECT_THROW(crashpoint::hit("c"), crashpoint::CrashInjected);
}

// ---------------------------------------------------------------
// The crash matrix
// ---------------------------------------------------------------

struct RunConfig {
    int shards = 1;  ///< 0 = the serial Master
    bool streaming = false;
    bool net = false;
    std::uint64_t snapshot_interval = 0;  ///< 0 = never snapshot
};

constexpr char kApp[] = "Cache";
constexpr int kReplicas = 3;
constexpr std::uint64_t kRequests = 4;

ClusterConfig
smallConfig()
{
    ClusterConfig cc;
    cc.num_nodes = 4;
    cc.cores_per_node = 2;
    cc.seed = 11;
    return cc;
}

std::vector<std::string>
demoManifests(const RunConfig &cfg)
{
    std::string extra;
    if (cfg.streaming)
        extra += " streaming=true";
    if (cfg.net)
        extra += " net=true";
    return {
        "app=Cache anomaly=true period_ms=12 budget_mb=64" + extra,
        "app=Cache period_ms=10 budget_mb=64" + extra,
        "app=Cache anomaly=true period_ms=10 budget_mb=64" + extra,
        "app=Cache period_ms=12 budget_mb=64" + extra,
    };
}

ClusterMeta
metaFor(const RunConfig &cfg)
{
    ClusterConfig cc = smallConfig();
    ClusterMeta meta;
    meta.cluster_seed = cc.seed;
    meta.num_nodes = cc.num_nodes;
    meta.cores_per_node = cc.cores_per_node;
    meta.shards = cfg.shards;
    meta.snapshot_interval = cfg.snapshot_interval;
    meta.deployments = {{kApp, kReplicas}};
    return meta;
}

DurabilitySpec
specFor(const RunConfig &cfg, const fs::path &dir)
{
    DurabilitySpec spec;
    spec.wal_dir = dir.string();
    spec.snapshot_interval = cfg.snapshot_interval;
    return spec;
}

/** Everything a run leaves behind that the determinism contract
 *  covers. sessionsRun is deliberately absent: recovery replays
 *  completed publishes instead of re-running their sessions. */
struct Artifacts {
    std::map<std::uint64_t, RequestPhase> phases;
    std::map<std::uint64_t, TraceReport> reports;
    std::map<std::string, std::vector<std::uint8_t>> objects;
    std::vector<TraceRow> rows;
    CoverageLedger ledger;
};

template <typename MasterT>
Artifacts
captureArtifacts(MasterT &master)
{
    Artifacts a;
    for (std::uint64_t id = 1; id <= kRequests; ++id) {
        const TraceRequest *req = master.request(id);
        EXPECT_NE(req, nullptr) << "request " << id;
        if (req != nullptr)
            a.phases[id] = req->phase;
        if (const TraceReport *r = master.report(id))
            a.reports[id] = *r;
        for (const TraceRow *row : master.odps().queryRequest(id))
            a.rows.push_back(*row);
    }
    std::sort(a.rows.begin(), a.rows.end(),
              [](const TraceRow &x, const TraceRow &y) {
                  if (x.request_id != y.request_id)
                      return x.request_id < y.request_id;
                  return x.node < y.node;
              });
    for (const std::string &key : master.oss().listPrefix("traces/"))
        a.objects[key] = master.oss().get(key);
    a.ledger = master.coverage();
    return a;
}

void
expectArtifactsEqual(const Artifacts &got, const Artifacts &want)
{
    EXPECT_EQ(got.phases, want.phases);
    ASSERT_EQ(got.reports.size(), want.reports.size());
    for (const auto &[id, report] : want.reports) {
        ASSERT_TRUE(got.reports.count(id)) << "report " << id;
        EXPECT_TRUE(got.reports.at(id) == report)
            << "report " << id << " diverged";
    }
    EXPECT_EQ(got.objects, want.objects);
    ASSERT_EQ(got.rows.size(), want.rows.size());
    for (std::size_t i = 0; i < want.rows.size(); ++i)
        EXPECT_EQ(got.rows[i], want.rows[i]) << "row " << i;
    EXPECT_TRUE(got.ledger == want.ledger);
}

template <typename MasterT>
Artifacts
driveToCompletion(MasterT &master,
                  const std::vector<std::string> &manifests)
{
    for (const std::string &m : manifests)
        master.apply(m);
    master.reconcile();
    return captureArtifacts(master);
}

/** A crash-free run with no journal: the golden artifacts. */
Artifacts
golden(const RunConfig &cfg)
{
    Cluster cluster(smallConfig());
    cluster.deploy(kApp, kReplicas);
    std::vector<std::string> ms = demoManifests(cfg);
    if (cfg.shards == 0) {
        Master master(&cluster, {}, 1);
        return driveToCompletion(master, ms);
    }
    ShardedMaster master(&cluster, {}, cfg.shards, 1);
    return driveToCompletion(master, ms);
}

/** Run journaled to completion (threads=1 so an armed crash unwinds
 *  here); returns true if the armed crash fired. */
template <typename MasterT>
bool
runJournaled(MasterT &master, Journal &journal,
             const std::vector<std::string> &manifests)
{
    master.attachJournal(&journal);
    try {
        for (const std::string &m : manifests)
            master.apply(m);
        master.reconcile();
        journal.maybeSnapshot(
            [&master] { return master.dumpState(); });
    } catch (const crashpoint::CrashInjected &) {
        return true;
    }
    return false;
}

bool
journaledRun(const RunConfig &cfg, const fs::path &dir)
{
    Cluster cluster(smallConfig());
    cluster.deploy(kApp, kReplicas);
    Journal journal(specFor(cfg, dir), metaFor(cfg));
    std::vector<std::string> ms = demoManifests(cfg);
    if (cfg.shards == 0) {
        Master master(&cluster, {}, 1);
        return runJournaled(master, journal, ms);
    }
    ShardedMaster master(&cluster, {}, cfg.shards, 1);
    return runJournaled(master, journal, ms);
}

/** Recover `dir`, finish the run (client-retrying admissions the WAL
 *  never saw), and return the artifacts. */
Artifacts
recoverAndFinish(const RunConfig &cfg, const fs::path &dir)
{
    RecoveryResult rec = recover(dir.string());
    EXPECT_TRUE(rec.ok) << rec.error;
    if (!rec.ok)
        return {};
    const RecoveredState &st = rec.state;
    EXPECT_EQ(st.meta, metaFor(cfg));

    Cluster cluster(smallConfig());
    for (const auto &[app, replicas] : st.meta.deployments)
        cluster.deploy(app, replicas);
    Journal journal(specFor(cfg, dir), st.meta);
    journal.setResume(st.resume);

    std::vector<std::string> ms = demoManifests(cfg);
    // Admissions are durable before the id is acknowledged, so the
    // recovered next_id tells the "client" which submissions the
    // crashed master never accepted.
    EXPECT_GE(st.dump.next_id, 1u);
    EXPECT_LE(st.dump.next_id, ms.size() + 1);
    std::vector<std::string> missing(
        ms.begin() +
            static_cast<std::ptrdiff_t>(st.dump.next_id - 1),
        ms.end());

    auto finish = [&](auto &master) {
        master.restoreForRecovery(st.dump);
        master.attachJournal(&journal);
        for (const std::string &m : missing)
            master.apply(m);
        master.reconcile();
        journal.maybeSnapshot(
            [&master] { return master.dumpState(); });
        return captureArtifacts(master);
    };
    if (st.meta.shards == 0) {
        Master master(&cluster, {}, 1);
        return finish(master);
    }
    ShardedMaster master(&cluster, {}, st.meta.shards, 1);
    return finish(master);
}

void
crashRecoverCompare(const RunConfig &cfg, const std::string &spec,
                    const Artifacts &want, const std::string &tag)
{
    SCOPED_TRACE(tag + " crash=" + spec);
    fs::path dir = freshDir(tag);
    bool crashed = false;
    {
        CrashGuard guard(spec);
        crashed = journaledRun(cfg, dir);
    }
    ASSERT_TRUE(crashed) << "crash spec never fired: " << spec;
    Artifacts got = recoverAndFinish(cfg, dir);
    expectArtifactsEqual(got, want);
    fs::remove_all(dir);
}

TEST(RecoveryMatrixTest, BatchCombos)
{
    // shards x collection transport, batch decode; one representative
    // crash point each (ingest-frame only exists on the net path).
    {
        RunConfig cfg{/*shards=*/1, /*streaming=*/false,
                      /*net=*/false, /*snapshot_interval=*/0};
        Artifacts want = golden(cfg);
        crashRecoverCompare(cfg, "pre-store:2", want, "b1i");
    }
    {
        RunConfig cfg{4, false, false, 0};
        Artifacts want = golden(cfg);
        crashRecoverCompare(cfg, "admit:3", want, "b4i");
    }
    {
        RunConfig cfg{1, false, true, 0};
        Artifacts want = golden(cfg);
        crashRecoverCompare(cfg, "ingest-frame:3", want, "b1n");
    }
    {
        RunConfig cfg{4, false, true, 0};
        Artifacts want = golden(cfg);
        crashRecoverCompare(cfg, "post-plan:2", want, "b4n");
    }
}

TEST(RecoveryMatrixTest, StreamingCombos)
{
    {
        RunConfig cfg{1, true, false, 0};
        Artifacts want = golden(cfg);
        crashRecoverCompare(cfg, "post-plan:3", want, "s1i");
    }
    {
        RunConfig cfg{4, true, false, 0};
        Artifacts want = golden(cfg);
        crashRecoverCompare(cfg, "pre-store:3", want, "s4i");
    }
    {
        RunConfig cfg{1, true, true, 0};
        Artifacts want = golden(cfg);
        crashRecoverCompare(cfg, "ingest-frame:5", want, "s1n");
    }
}

TEST(RecoveryMatrixTest, EveryNamedPointShardedStreamingNet)
{
    // The heavy combo crosses all six named points (snapshots due
    // every 2 publishes). Each one must recover byte-identically.
    RunConfig cfg{4, true, true, /*snapshot_interval=*/2};
    Artifacts want = golden(cfg);
    int i = 0;
    for (const char *point :
         {"admit:2", "post-plan:2", "ingest-frame:4", "pre-store:2",
          "mid-snapshot", "post-snapshot"})
        crashRecoverCompare(cfg, point, want,
                            "named" + std::to_string(i++));
}

TEST(RecoveryMatrixTest, SerialMasterCrashRecover)
{
    // meta.shards == 0: recovery rebuilds the serial Master.
    RunConfig cfg{/*shards=*/0, false, true, 0};
    Artifacts want = golden(cfg);
    crashRecoverCompare(cfg, "pre-store:2", want, "serial");
    crashRecoverCompare(cfg, "ingest-frame:2", want, "serial2");
}

TEST(RecoveryMatrixTest, RandomizedEventQueueSteps)
{
    // The randomized mode: measure the crash-step space S with a
    // crash-free journaled run, then kill the master at >= 8
    // uniformly drawn journal-order boundaries. Every draw must
    // recover byte-identically.
    RunConfig cfg{4, true, true, /*snapshot_interval=*/2};
    Artifacts want = golden(cfg);

    fs::path probe = freshDir("stepspace");
    crashpoint::resetSteps();
    ASSERT_FALSE(journaledRun(cfg, probe));
    std::uint64_t space = crashpoint::steps();
    fs::remove_all(probe);
    ASSERT_GE(space, 8u) << "step space too small to randomize";

    Rng rng(0x5eed5eedULL);
    for (int i = 0; i < 8; ++i) {
        std::uint64_t n = 1 + rng.uniformInt(space);
        crashRecoverCompare(cfg, "step:" + std::to_string(n), want,
                            "step" + std::to_string(i));
    }
}

TEST(RecoveryTest, JournaledRunMatchesUnjournaledByteForByte)
{
    // WAL on vs off: journaling is pure observation. Also pins that
    // a crash-free journaled run leaves a replayable log behind.
    for (int shards : {0, 2}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        RunConfig cfg{shards, false, false, /*snapshot_interval=*/2};
        Artifacts want = golden(cfg);

        fs::path dir = freshDir("walonoff");
        Cluster cluster(smallConfig());
        cluster.deploy(kApp, kReplicas);
        Journal journal(specFor(cfg, dir), metaFor(cfg));
        std::vector<std::string> ms = demoManifests(cfg);
        Artifacts got;
        if (shards == 0) {
            Master master(&cluster, {}, 1);
            master.attachJournal(&journal);
            got = driveToCompletion(master, ms);
            journal.maybeSnapshot(
                [&master] { return master.dumpState(); });
        } else {
            ShardedMaster master(&cluster, {}, shards, 1);
            master.attachJournal(&journal);
            got = driveToCompletion(master, ms);
            journal.maybeSnapshot(
                [&master] { return master.dumpState(); });
        }
        expectArtifactsEqual(got, want);

        // The log it left is itself recoverable, with nothing
        // pending, and reproduces the same state image.
        RecoveryResult rec = recover(dir.string());
        ASSERT_TRUE(rec.ok) << rec.error;
        EXPECT_EQ(rec.state.telemetry.pending_requests, 0u);
        EXPECT_TRUE(rec.state.telemetry.snapshot_used);
        EXPECT_EQ(rec.state.dump.requests.size(), kRequests);
        for (const auto &[id, req] : rec.state.dump.requests)
            EXPECT_EQ(req.phase, RequestPhase::kCompleted);
        fs::remove_all(dir);
    }
}

TEST(RecoveryTest, SnapshotBoundsReplayNotRunLength)
{
    // The recovery-latency contract: with snapshots every 2
    // publishes, the WAL tail replayed after a long run stays O(1)
    // records, however many requests completed before the crash.
    RunConfig cfg{2, false, false, /*snapshot_interval=*/2};
    fs::path dir = freshDir("bounded");
    {
        Cluster cluster(smallConfig());
        cluster.deploy(kApp, kReplicas);
        Journal journal(specFor(cfg, dir), metaFor(cfg));
        ShardedMaster master(&cluster, {}, cfg.shards, 1);
        master.attachJournal(&journal);
        std::vector<std::string> ms = demoManifests(cfg);
        // Three reconcile epochs = 12 publishes, snapshotting at
        // every epoch boundary.
        for (int epoch = 0; epoch < 3; ++epoch) {
            for (const std::string &m : ms)
                master.apply(m);
            master.reconcile();
            journal.maybeSnapshot(
                [&master] { return master.dumpState(); });
        }
    }
    RecoveryResult rec = recover(dir.string());
    ASSERT_TRUE(rec.ok) << rec.error;
    EXPECT_TRUE(rec.state.telemetry.snapshot_used);
    EXPECT_EQ(rec.state.dump.requests.size(), 3 * kRequests);
    // Everything before the barrier came from the image, not replay.
    EXPECT_EQ(rec.state.telemetry.replayed_publishes, 0u);
    EXPECT_EQ(rec.state.telemetry.wal_records, 0u);
    // And truncation reclaimed segments below the older barrier.
    EXPECT_GE(listSnapshots(dir.string()).size(), 1u);
    EXPECT_LE(listSnapshots(dir.string()).size(), 2u);
    fs::remove_all(dir);
}

}  // namespace
}  // namespace exist::durability
