/**
 * @file
 * Collection-plane transport tests: the frame codec (round trips,
 * corruption rejection), the simulated fabric's timing / fault model,
 * and the wire-log determinism regression — two runs at one seed must
 * produce byte-identical wire-level event logs.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/frame.h"
#include "net/wire.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace exist::net {
namespace {

TEST(WireTest, VarintAndZigzagRoundTrip)
{
    std::vector<std::uint8_t> buf;
    ByteWriter w(&buf);
    const std::uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20,
                                    ~std::uint64_t{0}};
    for (std::uint64_t v : values)
        w.putVarint(v);
    const std::int64_t svalues[] = {0, -1, 1, -64, 64, -1'000'000};
    for (std::int64_t v : svalues)
        w.putSVarint(v);
    ByteReader r(buf.data(), buf.size());
    for (std::uint64_t v : values)
        EXPECT_EQ(r.getVarint(), v);
    for (std::int64_t v : svalues)
        EXPECT_EQ(r.getSVarint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, DoubleIsBitExact)
{
    std::vector<std::uint8_t> buf;
    ByteWriter w(&buf);
    const double values[] = {0.0, -0.0, 0.1, 1.0 / 3.0, 1e300,
                             -2.5e-308};
    for (double v : values)
        w.putDouble(v);
    ByteReader r(buf.data(), buf.size());
    for (double v : values) {
        double got = r.getDouble();
        EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0);
    }
}

TEST(WireTest, DeltaArrayRoundTripsUnsortedValues)
{
    std::vector<std::uint64_t> values = {100, 90, 250, 0, 7, 7,
                                         1u << 30};
    std::vector<std::uint8_t> buf;
    ByteWriter w(&buf);
    w.putDeltaArray(values);
    ByteReader r(buf.data(), buf.size());
    EXPECT_EQ(r.getDeltaArray(), values);
    EXPECT_TRUE(r.ok());
}

TEST(WireTest, DeltaArrayPacksSmoothProfilesTightly)
{
    // A smooth (nearly sorted) profile should cost far fewer bytes
    // than 8 per element — the reason the agent delta-encodes.
    std::vector<std::uint64_t> profile;
    for (int i = 0; i < 1000; ++i)
        profile.push_back(1'000'000 + static_cast<std::uint64_t>(i) * 17);
    std::vector<std::uint8_t> buf;
    ByteWriter w(&buf);
    w.putDeltaArray(profile);
    EXPECT_LT(buf.size(), profile.size() * 8 / 4);
}

TEST(WireTest, ReaderLatchesOnTruncation)
{
    std::vector<std::uint8_t> buf;
    ByteWriter w(&buf);
    w.putU64(42);
    ByteReader r(buf.data(), 3);  // deliberately short
    EXPECT_EQ(r.getU64(), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.getVarint(), 0u);  // still latched
}

TEST(FrameTest, BatchRoundTrip)
{
    TraceRegionBatchMsg msg;
    msg.node = 3;
    msg.stream = 7;
    msg.batch_seq = 11;
    msg.total_batches = 42;
    msg.chunk = {1, 2, 3, 250, 255, 0};
    std::vector<std::uint8_t> wire = encodeFrame(msg);

    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decodeFrame(wire.data(), wire.size(), &frame, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(frame.type, MsgType::kTraceRegionBatch);
    EXPECT_EQ(frame.batch.node, 3);
    EXPECT_EQ(frame.batch.stream, 7u);
    EXPECT_EQ(frame.batch.batch_seq, 11u);
    EXPECT_EQ(frame.batch.total_batches, 42u);
    EXPECT_EQ(frame.batch.chunk, msg.chunk);
}

TEST(FrameTest, AllTypesRoundTrip)
{
    BehaviorReportMsg rep;
    rep.node = 1;
    rep.stream = 2;
    rep.degraded = true;
    rep.batches_spilled = 9;
    rep.summary = "cpi=1.25 branches=100";
    AckMsg ack;
    ack.node = 4;
    ack.stream = 2;
    ack.batch_seq = kFinaleSeq;
    ack.cumulative = 17;
    ack.window = 5;
    HeartbeatMsg hb;
    hb.node = 6;
    hb.seq = 99;
    hb.queue_depth = 12;

    Frame frame;
    std::size_t consumed = 0;
    std::vector<std::uint8_t> wire = encodeFrame(rep);
    ASSERT_EQ(decodeFrame(wire.data(), wire.size(), &frame, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(frame.type, MsgType::kBehaviorReport);
    EXPECT_TRUE(frame.report.degraded);
    EXPECT_EQ(frame.report.batches_spilled, 9u);
    EXPECT_EQ(frame.report.summary, rep.summary);

    wire = encodeFrame(ack);
    ASSERT_EQ(decodeFrame(wire.data(), wire.size(), &frame, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(frame.type, MsgType::kAck);
    EXPECT_EQ(frame.ack.batch_seq, kFinaleSeq);
    EXPECT_EQ(frame.ack.cumulative, 17u);
    EXPECT_EQ(frame.ack.window, 5u);

    wire = encodeFrame(hb);
    ASSERT_EQ(decodeFrame(wire.data(), wire.size(), &frame, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(frame.type, MsgType::kHeartbeat);
    EXPECT_EQ(frame.heartbeat.seq, 99u);
    EXPECT_EQ(frame.heartbeat.queue_depth, 12u);
}

TEST(FrameTest, RejectsCorruption)
{
    TraceRegionBatchMsg msg;
    msg.node = 1;
    msg.chunk = {10, 20, 30, 40};
    std::vector<std::uint8_t> wire = encodeFrame(msg);

    Frame frame;
    std::size_t consumed = 1;

    // Truncation at every length below the full frame.
    for (std::size_t len = 0; len < wire.size(); ++len)
        EXPECT_EQ(decodeFrame(wire.data(), len, &frame, &consumed),
                  DecodeStatus::kTruncated)
            << "at length " << len;

    // A flipped payload byte fails the checksum.
    std::vector<std::uint8_t> bad = wire;
    bad[kFrameHeaderBytes + 1] ^= 0x40;
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              DecodeStatus::kBadChecksum);

    // Magic / version are checked before anything else.
    bad = wire;
    bad[0] ^= 0xff;
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              DecodeStatus::kBadMagic);
    bad = wire;
    bad[4] += 1;
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &frame, &consumed),
              DecodeStatus::kBadVersion);
}

TEST(FrameTest, ConcatenatedFramesParseSequentially)
{
    HeartbeatMsg hb;
    hb.node = 2;
    std::vector<std::uint8_t> wire = encodeFrame(hb);
    AckMsg ack;
    ack.node = 2;
    ack.stream = 1;
    std::vector<std::uint8_t> second = encodeFrame(ack);
    wire.insert(wire.end(), second.begin(), second.end());

    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decodeFrame(wire.data(), wire.size(), &frame, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(frame.type, MsgType::kHeartbeat);
    ASSERT_EQ(decodeFrame(wire.data() + consumed,
                          wire.size() - consumed, &frame, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(frame.type, MsgType::kAck);
}

/** Run one scripted exchange; returns (wire log text, stats). */
std::pair<std::string, FabricStats>
runScriptedFabric(const NetSpec &spec, std::uint64_t seed)
{
    EventQueue q;
    Fabric fabric(&q, spec, seed);
    std::vector<std::vector<std::uint8_t>> received;
    fabric.attach(1, [](NodeId, const std::vector<std::uint8_t> &) {});
    fabric.attach(2, [&received](NodeId,
                                 const std::vector<std::uint8_t> &b) {
        received.push_back(b);
    });
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        std::vector<std::uint8_t> frame(32 + rng.next() % 512);
        for (std::uint8_t &byte : frame)
            byte = static_cast<std::uint8_t>(rng.next());
        fabric.send(1, 2, std::move(frame));
    }
    q.run();
    return {fabric.wireLogText(), fabric.stats()};
}

TEST(FabricTest, DeliversInOrderWithoutFaults)
{
    EventQueue q;
    NetSpec spec;
    spec.enabled = true;
    spec.jitter_us = 0;
    Fabric fabric(&q, spec, 1);
    std::vector<int> order;
    fabric.attach(1, [](NodeId, const std::vector<std::uint8_t> &) {});
    fabric.attach(2,
                  [&order](NodeId, const std::vector<std::uint8_t> &b) {
                      order.push_back(b[0]);
                  });
    for (int i = 0; i < 5; ++i)
        fabric.send(1, 2, {static_cast<std::uint8_t>(i)});
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(fabric.stats().frames_delivered, 5u);
    EXPECT_EQ(fabric.stats().frames_dropped, 0u);
}

TEST(FabricTest, LatencyRespectsLinkAndSerialization)
{
    EventQueue q;
    NetSpec spec;
    spec.enabled = true;
    spec.jitter_us = 0;
    spec.link_latency_us = 100;
    spec.bandwidth_gbps = 1;  // 1000 bytes take 8 us on the wire
    Fabric fabric(&q, spec, 1);
    Cycles delivered_at = 0;
    fabric.attach(1, [](NodeId, const std::vector<std::uint8_t> &) {});
    fabric.attach(2, [&q, &delivered_at](
                         NodeId, const std::vector<std::uint8_t> &) {
        delivered_at = q.now();
    });
    fabric.send(1, 2, std::vector<std::uint8_t>(1000));
    q.run();
    EXPECT_EQ(delivered_at, usToCycles(8.0) + usToCycles(100.0));
}

TEST(FabricTest, DropRateDropsRoughlyThatFraction)
{
    NetSpec spec;
    spec.enabled = true;
    spec.drop_rate = 0.3;
    auto [log, stats] = runScriptedFabric(spec, 42);
    EXPECT_EQ(stats.frames_sent, 200u);
    EXPECT_EQ(stats.frames_delivered + stats.frames_dropped, 200u);
    EXPECT_GT(stats.frames_dropped, 30u);
    EXPECT_LT(stats.frames_dropped, 100u);
}

TEST(FabricTest, DuplicatesDeliverTwice)
{
    NetSpec spec;
    spec.enabled = true;
    spec.duplicate_rate = 0.5;
    auto [log, stats] = runScriptedFabric(spec, 43);
    EXPECT_GT(stats.frames_duplicated, 50u);
    EXPECT_EQ(stats.frames_delivered,
              200u + stats.frames_duplicated);
}

TEST(FabricTest, ReorderingChangesDeliveryOrder)
{
    EventQueue q;
    NetSpec spec;
    spec.enabled = true;
    spec.jitter_us = 0;
    spec.reorder_rate = 0.5;
    spec.reorder_window_us = 500;
    Fabric fabric(&q, spec, 7);
    std::vector<int> order;
    fabric.attach(1, [](NodeId, const std::vector<std::uint8_t> &) {});
    fabric.attach(2,
                  [&order](NodeId, const std::vector<std::uint8_t> &b) {
                      order.push_back(b[0]);
                  });
    for (int i = 0; i < 50; ++i)
        fabric.send(1, 2, {static_cast<std::uint8_t>(i)});
    q.run();
    ASSERT_EQ(order.size(), 50u);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_NE(order, sorted);  // something was overtaken
    EXPECT_GT(fabric.stats().frames_reordered, 5u);
}

TEST(FabricTest, LinkSeedIsOrderIndependent)
{
    // The stream for (seed, src, dst) must not depend on creation
    // order or direction.
    EXPECT_NE(Fabric::linkSeed(1, 2, 3), Fabric::linkSeed(1, 3, 2));
    EXPECT_NE(Fabric::linkSeed(1, 2, 3), Fabric::linkSeed(2, 2, 3));
    EXPECT_EQ(Fabric::linkSeed(9, 4, 5), Fabric::linkSeed(9, 4, 5));
}

TEST(FabricTest, WireLogIsIdenticalAcrossRunsAtSameSeed)
{
    // The determinism regression of ISSUE 6: all fault and jitter
    // decisions come from per-link seeded streams, so two runs at one
    // seed produce byte-identical wire-level event logs.
    NetSpec spec;
    spec.enabled = true;
    spec.drop_rate = 0.1;
    spec.reorder_rate = 0.2;
    spec.duplicate_rate = 0.05;
    spec.record_wire_log = true;
    auto [log_a, stats_a] = runScriptedFabric(spec, 1234);
    auto [log_b, stats_b] = runScriptedFabric(spec, 1234);
    EXPECT_FALSE(log_a.empty());
    EXPECT_EQ(log_a, log_b);
    EXPECT_EQ(stats_a.delivery_us, stats_b.delivery_us);

    auto [log_c, stats_c] = runScriptedFabric(spec, 1235);
    EXPECT_NE(log_a, log_c);  // the seed actually matters
}

}  // namespace
}  // namespace exist::net
