
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/exist_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/attribution_test.cc" "tests/CMakeFiles/exist_tests.dir/attribution_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/attribution_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/exist_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/exist_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/exist_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/decode_test.cc" "tests/CMakeFiles/exist_tests.dir/decode_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/decode_test.cc.o.d"
  "/root/repo/tests/edge_test.cc" "tests/CMakeFiles/exist_tests.dir/edge_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/edge_test.cc.o.d"
  "/root/repo/tests/etm_test.cc" "tests/CMakeFiles/exist_tests.dir/etm_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/etm_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/exist_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/hwtrace_test.cc" "tests/CMakeFiles/exist_tests.dir/hwtrace_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/hwtrace_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/exist_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/os_test.cc" "tests/CMakeFiles/exist_tests.dir/os_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/os_test.cc.o.d"
  "/root/repo/tests/service_test.cc" "tests/CMakeFiles/exist_tests.dir/service_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/service_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/exist_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/exist_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/exist_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/exist_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/exist_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/exist_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/exist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/exist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/exist_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/decode/CMakeFiles/exist_decode.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/exist_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hwtrace/CMakeFiles/exist_hwtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/exist_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
