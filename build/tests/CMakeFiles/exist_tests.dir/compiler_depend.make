# Empty compiler generated dependencies file for exist_tests.
# This may be replaced when dependencies are built.
