file(REMOVE_RECURSE
  "CMakeFiles/existctl.dir/existctl.cc.o"
  "CMakeFiles/existctl.dir/existctl.cc.o.d"
  "existctl"
  "existctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/existctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
