# Empty compiler generated dependencies file for existctl.
# This may be replaced when dependencies are built.
