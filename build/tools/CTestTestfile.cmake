# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(existctl_list_apps "/root/repo/build/tools/existctl" "list-apps")
set_tests_properties(existctl_list_apps PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(existctl_trace "/root/repo/build/tools/existctl" "trace" "ex" "--period-ms" "40" "--cores" "2")
set_tests_properties(existctl_trace PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(existctl_trace_report "/root/repo/build/tools/existctl" "trace" "mc" "--period-ms" "40" "--report")
set_tests_properties(existctl_trace_report PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(existctl_bad_usage "/root/repo/build/tools/existctl" "frobnicate")
set_tests_properties(existctl_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
