# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anomaly_diagnosis "/root/repo/build/examples/anomaly_diagnosis")
set_tests_properties(example_anomaly_diagnosis PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_backends "/root/repo/build/examples/compare_backends")
set_tests_properties(example_compare_backends PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
