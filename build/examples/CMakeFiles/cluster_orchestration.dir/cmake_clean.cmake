file(REMOVE_RECURSE
  "CMakeFiles/cluster_orchestration.dir/cluster_orchestration.cpp.o"
  "CMakeFiles/cluster_orchestration.dir/cluster_orchestration.cpp.o.d"
  "cluster_orchestration"
  "cluster_orchestration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_orchestration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
