# Empty dependencies file for cluster_orchestration.
# This may be replaced when dependencies are built.
