file(REMOVE_RECURSE
  "CMakeFiles/anomaly_diagnosis.dir/anomaly_diagnosis.cpp.o"
  "CMakeFiles/anomaly_diagnosis.dir/anomaly_diagnosis.cpp.o.d"
  "anomaly_diagnosis"
  "anomaly_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
