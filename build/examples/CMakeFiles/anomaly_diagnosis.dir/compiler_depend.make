# Empty compiler generated dependencies file for anomaly_diagnosis.
# This may be replaced when dependencies are built.
