file(REMOVE_RECURSE
  "CMakeFiles/compare_backends.dir/compare_backends.cpp.o"
  "CMakeFiles/compare_backends.dir/compare_backends.cpp.o.d"
  "compare_backends"
  "compare_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
