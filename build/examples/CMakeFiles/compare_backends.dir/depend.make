# Empty dependencies file for compare_backends.
# This may be replaced when dependencies are built.
