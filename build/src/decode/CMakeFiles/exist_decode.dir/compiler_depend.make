# Empty compiler generated dependencies file for exist_decode.
# This may be replaced when dependencies are built.
