file(REMOVE_RECURSE
  "CMakeFiles/exist_decode.dir/flow_reconstructor.cc.o"
  "CMakeFiles/exist_decode.dir/flow_reconstructor.cc.o.d"
  "CMakeFiles/exist_decode.dir/packet_parser.cc.o"
  "CMakeFiles/exist_decode.dir/packet_parser.cc.o.d"
  "libexist_decode.a"
  "libexist_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
