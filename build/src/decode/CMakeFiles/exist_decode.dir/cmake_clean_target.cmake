file(REMOVE_RECURSE
  "libexist_decode.a"
)
