
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decode/flow_reconstructor.cc" "src/decode/CMakeFiles/exist_decode.dir/flow_reconstructor.cc.o" "gcc" "src/decode/CMakeFiles/exist_decode.dir/flow_reconstructor.cc.o.d"
  "/root/repo/src/decode/packet_parser.cc" "src/decode/CMakeFiles/exist_decode.dir/packet_parser.cc.o" "gcc" "src/decode/CMakeFiles/exist_decode.dir/packet_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/exist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/exist_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hwtrace/CMakeFiles/exist_hwtrace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
