file(REMOVE_RECURSE
  "CMakeFiles/exist_core.dir/exist_backend.cc.o"
  "CMakeFiles/exist_core.dir/exist_backend.cc.o.d"
  "CMakeFiles/exist_core.dir/otc.cc.o"
  "CMakeFiles/exist_core.dir/otc.cc.o.d"
  "CMakeFiles/exist_core.dir/rco.cc.o"
  "CMakeFiles/exist_core.dir/rco.cc.o.d"
  "CMakeFiles/exist_core.dir/uma.cc.o"
  "CMakeFiles/exist_core.dir/uma.cc.o.d"
  "libexist_core.a"
  "libexist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
