file(REMOVE_RECURSE
  "libexist_core.a"
)
