# Empty compiler generated dependencies file for exist_core.
# This may be replaced when dependencies are built.
