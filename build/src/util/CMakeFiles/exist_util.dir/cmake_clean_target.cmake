file(REMOVE_RECURSE
  "libexist_util.a"
)
