file(REMOVE_RECURSE
  "CMakeFiles/exist_util.dir/logging.cc.o"
  "CMakeFiles/exist_util.dir/logging.cc.o.d"
  "CMakeFiles/exist_util.dir/stats.cc.o"
  "CMakeFiles/exist_util.dir/stats.cc.o.d"
  "libexist_util.a"
  "libexist_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
