# Empty dependencies file for exist_util.
# This may be replaced when dependencies are built.
