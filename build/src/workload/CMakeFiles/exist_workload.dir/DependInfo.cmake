
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_profile.cc" "src/workload/CMakeFiles/exist_workload.dir/app_profile.cc.o" "gcc" "src/workload/CMakeFiles/exist_workload.dir/app_profile.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/workload/CMakeFiles/exist_workload.dir/program.cc.o" "gcc" "src/workload/CMakeFiles/exist_workload.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/exist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
