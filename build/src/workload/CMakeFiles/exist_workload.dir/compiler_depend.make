# Empty compiler generated dependencies file for exist_workload.
# This may be replaced when dependencies are built.
