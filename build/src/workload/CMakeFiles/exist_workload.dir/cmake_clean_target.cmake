file(REMOVE_RECURSE
  "libexist_workload.a"
)
