file(REMOVE_RECURSE
  "CMakeFiles/exist_workload.dir/app_profile.cc.o"
  "CMakeFiles/exist_workload.dir/app_profile.cc.o.d"
  "CMakeFiles/exist_workload.dir/program.cc.o"
  "CMakeFiles/exist_workload.dir/program.cc.o.d"
  "libexist_workload.a"
  "libexist_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
