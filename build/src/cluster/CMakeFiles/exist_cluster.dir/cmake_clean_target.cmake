file(REMOVE_RECURSE
  "libexist_cluster.a"
)
