# Empty compiler generated dependencies file for exist_cluster.
# This may be replaced when dependencies are built.
