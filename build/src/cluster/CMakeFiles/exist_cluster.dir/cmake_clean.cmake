file(REMOVE_RECURSE
  "CMakeFiles/exist_cluster.dir/cluster.cc.o"
  "CMakeFiles/exist_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/exist_cluster.dir/crd.cc.o"
  "CMakeFiles/exist_cluster.dir/crd.cc.o.d"
  "CMakeFiles/exist_cluster.dir/master.cc.o"
  "CMakeFiles/exist_cluster.dir/master.cc.o.d"
  "CMakeFiles/exist_cluster.dir/storage.cc.o"
  "CMakeFiles/exist_cluster.dir/storage.cc.o.d"
  "libexist_cluster.a"
  "libexist_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
