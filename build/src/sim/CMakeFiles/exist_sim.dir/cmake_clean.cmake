file(REMOVE_RECURSE
  "CMakeFiles/exist_sim.dir/event_queue.cc.o"
  "CMakeFiles/exist_sim.dir/event_queue.cc.o.d"
  "libexist_sim.a"
  "libexist_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
