file(REMOVE_RECURSE
  "libexist_sim.a"
)
