# Empty compiler generated dependencies file for exist_sim.
# This may be replaced when dependencies are built.
