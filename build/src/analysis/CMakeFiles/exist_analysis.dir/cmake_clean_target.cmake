file(REMOVE_RECURSE
  "libexist_analysis.a"
)
