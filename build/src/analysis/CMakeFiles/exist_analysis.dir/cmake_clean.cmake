file(REMOVE_RECURSE
  "CMakeFiles/exist_analysis.dir/accuracy.cc.o"
  "CMakeFiles/exist_analysis.dir/accuracy.cc.o.d"
  "CMakeFiles/exist_analysis.dir/attribution.cc.o"
  "CMakeFiles/exist_analysis.dir/attribution.cc.o.d"
  "CMakeFiles/exist_analysis.dir/behavior_report.cc.o"
  "CMakeFiles/exist_analysis.dir/behavior_report.cc.o.d"
  "CMakeFiles/exist_analysis.dir/ground_truth.cc.o"
  "CMakeFiles/exist_analysis.dir/ground_truth.cc.o.d"
  "CMakeFiles/exist_analysis.dir/report.cc.o"
  "CMakeFiles/exist_analysis.dir/report.cc.o.d"
  "CMakeFiles/exist_analysis.dir/testbed.cc.o"
  "CMakeFiles/exist_analysis.dir/testbed.cc.o.d"
  "libexist_analysis.a"
  "libexist_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
