# Empty compiler generated dependencies file for exist_analysis.
# This may be replaced when dependencies are built.
