# Empty dependencies file for exist_os.
# This may be replaced when dependencies are built.
