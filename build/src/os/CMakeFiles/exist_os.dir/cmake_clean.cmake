file(REMOVE_RECURSE
  "CMakeFiles/exist_os.dir/kernel.cc.o"
  "CMakeFiles/exist_os.dir/kernel.cc.o.d"
  "CMakeFiles/exist_os.dir/loadgen.cc.o"
  "CMakeFiles/exist_os.dir/loadgen.cc.o.d"
  "CMakeFiles/exist_os.dir/service.cc.o"
  "CMakeFiles/exist_os.dir/service.cc.o.d"
  "libexist_os.a"
  "libexist_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
