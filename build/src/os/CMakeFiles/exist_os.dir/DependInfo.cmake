
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/exist_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/exist_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/loadgen.cc" "src/os/CMakeFiles/exist_os.dir/loadgen.cc.o" "gcc" "src/os/CMakeFiles/exist_os.dir/loadgen.cc.o.d"
  "/root/repo/src/os/service.cc" "src/os/CMakeFiles/exist_os.dir/service.cc.o" "gcc" "src/os/CMakeFiles/exist_os.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/exist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/exist_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hwtrace/CMakeFiles/exist_hwtrace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
