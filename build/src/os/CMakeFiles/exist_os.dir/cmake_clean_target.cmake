file(REMOVE_RECURSE
  "libexist_os.a"
)
