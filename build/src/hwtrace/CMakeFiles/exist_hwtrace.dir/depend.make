# Empty dependencies file for exist_hwtrace.
# This may be replaced when dependencies are built.
