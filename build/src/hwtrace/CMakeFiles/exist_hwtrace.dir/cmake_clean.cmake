file(REMOVE_RECURSE
  "CMakeFiles/exist_hwtrace.dir/etm.cc.o"
  "CMakeFiles/exist_hwtrace.dir/etm.cc.o.d"
  "CMakeFiles/exist_hwtrace.dir/msr.cc.o"
  "CMakeFiles/exist_hwtrace.dir/msr.cc.o.d"
  "CMakeFiles/exist_hwtrace.dir/packet_writer.cc.o"
  "CMakeFiles/exist_hwtrace.dir/packet_writer.cc.o.d"
  "CMakeFiles/exist_hwtrace.dir/topa.cc.o"
  "CMakeFiles/exist_hwtrace.dir/topa.cc.o.d"
  "CMakeFiles/exist_hwtrace.dir/tracer.cc.o"
  "CMakeFiles/exist_hwtrace.dir/tracer.cc.o.d"
  "libexist_hwtrace.a"
  "libexist_hwtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_hwtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
