file(REMOVE_RECURSE
  "libexist_hwtrace.a"
)
