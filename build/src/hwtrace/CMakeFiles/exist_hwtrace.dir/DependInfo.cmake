
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwtrace/etm.cc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/etm.cc.o" "gcc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/etm.cc.o.d"
  "/root/repo/src/hwtrace/msr.cc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/msr.cc.o" "gcc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/msr.cc.o.d"
  "/root/repo/src/hwtrace/packet_writer.cc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/packet_writer.cc.o" "gcc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/packet_writer.cc.o.d"
  "/root/repo/src/hwtrace/topa.cc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/topa.cc.o" "gcc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/topa.cc.o.d"
  "/root/repo/src/hwtrace/tracer.cc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/tracer.cc.o" "gcc" "src/hwtrace/CMakeFiles/exist_hwtrace.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/exist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/exist_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
