file(REMOVE_RECURSE
  "CMakeFiles/exist_baselines.dir/ebpf.cc.o"
  "CMakeFiles/exist_baselines.dir/ebpf.cc.o.d"
  "CMakeFiles/exist_baselines.dir/nht.cc.o"
  "CMakeFiles/exist_baselines.dir/nht.cc.o.d"
  "CMakeFiles/exist_baselines.dir/stasam.cc.o"
  "CMakeFiles/exist_baselines.dir/stasam.cc.o.d"
  "libexist_baselines.a"
  "libexist_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exist_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
