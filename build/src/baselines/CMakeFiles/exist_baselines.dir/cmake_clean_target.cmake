file(REMOVE_RECURSE
  "libexist_baselines.a"
)
