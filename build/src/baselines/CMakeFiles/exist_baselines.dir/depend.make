# Empty dependencies file for exist_baselines.
# This may be replaced when dependencies are built.
