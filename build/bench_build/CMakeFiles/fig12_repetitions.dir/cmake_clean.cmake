file(REMOVE_RECURSE
  "../bench/fig12_repetitions"
  "../bench/fig12_repetitions.pdb"
  "CMakeFiles/fig12_repetitions.dir/fig12_repetitions.cc.o"
  "CMakeFiles/fig12_repetitions.dir/fig12_repetitions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_repetitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
