# Empty dependencies file for fig12_repetitions.
# This may be replaced when dependencies are built.
