file(REMOVE_RECURSE
  "../bench/fig03b_stressed"
  "../bench/fig03b_stressed.pdb"
  "CMakeFiles/fig03b_stressed.dir/fig03b_stressed.cc.o"
  "CMakeFiles/fig03b_stressed.dir/fig03b_stressed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03b_stressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
