# Empty dependencies file for fig03b_stressed.
# This may be replaced when dependencies are built.
