file(REMOVE_RECURSE
  "../bench/table3_sota"
  "../bench/table3_sota.pdb"
  "CMakeFiles/table3_sota.dir/table3_sota.cc.o"
  "CMakeFiles/table3_sota.dir/table3_sota.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
