# Empty compiler generated dependencies file for table3_sota.
# This may be replaced when dependencies are built.
