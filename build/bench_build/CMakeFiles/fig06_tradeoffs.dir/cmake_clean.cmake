file(REMOVE_RECURSE
  "../bench/fig06_tradeoffs"
  "../bench/fig06_tradeoffs.pdb"
  "CMakeFiles/fig06_tradeoffs.dir/fig06_tradeoffs.cc.o"
  "CMakeFiles/fig06_tradeoffs.dir/fig06_tradeoffs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
