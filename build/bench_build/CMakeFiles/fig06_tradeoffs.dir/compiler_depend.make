# Empty compiler generated dependencies file for fig06_tradeoffs.
# This may be replaced when dependencies are built.
