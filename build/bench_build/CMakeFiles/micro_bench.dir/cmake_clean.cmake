file(REMOVE_RECURSE
  "../bench/micro_bench"
  "../bench/micro_bench.pdb"
  "CMakeFiles/micro_bench.dir/micro_bench.cc.o"
  "CMakeFiles/micro_bench.dir/micro_bench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
