file(REMOVE_RECURSE
  "../bench/fig19_coresample"
  "../bench/fig19_coresample.pdb"
  "CMakeFiles/fig19_coresample.dir/fig19_coresample.cc.o"
  "CMakeFiles/fig19_coresample.dir/fig19_coresample.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_coresample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
