# Empty compiler generated dependencies file for fig19_coresample.
# This may be replaced when dependencies are built.
