# Empty dependencies file for fig04_events.
# This may be replaced when dependencies are built.
