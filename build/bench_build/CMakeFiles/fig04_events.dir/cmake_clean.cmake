file(REMOVE_RECURSE
  "../bench/fig04_events"
  "../bench/fig04_events.pdb"
  "CMakeFiles/fig04_events.dir/fig04_events.cc.o"
  "CMakeFiles/fig04_events.dir/fig04_events.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
