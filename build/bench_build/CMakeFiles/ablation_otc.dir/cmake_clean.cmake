file(REMOVE_RECURSE
  "../bench/ablation_otc"
  "../bench/ablation_otc.pdb"
  "CMakeFiles/ablation_otc.dir/ablation_otc.cc.o"
  "CMakeFiles/ablation_otc.dir/ablation_otc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_otc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
