# Empty compiler generated dependencies file for ablation_otc.
# This may be replaced when dependencies are built.
