# Empty compiler generated dependencies file for fig17_deploy.
# This may be replaced when dependencies are built.
