file(REMOVE_RECURSE
  "../bench/fig17_deploy"
  "../bench/fig17_deploy.pdb"
  "CMakeFiles/fig17_deploy.dir/fig17_deploy.cc.o"
  "CMakeFiles/fig17_deploy.dir/fig17_deploy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
