# Empty dependencies file for fig21_categories.
# This may be replaced when dependencies are built.
