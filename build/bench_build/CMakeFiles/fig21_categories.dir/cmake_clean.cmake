file(REMOVE_RECURSE
  "../bench/fig21_categories"
  "../bench/fig21_categories.pdb"
  "CMakeFiles/fig21_categories.dir/fig21_categories.cc.o"
  "CMakeFiles/fig21_categories.dir/fig21_categories.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
