
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03a_shared.cc" "bench_build/CMakeFiles/fig03a_shared.dir/fig03a_shared.cc.o" "gcc" "bench_build/CMakeFiles/fig03a_shared.dir/fig03a_shared.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/exist_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/exist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/exist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/exist_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/decode/CMakeFiles/exist_decode.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/exist_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hwtrace/CMakeFiles/exist_hwtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/exist_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
