# Empty dependencies file for fig03a_shared.
# This may be replaced when dependencies are built.
