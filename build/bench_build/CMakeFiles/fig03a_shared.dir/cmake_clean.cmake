file(REMOVE_RECURSE
  "../bench/fig03a_shared"
  "../bench/fig03a_shared.pdb"
  "CMakeFiles/fig03a_shared.dir/fig03a_shared.cc.o"
  "CMakeFiles/fig03a_shared.dir/fig03a_shared.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03a_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
