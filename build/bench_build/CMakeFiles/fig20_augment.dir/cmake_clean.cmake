file(REMOVE_RECURSE
  "../bench/fig20_augment"
  "../bench/fig20_augment.pdb"
  "CMakeFiles/fig20_augment.dir/fig20_augment.cc.o"
  "CMakeFiles/fig20_augment.dir/fig20_augment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
