# Empty dependencies file for fig20_augment.
# This may be replaced when dependencies are built.
