# Empty dependencies file for fig08_ctxswitch_cdf.
# This may be replaced when dependencies are built.
