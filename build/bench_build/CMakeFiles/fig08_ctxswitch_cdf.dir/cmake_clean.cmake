file(REMOVE_RECURSE
  "../bench/fig08_ctxswitch_cdf"
  "../bench/fig08_ctxswitch_cdf.pdb"
  "CMakeFiles/fig08_ctxswitch_cdf.dir/fig08_ctxswitch_cdf.cc.o"
  "CMakeFiles/fig08_ctxswitch_cdf.dir/fig08_ctxswitch_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ctxswitch_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
