# Empty dependencies file for fig15_cloud.
# This may be replaced when dependencies are built.
