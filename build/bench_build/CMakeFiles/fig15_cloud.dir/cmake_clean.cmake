file(REMOVE_RECURSE
  "../bench/fig15_cloud"
  "../bench/fig15_cloud.pdb"
  "CMakeFiles/fig15_cloud.dir/fig15_cloud.cc.o"
  "CMakeFiles/fig15_cloud.dir/fig15_cloud.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
