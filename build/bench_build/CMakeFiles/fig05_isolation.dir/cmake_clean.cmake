file(REMOVE_RECURSE
  "../bench/fig05_isolation"
  "../bench/fig05_isolation.pdb"
  "CMakeFiles/fig05_isolation.dir/fig05_isolation.cc.o"
  "CMakeFiles/fig05_isolation.dir/fig05_isolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
