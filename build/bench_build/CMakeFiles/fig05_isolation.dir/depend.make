# Empty dependencies file for fig05_isolation.
# This may be replaced when dependencies are built.
