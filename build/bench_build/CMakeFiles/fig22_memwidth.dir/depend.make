# Empty dependencies file for fig22_memwidth.
# This may be replaced when dependencies are built.
