file(REMOVE_RECURSE
  "../bench/fig22_memwidth"
  "../bench/fig22_memwidth.pdb"
  "CMakeFiles/fig22_memwidth.dir/fig22_memwidth.cc.o"
  "CMakeFiles/fig22_memwidth.dir/fig22_memwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_memwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
