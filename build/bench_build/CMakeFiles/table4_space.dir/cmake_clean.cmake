file(REMOVE_RECURSE
  "../bench/table4_space"
  "../bench/table4_space.pdb"
  "CMakeFiles/table4_space.dir/table4_space.cc.o"
  "CMakeFiles/table4_space.dir/table4_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
