# Empty compiler generated dependencies file for fig16_e2e.
# This may be replaced when dependencies are built.
