file(REMOVE_RECURSE
  "../bench/fig16_e2e"
  "../bench/fig16_e2e.pdb"
  "CMakeFiles/fig16_e2e.dir/fig16_e2e.cc.o"
  "CMakeFiles/fig16_e2e.dir/fig16_e2e.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
