# Empty compiler generated dependencies file for fig14_online.
# This may be replaced when dependencies are built.
