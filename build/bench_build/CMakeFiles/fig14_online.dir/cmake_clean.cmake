file(REMOVE_RECURSE
  "../bench/fig14_online"
  "../bench/fig14_online.pdb"
  "CMakeFiles/fig14_online.dir/fig14_online.cc.o"
  "CMakeFiles/fig14_online.dir/fig14_online.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
