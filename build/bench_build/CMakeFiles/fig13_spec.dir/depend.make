# Empty dependencies file for fig13_spec.
# This may be replaced when dependencies are built.
