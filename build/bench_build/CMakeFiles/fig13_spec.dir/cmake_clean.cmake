file(REMOVE_RECURSE
  "../bench/fig13_spec"
  "../bench/fig13_spec.pdb"
  "CMakeFiles/fig13_spec.dir/fig13_spec.cc.o"
  "CMakeFiles/fig13_spec.dir/fig13_spec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
