file(REMOVE_RECURSE
  "../bench/fig18_accuracy"
  "../bench/fig18_accuracy.pdb"
  "CMakeFiles/fig18_accuracy.dir/fig18_accuracy.cc.o"
  "CMakeFiles/fig18_accuracy.dir/fig18_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
