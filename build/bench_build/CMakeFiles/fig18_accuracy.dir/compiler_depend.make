# Empty compiler generated dependencies file for fig18_accuracy.
# This may be replaced when dependencies are built.
