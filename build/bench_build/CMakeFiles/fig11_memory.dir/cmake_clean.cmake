file(REMOVE_RECURSE
  "../bench/fig11_memory"
  "../bench/fig11_memory.pdb"
  "CMakeFiles/fig11_memory.dir/fig11_memory.cc.o"
  "CMakeFiles/fig11_memory.dir/fig11_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
