# Empty dependencies file for fig11_memory.
# This may be replaced when dependencies are built.
