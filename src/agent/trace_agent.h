/**
 * @file
 * Per-node trace agent of the collection plane (ISSUE 6): drains a
 * node's decoded session output — an opaque serialized payload, plus
 * a behaviour summary — into a bounded send queue and ships it to the
 * master's ingest over the simulated fabric as sequenced
 * TraceRegionBatch frames.
 *
 * Reliability state machine, per stream:
 *
 *   stage   payload chunks into the bounded queue (<= queue_capacity
 *           batches materialized at once; refilled as acks drain it)
 *   send    in sequence order, at most `window` unacked in flight and
 *           never beyond the master's advertised credit
 *   retry   per-batch timer; exponential backoff rto_initial * 2^n
 *           capped at rto_max; ack cancels the timer
 *   spill   when a batch exhausts max_retries, or the master's credit
 *           stays zero past stall_spill_us (backpressure), the agent
 *           degrades gracefully: it drops the stream's remaining
 *           batches and falls back to summarize-only
 *   finale  a BehaviorReport frame (summary + degradation accounting)
 *           closes every stream, retried without a retry cap — it is
 *           the part that must survive
 *
 * Heartbeats carry liveness + queue depth while any stream is in
 * flight; the master answers them with fresh credit, which is how an
 * agent paused by backpressure learns the master drained.
 *
 * All timing is virtual (the fabric's EventQueue) and all fault
 * randomness lives in the fabric's per-link streams, so a transfer is
 * bit-reproducible from the seed. Thread-safety: the agent is driven
 * by the single-threaded event loop, but stats()/idle() may be polled
 * from other threads, so all state is guarded by an annotated mutex
 * (rank kAgentQueue — see DESIGN.md §8).
 */
#ifndef EXIST_AGENT_TRACE_AGENT_H
#define EXIST_AGENT_TRACE_AGENT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/frame.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace exist::agent {

struct AgentConfig {
    /** Payload bytes per TraceRegionBatch frame. */
    std::size_t batch_bytes = 32 * 1024;
    /** Bounded send queue: batches materialized at once. */
    std::size_t queue_capacity = 32;
    /** Max unacked batches in flight (<= queue_capacity). */
    std::size_t window = 16;
    /** Retries per batch before the stream spills. */
    int max_retries = 12;
    double rto_initial_us = 500.0;
    double rto_max_us = 64'000.0;
    double heartbeat_interval_us = 2'000.0;
    /** Zero master credit for longer than this => spill. */
    double stall_spill_us = 200'000.0;
};

struct AgentStats {
    std::uint64_t batches_sent = 0;    ///< first transmissions
    std::uint64_t retransmits = 0;
    std::uint64_t backoffs = 0;        ///< rto doublings applied
    std::uint64_t acks_received = 0;
    std::uint64_t dup_acks = 0;        ///< acks for already-done seqs
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t batches_spilled = 0;
    std::uint64_t streams_degraded = 0;
    std::uint64_t max_queue_depth = 0;
};

class TraceAgent
{
  public:
    TraceAgent(EventQueue *queue, net::Fabric *fabric, NodeId node,
               NodeId collector, AgentConfig cfg = {});

    /** Fabric delivery entry point (acks / credit updates). Wire this
     *  as the node's Fabric::attach callback. */
    void onFrame(NodeId src, const std::vector<std::uint8_t> &bytes)
        EXIST_EXCLUDES(mu_);

    /**
     * Enqueue one session payload for shipment as stream `stream`
     * (unique per agent). Staging, sending, retries and the finale
     * all run on the event queue from here on. `start_seq` resumes a
     * recovered transfer: batches [0, start_seq) are treated as
     * already delivered (the master's ingest holds their journaled
     * prefix), so staging begins there; start_seq == total batches
     * degenerates to a finale-only stream.
     */
    void ship(std::uint64_t stream, std::vector<std::uint8_t> payload,
              std::string summary, std::uint64_t start_seq = 0)
        EXIST_EXCLUDES(mu_);

    /** True once every shipped stream's finale has been acked. */
    bool idle() const EXIST_EXCLUDES(mu_);

    AgentStats stats() const EXIST_EXCLUDES(mu_);
    NodeId node() const { return node_; }

  private:
    struct Batch {
        std::vector<std::uint8_t> chunk;
        int retries = 0;
        bool sent = false;
        EventId timer = kInvalidEvent;
    };
    struct Stream {
        std::vector<std::uint8_t> payload;
        std::string summary;
        std::uint64_t total_batches = 0;
        std::uint64_t next_to_stage = 0;   ///< next seq to materialize
        std::map<std::uint64_t, Batch> staged;  ///< seq -> in-queue
        std::uint64_t delivered = 0;       ///< acked batch count
        std::uint64_t credit_horizon = 0;  ///< master allows seq < this
        Cycles stalled_since = 0;          ///< 0 = not stalled
        bool degraded = false;
        bool finale_sent = false;
        bool finale_acked = false;
        std::uint64_t batches_spilled = 0;
        int finale_retries = 0;
        EventId finale_timer = kInvalidEvent;
    };

    void stageAndPump(std::uint64_t stream_id, Stream &s)
        EXIST_REQUIRES(mu_);
    void sendBatch(std::uint64_t stream_id, Stream &s,
                   std::uint64_t seq) EXIST_REQUIRES(mu_);
    void onBatchTimeout(std::uint64_t stream_id, std::uint64_t seq)
        EXIST_EXCLUDES(mu_);
    void spill(std::uint64_t stream_id, Stream &s) EXIST_REQUIRES(mu_);
    void sendFinale(std::uint64_t stream_id, Stream &s)
        EXIST_REQUIRES(mu_);
    void onFinaleTimeout(std::uint64_t stream_id) EXIST_EXCLUDES(mu_);
    void onAck(const net::AckMsg &ack) EXIST_REQUIRES(mu_);
    void scheduleHeartbeat() EXIST_REQUIRES(mu_);
    void onHeartbeatTimer() EXIST_EXCLUDES(mu_);
    bool allDone() const EXIST_REQUIRES(mu_);
    std::size_t queueDepth() const EXIST_REQUIRES(mu_);
    Cycles rtoAfter(int retries) const;

    EventQueue *queue_;
    net::Fabric *fabric_;
    const NodeId node_;
    const NodeId collector_;
    const AgentConfig cfg_;

    mutable Mutex mu_{lockorder::LockRank::kAgentQueue, "agent.queue"};
    std::map<std::uint64_t, Stream> streams_ EXIST_GUARDED_BY(mu_);
    AgentStats stats_ EXIST_GUARDED_BY(mu_);
    std::uint64_t heartbeat_seq_ EXIST_GUARDED_BY(mu_) = 0;
    EventId heartbeat_timer_ EXIST_GUARDED_BY(mu_) = kInvalidEvent;
};

}  // namespace exist::agent

#endif  // EXIST_AGENT_TRACE_AGENT_H
