#include "agent/trace_agent.h"

#include <algorithm>
#include <utility>

#include "obs/trace_plane.h"
#include "util/logging.h"

namespace exist::agent {

namespace {

/** Batch correlation id: derived only from (node, stream, seq), so the
 *  master-side ingest mints the identical id without communication and
 *  traces of the same seed correlate identically run to run. */
std::uint64_t
batchCorr(NodeId node, std::uint64_t stream, std::uint64_t seq)
{
    return obs::corrId(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(node)),
        stream, seq);
}

}  // namespace

TraceAgent::TraceAgent(EventQueue *queue, net::Fabric *fabric,
                       NodeId node, NodeId collector, AgentConfig cfg)
    : queue_(queue), fabric_(fabric), node_(node),
      collector_(collector), cfg_(cfg)
{
    EXIST_ASSERT(cfg_.batch_bytes > 0, "agent batch_bytes must be > 0");
    EXIST_ASSERT(cfg_.window > 0 &&
                     cfg_.window <= cfg_.queue_capacity,
                 "agent window must be in [1, queue_capacity]");
}

Cycles
TraceAgent::rtoAfter(int retries) const
{
    double rto = cfg_.rto_initial_us;
    for (int i = 0; i < retries && rto < cfg_.rto_max_us; ++i)
        rto *= 2.0;
    return usToCycles(std::min(rto, cfg_.rto_max_us));
}

void
TraceAgent::ship(std::uint64_t stream, std::vector<std::uint8_t> payload,
                 std::string summary, std::uint64_t start_seq)
{
    MutexLock lk(mu_);
    EXIST_ASSERT(streams_.find(stream) == streams_.end(),
                 "agent %d: stream %llu shipped twice", node_,
                 (unsigned long long)stream);
    Stream &s = streams_[stream];
    s.total_batches =
        (payload.size() + cfg_.batch_bytes - 1) / cfg_.batch_bytes;
    EXIST_ASSERT(start_seq <= s.total_batches,
                 "agent %d: resume seq %llu past stream extent", node_,
                 (unsigned long long)start_seq);
    s.payload = std::move(payload);
    s.summary = std::move(summary);
    // Resume point: everything below start_seq was delivered to (and
    // journaled by) the master before the crash.
    s.next_to_stage = start_seq;
    s.delivered = start_seq;
    // Optimistic initial credit: one agent window past the resume
    // point. The first ack replaces it with the master's real
    // receive window.
    s.credit_horizon = start_seq + cfg_.window;
    stageAndPump(stream, s);
    if (s.staged.empty() && s.next_to_stage == s.total_batches &&
        !s.finale_sent)
        sendFinale(stream, s);  // empty payload: finale-only stream
    scheduleHeartbeat();
}

void
TraceAgent::stageAndPump(std::uint64_t stream_id, Stream &s)
{
    // Stage: materialize payload chunks into the bounded send queue.
    while (s.staged.size() < cfg_.queue_capacity &&
           s.next_to_stage < s.total_batches) {
        std::uint64_t seq = s.next_to_stage++;
        std::size_t begin = seq * cfg_.batch_bytes;
        std::size_t end =
            std::min(begin + cfg_.batch_bytes, s.payload.size());
        Batch b;
        b.chunk.assign(s.payload.begin() +
                           static_cast<std::ptrdiff_t>(begin),
                       s.payload.begin() +
                           static_cast<std::ptrdiff_t>(end));
        s.staged.emplace(seq, std::move(b));
    }

    // Pump: send in sequence order within our window and the
    // master's advertised credit.
    std::size_t inflight = 0;
    for (const auto &[seq, b] : s.staged)
        if (b.sent)
            ++inflight;
    bool progressed = false;
    for (auto &[seq, b] : s.staged) {
        if (b.sent)
            continue;
        if (inflight >= cfg_.window || seq >= s.credit_horizon)
            break;
        sendBatch(stream_id, s, seq);
        ++inflight;
        progressed = true;
    }

    if (progressed || inflight > 0) {
        s.stalled_since = 0;
    } else if (!s.staged.empty() && s.stalled_since == 0) {
        // Credit exhausted with nothing in flight: the master is
        // backpressuring us. The heartbeat timer watches this clock
        // and spills the stream if it runs past stall_spill_us.
        s.stalled_since = queue_->now();
    }
    stats_.max_queue_depth =
        std::max<std::uint64_t>(stats_.max_queue_depth, queueDepth());
}

void
TraceAgent::sendBatch(std::uint64_t stream_id, Stream &s,
                      std::uint64_t seq)
{
    Batch &b = s.staged.at(seq);
    b.sent = true;
    net::TraceRegionBatchMsg msg;
    msg.node = node_;
    msg.stream = stream_id;
    msg.batch_seq = seq;
    msg.total_batches = s.total_batches;
    msg.chunk = b.chunk;
    std::uint64_t obs_corr = batchCorr(node_, stream_id, seq);
    obs::simInstant("agent.batch", obs_corr, queue_->now(),
                    static_cast<std::uint32_t>(node_),
                    static_cast<std::uint32_t>(b.retries));
    obs::simFlowBegin("collect.batch", obs_corr, queue_->now(),
                      static_cast<std::uint32_t>(node_));
    fabric_->send(node_, collector_, net::encodeFrame(msg));
    if (b.retries == 0)
        stats_.batches_sent += 1;
    else
        stats_.retransmits += 1;
    b.timer = queue_->scheduleAfter(
        rtoAfter(b.retries),
        [this, stream_id, seq]() { onBatchTimeout(stream_id, seq); });
}

void
TraceAgent::onBatchTimeout(std::uint64_t stream_id, std::uint64_t seq)
{
    MutexLock lk(mu_);
    auto sit = streams_.find(stream_id);
    if (sit == streams_.end())
        return;
    Stream &s = sit->second;
    auto bit = s.staged.find(seq);
    if (bit == s.staged.end() || !bit->second.sent)
        return;  // acked (or spilled) while the timer was in flight
    Batch &b = bit->second;
    b.timer = kInvalidEvent;
    b.retries += 1;
    if (b.retries > cfg_.max_retries) {
        spill(stream_id, s);
        return;
    }
    stats_.backoffs += 1;
    sendBatch(stream_id, s, seq);
}

void
TraceAgent::spill(std::uint64_t stream_id, Stream &s)
{
    // Degrade gracefully: drop every batch not yet acknowledged and
    // fall back to summarize-only (the finale still ships reliably).
    std::uint64_t dropped = s.staged.size() +
                            (s.total_batches - s.next_to_stage);
    for (auto &[seq, b] : s.staged)
        if (b.timer != kInvalidEvent)
            queue_->cancel(b.timer);
    s.staged.clear();
    s.next_to_stage = s.total_batches;
    s.batches_spilled += dropped;
    s.stalled_since = 0;
    stats_.batches_spilled += dropped;
    if (!s.degraded) {
        s.degraded = true;
        stats_.streams_degraded += 1;
    }
    obs::simInstant("agent.spill", obs::corrId(node_, stream_id),
                    queue_->now(), static_cast<std::uint32_t>(node_),
                    static_cast<std::uint32_t>(dropped));
    warn("agent %d: stream %llu spilled %llu batches "
         "(summarize-only fallback)",
         node_, (unsigned long long)stream_id,
         (unsigned long long)dropped);
    if (!s.finale_sent)
        sendFinale(stream_id, s);
}

void
TraceAgent::sendFinale(std::uint64_t stream_id, Stream &s)
{
    s.finale_sent = true;
    net::BehaviorReportMsg msg;
    msg.node = node_;
    msg.stream = stream_id;
    msg.degraded = s.degraded;
    msg.batches_spilled = s.batches_spilled;
    msg.summary = s.summary;
    obs::simInstant("agent.finale",
                    batchCorr(node_, stream_id, net::kFinaleSeq),
                    queue_->now(), static_cast<std::uint32_t>(node_),
                    static_cast<std::uint32_t>(s.finale_retries));
    fabric_->send(node_, collector_, net::encodeFrame(msg));
    s.finale_timer = queue_->scheduleAfter(
        rtoAfter(s.finale_retries),
        [this, stream_id]() { onFinaleTimeout(stream_id); });
}

void
TraceAgent::onFinaleTimeout(std::uint64_t stream_id)
{
    MutexLock lk(mu_);
    auto sit = streams_.find(stream_id);
    if (sit == streams_.end())
        return;
    Stream &s = sit->second;
    if (s.finale_acked)
        return;
    s.finale_timer = kInvalidEvent;
    // No retry cap on the finale: the summary is the part of a
    // degraded stream that must survive. The rto cap still bounds
    // the retransmit rate.
    s.finale_retries += 1;
    stats_.retransmits += 1;
    sendFinale(stream_id, s);
}

void
TraceAgent::onAck(const net::AckMsg &ack)
{
    auto sit = streams_.find(ack.stream);
    if (sit == streams_.end())
        return;
    Stream &s = sit->second;
    stats_.acks_received += 1;

    if (ack.batch_seq == net::kFinaleSeq) {
        if (!s.finale_acked) {
            s.finale_acked = true;
            if (s.finale_timer != kInvalidEvent) {
                queue_->cancel(s.finale_timer);
                s.finale_timer = kInvalidEvent;
            }
        } else {
            stats_.dup_acks += 1;
        }
    } else {
        if (ack.batch_seq != net::kCreditSeq) {
            auto bit = s.staged.find(ack.batch_seq);
            if (bit != s.staged.end() && bit->second.sent) {
                if (bit->second.timer != kInvalidEvent)
                    queue_->cancel(bit->second.timer);
                s.staged.erase(bit);
                s.delivered += 1;
            } else {
                stats_.dup_acks += 1;
            }
        }
        s.credit_horizon = std::max(
            s.credit_horizon, ack.cumulative + ack.window);
        stageAndPump(ack.stream, s);
        if (s.staged.empty() &&
            s.next_to_stage == s.total_batches && !s.finale_sent)
            sendFinale(ack.stream, s);
    }

    if (allDone() && heartbeat_timer_ != kInvalidEvent) {
        queue_->cancel(heartbeat_timer_);
        heartbeat_timer_ = kInvalidEvent;
    }
}

void
TraceAgent::onFrame(NodeId src, const std::vector<std::uint8_t> &bytes)
{
    (void)src;
    net::Frame frame;
    std::size_t consumed = 0;
    net::DecodeStatus st =
        net::decodeFrame(bytes.data(), bytes.size(), &frame, &consumed);
    if (st != net::DecodeStatus::kOk) {
        warn("agent %d: undecodable frame (%s)", node_,
             net::decodeStatusName(st));
        return;
    }
    if (frame.type != net::MsgType::kAck)
        return;  // agents only consume acks
    MutexLock lk(mu_);
    onAck(frame.ack);
}

void
TraceAgent::scheduleHeartbeat()
{
    if (heartbeat_timer_ != kInvalidEvent)
        return;
    heartbeat_timer_ =
        queue_->scheduleAfter(usToCycles(cfg_.heartbeat_interval_us),
                              [this]() { onHeartbeatTimer(); });
}

void
TraceAgent::onHeartbeatTimer()
{
    MutexLock lk(mu_);
    heartbeat_timer_ = kInvalidEvent;
    if (allDone())
        return;  // streams finished: let the event queue drain

    net::HeartbeatMsg hb;
    hb.node = node_;
    hb.seq = ++heartbeat_seq_;
    hb.queue_depth = queueDepth();
    obs::simInstant("agent.heartbeat", obs::corrId(node_, hb.seq),
                    queue_->now(), static_cast<std::uint32_t>(node_),
                    static_cast<std::uint32_t>(hb.queue_depth));
    fabric_->send(node_, collector_, net::encodeFrame(hb));
    stats_.heartbeats_sent += 1;

    // Backpressure watchdog: a stream stalled on zero credit past the
    // budget degrades to summarize-only instead of waiting forever.
    Cycles now = queue_->now();
    for (auto &[stream_id, s] : streams_) {
        if (s.stalled_since != 0 &&
            now - s.stalled_since > usToCycles(cfg_.stall_spill_us))
            spill(stream_id, s);
    }
    scheduleHeartbeat();
}

bool
TraceAgent::allDone() const
{
    for (const auto &[id, s] : streams_)
        if (!s.finale_acked)
            return false;
    return true;
}

std::size_t
TraceAgent::queueDepth() const
{
    std::size_t depth = 0;
    for (const auto &[id, s] : streams_)
        depth += s.staged.size();
    return depth;
}

bool
TraceAgent::idle() const
{
    MutexLock lk(mu_);
    return allDone();
}

AgentStats
TraceAgent::stats() const
{
    MutexLock lk(mu_);
    return stats_;
}

}  // namespace exist::agent
