#include "cluster/crd.h"

#include <sstream>

#include "util/logging.h"

namespace exist {

TraceRequest
TraceRequest::parse(const std::string &manifest)
{
    TraceRequest req;
    std::istringstream in(manifest);
    std::string token;
    while (in >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            EXIST_FATAL("malformed manifest token '%s'", token.c_str());
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "app") {
            req.app = value;
        } else if (key == "anomaly") {
            req.anomaly = value == "true" || value == "1";
        } else if (key == "period_ms") {
            req.period_override = static_cast<Cycles>(
                std::stod(value) * static_cast<double>(kCyclesPerMs));
        } else if (key == "budget_mb") {
            req.budget_mb = std::stoull(value);
        } else if (key == "ring") {
            req.ring_buffers = value == "true" || value == "1";
        } else if (key == "core_sample_ratio") {
            req.core_sample_ratio = std::stod(value);
        } else if (key == "streaming") {
            req.streaming = value == "true" || value == "1";
        } else {
            EXIST_FATAL("unknown manifest key '%s'", key.c_str());
        }
    }
    if (req.app.empty())
        EXIST_FATAL("manifest missing app=");
    return req;
}

std::string
TraceRequest::toManifest() const
{
    std::ostringstream out;
    out << "app=" << app;
    if (anomaly)
        out << " anomaly=true";
    if (period_override)
        out << " period_ms=" << cyclesToMs(period_override);
    out << " budget_mb=" << budget_mb;
    if (ring_buffers)
        out << " ring=true";
    if (core_sample_ratio > 0)
        out << " core_sample_ratio=" << core_sample_ratio;
    if (streaming)
        out << " streaming=true";
    return out.str();
}

}  // namespace exist
