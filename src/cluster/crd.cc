#include "cluster/crd.h"

#include <sstream>

#include "util/logging.h"

namespace exist {

TraceRequest
TraceRequest::parse(const std::string &manifest)
{
    TraceRequest req;
    std::istringstream in(manifest);
    std::string token;
    while (in >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            EXIST_FATAL("malformed manifest token '%s'", token.c_str());
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "app") {
            req.app = value;
        } else if (key == "anomaly") {
            req.anomaly = value == "true" || value == "1";
        } else if (key == "period_ms") {
            req.period_override = static_cast<Cycles>(
                std::stod(value) * static_cast<double>(kCyclesPerMs));
        } else if (key == "budget_mb") {
            req.budget_mb = std::stoull(value);
        } else if (key == "ring") {
            req.ring_buffers = value == "true" || value == "1";
        } else if (key == "core_sample_ratio") {
            req.core_sample_ratio = std::stod(value);
        } else if (key == "streaming") {
            req.streaming = value == "true" || value == "1";
        } else if (key == "decode_cache") {
            req.decode_cache =
                value == "true" || value == "1" || value == "on";
        } else if (key == "tnt_memo_bits") {
            req.tnt_memo_bits = std::stoi(value);
        } else if (key == "net") {
            req.net = value == "true" || value == "1";
        } else if (key == "loss") {
            req.net_loss = std::stod(value);
        } else if (key == "reorder") {
            req.net_reorder = std::stod(value);
        } else if (key == "duplicate") {
            req.net_duplicate = std::stod(value);
        } else if (key == "link_latency_us") {
            req.net_link_latency_us = std::stod(value);
        } else if (key == "wal") {
            req.wal_dir = value;
        } else if (key == "snapshot_interval") {
            req.snapshot_interval = std::stoull(value);
        } else {
            EXIST_FATAL("unknown manifest key '%s'", key.c_str());
        }
    }
    if (req.app.empty())
        EXIST_FATAL("manifest missing app=");
    return req;
}

std::string
TraceRequest::toManifest() const
{
    std::ostringstream out;
    out << "app=" << app;
    if (anomaly)
        out << " anomaly=true";
    if (period_override)
        out << " period_ms=" << cyclesToMs(period_override);
    out << " budget_mb=" << budget_mb;
    if (ring_buffers)
        out << " ring=true";
    if (core_sample_ratio > 0)
        out << " core_sample_ratio=" << core_sample_ratio;
    if (streaming)
        out << " streaming=true";
    if (!decode_cache)
        out << " decode_cache=off";
    if (tnt_memo_bits != 6)
        out << " tnt_memo_bits=" << tnt_memo_bits;
    if (net) {
        out << " net=true";
        if (net_loss > 0)
            out << " loss=" << net_loss;
        if (net_reorder > 0)
            out << " reorder=" << net_reorder;
        if (net_duplicate > 0)
            out << " duplicate=" << net_duplicate;
        if (net_link_latency_us != 50.0)
            out << " link_latency_us=" << net_link_latency_us;
    }
    // wal_dir is intentionally omitted (host-local; see crd.h); the
    // interval rides along so a re-parsed manifest keeps the cadence.
    if (snapshot_interval != 8)
        out << " snapshot_interval=" << snapshot_interval;
    return out.str();
}

net::NetSpec
TraceRequest::netSpec() const
{
    net::NetSpec spec;
    spec.enabled = net;
    spec.drop_rate = net_loss;
    spec.reorder_rate = net_reorder;
    spec.duplicate_rate = net_duplicate;
    spec.link_latency_us = net_link_latency_us;
    return spec;
}

}  // namespace exist
