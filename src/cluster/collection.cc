#include "cluster/collection.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/session_payload.h"
#include "obs/trace_plane.h"
#include "util/logging.h"
#include "util/rng.h"

namespace exist {

namespace {

/** One session's shipment: where it came from and where it lands. */
struct Shipment {
    NodeId node = kInvalidId;
    std::uint64_t stream = 0;
    ExperimentResult *result = nullptr;
};

/**
 * The shared engine: ship each result's collection-borne slice from
 * its node agent to the ingest, drive the event loop to completion
 * (or the virtual deadline), re-apply what arrived.
 */
CollectionOutcome
runCollection(const net::NetSpec &spec, std::uint64_t seed,
              const std::string &app, std::vector<Shipment> shipments,
              metrics::Registry *registry,
              const CollectHooks *hooks = nullptr)
{
    CollectionOutcome out;
    out.ran = true;
    out.sessions = shipments.size();

    EXIST_SPAN("collect.run", obs::corrId(seed, shipments.size()));
    EventQueue q;
    net::Fabric fabric(&q, spec, seed);
    IngestConfig icfg;
    if (hooks != nullptr && hooks->on_consume)
        icfg.on_consume = hooks->on_consume;
    Ingest ingest(&q, &fabric, kCollectorNode, icfg);
    fabric.attach(kCollectorNode,
                  [&ingest](NodeId src,
                            const std::vector<std::uint8_t> &bytes) {
                      ingest.onFrame(src, bytes);
                  });

    std::map<NodeId, std::unique_ptr<agent::TraceAgent>> agents;
    for (const Shipment &sh : shipments) {
        auto it = agents.find(sh.node);
        if (it == agents.end()) {
            auto a = std::make_unique<agent::TraceAgent>(
                &q, &fabric, sh.node, kCollectorNode);
            agent::TraceAgent *raw = a.get();
            fabric.attach(sh.node,
                          [raw](NodeId src,
                                const std::vector<std::uint8_t> &b) {
                              raw->onFrame(src, b);
                          });
            it = agents.emplace(sh.node, std::move(a)).first;
        }
        SessionPayload p = SessionPayload::fromResult(*sh.result, app);
        std::vector<std::uint8_t> bytes = p.encode();
        std::string summary = p.encodeSummary();
        SessionPayload::stripResult(sh.result, app);

        // Resume a recovered transfer: the WAL holds the prefix the
        // crashed master already consumed. The recomputed payload must
        // byte-match the journaled prefix — the sessions are
        // deterministic replays of the same seeds, so a mismatch means
        // the log and this binary disagree and resuming would splice
        // two different payloads together. Fail loudly instead.
        std::uint64_t start_seq = 0;
        if (hooks != nullptr) {
            auto rit = hooks->resume.find({sh.node, sh.stream});
            if (rit != hooks->resume.end()) {
                const StreamResume &cur = rit->second;
                const agent::AgentConfig acfg;
                std::uint64_t total =
                    (bytes.size() + acfg.batch_bytes - 1) /
                    acfg.batch_bytes;
                EXIST_ASSERT(
                    cur.total_batches == total &&
                        cur.prefix.size() <= bytes.size() &&
                        std::equal(cur.prefix.begin(),
                                   cur.prefix.end(), bytes.begin()),
                    "resume cursor for node %d stream %llu does not "
                    "match the recomputed session payload", sh.node,
                    (unsigned long long)sh.stream);
                ingest.restoreStream(sh.node, sh.stream,
                                     cur.total_batches, cur.cumulative,
                                     cur.prefix);
                start_seq = cur.cumulative;
            }
        }
        it->second->ship(sh.stream, std::move(bytes),
                         std::move(summary), start_seq);
    }

    const Cycles deadline =
        q.now() + secondsToCycles(kCollectDeadlineSeconds);
    while (!q.empty() && q.now() < deadline)
        q.step();

    for (const Shipment &sh : shipments) {
        IngestedStream st = ingest.take(sh.node, sh.stream);
        SessionPayload p;
        if (st.complete &&
            SessionPayload::decode(st.payload.data(),
                                   st.payload.size(), &p)) {
            p.applyTo(sh.result);
            out.complete += 1;
        } else if (SessionPayload::decodeSummary(st.summary, &p)) {
            p.applySummaryTo(sh.result);
            out.degraded += 1;
        } else {
            out.degraded += 1;  // nothing arrived before the deadline
        }
    }

    for (const auto &[node, a] : agents) {
        agent::AgentStats s = a->stats();
        out.agents.batches_sent += s.batches_sent;
        out.agents.retransmits += s.retransmits;
        out.agents.backoffs += s.backoffs;
        out.agents.acks_received += s.acks_received;
        out.agents.dup_acks += s.dup_acks;
        out.agents.heartbeats_sent += s.heartbeats_sent;
        out.agents.batches_spilled += s.batches_spilled;
        out.agents.streams_degraded += s.streams_degraded;
        out.agents.max_queue_depth =
            std::max(out.agents.max_queue_depth, s.max_queue_depth);
    }
    out.ingest = ingest.stats();
    out.fabric = fabric.stats();
    if (spec.record_wire_log)
        out.wire_log = fabric.wireLogText();

    if (registry != nullptr) {
        metrics::Scope net(*registry, "net");
        const net::FabricStats &f = out.fabric;
        net.counter("frames_sent").add(f.frames_sent);
        net.counter("frames_dropped").add(f.frames_dropped);
        net.counter("frames_duplicated").add(f.frames_duplicated);
        net.counter("frames_reordered").add(f.frames_reordered);
        net.counter("frames_delivered").add(f.frames_delivered);
        net.counter("bytes_on_wire").add(f.bytes_on_wire);
        metrics::Histogram &h = net.histogram("delivery_us");
        for (double us : f.delivery_us)
            h.record(static_cast<std::uint64_t>(us));
        net.counter("ingest_batches_accepted")
            .add(out.ingest.batches_accepted);
        net.counter("ingest_batches_duplicate")
            .add(out.ingest.batches_duplicate);
        net.counter("ingest_batches_refused")
            .add(out.ingest.batches_refused);
        net.counter("ingest_acks_sent").add(out.ingest.acks_sent);
        net.counter("streams_complete").add(out.complete);
        net.counter("streams_degraded").add(out.degraded);

        metrics::Scope ag(*registry, "agent");
        ag.counter("batches_sent").add(out.agents.batches_sent);
        ag.counter("retransmits").add(out.agents.retransmits);
        ag.counter("backoffs").add(out.agents.backoffs);
        ag.counter("acks_received").add(out.agents.acks_received);
        ag.counter("dup_acks").add(out.agents.dup_acks);
        ag.counter("heartbeats_sent").add(out.agents.heartbeats_sent);
        ag.counter("batches_spilled").add(out.agents.batches_spilled);
        ag.counter("streams_degraded")
            .add(out.agents.streams_degraded);
        metrics::Gauge &depth = ag.gauge("max_queue_depth");
        if (static_cast<std::int64_t>(out.agents.max_queue_depth) >
            depth.value())
            depth.set(static_cast<std::int64_t>(
                out.agents.max_queue_depth));
    }
    return out;
}

}  // namespace

std::uint64_t
collectSeed(std::uint64_t cluster_seed, std::uint64_t request_id)
{
    // splitmix64 over (seed, id), domain-separated from the planning
    // stream so collection faults and worker selection stay
    // statistically independent.
    std::uint64_t sm = cluster_seed ^ 0x636f6c6cULL;  // "coll"
    std::uint64_t base = splitmix64(sm);
    sm = base ^ (request_id * 0x9e3779b97f4a7c15ULL);
    return splitmix64(sm);
}

CollectionOutcome
collectPlan(RequestPlan &plan, std::uint64_t cluster_seed,
            metrics::Registry *registry, const CollectHooks *hooks)
{
    if (plan.sessions.empty() ||
        !plan.sessions.front().spec.net.enabled)
        return {};
    std::vector<Shipment> shipments;
    shipments.reserve(plan.sessions.size());
    for (std::size_t i = 0; i < plan.sessions.size(); ++i)
        shipments.push_back(Shipment{plan.sessions[i].node, i,
                                     &plan.sessions[i].result});
    return runCollection(plan.sessions.front().spec.net,
                         collectSeed(cluster_seed, plan.req->id),
                         plan.req->app, std::move(shipments), registry,
                         hooks);
}

CollectionOutcome
collectSessionResult(ExperimentResult &result,
                     const net::NetSpec &spec, std::uint64_t seed,
                     const std::string &app,
                     metrics::Registry *registry)
{
    if (!spec.enabled)
        return {};
    return runCollection(spec, seed, app,
                         {Shipment{0, 0, &result}}, registry);
}

}  // namespace exist
