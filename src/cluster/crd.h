/**
 * @file
 * The configuration interface of EXIST's cluster integration (paper §4):
 * tracing requests are Custom-Resource-Definition-style objects created
 * through a unified interface; a controller reconciles them. The
 * key=value text form models the kubectl-applied manifest.
 */
#ifndef EXIST_CLUSTER_CRD_H
#define EXIST_CLUSTER_CRD_H

#include <cstdint>
#include <string>

#include "net/fabric.h"
#include "util/types.h"

namespace exist {

/** Lifecycle of a TraceRequest object. */
enum class RequestPhase : std::uint8_t {
    kPending,
    kRunning,
    kCompleted,
    kFailed,
};

inline const char *
requestPhaseName(RequestPhase p)
{
    switch (p) {
      case RequestPhase::kPending: return "Pending";
      case RequestPhase::kRunning: return "Running";
      case RequestPhase::kCompleted: return "Completed";
      case RequestPhase::kFailed: return "Failed";
    }
    return "?";
}

/** A tracing request CRD. */
struct TraceRequest {
    std::uint64_t id = 0;  ///< assigned by the API server
    std::string app;       ///< target application name
    /** Anomaly-triggered requests trace every repetition (§3.4). */
    bool anomaly = false;
    /** User override of the tracing period; 0 = let RCO decide. */
    Cycles period_override = 0;
    /** Node memory budget for trace buffers (MB). */
    std::uint64_t budget_mb = 500;
    /** Personalized option: ring buffers instead of compulsory STOP. */
    bool ring_buffers = false;
    /** Personalized option: UMA core sampling ratio (0 = default). */
    double core_sample_ratio = 0.0;
    /** Personalized option: streaming decode — overlap collection with
     *  flow reconstruction so reports are ready at trace end. Ignored
     *  (batch fallback) when combined with ring=true. */
    bool streaming = false;
    /** Decode fast path (DESIGN.md §11): per-binary block cache +
     *  TNT-run memoization. Reports are bit-identical either way;
     *  off exists for perf comparison and as the reference path. */
    bool decode_cache = true;
    /** TNT-memo window size in bits (0 = block cache only). */
    int tnt_memo_bits = 6;

    /** Collection plane (ISSUE 6): ship session results node -> master
     *  over the simulated fabric instead of in-process. The knobs below
     *  only apply when net=true. */
    bool net = false;
    double net_loss = 0.0;       ///< per-frame drop probability
    double net_reorder = 0.0;    ///< per-frame reorder probability
    double net_duplicate = 0.0;  ///< per-frame duplicate probability
    double net_link_latency_us = 50.0;

    /** Durability plane (DESIGN.md §12): wal= names the directory the
     *  control plane journals into. Deliberately NOT rendered by
     *  toManifest(): it is host-local deployment state, and manifests
     *  must stay byte-identical across hosts and across a recovery
     *  (snapshots and WAL records embed manifests verbatim). */
    std::string wal_dir;
    /** Publishes between snapshots (0 = never snapshot). */
    std::uint64_t snapshot_interval = 8;

    RequestPhase phase = RequestPhase::kPending;

    /** The fabric configuration this request asks for. */
    net::NetSpec netSpec() const;

    /**
     * Parse a manifest of "key=value" pairs separated by whitespace or
     * newlines, e.g. "app=Search1 anomaly=true period_ms=500".
     * Fatal on unknown keys (a malformed manifest is a user error).
     */
    static TraceRequest parse(const std::string &manifest);

    /** Render back to manifest form. */
    std::string toManifest() const;
};

}  // namespace exist

#endif  // EXIST_CLUSTER_CRD_H
