/**
 * @file
 * Collection-plane orchestration: runs finished sessions' results
 * over the simulated fabric (node TraceAgents -> master Ingest) and
 * re-applies the delivered payloads, so a control-plane caller gets
 * results that are byte-identical to in-process delivery whenever the
 * transfer completed within the retry budget.
 *
 * Both masters call collectPlan() between the run phase and
 * publishRequest(); `existctl trace --net` uses the single-session
 * collectSessionResult(). When spec.net.enabled is false both are
 * no-ops — the historical in-process hand-off.
 *
 * Determinism: each request gets its own EventQueue + Fabric seeded
 * by splitmix64 over (cluster seed, request id), so the collection
 * fault pattern for request N is a pure function of the seed and N —
 * independent of which shard runs it, in which order, on how many
 * threads (the same argument as requestPlanSeed; DESIGN.md §10).
 */
#ifndef EXIST_CLUSTER_COLLECTION_H
#define EXIST_CLUSTER_COLLECTION_H

#include <cstdint>
#include <string>

#include "agent/trace_agent.h"
#include "cluster/control_journal.h"
#include "cluster/ingest.h"
#include "cluster/metrics.h"
#include "cluster/shard/plan.h"
#include "net/fabric.h"

namespace exist {

/** Node id of the master's ingest endpoint on the fabric (worker
 *  node ids are small and non-negative). */
inline constexpr NodeId kCollectorNode = 1'000'000;

/** Virtual-time budget for one request's collection run: past this,
 *  incomplete streams fall back to whatever summary arrived. */
inline constexpr double kCollectDeadlineSeconds = 120.0;

/** Seed of request `request_id`'s private collection fabric. */
std::uint64_t collectSeed(std::uint64_t cluster_seed,
                          std::uint64_t request_id);

/** What one collection run did (telemetry; the data lands back in
 *  the session results / ExperimentResult). */
struct CollectionOutcome {
    bool ran = false;  ///< net disabled => in-process hand-off
    std::size_t sessions = 0;
    std::size_t complete = 0;  ///< payload fully reassembled
    std::size_t degraded = 0;  ///< summary-only (spill or deadline)
    agent::AgentStats agents;  ///< summed over the request's agents
    IngestStats ingest;
    net::FabricStats fabric;
    std::string wire_log;  ///< when spec.net.record_wire_log
};

/**
 * Run the collection plane over one planned request's finished
 * sessions: strip each session result's collection-borne fields,
 * ship them through agents over the fabric, reassemble at the
 * ingest, re-apply. Publishes net.* / agent.* metrics into
 * `registry` (nullptr = skip).
 *
 * `hooks` (nullable) carries the durability plane's ingest hooks:
 * on_consume journals every in-order consumed batch, and `resume`
 * pre-seeds the ingest + agents with cursors recovered from the WAL
 * so a resumed stream ships only its undelivered tail. A resume
 * cursor whose journaled prefix does not byte-match the recomputed
 * session payload is a determinism violation and fails loudly.
 */
CollectionOutcome collectPlan(RequestPlan &plan,
                              std::uint64_t cluster_seed,
                              metrics::Registry *registry,
                              const CollectHooks *hooks = nullptr);

/** Single-session variant (existctl trace --net): node 0 -> master
 *  over a private fabric seeded with `seed`. */
CollectionOutcome collectSessionResult(ExperimentResult &result,
                                       const net::NetSpec &spec,
                                       std::uint64_t seed,
                                       const std::string &app,
                                       metrics::Registry *registry);

}  // namespace exist

#endif  // EXIST_CLUSTER_COLLECTION_H
