#include "cluster/ingest.h"

#include <algorithm>
#include <utility>

#include "obs/trace_plane.h"
#include "util/logging.h"

namespace exist {

namespace {

/** Must mint the same id as the agent side (trace_agent.cc batchCorr)
 *  so the flow link binds without any extra wire bytes. */
std::uint64_t
batchCorr(NodeId node, std::uint64_t stream, std::uint64_t seq)
{
    return obs::corrId(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(node)),
        stream, seq);
}

/** Clamp the collector's sentinel node id into the 16-bit obs field. */
std::uint32_t
obsNode(NodeId node)
{
    auto v = static_cast<std::uint64_t>(static_cast<std::int64_t>(node));
    return v >= 0xffff ? 0xffffu : static_cast<std::uint32_t>(v);
}

}  // namespace

Ingest::Ingest(EventQueue *queue, net::Fabric *fabric, NodeId node,
               IngestConfig cfg)
    : queue_(queue), fabric_(fabric), node_(node), cfg_(cfg)
{
    EXIST_ASSERT(cfg_.buffer_batches > 0,
                 "ingest buffer_batches must be > 0");
}

std::uint32_t
Ingest::windowFor(const Stream &s) const
{
    if (paused_)
        return 0;
    // The in-order batch is always consumable, so the window never
    // closes below 1 while unpaused — backpressure degrades the
    // transfer to stop-and-wait instead of livelocking it.
    std::size_t headroom =
        cfg_.buffer_batches > s.held.size()
            ? cfg_.buffer_batches - s.held.size()
            : 0;
    return static_cast<std::uint32_t>(1 + headroom);
}

bool
Ingest::streamComplete(const Stream &s) const
{
    // A degraded stream's spilled batches were never consumed, so
    // cumulative < total there; a finale-only (empty-payload) stream
    // has total == cumulative == 0 and is trivially complete.
    return s.finale && s.cumulative == s.total_batches;
}

void
Ingest::sendAck(NodeId dst, std::uint64_t stream,
                std::uint64_t batch_seq, const Stream &s)
{
    net::AckMsg ack;
    ack.node = dst;
    ack.stream = stream;
    ack.batch_seq = batch_seq;
    ack.cumulative = s.cumulative;
    ack.window = windowFor(s);
    fabric_->send(node_, dst, net::encodeFrame(ack));
    stats_.acks_sent += 1;
}

void
Ingest::onBatch(const net::TraceRegionBatchMsg &msg)
{
    Stream &s = streams_[{msg.node, msg.stream}];
    if (s.total_batches == 0)
        s.total_batches = msg.total_batches;

    // Idempotent consume: dedup by (node, stream, batch_seq). Already
    // consumed or already held => ack again (the first ack may have
    // been the lost frame) but never re-append.
    if (msg.batch_seq < s.cumulative ||
        s.held.count(msg.batch_seq) != 0) {
        stats_.batches_duplicate += 1;
        sendAck(msg.node, msg.stream, msg.batch_seq, s);
        return;
    }
    if (paused_ ||
        (msg.batch_seq > s.cumulative &&
         msg.batch_seq - s.cumulative > cfg_.buffer_batches)) {
        // Paused, or outside the window we are willing to hold. Not
        // acked: the agent's retransmit timer retries it after the
        // window reopens.
        stats_.batches_refused += 1;
        return;
    }

    stats_.batches_accepted += 1;
    if (msg.batch_seq == s.cumulative) {
        // In-order: consume immediately, then drain the held run.
        // The durability hook fires before each consume mutates the
        // payload (WAL-before-state), so a crash between them replays
        // the append instead of losing an acked batch.
        std::uint64_t consume_corr =
            batchCorr(msg.node, msg.stream, msg.batch_seq);
        obs::simFlowEnd("collect.batch", consume_corr, queue_->now(),
                        obsNode(node_));
        obs::simInstant("ingest.consume", consume_corr, queue_->now(),
                        obsNode(node_),
                        static_cast<std::uint32_t>(msg.batch_seq));
        if (cfg_.on_consume)
            cfg_.on_consume(msg.node, msg.stream, msg.batch_seq,
                            s.total_batches, msg.chunk);
        s.payload.insert(s.payload.end(), msg.chunk.begin(),
                         msg.chunk.end());
        s.cumulative += 1;
        auto it = s.held.begin();
        while (it != s.held.end() && it->first == s.cumulative) {
            obs::simInstant("ingest.consume",
                            batchCorr(msg.node, msg.stream, it->first),
                            queue_->now(), obsNode(node_),
                            static_cast<std::uint32_t>(it->first));
            if (cfg_.on_consume)
                cfg_.on_consume(msg.node, msg.stream, it->first,
                                s.total_batches, it->second);
            s.payload.insert(s.payload.end(), it->second.begin(),
                             it->second.end());
            s.cumulative += 1;
            it = s.held.erase(it);
        }
    } else {
        s.held.emplace(msg.batch_seq, msg.chunk);
    }
    sendAck(msg.node, msg.stream, msg.batch_seq, s);
}

void
Ingest::onReport(const net::BehaviorReportMsg &msg)
{
    Stream &s = streams_[{msg.node, msg.stream}];
    if (!s.finale) {
        obs::simInstant("ingest.finale",
                        batchCorr(msg.node, msg.stream, net::kFinaleSeq),
                        queue_->now(), obsNode(node_),
                        msg.degraded ? 1u : 0u);
        s.finale = true;
        s.degraded = msg.degraded;
        s.batches_spilled = msg.batches_spilled;
        s.summary = msg.summary;
        stats_.finales_received += 1;
        stats_.streams_completed += 1;
        if (msg.degraded)
            stats_.streams_degraded += 1;
    } else {
        stats_.batches_duplicate += 1;
    }
    sendAck(msg.node, msg.stream, net::kFinaleSeq, s);
}

void
Ingest::onHeartbeat(const net::HeartbeatMsg &msg)
{
    stats_.heartbeats_seen += 1;
    // Answer with a credit-only ack per live stream of this node, so
    // an agent stalled on a closed window learns when we drained.
    for (auto &[key, s] : streams_) {
        if (key.first != msg.node || s.finale)
            continue;
        sendAck(msg.node, key.second, net::kCreditSeq, s);
    }
}

void
Ingest::onFrame(NodeId src, const std::vector<std::uint8_t> &bytes)
{
    net::Frame frame;
    std::size_t consumed = 0;
    net::DecodeStatus st =
        net::decodeFrame(bytes.data(), bytes.size(), &frame, &consumed);
    MutexLock lk(mu_);
    stats_.frames_received += 1;
    if (st != net::DecodeStatus::kOk) {
        stats_.frames_rejected += 1;
        warn("ingest %d: undecodable frame from %d (%s)", node_, src,
             net::decodeStatusName(st));
        return;
    }
    switch (frame.type) {
      case net::MsgType::kTraceRegionBatch:
        onBatch(frame.batch);
        break;
      case net::MsgType::kBehaviorReport:
        onReport(frame.report);
        break;
      case net::MsgType::kHeartbeat:
        onHeartbeat(frame.heartbeat);
        break;
      case net::MsgType::kAck:
        break;  // masters do not consume acks
    }
}

void
Ingest::pause()
{
    MutexLock lk(mu_);
    paused_ = true;
}

void
Ingest::resume()
{
    MutexLock lk(mu_);
    paused_ = false;
}

std::size_t
Ingest::completedCount() const
{
    MutexLock lk(mu_);
    std::size_t n = 0;
    for (const auto &[key, s] : streams_)
        if (s.finale)
            ++n;
    return n;
}

IngestedStream
Ingest::take(NodeId node, std::uint64_t stream)
{
    MutexLock lk(mu_);
    IngestedStream out;
    out.node = node;
    out.stream = stream;
    auto it = streams_.find({node, stream});
    if (it == streams_.end())
        return out;
    Stream &s = it->second;
    out.complete = streamComplete(s);
    out.degraded = s.degraded;
    out.batches_spilled = s.batches_spilled;
    out.payload = std::move(s.payload);
    out.summary = std::move(s.summary);
    streams_.erase(it);
    return out;
}

IngestStats
Ingest::stats() const
{
    MutexLock lk(mu_);
    return stats_;
}

void
Ingest::restoreStream(NodeId node, std::uint64_t stream,
                      std::uint64_t total_batches,
                      std::uint64_t cumulative,
                      std::vector<std::uint8_t> prefix)
{
    MutexLock lk(mu_);
    Stream &s = streams_[{node, stream}];
    EXIST_ASSERT(s.cumulative == 0 && s.payload.empty(),
                 "restoreStream over a live stream %d/%llu", node,
                 (unsigned long long)stream);
    s.total_batches = total_batches;
    s.cumulative = cumulative;
    s.payload = std::move(prefix);
}

}  // namespace exist
