#include "cluster/session_payload.h"

#include "net/wire.h"

namespace exist {

namespace {

/** Scalar digest section shared by encode() and encodeSummary(). */
void
putScalars(net::ByteWriter &w, const SessionPayload &p)
{
    w.putString(p.app);
    w.putDouble(p.target_cpi);
    w.putVarint(p.decoded_branches);
    w.putDouble(p.accuracy_wall);
}

bool
getScalars(net::ByteReader &r, SessionPayload *p)
{
    p->app = r.getString();
    p->target_cpi = r.getDouble();
    p->decoded_branches = r.getVarint();
    p->accuracy_wall = r.getDouble();
    return r.ok();
}

}  // namespace

SessionPayload
SessionPayload::fromResult(const ExperimentResult &result,
                           const std::string &app)
{
    SessionPayload p;
    p.app = app;
    if (const AppResult *target = result.find(app))
        p.target_cpi = target->cpi;
    p.decoded_branches = result.decoded_branches;
    p.accuracy_wall = result.accuracy_wall;
    p.decoded_function_insns = result.decoded_function_insns;
    p.decoded_function_entries = result.decoded_function_entries;
    p.truth_function_insns = result.truth_function_insns;
    p.raw_traces = result.raw_traces;
    return p;
}

std::vector<std::uint8_t>
SessionPayload::encode() const
{
    std::vector<std::uint8_t> out;
    net::ByteWriter w(&out);
    putScalars(w, *this);
    w.putDeltaArray(decoded_function_insns);
    w.putDeltaArray(decoded_function_entries);
    w.putDeltaArray(truth_function_insns);
    w.putVarint(raw_traces.size());
    for (const CollectedTrace &ct : raw_traces) {
        w.putSVarint(ct.core);
        w.putSVarint(ct.thread);
        w.putVarint(ct.bytes.size());
        w.putBytes(ct.bytes.data(), ct.bytes.size());
    }
    return out;
}

std::string
SessionPayload::encodeSummary() const
{
    std::vector<std::uint8_t> out;
    net::ByteWriter w(&out);
    putScalars(w, *this);
    return std::string(out.begin(), out.end());
}

bool
SessionPayload::decode(const std::uint8_t *data, std::size_t size,
                       SessionPayload *out)
{
    *out = SessionPayload{};
    net::ByteReader r(data, size);
    if (!getScalars(r, out))
        return false;
    out->decoded_function_insns = r.getDeltaArray();
    out->decoded_function_entries = r.getDeltaArray();
    out->truth_function_insns = r.getDeltaArray();
    std::uint64_t n = r.getVarint();
    if (!r.ok() || n > r.remaining())
        return false;
    out->raw_traces.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        CollectedTrace ct;
        ct.core = static_cast<CoreId>(r.getSVarint());
        ct.thread = static_cast<ThreadId>(r.getSVarint());
        std::uint64_t len = r.getVarint();
        const std::uint8_t *p = r.getBytes(len);
        if (p == nullptr)
            return false;
        ct.bytes.assign(p, p + len);
        out->raw_traces.push_back(std::move(ct));
    }
    return r.ok() && r.remaining() == 0;
}

bool
SessionPayload::decodeSummary(const std::string &summary,
                              SessionPayload *out)
{
    *out = SessionPayload{};
    net::ByteReader r(
        reinterpret_cast<const std::uint8_t *>(summary.data()),
        summary.size());
    return getScalars(r, out) && r.remaining() == 0;
}

void
SessionPayload::applySummaryTo(ExperimentResult *result) const
{
    result->decoded_branches = decoded_branches;
    result->accuracy_wall = accuracy_wall;
    bool found = false;
    for (AppResult &a : result->apps) {
        if (a.name == app) {
            a.cpi = target_cpi;
            found = true;
        }
    }
    if (!found) {
        AppResult a;
        a.name = app;
        a.cpi = target_cpi;
        result->apps.push_back(std::move(a));
    }
}

void
SessionPayload::applyTo(ExperimentResult *result) const
{
    applySummaryTo(result);
    result->decoded_function_insns = decoded_function_insns;
    result->decoded_function_entries = decoded_function_entries;
    result->truth_function_insns = truth_function_insns;
    result->raw_traces = raw_traces;
}

void
SessionPayload::stripResult(ExperimentResult *result,
                            const std::string &app)
{
    result->decoded_branches = 0;
    result->accuracy_wall = 0.0;
    result->decoded_function_insns.clear();
    result->decoded_function_entries.clear();
    result->truth_function_insns.clear();
    result->raw_traces.clear();
    for (AppResult &a : result->apps)
        if (a.name == app)
            a.cpi = 0.0;
}

}  // namespace exist
