#include "cluster/storage.h"

#include "util/logging.h"

namespace exist {

void
ObjectStore::put(const std::string &key, std::vector<std::uint8_t> bytes)
{
    auto it = objects_.find(key);
    if (it != objects_.end()) {
        total_bytes_ -= it->second.size();
        it->second = std::move(bytes);
        total_bytes_ += it->second.size();
    } else {
        total_bytes_ += bytes.size();
        objects_.emplace(key, std::move(bytes));
    }
}

bool
ObjectStore::exists(const std::string &key) const
{
    return objects_.count(key) > 0;
}

const std::vector<std::uint8_t> &
ObjectStore::get(const std::string &key) const
{
    auto it = objects_.find(key);
    EXIST_ASSERT(it != objects_.end(), "no such object '%s'",
                 key.c_str());
    return it->second;
}

std::vector<std::string>
ObjectStore::listPrefix(const std::string &prefix) const
{
    std::vector<std::string> keys;
    for (auto it = objects_.lower_bound(prefix); it != objects_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        keys.push_back(it->first);
    }
    return keys;
}

void
OdpsTable::insert(TraceRow row)
{
    rows_.push_back(std::move(row));
}

std::vector<const TraceRow *>
OdpsTable::queryApp(const std::string &app) const
{
    std::vector<const TraceRow *> out;
    for (const auto &r : rows_)
        if (r.app == app)
            out.push_back(&r);
    return out;
}

std::vector<const TraceRow *>
OdpsTable::queryRequest(std::uint64_t request_id) const
{
    std::vector<const TraceRow *> out;
    for (const auto &r : rows_)
        if (r.request_id == request_id)
            out.push_back(&r);
    return out;
}

}  // namespace exist
