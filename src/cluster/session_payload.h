/**
 * @file
 * Serialization of the collection-borne slice of an ExperimentResult:
 * exactly the fields publishRequest() reads from a completed session
 * (raw traces, decoded/truth function profiles, decoded branch count,
 * wall accuracy, the target app's CPI). A session that travels the
 * simulated fabric is stripped of these fields at the worker, shipped
 * as an encoded SessionPayload, and has them re-applied at the master
 * — so the published report is byte-identical to in-process delivery
 * exactly when the transfer completed (the byte-compare ctests pin
 * this at drop rates up to the retry budget).
 *
 * Two encodings share one struct:
 *   encode()        the full payload, chunked by the agent into
 *                   TraceRegionBatch frames. Function profiles go as
 *                   delta+varint arrays (they are smooth, so this is
 *                   the main wire-byte saving); doubles are bit-exact.
 *   encodeSummary() the scalar digest only (app, CPI, branches,
 *                   accuracy) — rides the BehaviorReport finale, and
 *                   is what survives spill-and-summarize degradation.
 */
#ifndef EXIST_CLUSTER_SESSION_PAYLOAD_H
#define EXIST_CLUSTER_SESSION_PAYLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/testbed.h"

namespace exist {

struct SessionPayload {
    std::string app;  ///< the traced (target) application
    double target_cpi = 0.0;
    std::uint64_t decoded_branches = 0;
    double accuracy_wall = 0.0;
    std::vector<std::uint64_t> decoded_function_insns;
    std::vector<std::uint64_t> decoded_function_entries;
    std::vector<std::uint64_t> truth_function_insns;
    std::vector<CollectedTrace> raw_traces;

    /** Capture the collection-borne fields of a finished session. */
    static SessionPayload fromResult(const ExperimentResult &result,
                                     const std::string &app);

    std::vector<std::uint8_t> encode() const;
    std::string encodeSummary() const;

    static bool decode(const std::uint8_t *data, std::size_t size,
                       SessionPayload *out);
    static bool decodeSummary(const std::string &summary,
                              SessionPayload *out);

    /** Write the full payload back into a session result. */
    void applyTo(ExperimentResult *result) const;
    /** Write the scalar digest only (degraded streams): profiles and
     *  raw traces stay empty. */
    void applySummaryTo(ExperimentResult *result) const;

    /** Zero the collection-borne fields of `result` (the worker-side
     *  strip before shipment; what a lost stream would leave). */
    static void stripResult(ExperimentResult *result,
                            const std::string &app);
};

}  // namespace exist

#endif  // EXIST_CLUSTER_SESSION_PAYLOAD_H
