/**
 * @file
 * The cluster model: nodes, pods, and deployments. Each node is
 * simulated on demand (a full kernel + workload instance); the cluster
 * object tracks placement metadata, which is all the RCO policy layer
 * needs. Binaries are deterministic in the application name, so every
 * replica of an app across nodes runs the same binary — the property
 * that makes cross-worker trace merging meaningful (paper §3.4).
 */
#ifndef EXIST_CLUSTER_CLUSTER_H
#define EXIST_CLUSTER_CLUSTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/rco.h"
#include "util/types.h"

namespace exist {

struct ClusterConfig {
    int num_nodes = 10;
    int cores_per_node = 8;
    std::uint64_t seed = 7;
};

/** One pod: a replica of an application placed on a node. */
struct PodInstance {
    PodId id = kInvalidId;
    std::string app;
    NodeId node = kInvalidId;
    int replica_index = 0;
};

class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &cfg) : cfg_(cfg) {}

    const ClusterConfig &config() const { return cfg_; }
    int numNodes() const { return cfg_.num_nodes; }

    /** Deploy `replicas` pods of `app`, round-robin across nodes. */
    void deploy(const std::string &app, int replicas);

    const std::vector<PodInstance> &pods() const { return pods_; }
    std::vector<const PodInstance *> podsOf(const std::string &app) const;
    std::vector<const PodInstance *> podsOn(NodeId node) const;
    std::vector<std::string> deployedApps() const;
    int replicasOf(const std::string &app) const;

    /** Build the RCO metadata view of a deployed application. */
    AppDeployment metadataFor(const std::string &app,
                              bool anomaly = false) const;

  private:
    ClusterConfig cfg_;
    std::vector<PodInstance> pods_;
    int next_pod_id_ = 1;
    int next_node_rr_ = 0;
};

}  // namespace exist

#endif  // EXIST_CLUSTER_CLUSTER_H
