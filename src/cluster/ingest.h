/**
 * @file
 * Master-side ingest front end of the collection plane: the fabric
 * endpoint that receives TraceRegionBatch / BehaviorReport /
 * Heartbeat frames from node agents, makes delivery *idempotent*
 * (dedup by (node, stream, batch_seq) — re-transmissions and
 * fabric-duplicated frames are acked but consumed once), and
 * reassembles each stream's payload strictly in sequence order:
 * the in-order prefix is appended to the payload immediately, while
 * out-of-order batches are held (bounded) until the gap fills.
 *
 * Backpressure: every ack advertises a window — the count of batches
 * beyond the contiguous prefix the ingest will hold. pause() models a
 * busy master: the window drops to zero, agents stall (and eventually
 * spill if it lasts past their budget); resume() re-opens it, and the
 * next heartbeat from a stalled agent is answered with a credit-only
 * ack so the agent learns without guessing.
 *
 * A stream completes when all total_batches batches were consumed AND
 * its BehaviorReport finale arrived; a degraded stream (the agent
 * spilled) completes on the finale alone, carrying only the summary.
 *
 * Thread-safety: driven by the single-threaded event loop, but
 * stats()/take() may be polled from other threads — all state behind
 * an annotated mutex of rank kIngest (DESIGN.md §8).
 */
#ifndef EXIST_CLUSTER_INGEST_H
#define EXIST_CLUSTER_INGEST_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/frame.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace exist {

struct IngestConfig {
    /** Out-of-order batches held per stream beyond the contiguous
     *  prefix; also the advertised window ceiling. */
    std::size_t buffer_batches = 64;
    /**
     * Durability hook, fired on every in-order consume (both the
     * directly in-order batch and each batch drained from the held
     * run) BEFORE the payload mutation — the WAL append that makes
     * the ingest watermark durable ahead of the state it covers. Not
     * fired for restoreStream()ed prefixes (already journaled).
     */
    std::function<void(NodeId node, std::uint64_t stream,
                       std::uint64_t seq, std::uint64_t total_batches,
                       const std::vector<std::uint8_t> &chunk)>
        on_consume;
};

struct IngestStats {
    std::uint64_t frames_received = 0;
    std::uint64_t frames_rejected = 0;  ///< failed decodeFrame
    std::uint64_t batches_accepted = 0;
    std::uint64_t batches_duplicate = 0;
    std::uint64_t batches_refused = 0;  ///< outside the offered window
    std::uint64_t acks_sent = 0;
    std::uint64_t heartbeats_seen = 0;
    std::uint64_t finales_received = 0;
    std::uint64_t streams_completed = 0;
    std::uint64_t streams_degraded = 0;
};

/** One reassembled stream, harvested with Ingest::take(). */
struct IngestedStream {
    NodeId node = kInvalidId;
    std::uint64_t stream = 0;
    bool complete = false;  ///< payload fully reassembled
    bool degraded = false;  ///< agent spilled; only the summary holds
    std::uint64_t batches_spilled = 0;
    std::vector<std::uint8_t> payload;  ///< in-sequence reassembly
    std::string summary;                ///< the finale's digest
};

class Ingest
{
  public:
    Ingest(EventQueue *queue, net::Fabric *fabric, NodeId node,
           IngestConfig cfg = {});

    /** Fabric delivery entry point; wire as Fabric::attach callback. */
    void onFrame(NodeId src, const std::vector<std::uint8_t> &bytes)
        EXIST_EXCLUDES(mu_);

    /** Model master backpressure: advertise a zero window. */
    void pause() EXIST_EXCLUDES(mu_);
    void resume() EXIST_EXCLUDES(mu_);

    /** Streams whose finale has arrived. */
    std::size_t completedCount() const EXIST_EXCLUDES(mu_);

    /**
     * Harvest one stream (after the event loop drained). `complete`
     * in the result reports whether the payload reassembled fully;
     * a missing stream returns IngestedStream{} with complete=false.
     */
    IngestedStream take(NodeId node, std::uint64_t stream)
        EXIST_EXCLUDES(mu_);

    IngestStats stats() const EXIST_EXCLUDES(mu_);
    NodeId node() const { return node_; }

    /**
     * Recovery-only: pre-seed a stream with its journaled in-order
     * prefix, so the resumed agent ships batches [cumulative, total)
     * and the reassembly continues where the crashed master stopped.
     */
    void restoreStream(NodeId node, std::uint64_t stream,
                       std::uint64_t total_batches,
                       std::uint64_t cumulative,
                       std::vector<std::uint8_t> prefix)
        EXIST_EXCLUDES(mu_);

  private:
    struct Stream {
        std::uint64_t total_batches = 0;  ///< 0 until the first batch
        std::uint64_t cumulative = 0;     ///< seqs [0, cumulative) consumed
        std::vector<std::uint8_t> payload;
        /** Out-of-order batches held until the gap fills. */
        std::map<std::uint64_t, std::vector<std::uint8_t>> held;
        bool finale = false;
        bool degraded = false;
        std::uint64_t batches_spilled = 0;
        std::string summary;
    };

    using StreamKey = std::pair<NodeId, std::uint64_t>;

    void onBatch(const net::TraceRegionBatchMsg &msg)
        EXIST_REQUIRES(mu_);
    void onReport(const net::BehaviorReportMsg &msg)
        EXIST_REQUIRES(mu_);
    void onHeartbeat(const net::HeartbeatMsg &msg) EXIST_REQUIRES(mu_);
    void sendAck(NodeId dst, std::uint64_t stream,
                 std::uint64_t batch_seq, const Stream &s)
        EXIST_REQUIRES(mu_);
    std::uint32_t windowFor(const Stream &s) const EXIST_REQUIRES(mu_);
    bool streamComplete(const Stream &s) const EXIST_REQUIRES(mu_);

    EventQueue *queue_;
    net::Fabric *fabric_;
    const NodeId node_;
    const IngestConfig cfg_;

    mutable Mutex mu_{lockorder::LockRank::kIngest, "cluster.ingest"};
    std::map<StreamKey, Stream> streams_ EXIST_GUARDED_BY(mu_);
    IngestStats stats_ EXIST_GUARDED_BY(mu_);
    bool paused_ EXIST_GUARDED_BY(mu_) = false;
};

}  // namespace exist

#endif  // EXIST_CLUSTER_INGEST_H
