/**
 * @file
 * Data-path backends of the cluster deployment (paper §4): traced
 * packet data is uploaded to an unstructured object store (OSS) rather
 * than kept on the node; the software decoder reads trace objects and
 * binaries from there and writes structured results to an ODPS-style
 * table store that users query for analysis.
 *
 * Neither store is internally synchronized: instances are owned
 * either by the single-threaded Master or, one per stripe, by the
 * striped wrappers (cluster/shard/striped_store.h) whose annotated
 * stripe locks are their only guard — the EXIST_GUARDED_BY on those
 * stripe members is what makes Clang's thread-safety analysis check
 * every concurrent access path to this file's classes.
 */
#ifndef EXIST_CLUSTER_STORAGE_H
#define EXIST_CLUSTER_STORAGE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/types.h"

namespace exist {

/** Unstructured object storage (OSS mock). */
class ObjectStore
{
  public:
    void put(const std::string &key, std::vector<std::uint8_t> bytes);
    bool exists(const std::string &key) const;
    const std::vector<std::uint8_t> &get(const std::string &key) const;
    std::vector<std::string> listPrefix(const std::string &prefix) const;
    std::uint64_t totalBytes() const { return total_bytes_; }
    std::size_t objectCount() const { return objects_.size(); }

    /** Full key-sorted view (durability snapshots serialize this). */
    const std::map<std::string, std::vector<std::uint8_t>> &
    objects() const
    {
        return objects_;
    }

  private:
    std::map<std::string, std::vector<std::uint8_t>> objects_;
    std::uint64_t total_bytes_ = 0;
};

/** One decoded-trace row in the structured store. */
struct TraceRow {
    std::string app;
    NodeId node = kInvalidId;
    std::uint64_t request_id = 0;
    Cycles period = 0;
    std::uint64_t decoded_branches = 0;
    double accuracy = 0.0;
    std::vector<std::uint64_t> function_insns;
    std::vector<std::uint64_t> function_entries;

    bool operator==(const TraceRow &) const = default;
};

/** Structured result storage (ODPS mock) with query-by-app. */
class OdpsTable
{
  public:
    void insert(TraceRow row);
    std::vector<const TraceRow *> queryApp(const std::string &app) const;
    std::vector<const TraceRow *>
    queryRequest(std::uint64_t request_id) const;
    std::size_t rowCount() const { return rows_.size(); }

    /** Full insertion-order view (durability snapshots serialize
     *  this; restoring by re-insert preserves the order). */
    const std::vector<TraceRow> &rows() const { return rows_; }

  private:
    std::vector<TraceRow> rows_;
};

}  // namespace exist

#endif  // EXIST_CLUSTER_STORAGE_H
