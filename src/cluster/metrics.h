/**
 * @file
 * Control-plane metrics registry (Envoy-style scoped stats): the
 * management plane must be observable itself, or its per-mille
 * overhead claims cannot be audited at cluster scale. Counters,
 * gauges and log-bucketed histograms live in a lock-striped registry
 * keyed by dotted names ("shard.3.reconciles", "oss.puts",
 * "reconcile.latency_us"); lookup locks only one stripe, and the
 * returned metric objects are lock-free atomics, so shards recording
 * from the work-stealing pool never serialize on a registry mutex.
 *
 * Metric objects are never deleted: a reference obtained from the
 * registry stays valid for the registry's lifetime, so hot paths
 * should resolve names once and keep the reference.
 */
#ifndef EXIST_CLUSTER_METRICS_H
#define EXIST_CLUSTER_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace exist::metrics {

/** Monotonic event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written level (pool width, queue depth, ...). */
class Gauge
{
  public:
    void set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Power-of-two bucketed histogram for latency-style values
 * (microseconds by convention). Recording is wait-free (relaxed
 * atomics per bucket); percentiles are estimated from the bucket
 * counts with the geometric midpoint of the winning bucket, which is
 * accurate to ~1.4x — enough to watch a p99 trend.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    void record(std::uint64_t v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    std::uint64_t min() const;
    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }
    double mean() const;
    /** Estimated value at quantile q in [0, 1]. 0 when empty. */
    std::uint64_t percentile(double q) const;

  private:
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~0ULL};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Lock-striped name -> metric registry. Each stripe guards its own
 * maps; a name always hashes to the same stripe, so counter(name)
 * returns the same object on every call from every thread.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** All registered names (sorted), for dump/introspection. */
    std::vector<std::string> names() const;

    /** One rendered metric for dump/`existctl top` views. */
    struct Sample {
        std::string name;
        const char *type;   ///< "counter" | "gauge" | "histogram"
        std::string value;  ///< rendered value (histograms: summary)
    };

    /** Snapshot every metric, sorted by scoped name (type breaks
     *  ties), rendered for tabular display. */
    std::vector<Sample> samples() const;

    /** Snapshot the whole registry as one JSON object, names sorted:
     *  {"counters":{...},"gauges":{...},"histograms":{...}}. */
    std::string toJson() const;

    /** Process-wide registry (CLI, default ShardedMaster wiring). */
    static Registry &global();

  private:
    static constexpr std::size_t kStripes = 16;

    struct Stripe {
        mutable Mutex mu{lockorder::LockRank::kMetrics,
                         "metrics.stripe"};
        // Ordered maps so names() / toJson() render sorted without a
        // post-pass — part of the bit-identical-output discipline.
        std::map<std::string, std::unique_ptr<Counter>> counters
            EXIST_GUARDED_BY(mu);
        std::map<std::string, std::unique_ptr<Gauge>> gauges
            EXIST_GUARDED_BY(mu);
        std::map<std::string, std::unique_ptr<Histogram>> histograms
            EXIST_GUARDED_BY(mu);
    };

    Stripe &stripeFor(const std::string &name)
    {
        return stripes_[std::hash<std::string>{}(name) % kStripes];
    }

    Stripe stripes_[kStripes];
};

/** Name-prefixing view: Scope(reg, "shard.3").counter("x")
 *  resolves "shard.3.x". Cheap to construct, keeps call sites tidy. */
class Scope
{
  public:
    Scope(Registry &registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {
    }

    Counter &counter(const std::string &name)
    {
        return registry_.counter(prefix_ + "." + name);
    }
    Gauge &gauge(const std::string &name)
    {
        return registry_.gauge(prefix_ + "." + name);
    }
    Histogram &histogram(const std::string &name)
    {
        return registry_.histogram(prefix_ + "." + name);
    }
    Registry &registry() { return registry_; }

  private:
    Registry &registry_;
    std::string prefix_;
};

}  // namespace exist::metrics

#endif  // EXIST_CLUSTER_METRICS_H
