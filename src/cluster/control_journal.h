/**
 * @file
 * The control plane's durability seam. The cluster library cannot
 * depend on src/durability/ (durability links against cluster), so
 * the masters journal through this abstract interface: the durability
 * plane implements it with a WAL-backed Journal, tests with fakes,
 * and a null journal (the default) restores the historical
 * in-memory-only behaviour.
 *
 * The WAL-before-state discipline lives in the *callers*: every hook
 * is invoked after the decision is final but BEFORE the corresponding
 * in-memory mutation, so a crash between append and apply loses no
 * acknowledged state — recovery treats the log as truth and replays
 * the mutation. Publishes are physical redo records: capturePublish()
 * runs the pure publishRequest() into a capture sink, the journal
 * logs the full effects (report, OSS objects, ODPS rows, ledger
 * delta), and only then does applyPublish() touch the real stores,
 * so a completed request is never re-run after recovery.
 */
#ifndef EXIST_CLUSTER_CONTROL_JOURNAL_H
#define EXIST_CLUSTER_CONTROL_JOURNAL_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/master.h"
#include "cluster/storage.h"
#include "util/types.h"

namespace exist {

struct RequestPlan;
class StoreSink;

/** The coverage-ledger update one publish performs, logged so replay
 *  applies accounting without re-running the request. */
struct LedgerDelta {
    std::string app;
    std::uint64_t sessions = 0;
    Cycles period = 0;
    std::uint64_t trace_bytes = 0;
};

/** Everything one publishRequest() produced, captured before any of
 *  it is applied to live state. */
struct PublishEffects {
    TraceReport report;
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        objects;
    std::vector<TraceRow> rows;
    LedgerDelta ledger;
};

/** Ingest reassembly cursor of one agent stream, persisted per
 *  in-order-consumed batch and used to resume the stream after
 *  recovery instead of re-shipping delivered bytes. */
struct StreamResume {
    std::uint64_t total_batches = 0;  ///< the stream's full extent
    std::uint64_t cumulative = 0;  ///< batches [0, cumulative) consumed
    std::vector<std::uint8_t> prefix;  ///< their reassembled payload
};

/**
 * Collection-plane durability hooks for one request, passed into
 * collectPlan(): on_consume fires on every in-order batch consume
 * (the ingest watermark append), `resume` pre-seeds the ingest and
 * agents with the recovered cursors.
 */
struct CollectHooks {
    std::function<void(NodeId node, std::uint64_t stream,
                       std::uint64_t seq, std::uint64_t total_batches,
                       const std::vector<std::uint8_t> &chunk)>
        on_consume;
    std::map<std::pair<NodeId, std::uint64_t>, StreamResume> resume;
};

/**
 * Full control-plane state image, produced by Master/ShardedMaster
 * ::dumpState() at a quiesced reconcile boundary (the snapshot
 * barrier) and installed by restoreForRecovery(). Maps keep it
 * deterministically ordered; objects/rows are sorted by the dumper.
 */
struct ControlStateDump {
    std::uint64_t next_id = 1;
    std::map<std::uint64_t, TraceRequest> requests;
    std::map<std::uint64_t, TraceReport> reports;
    CoverageLedger ledger;
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        objects;
    std::vector<TraceRow> rows;
};

/** The journal interface the masters mutate through. Implementations
 *  must be safe to call from concurrent shard lanes. */
class ControlJournal
{
  public:
    virtual ~ControlJournal() = default;

    /** A request was assigned its id; the map insert follows. */
    virtual void onAdmit(const TraceRequest &req) = 0;
    /** Planning finished (outcome = kRunning/kFailed); the phase flip
     *  follows. Implementations log the plan seed for replay checks. */
    virtual void onPlanned(std::uint64_t id, RequestPhase outcome) = 0;
    /** Hooks for this request's collection run (ingest watermarks +
     *  recovered resume cursors). */
    virtual CollectHooks collectHooks(std::uint64_t id) = 0;
    /** Publish effects are final; applying them to stores/ledger/
     *  report map follows. */
    virtual void onPublish(std::uint64_t id,
                           const PublishEffects &fx) = 0;
};

/** Run the pure publish into a capture sink; no live state touched. */
PublishEffects capturePublish(RequestPlan &plan);

/** Apply captured effects to the real data-path sink (consumes the
 *  object/row payloads; the report/ledger delta stay readable). */
void applyPublish(PublishEffects &fx, StoreSink &sink);

}  // namespace exist

#endif  // EXIST_CLUSTER_CONTROL_JOURNAL_H
