/**
 * @file
 * Sharded control plane (the ROADMAP's "sharded cluster reconcile"):
 * the API-server state — TraceRequests, reports, per-request planning
 * RNG streams — is partitioned across N shards by request id; each
 * shard runs its own reconcile loop on the runtime work-stealing pool,
 * publishing to lock-striped stores so shards never contend on one
 * store mutex. Cross-shard invariants (the global id stream, RCO
 * coverage accounting, report registration order) go through a small
 * sequenced CommitLog.
 *
 * Determinism: reports are bit-identical to the serial Master for any
 * shard count and any scheduling, because
 *   - planning uses the per-request RNG stream
 *     splitmix64(cluster seed, request id) (shared planRequest),
 *   - sessions are deterministic simulations keyed by (seed, node,
 *     request id),
 *   - publishing iterates sessions in plan order (shared
 *     publishRequest), and
 *   - the sequenced commit applies coverage accounting in global
 *     request-id order.
 * Only wall-clock time changes with the shard count.
 */
#ifndef EXIST_CLUSTER_SHARD_SHARDED_MASTER_H
#define EXIST_CLUSTER_SHARD_SHARDED_MASTER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/master.h"
#include "cluster/metrics.h"
#include "cluster/shard/commit_log.h"
#include "cluster/shard/plan.h"
#include "cluster/shard/striped_store.h"
#include "core/rco.h"
#include "util/thread_annotations.h"

namespace exist {

class ShardedMaster
{
  public:
    /**
     * shards: number of API-server shards (reconcile lanes). 0 picks
     * min(hardware threads, 8). threads: session/decode parallelism
     * knob with the same meaning as Master's (1 = fully serial
     * sessions, 0 = shared pool). metrics: registry to record into
     * (nullptr = the process-global registry).
     */
    explicit ShardedMaster(Cluster *cluster, RcoConfig rco_cfg = {},
                           int shards = 0, int threads = 0,
                           metrics::Registry *metrics = nullptr);

    /** Create a TraceRequest (API server write; thread-safe). */
    std::uint64_t submit(TraceRequest req);
    /** Convenience: submit from a manifest string. */
    std::uint64_t apply(const std::string &manifest);

    /** Run every shard's controller loop until nothing is pending. */
    void reconcile();

    /**
     * Pointer into the shard's node-stable map. All fields except
     * `phase` are immutable after submit; read a possibly-in-flight
     * request's phase through phaseOf(), which takes the shard lock
     * (the raw pointer would race the reconcile-time transitions).
     */
    const TraceRequest *request(std::uint64_t id) const;
    const TraceReport *report(std::uint64_t id) const;
    /** Lock-synchronized phase read; safe while reconcile runs. */
    RequestPhase phaseOf(std::uint64_t id) const;

    StripedObjectStore &oss() { return oss_; }
    StripedOdpsTable &odps() { return odps_; }
    const RepetitionAwareCoverageOptimizer &rco() const { return rco_; }
    /** Coverage accounting, committed in request-id order. */
    const CoverageLedger &coverage() const { return ledger_; }
    metrics::Registry &metrics() { return *metrics_; }

    int shardCount() const { return static_cast<int>(shards_.size()); }
    std::uint64_t sessionsRun() const
    {
        return sessions_run_.load(std::memory_order_relaxed);
    }

    /** Per-shard footprints summed + pool-thread memory (Fig. 17
     *  telemetry for the sharded plane). */
    Master::Footprint managementFootprint() const;

    /**
     * Attach the durability journal (cluster/control_journal.h).
     * Admission/plan hooks run WAL-before-state on the shard lanes;
     * publish effects are journaled inside the sequenced commit
     * action, so WAL publish order equals global id order. nullptr
     * detaches.
     */
    void attachJournal(ControlJournal *journal) { journal_ = journal; }

    /** Full state image at a quiesced boundary (snapshot barrier):
     *  shard maps merged, stores in their deterministic sorted view. */
    ControlStateDump dumpState() const;
    /** Recovery-only: install a recovered image wholesale (requests
     *  and reports re-partitioned onto this instance's shards). */
    void restoreForRecovery(const ControlStateDump &dump);

  private:
    /** One API-server shard: owns the requests/reports with
     *  id % shardCount() == its index. The lock guards the maps'
     *  structure and every request's phase transition; the other
     *  TraceRequest fields are immutable once submitted. */
    struct Shard {
        mutable Mutex mu{lockorder::LockRank::kShard, "shard.state"};
        std::map<std::uint64_t, TraceRequest> requests
            EXIST_GUARDED_BY(mu);
        std::map<std::uint64_t, TraceReport> reports
            EXIST_GUARDED_BY(mu);
    };

    Shard &shardFor(std::uint64_t id) const
    {
        return *shards_[id % shards_.size()];
    }

    /** Reconcile one shard's pending requests (runs on a pool worker;
     *  seq_of maps request id -> global commit sequence). */
    void reconcileShard(std::size_t index,
                        const std::vector<std::uint64_t> &ids,
                        const std::map<std::uint64_t, std::uint64_t>
                            &seq_of);
    void recordSessionMetrics(const ExperimentResult &result);

    Cluster *cluster_;
    RepetitionAwareCoverageOptimizer rco_;
    int threads_;
    metrics::Registry *metrics_;
    ControlJournal *journal_ = nullptr;
    std::vector<std::unique_ptr<Shard>> shards_;
    CommitLog log_;
    CoverageLedger ledger_;  ///< mutated only inside sequenced commits
    StripedObjectStore oss_;
    StripedOdpsTable odps_;
    std::atomic<std::uint64_t> sessions_run_{0};
};

}  // namespace exist

#endif  // EXIST_CLUSTER_SHARD_SHARDED_MASTER_H
