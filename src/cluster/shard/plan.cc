#include "cluster/shard/plan.h"

#include <algorithm>

#include "analysis/accuracy.h"
#include "cluster/master.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/app_profile.h"

namespace exist {

std::uint64_t
requestPlanSeed(std::uint64_t cluster_seed, std::uint64_t request_id)
{
    // splitmix64 over (seed, id): two dependent steps so adjacent ids
    // land in statistically independent streams.
    std::uint64_t sm = cluster_seed ^ 0x6d617374ULL;  // "mast"
    std::uint64_t base = splitmix64(sm);
    sm = base ^ (request_id * 0xd1342543de82ef95ULL);
    return splitmix64(sm);
}

RequestPlan
planRequest(Cluster *cluster,
            const RepetitionAwareCoverageOptimizer &rco,
            TraceRequest &req, int threads)
{
    RequestPlan plan;
    plan.req = &req;
    plan.outcome = RequestPhase::kRunning;

    if (cluster->replicasOf(req.app) == 0) {
        warn("trace request %llu: app %s not deployed",
             (unsigned long long)req.id, req.app.c_str());
        plan.outcome = RequestPhase::kFailed;
        return plan;
    }

    // Temporal decider + spatial sampler (§3.4) on the request's
    // private RNG stream.
    Rng rng(requestPlanSeed(cluster->config().seed, req.id));
    AppDeployment meta = cluster->metadataFor(req.app, req.anomaly);
    plan.period = req.period_override ? req.period_override
                                      : rco.decidePeriod(meta);
    plan.workers = rco.selectWorkers(meta, rng);
    auto pods = cluster->podsOf(req.app);

    for (int widx : plan.workers) {
        const PodInstance *pod = pods[static_cast<std::size_t>(widx)];

        // Node-level session: simulate this worker node with every pod
        // placed on it, tracing the requested app with EXIST.
        SessionPlan session;
        session.node = pod->node;
        ExperimentSpec &spec = session.spec;
        spec.node.num_cores = cluster->config().cores_per_node;
        spec.backend = "EXIST";
        spec.session.period = plan.period;
        spec.session.budget_mb = req.budget_mb;
        spec.session.ring_buffers = req.ring_buffers;
        spec.session.core_sample_ratio = req.core_sample_ratio;
        spec.decode = true;
        spec.ground_truth = true;
        spec.keep_traces = true;
        spec.warmup = secondsToCycles(0.05);
        spec.seed = cluster->config().seed * 1000003ULL +
                    static_cast<std::uint64_t>(pod->node) * 131ULL +
                    req.id;
        // Sessions already fan out across the pool; per-core decode
        // inside each session shares it rather than nesting new pools.
        // Streaming sessions are the exception: their consumers park on
        // workers for the whole session, so each gets a small dedicated
        // pool instead (sharing would let a backpressured producer
        // deadlock against parked consumers).
        spec.streaming = req.streaming;
        spec.decode_cache = req.decode_cache;
        spec.tnt_memo_bits = req.tnt_memo_bits;
        spec.net = req.netSpec();
        if (req.streaming)
            spec.decode_threads = threads == 1 ? 1 : 2;
        else
            spec.decode_threads = threads == 1 ? 1 : 0;

        std::vector<std::string> seen;
        for (const PodInstance *other : cluster->podsOn(pod->node)) {
            if (std::find(seen.begin(), seen.end(), other->app) !=
                seen.end())
                continue;
            seen.push_back(other->app);
            WorkloadSpec w;
            w.app = other->app;
            w.target = other->app == req.app;
            if (AppCatalog::find(other->app).is_service)
                w.closed_clients = 4;
            spec.workloads.push_back(std::move(w));
        }
        plan.sessions.push_back(std::move(session));
    }
    return plan;
}

TraceReport
publishRequest(RequestPlan &plan, StoreSink &sink)
{
    TraceRequest &req = *plan.req;

    TraceReport report;
    report.request_id = req.id;
    report.app = req.app;
    report.period = plan.period;

    std::vector<std::vector<std::uint64_t>> decoded_profiles;
    std::vector<std::vector<std::uint64_t>> truth_profiles;
    double cpi_sum = 0.0;

    for (SessionPlan &session : plan.sessions) {
        ExperimentResult &result = session.result;

        // Data path: raw trace objects go to OSS, decoded rows to ODPS.
        std::uint64_t bytes = 0;
        for (std::size_t i = 0; i < result.raw_traces.size(); ++i) {
            const CollectedTrace &ct = result.raw_traces[i];
            bytes += ct.bytes.size();
            std::string key = "traces/" + req.app + "/req" +
                              std::to_string(req.id) + "/node" +
                              std::to_string(session.node) + "/core" +
                              std::to_string(ct.core);
            sink.putObject(key, ct.bytes);
        }
        report.total_trace_bytes += bytes;

        TraceRow row;
        row.app = req.app;
        row.node = session.node;
        row.request_id = req.id;
        row.period = plan.period;
        row.decoded_branches = result.decoded_branches;
        row.accuracy = result.accuracy_wall;
        row.function_insns = result.decoded_function_insns;
        row.function_entries = result.decoded_function_entries;
        sink.insertRow(std::move(row));

        report.traced_nodes.push_back(session.node);
        report.per_worker_accuracy.push_back(result.accuracy_wall);
        decoded_profiles.push_back(result.decoded_function_insns);
        truth_profiles.push_back(result.truth_function_insns);
        cpi_sum += result.at(req.app).cpi;
    }

    // Trace augmentation: merge repetitions, score against the merged
    // reference (§3.4, Fig. 20).
    report.merged_function_insns = mergeFunctionProfiles(decoded_profiles);
    report.merged_truth_function_insns =
        mergeFunctionProfiles(truth_profiles);
    report.merged_accuracy =
        wallWeightAccuracy(report.merged_function_insns,
                           report.merged_truth_function_insns);
    report.mean_target_cpi =
        plan.workers.empty()
            ? 0.0
            : cpi_sum / static_cast<double>(plan.workers.size());
    return report;
}

}  // namespace exist
