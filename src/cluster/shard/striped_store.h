/**
 * @file
 * Lock-striped variants of the data-path stores. Publishes from
 * different shards land on different stripes (hash of key /
 * request id), so concurrent uploads never contend on one store-wide
 * mutex; aggregate views (listPrefix, queries, counts) merge across
 * stripes with a deterministic sort so their results do not depend on
 * which shard published first.
 *
 * Each stripe embeds the plain ObjectStore / OdpsTable — the striped
 * store is a placement + locking policy, not a second storage
 * implementation.
 */
#ifndef EXIST_CLUSTER_SHARD_STRIPED_STORE_H
#define EXIST_CLUSTER_SHARD_STRIPED_STORE_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/storage.h"
#include "util/thread_annotations.h"

namespace exist {

/** Striped unstructured object storage. */
class StripedObjectStore
{
  public:
    explicit StripedObjectStore(int stripes = 16);

    void put(const std::string &key, std::vector<std::uint8_t> bytes);
    bool exists(const std::string &key) const;
    /** Reference valid until the next put() of the same key (same
     *  contract as the plain ObjectStore). */
    const std::vector<std::uint8_t> &get(const std::string &key) const;
    /** Matching keys across all stripes, sorted. */
    std::vector<std::string> listPrefix(const std::string &prefix) const;

    std::uint64_t totalBytes() const;
    std::size_t objectCount() const;
    int stripeCount() const { return static_cast<int>(stripes_.size()); }

    /** Every (key, bytes) across all stripes, sorted by key — the
     *  deterministic view durability snapshots serialize. */
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
    allObjects() const;

  private:
    struct Stripe {
        mutable Mutex mu{lockorder::LockRank::kStore, "oss.stripe"};
        /** The plain store is not internally synchronized; the stripe
         *  lock is its only guard. */
        ObjectStore store EXIST_GUARDED_BY(mu);
    };
    Stripe &stripeFor(const std::string &key) const;

    std::vector<std::unique_ptr<Stripe>> stripes_;
};

/** Striped structured result storage. */
class StripedOdpsTable
{
  public:
    explicit StripedOdpsTable(int stripes = 16);

    void insert(TraceRow row);
    /**
     * Rows for one app / request across all stripes, sorted by
     * (request_id, node) — a stable order even though stripe insertion
     * order depends on shard timing. Pointers are valid until the next
     * insert (same contract as the plain OdpsTable).
     */
    std::vector<const TraceRow *> queryApp(const std::string &app) const;
    std::vector<const TraceRow *>
    queryRequest(std::uint64_t request_id) const;

    std::size_t rowCount() const;
    int stripeCount() const { return static_cast<int>(stripes_.size()); }

    /** Every row across all stripes, sorted by (request_id, node) —
     *  the deterministic view durability snapshots serialize. */
    std::vector<TraceRow> allRows() const;

  private:
    struct Stripe {
        mutable Mutex mu{lockorder::LockRank::kStore, "odps.stripe"};
        OdpsTable table EXIST_GUARDED_BY(mu);
    };
    Stripe &stripeFor(std::uint64_t request_id) const;
    static void sortRows(std::vector<const TraceRow *> &rows);

    std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace exist

#endif  // EXIST_CLUSTER_SHARD_STRIPED_STORE_H
