#include "cluster/shard/striped_store.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace exist {

StripedObjectStore::StripedObjectStore(int stripes)
{
    EXIST_ASSERT(stripes > 0, "stripe count must be positive");
    stripes_.reserve(static_cast<std::size_t>(stripes));
    for (int i = 0; i < stripes; ++i)
        stripes_.push_back(std::make_unique<Stripe>());
}

StripedObjectStore::Stripe &
StripedObjectStore::stripeFor(const std::string &key) const
{
    return *stripes_[std::hash<std::string>{}(key) % stripes_.size()];
}

void
StripedObjectStore::put(const std::string &key,
                        std::vector<std::uint8_t> bytes)
{
    Stripe &s = stripeFor(key);
    MutexLock lk(s.mu);
    s.store.put(key, std::move(bytes));
}

bool
StripedObjectStore::exists(const std::string &key) const
{
    Stripe &s = stripeFor(key);
    MutexLock lk(s.mu);
    return s.store.exists(key);
}

const std::vector<std::uint8_t> &
StripedObjectStore::get(const std::string &key) const
{
    Stripe &s = stripeFor(key);
    MutexLock lk(s.mu);
    return s.store.get(key);
}

std::vector<std::string>
StripedObjectStore::listPrefix(const std::string &prefix) const
{
    std::vector<std::string> keys;
    for (const auto &sp : stripes_) {
        Stripe &s = *sp;
        MutexLock lk(s.mu);
        std::vector<std::string> part = s.store.listPrefix(prefix);
        keys.insert(keys.end(),
                    std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

std::uint64_t
StripedObjectStore::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &sp : stripes_) {
        Stripe &s = *sp;
        MutexLock lk(s.mu);
        total += s.store.totalBytes();
    }
    return total;
}

std::size_t
StripedObjectStore::objectCount() const
{
    std::size_t total = 0;
    for (const auto &sp : stripes_) {
        Stripe &s = *sp;
        MutexLock lk(s.mu);
        total += s.store.objectCount();
    }
    return total;
}

std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
StripedObjectStore::allObjects() const
{
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>> out;
    for (const auto &sp : stripes_) {
        Stripe &s = *sp;
        MutexLock lk(s.mu);
        for (const auto &[key, bytes] : s.store.objects())
            out.emplace_back(key, bytes);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return out;
}

StripedOdpsTable::StripedOdpsTable(int stripes)
{
    EXIST_ASSERT(stripes > 0, "stripe count must be positive");
    stripes_.reserve(static_cast<std::size_t>(stripes));
    for (int i = 0; i < stripes; ++i)
        stripes_.push_back(std::make_unique<Stripe>());
}

StripedOdpsTable::Stripe &
StripedOdpsTable::stripeFor(std::uint64_t request_id) const
{
    // Rows of one request stay on one stripe: a shard publishing a
    // request takes exactly one stripe lock per row, and queryRequest
    // touches one stripe's worth of rows.
    return *stripes_[request_id % stripes_.size()];
}

void
StripedOdpsTable::sortRows(std::vector<const TraceRow *> &rows)
{
    std::sort(rows.begin(), rows.end(),
              [](const TraceRow *a, const TraceRow *b) {
                  if (a->request_id != b->request_id)
                      return a->request_id < b->request_id;
                  return a->node < b->node;
              });
}

void
StripedOdpsTable::insert(TraceRow row)
{
    Stripe &s = stripeFor(row.request_id);
    MutexLock lk(s.mu);
    s.table.insert(std::move(row));
}

std::vector<const TraceRow *>
StripedOdpsTable::queryApp(const std::string &app) const
{
    std::vector<const TraceRow *> out;
    for (const auto &sp : stripes_) {
        Stripe &s = *sp;
        MutexLock lk(s.mu);
        std::vector<const TraceRow *> part = s.table.queryApp(app);
        out.insert(out.end(), part.begin(), part.end());
    }
    sortRows(out);
    return out;
}

std::vector<const TraceRow *>
StripedOdpsTable::queryRequest(std::uint64_t request_id) const
{
    Stripe &s = stripeFor(request_id);
    MutexLock lk(s.mu);
    std::vector<const TraceRow *> out = s.table.queryRequest(request_id);
    sortRows(out);
    return out;
}

std::vector<TraceRow>
StripedOdpsTable::allRows() const
{
    std::vector<TraceRow> out;
    for (const auto &sp : stripes_) {
        Stripe &s = *sp;
        MutexLock lk(s.mu);
        for (const TraceRow &row : s.table.rows())
            out.push_back(row);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceRow &a, const TraceRow &b) {
                  if (a.request_id != b.request_id)
                      return a.request_id < b.request_id;
                  return a.node < b.node;
              });
    return out;
}

std::size_t
StripedOdpsTable::rowCount() const
{
    std::size_t total = 0;
    for (const auto &sp : stripes_) {
        Stripe &s = *sp;
        MutexLock lk(s.mu);
        total += s.table.rowCount();
    }
    return total;
}

}  // namespace exist
