#include "cluster/shard/commit_log.h"

#include "util/logging.h"

namespace exist {

void
CommitLog::beginEpoch(std::uint64_t entries)
{
    MutexLock lk(mu_);
    EXIST_ASSERT(staged_.empty() && next_seq_ == epoch_entries_,
                 "beginEpoch with %zu staged / %llu of %llu committed",
                 staged_.size(), (unsigned long long)next_seq_,
                 (unsigned long long)epoch_entries_);
    next_seq_ = 0;
    epoch_entries_ = entries;
}

std::size_t
CommitLog::commit(std::uint64_t seq, std::function<void()> fn)
{
    MutexLock lk(mu_);
    EXIST_ASSERT(seq >= next_seq_ && seq < epoch_entries_,
                 "commit seq %llu outside window [%llu, %llu)",
                 (unsigned long long)seq,
                 (unsigned long long)next_seq_,
                 (unsigned long long)epoch_entries_);
    if (seq != next_seq_) {
        bool inserted = staged_.emplace(seq, std::move(fn)).second;
        EXIST_ASSERT(inserted, "duplicate commit for seq %llu",
                     (unsigned long long)seq);
        return 0;
    }
    // In order: apply, then drain every consecutively-staged successor.
    std::size_t applied = 0;
    fn();
    ++next_seq_;
    ++applied;
    for (auto it = staged_.begin();
         it != staged_.end() && it->first == next_seq_;
         it = staged_.erase(it)) {
        it->second();
        ++next_seq_;
        ++applied;
    }
    return applied;
}

std::uint64_t
CommitLog::committed() const
{
    MutexLock lk(mu_);
    return next_seq_;
}

bool
CommitLog::epochComplete() const
{
    MutexLock lk(mu_);
    return next_seq_ == epoch_entries_ && staged_.empty();
}

}  // namespace exist
