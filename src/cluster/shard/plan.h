/**
 * @file
 * Shared reconcile phases of the control plane: planning one
 * TraceRequest into worker-node sessions and publishing the completed
 * sessions into storage + a merged report. Both the serial Master and
 * the ShardedMaster call these, so "sharded reports are bit-identical
 * to serial" holds by construction, not by parallel maintenance of two
 * copies of the logic.
 *
 * Determinism contract: planning draws randomness from a *per-request*
 * RNG stream derived by splitmix64 over (cluster seed, request id), so
 * the plan for request N is a pure function of the cluster state and N
 * — independent of which shard plans it, in which order, on which
 * thread.
 */
#ifndef EXIST_CLUSTER_SHARD_PLAN_H
#define EXIST_CLUSTER_SHARD_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/testbed.h"
#include "cluster/cluster.h"
#include "cluster/crd.h"
#include "cluster/storage.h"
#include "core/rco.h"

namespace exist {

struct TraceReport;

/** One worker-node tracing session to run (independent of all others
 *  once planned). */
struct SessionPlan {
    NodeId node = kInvalidId;
    ExperimentSpec spec;
    ExperimentResult result;
};

/** Everything planning decided for one request, plus the per-worker
 *  session slots filled in by the run phase. */
struct RequestPlan {
    TraceRequest *req = nullptr;
    /** Phase the request should transition to (kRunning, or kFailed
     *  when planning rejected it). planRequest never writes
     *  req->phase itself: the caller owns the transition so it can
     *  apply it under whatever lock guards the request (the
     *  ShardedMaster's shard lock; the serial Master needs none). */
    RequestPhase outcome = RequestPhase::kFailed;
    Cycles period = 0;
    std::vector<int> workers;
    std::vector<SessionPlan> sessions;
};

/** Seed of request `request_id`'s private planning RNG stream. */
std::uint64_t requestPlanSeed(std::uint64_t cluster_seed,
                              std::uint64_t request_id);

/**
 * Phase 1 — plan: consume cluster metadata and the request's private
 * RNG stream, emit the session specs. Reports kRunning via
 * plan.outcome, or kFailed when the app is not deployed (the plan
 * then has no sessions) — the caller applies the transition under its
 * request lock. `threads` is the controller's parallelism knob and only
 * selects the per-session decode pool policy (1 = fully serial
 * sessions; anything else shares the process pool, streaming sessions
 * get small dedicated pools) — it never changes the plan itself.
 */
RequestPlan planRequest(Cluster *cluster,
                        const RepetitionAwareCoverageOptimizer &rco,
                        TraceRequest &req, int threads);

/**
 * Data-path sink for phase 3: raw trace objects and decoded rows. The
 * serial Master backs this with plain ObjectStore/OdpsTable; the
 * sharded path with their striped variants (+ metrics).
 */
class StoreSink
{
  public:
    virtual ~StoreSink() = default;
    virtual void putObject(const std::string &key,
                           std::vector<std::uint8_t> bytes) = 0;
    virtual void insertRow(TraceRow row) = 0;
};

/**
 * Phase 3 — publish: upload traces, write rows, assemble the merged
 * report from completed session results. Pure function of the plan
 * contents and the request fields; iterates sessions in plan order, so
 * the report bytes do not depend on who calls it. Does NOT flip the
 * request phase or register the report — the caller sequences those
 * (the sharded path through its commit log).
 */
TraceReport publishRequest(RequestPlan &plan, StoreSink &sink);

}  // namespace exist

#endif  // EXIST_CLUSTER_SHARD_PLAN_H
