/**
 * @file
 * Sequenced commit log for cross-shard control-plane invariants. Two
 * jobs:
 *
 *  1. Global id allocation: TraceRequest ids come from one atomic
 *     stream regardless of which shard the request lands on, so the
 *     API-server id order *is* the submit order — the property every
 *     determinism argument downstream leans on.
 *
 *  2. Ordered commits: per-epoch, each reconciled request is assigned
 *     a commit sequence number (its rank in id order) and its
 *     *commit action* — the small sequenced tail of publishing:
 *     report registration, RCO coverage accounting, the phase flip —
 *     is applied strictly in sequence order. The log is a reorder
 *     buffer, not a barrier: a shard that finishes out of order stages
 *     its action and moves on; whoever completes the missing sequence
 *     applies the whole ready run. Shards therefore never *block* on
 *     the log, which also makes the design safe on a pool narrower
 *     than the shard count (a blocked shard loop could otherwise wait
 *     for a shard that has not been scheduled yet).
 *
 * The bulky data-path writes (OSS objects, ODPS rows) deliberately do
 * NOT go through the log — they are order-independent and hit the
 * striped stores concurrently.
 */
#ifndef EXIST_CLUSTER_SHARD_COMMIT_LOG_H
#define EXIST_CLUSTER_SHARD_COMMIT_LOG_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>

#include "util/thread_annotations.h"

namespace exist {

class CommitLog
{
  public:
    /** Next global request id (starts at 1, like the serial Master). */
    std::uint64_t allocateId()
    {
        return next_id_.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t lastAllocatedId() const
    {
        return next_id_.load(std::memory_order_relaxed) - 1;
    }

    /** Recovery-only: resume the id stream where the crashed control
     *  plane left it, so re-submitted and new requests get the same
     *  ids a crash-free run would have assigned. */
    void restoreNextId(std::uint64_t next_id)
    {
        next_id_.store(next_id, std::memory_order_relaxed);
    }

    /** Start an epoch expecting commits with sequences [0, entries). */
    void beginEpoch(std::uint64_t entries);

    /**
     * Commit sequence `seq` with action `fn`. Applies fn immediately
     * when seq is next in order (then drains any staged successors),
     * otherwise stages it. Actions run under the log mutex: keep them
     * small (map insert, ledger update, phase flip). Returns the
     * number of actions applied by this call (0 = staged).
     */
    std::size_t commit(std::uint64_t seq, std::function<void()> fn);

    /** Commits applied in the current epoch. */
    std::uint64_t committed() const;
    /** True when every commit of the current epoch has been applied. */
    bool epochComplete() const;

  private:
    std::atomic<std::uint64_t> next_id_{1};

    // Rank kCommitLog sits BELOW kShard in the lock hierarchy: commit
    // actions legitimately acquire their shard's state lock while the
    // log mutex is held (drain of staged successors).
    mutable Mutex mu_{lockorder::LockRank::kCommitLog, "commitlog"};
    std::uint64_t next_seq_ EXIST_GUARDED_BY(mu_) = 0;
    std::uint64_t epoch_entries_ EXIST_GUARDED_BY(mu_) = 0;
    std::map<std::uint64_t, std::function<void()>> staged_
        EXIST_GUARDED_BY(mu_);
};

}  // namespace exist

#endif  // EXIST_CLUSTER_SHARD_COMMIT_LOG_H
