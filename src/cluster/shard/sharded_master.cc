#include "cluster/shard/sharded_master.h"

#include <algorithm>
#include <chrono>

#include "analysis/testbed.h"
#include "cluster/collection.h"
#include "cluster/control_journal.h"
#include "obs/trace_plane.h"
#include "runtime/thread_pool.h"
#include "util/logging.h"

namespace exist {

namespace {

/** Data-path sink over the striped stores, counting as it writes. */
class StripedSink : public StoreSink
{
  public:
    StripedSink(StripedObjectStore &oss, StripedOdpsTable &odps,
                metrics::Registry &metrics)
        : oss_(oss), odps_(odps), puts_(metrics.counter("oss.puts")),
          bytes_(metrics.counter("oss.bytes")),
          inserts_(metrics.counter("odps.inserts"))
    {
    }

    void
    putObject(const std::string &key,
              std::vector<std::uint8_t> bytes) override
    {
        bytes_.add(bytes.size());
        oss_.put(key, std::move(bytes));
        puts_.add();
    }

    void
    insertRow(TraceRow row) override
    {
        odps_.insert(std::move(row));
        inserts_.add();
    }

  private:
    StripedObjectStore &oss_;
    StripedOdpsTable &odps_;
    metrics::Counter &puts_;
    metrics::Counter &bytes_;
    metrics::Counter &inserts_;
};

}  // namespace

ShardedMaster::ShardedMaster(Cluster *cluster, RcoConfig rco_cfg,
                             int shards, int threads,
                             metrics::Registry *metrics)
    : cluster_(cluster), rco_(rco_cfg), threads_(threads),
      metrics_(metrics != nullptr ? metrics : &metrics::Registry::global())
{
    if (shards <= 0)
        shards = std::min(ThreadPool::defaultThreads(), 8);
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    metrics_->gauge("shards").set(shards);
}

std::uint64_t
ShardedMaster::submit(TraceRequest req)
{
    req.id = log_.allocateId();
    req.phase = RequestPhase::kPending;
    std::uint64_t id = req.id;
    EXIST_SPAN("reconcile.admit", id);
    // WAL-before-state: the admission is durable before the shard map
    // reflects it. Admits from different submitters may interleave in
    // the log; replay keys them by id, so the order is immaterial.
    if (journal_ != nullptr)
        journal_->onAdmit(req);
    Shard &shard = shardFor(id);
    {
        MutexLock lk(shard.mu);
        shard.requests.emplace(id, std::move(req));
    }
    metrics_->counter("api.submits").add();
    return id;
}

std::uint64_t
ShardedMaster::apply(const std::string &manifest)
{
    return submit(TraceRequest::parse(manifest));
}

const TraceRequest *
ShardedMaster::request(std::uint64_t id) const
{
    Shard &shard = shardFor(id);
    MutexLock lk(shard.mu);
    auto it = shard.requests.find(id);
    return it == shard.requests.end() ? nullptr : &it->second;
}

RequestPhase
ShardedMaster::phaseOf(std::uint64_t id) const
{
    Shard &shard = shardFor(id);
    MutexLock lk(shard.mu);
    auto it = shard.requests.find(id);
    EXIST_ASSERT(it != shard.requests.end(),
                 "phaseOf unknown request %llu", (unsigned long long)id);
    return it->second.phase;
}

const TraceReport *
ShardedMaster::report(std::uint64_t id) const
{
    Shard &shard = shardFor(id);
    MutexLock lk(shard.mu);
    auto it = shard.reports.find(id);
    return it == shard.reports.end() ? nullptr : &it->second;
}

void
ShardedMaster::reconcile()
{
    // Snapshot the pending ids per shard and rank every pending id in
    // global id order — the rank is its commit sequence, making the
    // sequenced tail of publishing identical to the serial Master's
    // request-order loop.
    std::size_t nshards = shards_.size();
    std::vector<std::vector<std::uint64_t>> pending(nshards);
    std::vector<std::uint64_t> all;
    for (std::size_t s = 0; s < nshards; ++s) {
        Shard &shard = *shards_[s];
        MutexLock lk(shard.mu);
        for (auto &[id, req] : shard.requests)
            if (req.phase == RequestPhase::kPending) {
                pending[s].push_back(id);
                all.push_back(id);
            }
    }
    std::sort(all.begin(), all.end());
    std::map<std::uint64_t, std::uint64_t> seq_of;
    for (std::size_t i = 0; i < all.size(); ++i)
        seq_of[all[i]] = i;

    log_.beginEpoch(all.size());

    auto runShard = [&](std::size_t s) {
        reconcileShard(s, pending[s], seq_of);
    };
    if (threads_ == 1 || nshards == 1) {
        for (std::size_t s = 0; s < nshards; ++s)
            runShard(s);
    } else if (threads_ > 1) {
        ThreadPool pool(std::min<int>(threads_,
                                      static_cast<int>(nshards)));
        pool.parallelFor(0, nshards, runShard);
        metrics_->gauge("pool.tasks_run")
            .add(static_cast<std::int64_t>(pool.tasksRun()));
        metrics_->gauge("pool.steals")
            .add(static_cast<std::int64_t>(pool.steals()));
    } else {
        ThreadPool &pool = ThreadPool::shared();
        pool.parallelFor(0, nshards, runShard);
        metrics_->gauge("pool.tasks_run")
            .set(static_cast<std::int64_t>(pool.tasksRun()));
        metrics_->gauge("pool.steals")
            .set(static_cast<std::int64_t>(pool.steals()));
    }

    EXIST_ASSERT(log_.epochComplete(),
                 "reconcile finished with uncommitted requests");
}

void
ShardedMaster::reconcileShard(std::size_t index,
                              const std::vector<std::uint64_t> &ids,
                              const std::map<std::uint64_t,
                                             std::uint64_t> &seq_of)
{
    metrics::Scope scope(*metrics_, "shard." + std::to_string(index));
    metrics::Counter &reconciles = scope.counter("reconciles");
    metrics::Counter &shard_sessions = scope.counter("sessions");
    metrics::Histogram &latency = metrics_->histogram("reconcile.latency_us");
    metrics::Counter &reordered = metrics_->counter("commitlog.reordered");
    Shard &shard = *shards_[index];

    for (std::uint64_t id : ids) {
        auto t0 = std::chrono::steady_clock::now();
        TraceRequest *req;
        {
            // Pointer into the node-stable map; the map structure is
            // not mutated while reconcile runs.
            MutexLock lk(shard.mu);
            req = &shard.requests.at(id);
        }

        // Plan on the request's private RNG stream, then run its
        // worker-node sessions in this shard's lane. Planning no
        // longer writes the phase itself: every phase transition
        // happens under shard.mu, so concurrent phaseOf() readers
        // never race a bare store.
        RequestPlan plan = [&] {
            EXIST_SPAN("reconcile.plan", id);
            return planRequest(cluster_, rco_, *req, threads_);
        }();
        if (journal_ != nullptr)
            journal_->onPlanned(id, plan.outcome);
        {
            MutexLock lk(shard.mu);
            req->phase = plan.outcome;
        }
        for (SessionPlan &session : plan.sessions) {
            EXIST_SPAN("session.run", obs::corrId(id, session.spec.seed));
            session.result = Testbed::run(session.spec);
            recordSessionMetrics(session.result);
        }
        sessions_run_.fetch_add(plan.sessions.size(),
                                std::memory_order_relaxed);
        shard_sessions.add(plan.sessions.size());

        // Collection plane (net=true requests): ship session results
        // over the request's private fabric before publishing. The
        // fabric is seeded by (cluster seed, request id), so the fault
        // pattern — hence the published report — is independent of
        // shard count, thread count and reconcile interleaving.
        {
            CollectHooks hooks;
            if (journal_ != nullptr)
                hooks = journal_->collectHooks(id);
            collectPlan(plan, cluster_->config().seed, metrics_,
                        journal_ != nullptr ? &hooks : nullptr);
        }

        // Bulk data path goes to the striped stores concurrently;
        // only the small sequenced tail rides the commit log. With a
        // journal attached, the publish is captured here (pure, still
        // concurrent) but journaled AND applied inside the sequenced
        // action, so WAL publish order equals global id order and the
        // kPublish append precedes every store/ledger write.
        TraceReport report;
        PublishEffects fx;
        bool completed = plan.outcome == RequestPhase::kRunning;
        if (completed) {
            EXIST_SPAN("reconcile.publish", id);
            if (journal_ != nullptr) {
                fx = capturePublish(plan);
            } else {
                StripedSink sink(oss_, odps_, *metrics_);
                report = publishRequest(plan, sink);
            }
        }

        std::uint64_t sessions = plan.sessions.size();
        Cycles period = plan.period;
        // The sequenced action may drain on whichever shard thread
        // reaches the reorder buffer: link the handoff with a flow.
        std::uint64_t commit_corr = obs::corrId(id, seq_of.at(id));
        obs::flowBegin("commitlog.action", commit_corr);
        std::size_t applied = log_.commit(
            seq_of.at(id),
            [this, &shard, req, completed, sessions, period, commit_corr,
             report = std::move(report),
             fx = std::move(fx)]() mutable {
                EXIST_SPAN("commitlog.action", commit_corr);
                obs::flowEnd("commitlog.action", commit_corr);
                if (!completed)
                    return;  // failed during planning: stays kFailed
                if (journal_ != nullptr) {
                    journal_->onPublish(req->id, fx);
                    StripedSink sink(oss_, odps_, *metrics_);
                    applyPublish(fx, sink);
                    report = std::move(fx.report);
                    ledger_.recordRequest(fx.ledger.app,
                                          fx.ledger.sessions,
                                          fx.ledger.period,
                                          fx.ledger.trace_bytes);
                } else {
                    ledger_.recordRequest(req->app, sessions, period,
                                          report.total_trace_bytes);
                }
                {
                    // The phase flip must ride the same lock as the
                    // report registration: this action may run on
                    // whichever shard thread drained the reorder
                    // buffer, racing phaseOf()/report() readers.
                    MutexLock lk(shard.mu);
                    shard.reports.emplace(req->id, std::move(report));
                    req->phase = RequestPhase::kCompleted;
                }
            });
        if (applied == 0)
            reordered.add();
        metrics_->counter("commitlog.commits").add();

        reconciles.add();
        latency.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    }
}

void
ShardedMaster::recordSessionMetrics(const ExperimentResult &result)
{
    // Session-level OTC/UMA telemetry: control-op and register-write
    // pressure is the node-side cost the control plane must watch.
    metrics_->counter("otc.control_ops")
        .add(result.backend_stats.control_ops);
    metrics_->counter("otc.trace_bytes")
        .add(result.backend_stats.trace_real_bytes);
    metrics_->counter("otc.dropped_bytes")
        .add(result.backend_stats.dropped_real_bytes);
    metrics_->counter("uma.msr_writes")
        .add(result.backend_stats.msr_writes);
    // Decode fast-path telemetry (DESIGN.md §11): memo effectiveness
    // and table footprint. Recorded here — before the collection plane
    // strips non-report fields — so the registry sees it regardless of
    // transport. Telemetry only; never part of any report comparison.
    metrics_->counter("decode.cache.hits").add(result.decode_cache_hits);
    metrics_->counter("decode.cache.misses")
        .add(result.decode_cache_misses);
    metrics_->counter("decode.cache.fast_bits")
        .add(result.decode_cache_fast_bits);
    metrics_->counter("decode.cache.bytes")
        .add(result.decode_cache_bytes);
    metrics_->counter("sessions.run").add();
}

ControlStateDump
ShardedMaster::dumpState() const
{
    ControlStateDump dump;
    dump.next_id = log_.lastAllocatedId() + 1;
    for (const auto &sp : shards_) {
        Shard &shard = *sp;
        MutexLock lk(shard.mu);
        for (const auto &[id, req] : shard.requests)
            dump.requests.emplace(id, req);
        for (const auto &[id, report] : shard.reports)
            dump.reports.emplace(id, report);
    }
    dump.ledger = ledger_;
    dump.objects = oss_.allObjects();
    dump.rows = odps_.allRows();
    return dump;
}

void
ShardedMaster::restoreForRecovery(const ControlStateDump &dump)
{
    log_.restoreNextId(dump.next_id);
    for (const auto &[id, req] : dump.requests) {
        Shard &shard = shardFor(id);
        MutexLock lk(shard.mu);
        shard.requests.insert_or_assign(id, req);
    }
    for (const auto &[id, report] : dump.reports) {
        Shard &shard = shardFor(id);
        MutexLock lk(shard.mu);
        shard.reports.insert_or_assign(id, report);
    }
    ledger_ = dump.ledger;
    for (const auto &[key, bytes] : dump.objects)
        oss_.put(key, bytes);
    for (const TraceRow &row : dump.rows)
        odps_.insert(row);
}

Master::Footprint
ShardedMaster::managementFootprint() const
{
    // Per-shard footprints summed: each shard carries its slice of the
    // API-server state plus a fixed per-shard overhead (reconcile
    // loop, stripe locks), on top of the pool-thread memory.
    double nodes = cluster_->numNodes();
    auto nshards = static_cast<double>(shards_.size());
    int threads = threads_ > 0 ? threads_ : ThreadPool::defaultThreads();
    Master::Footprint f{0.0, 0.0};
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        f.cores += (0.0008 + 0.0002 * nodes) / nshards;
        f.memory_mb += (36.0 + 0.4 * nodes) / nshards + 0.5;
    }
    f.cores += 5e-6 * threads;
    f.memory_mb += 8.0 * threads;
    return f;
}

}  // namespace exist
