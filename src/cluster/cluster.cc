#include "cluster/cluster.h"

#include <algorithm>

#include "util/logging.h"
#include "workload/app_profile.h"

namespace exist {

void
Cluster::deploy(const std::string &app, int replicas)
{
    EXIST_ASSERT(replicas > 0, "deploy needs at least one replica");
    for (int i = 0; i < replicas; ++i) {
        PodInstance pod;
        pod.id = next_pod_id_++;
        pod.app = app;
        pod.node = next_node_rr_ % cfg_.num_nodes;
        pod.replica_index = i;
        ++next_node_rr_;
        pods_.push_back(std::move(pod));
    }
}

std::vector<const PodInstance *>
Cluster::podsOf(const std::string &app) const
{
    std::vector<const PodInstance *> out;
    for (const auto &p : pods_)
        if (p.app == app)
            out.push_back(&p);
    return out;
}

std::vector<const PodInstance *>
Cluster::podsOn(NodeId node) const
{
    std::vector<const PodInstance *> out;
    for (const auto &p : pods_)
        if (p.node == node)
            out.push_back(&p);
    return out;
}

std::vector<std::string>
Cluster::deployedApps() const
{
    std::vector<std::string> names;
    for (const auto &p : pods_)
        if (std::find(names.begin(), names.end(), p.app) == names.end())
            names.push_back(p.app);
    return names;
}

int
Cluster::replicasOf(const std::string &app) const
{
    return static_cast<int>(podsOf(app).size());
}

AppDeployment
Cluster::metadataFor(const std::string &app, bool anomaly) const
{
    AppProfile profile = AppCatalog::find(app);
    AppDeployment d;
    d.app = app;
    d.priority = profile.priority;
    d.binary_bytes = profile.binary_bytes;
    d.past_incidents = profile.past_incidents;
    d.replicas = replicasOf(app);
    d.anomaly = anomaly;
    EXIST_ASSERT(d.replicas > 0, "app %s is not deployed", app.c_str());
    return d;
}

}  // namespace exist
