#include "cluster/control_journal.h"

#include <utility>

#include "cluster/shard/plan.h"

namespace exist {

namespace {

/** StoreSink that records instead of storing. */
class CaptureSink : public StoreSink
{
  public:
    explicit CaptureSink(PublishEffects *fx) : fx_(fx) {}

    void
    putObject(const std::string &key,
              std::vector<std::uint8_t> bytes) override
    {
        fx_->objects.emplace_back(key, std::move(bytes));
    }

    void
    insertRow(TraceRow row) override
    {
        fx_->rows.push_back(std::move(row));
    }

  private:
    PublishEffects *fx_;
};

}  // namespace

PublishEffects
capturePublish(RequestPlan &plan)
{
    PublishEffects fx;
    CaptureSink sink(&fx);
    fx.report = publishRequest(plan, sink);
    fx.ledger.app = plan.req->app;
    fx.ledger.sessions = plan.sessions.size();
    fx.ledger.period = plan.period;
    fx.ledger.trace_bytes = fx.report.total_trace_bytes;
    return fx;
}

void
applyPublish(PublishEffects &fx, StoreSink &sink)
{
    for (auto &[key, bytes] : fx.objects)
        sink.putObject(key, std::move(bytes));
    for (TraceRow &row : fx.rows)
        sink.insertRow(std::move(row));
    fx.objects.clear();
    fx.rows.clear();
}

}  // namespace exist
