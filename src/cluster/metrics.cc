#include "cluster/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace exist::metrics {

namespace {

/** Bucket for v: index of its highest set bit (0 -> bucket 0). */
int
bucketOf(std::uint64_t v)
{
    return v == 0 ? 0 : 64 - std::countl_zero(v);
}

/** Representative value of bucket i: geometric midpoint of its
 *  [2^(i-1), 2^i) range. */
std::uint64_t
bucketValue(int i)
{
    if (i <= 0)
        return 0;
    double lo = std::ldexp(1.0, i - 1);
    return static_cast<std::uint64_t>(lo * 1.41421356237309515);
}

void
atomicMin(std::atomic<std::uint64_t> &slot, std::uint64_t v)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<std::uint64_t> &slot, std::uint64_t v)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

}  // namespace

void
Histogram::record(std::uint64_t v)
{
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomicMin(min_, v);
    atomicMax(max_, v);
}

std::uint64_t
Histogram::min() const
{
    std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == ~0ULL ? 0 : m;
}

double
Histogram::mean() const
{
    std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t
Histogram::percentile(double q) const
{
    std::uint64_t n = count();
    if (n == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th value (1-based, ceil: p0 is the first sample).
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen >= rank) {
            // Clamp the estimate into the observed range so tiny
            // histograms do not report beyond their own max.
            return std::clamp(bucketValue(i), min(), max());
        }
    }
    return max();
}

Counter &
Registry::counter(const std::string &name)
{
    Stripe &s = stripeFor(name);
    MutexLock lk(s.mu);
    auto &slot = s.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Stripe &s = stripeFor(name);
    MutexLock lk(s.mu);
    auto &slot = s.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    Stripe &s = stripeFor(name);
    MutexLock lk(s.mu);
    auto &slot = s.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    for (const Stripe &s : stripes_) {
        MutexLock lk(s.mu);
        for (const auto &[name, c] : s.counters)
            out.push_back(name);
        for (const auto &[name, g] : s.gauges)
            out.push_back(name);
        for (const auto &[name, h] : s.histograms)
            out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Registry::Sample>
Registry::samples() const
{
    std::vector<Sample> out;
    for (const Stripe &s : stripes_) {
        MutexLock lk(s.mu);
        for (const auto &[name, c] : s.counters)
            out.push_back(
                {name, "counter", std::to_string(c->value())});
        for (const auto &[name, g] : s.gauges)
            out.push_back({name, "gauge", std::to_string(g->value())});
        for (const auto &[name, h] : s.histograms) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "count=%llu mean=%.1f p50=%llu p99=%llu "
                          "max=%llu",
                          (unsigned long long)h->count(), h->mean(),
                          (unsigned long long)h->percentile(0.50),
                          (unsigned long long)h->percentile(0.99),
                          (unsigned long long)h->max());
            out.push_back({name, "histogram", buf});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Sample &a, const Sample &b) {
                  if (a.name != b.name)
                      return a.name < b.name;
                  return std::strcmp(a.type, b.type) < 0;
              });
    return out;
}

std::string
Registry::toJson() const
{
    // Collect pointers under the stripe locks, then render from the
    // (stable, never-deleted) metric objects with names sorted.
    std::map<std::string, const Counter *> counters;
    std::map<std::string, const Gauge *> gauges;
    std::map<std::string, const Histogram *> histograms;
    for (const Stripe &s : stripes_) {
        MutexLock lk(s.mu);
        for (const auto &[name, c] : s.counters)
            counters[name] = c.get();
        for (const auto &[name, g] : s.gauges)
            gauges[name] = g.get();
        for (const auto &[name, h] : s.histograms)
            histograms[name] = h.get();
    }

    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ':';
        out += std::to_string(c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ':';
        out += std::to_string(g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      ":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,"
                      "\"max\":%llu,\"mean\":%.1f,\"p50\":%llu,"
                      "\"p99\":%llu}",
                      (unsigned long long)h->count(),
                      (unsigned long long)h->sum(),
                      (unsigned long long)h->min(),
                      (unsigned long long)h->max(), h->mean(),
                      (unsigned long long)h->percentile(0.50),
                      (unsigned long long)h->percentile(0.99));
        out += buf;
    }
    out += "}}";
    return out;
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

}  // namespace exist::metrics
