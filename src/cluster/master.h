/**
 * @file
 * The Kubernetes-master-side integration (paper §4 + §3.4): an API
 * server holding TraceRequest CRDs, and a reconciling controller that
 * (1) asks RCO for the tracing period and the set of repetitions,
 * (2) runs an EXIST session on each selected worker node,
 * (3) uploads raw trace objects to the object store,
 * (4) decodes them against the binary repository and writes structured
 *     rows to the table store, and
 * (5) merges per-worker traces into one augmented report.
 *
 * Planning and publishing are shared with the sharded control plane
 * (cluster/shard/plan.h): every request plans on its private RNG
 * stream splitmix64(cluster seed, request id), so ShardedMaster
 * produces bit-identical reports at any shard count.
 */
#ifndef EXIST_CLUSTER_MASTER_H
#define EXIST_CLUSTER_MASTER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/crd.h"
#include "cluster/storage.h"
#include "core/rco.h"

namespace exist {

struct RequestPlan;
class ControlJournal;
struct ControlStateDump;

/**
 * Threading model: Master is the *serial* control plane — one thread
 * owns the API-server state (requests_, reports_, the plain stores),
 * so none of it is lock-bearing; only the independent node sessions
 * fan out across the thread pool, and they touch no Master state.
 * The concurrent entry point is ShardedMaster
 * (cluster/shard/sharded_master.h), whose shard/store/metrics locks
 * carry Clang thread-safety annotations (util/thread_annotations.h).
 */

/** The merged outcome of one reconciled trace request. */
struct TraceReport {
    std::uint64_t request_id = 0;
    std::string app;
    Cycles period = 0;
    std::vector<NodeId> traced_nodes;
    std::vector<double> per_worker_accuracy;
    /** Wall accuracy of the merged profile vs the merged reference. */
    double merged_accuracy = 0.0;
    std::vector<std::uint64_t> merged_function_insns;
    /** Merged exhaustive reference across workers (for re-scoring
     *  subsets, e.g. the Fig. 20 sweep). */
    std::vector<std::uint64_t> merged_truth_function_insns;
    std::uint64_t total_trace_bytes = 0;
    /** Mean slowdown observed on the traced pods (sanity telemetry). */
    double mean_target_cpi = 0.0;

    bool operator==(const TraceReport &) const = default;
};

class Master
{
  public:
    /**
     * threads: parallelism for reconcile — worker-node sessions (and
     * their per-core decode fan-out) run on a pool of this width.
     * 0 = the process-wide shared pool, 1 = fully serial (the
     * historical behaviour). Reports are bit-identical at any setting:
     * planning (RCO decisions, per-request RNG draws) and publishing
     * (OSS/ODPS writes, report assembly) stay serial in request order;
     * only the independent node sessions run concurrently.
     */
    explicit Master(Cluster *cluster, RcoConfig rco_cfg = {},
                    int threads = 0);

    /** Create a TraceRequest object (API server write). */
    std::uint64_t submit(TraceRequest req);
    /** Convenience: submit from a manifest string. */
    std::uint64_t apply(const std::string &manifest);

    /** Run the controller loop until no request is pending. */
    void reconcile();

    const TraceRequest *request(std::uint64_t id) const;
    const TraceReport *report(std::uint64_t id) const;

    ObjectStore &oss() { return oss_; }
    OdpsTable &odps() { return odps_; }
    const RepetitionAwareCoverageOptimizer &rco() const { return rco_; }
    /** Coverage accounting, updated in request-id order. */
    const CoverageLedger &coverage() const { return ledger_; }

    /** Management-plane resource footprint (paper Fig. 17), including
     *  the reconcile pool's threads. */
    struct Footprint {
        double cores;
        double memory_mb;
    };
    Footprint managementFootprint() const;

    std::uint64_t sessionsRun() const { return sessions_run_; }

    /**
     * Attach the durability journal (cluster/control_journal.h).
     * Every mutation hook runs WAL-before-state: the journal append
     * precedes the in-memory change. nullptr detaches (the historical
     * in-memory-only behaviour).
     */
    void attachJournal(ControlJournal *journal) { journal_ = journal; }

    /** Full state image at a quiesced boundary (snapshot barrier). */
    ControlStateDump dumpState() const;
    /** Recovery-only: install a recovered image wholesale. */
    void restoreForRecovery(const ControlStateDump &dump);

  private:
    /** Phase 3: publish one planned+run request and register its
     *  report (serial, request order). */
    void publishOne(RequestPlan &plan);

    Cluster *cluster_;
    RepetitionAwareCoverageOptimizer rco_;
    int threads_;
    ControlJournal *journal_ = nullptr;
    std::map<std::uint64_t, TraceRequest> requests_;
    std::map<std::uint64_t, TraceReport> reports_;
    ObjectStore oss_;
    OdpsTable odps_;
    CoverageLedger ledger_;
    std::uint64_t next_id_ = 1;
    std::uint64_t sessions_run_ = 0;
};

}  // namespace exist

#endif  // EXIST_CLUSTER_MASTER_H
