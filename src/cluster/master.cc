#include "cluster/master.h"

#include <algorithm>

#include "analysis/accuracy.h"
#include "analysis/testbed.h"
#include "runtime/thread_pool.h"
#include "util/logging.h"
#include "workload/app_profile.h"

namespace exist {

/** One worker-node tracing session to run (independent of all
 *  others once planned). */
struct Master::SessionPlan {
    NodeId node = kInvalidId;
    ExperimentSpec spec;
    ExperimentResult result;
};

/** Everything reconcile decided for one request during planning, plus
 *  the per-worker session slots filled in by the parallel phase. */
struct Master::RequestPlan {
    TraceRequest *req = nullptr;
    Cycles period = 0;
    std::vector<int> workers;
    std::vector<SessionPlan> sessions;
};

Master::Master(Cluster *cluster, RcoConfig rco_cfg, int threads)
    : cluster_(cluster), rco_(rco_cfg), threads_(threads),
      rng_(cluster->config().seed ^ 0x6d617374ULL)
{
}

std::uint64_t
Master::submit(TraceRequest req)
{
    req.id = next_id_++;
    req.phase = RequestPhase::kPending;
    std::uint64_t id = req.id;
    requests_.emplace(id, std::move(req));
    return id;
}

std::uint64_t
Master::apply(const std::string &manifest)
{
    return submit(TraceRequest::parse(manifest));
}

const TraceRequest *
Master::request(std::uint64_t id) const
{
    auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

const TraceReport *
Master::report(std::uint64_t id) const
{
    auto it = reports_.find(id);
    return it == reports_.end() ? nullptr : &it->second;
}

void
Master::reconcile()
{
    // Phase 1 — plan serially in request-id order: every RCO decision
    // and RNG draw happens in the same order as the historical
    // one-request-at-a-time loop, so the chosen periods and worker
    // sets are unchanged.
    std::vector<RequestPlan> plans;
    for (auto &[id, req] : requests_)
        if (req.phase == RequestPhase::kPending)
            plans.push_back(planOne(req));

    // Phase 2 — run every (request, worker-node) session concurrently:
    // sessions are independent simulations, so they fan out across the
    // pool. Flatten to one task list so a request with one slow node
    // does not serialize the others.
    std::vector<SessionPlan *> jobs;
    for (RequestPlan &plan : plans)
        for (SessionPlan &s : plan.sessions)
            jobs.push_back(&s);

    auto runJob = [&](std::size_t i) {
        jobs[i]->result = Testbed::run(jobs[i]->spec);
    };
    if (threads_ == 1 || jobs.size() <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            runJob(i);
    } else if (threads_ > 1) {
        ThreadPool pool(threads_);
        pool.parallelFor(0, jobs.size(), runJob);
    } else {
        ThreadPool::shared().parallelFor(0, jobs.size(), runJob);
    }
    sessions_run_ += jobs.size();

    // Phase 3 — publish serially in request-id order: OSS uploads,
    // ODPS rows and report assembly see session results in the same
    // order as the serial implementation.
    for (RequestPlan &plan : plans)
        publishOne(plan);
}

Master::RequestPlan
Master::planOne(TraceRequest &req)
{
    RequestPlan plan;
    plan.req = &req;
    req.phase = RequestPhase::kRunning;

    if (cluster_->replicasOf(req.app) == 0) {
        warn("trace request %llu: app %s not deployed",
             (unsigned long long)req.id, req.app.c_str());
        req.phase = RequestPhase::kFailed;
        return plan;
    }

    // Temporal decider + spatial sampler (§3.4).
    AppDeployment meta = cluster_->metadataFor(req.app, req.anomaly);
    plan.period = req.period_override ? req.period_override
                                      : rco_.decidePeriod(meta);
    plan.workers = rco_.selectWorkers(meta, rng_);
    auto pods = cluster_->podsOf(req.app);

    for (int widx : plan.workers) {
        const PodInstance *pod = pods[static_cast<std::size_t>(widx)];

        // Node-level session: simulate this worker node with every pod
        // placed on it, tracing the requested app with EXIST.
        SessionPlan session;
        session.node = pod->node;
        ExperimentSpec &spec = session.spec;
        spec.node.num_cores = cluster_->config().cores_per_node;
        spec.backend = "EXIST";
        spec.session.period = plan.period;
        spec.session.budget_mb = req.budget_mb;
        spec.session.ring_buffers = req.ring_buffers;
        spec.session.core_sample_ratio = req.core_sample_ratio;
        spec.decode = true;
        spec.ground_truth = true;
        spec.keep_traces = true;
        spec.warmup = secondsToCycles(0.05);
        spec.seed = cluster_->config().seed * 1000003ULL +
                    static_cast<std::uint64_t>(pod->node) * 131ULL +
                    req.id;
        // Sessions already fan out across the pool; per-core decode
        // inside each session shares it rather than nesting new pools.
        // Streaming sessions are the exception: their consumers park on
        // workers for the whole session, so each gets a small dedicated
        // pool instead (sharing would let a backpressured producer
        // deadlock against parked consumers).
        spec.streaming = req.streaming;
        if (req.streaming)
            spec.decode_threads = threads_ == 1 ? 1 : 2;
        else
            spec.decode_threads = threads_ == 1 ? 1 : 0;

        std::vector<std::string> seen;
        for (const PodInstance *other : cluster_->podsOn(pod->node)) {
            if (std::find(seen.begin(), seen.end(), other->app) !=
                seen.end())
                continue;
            seen.push_back(other->app);
            WorkloadSpec w;
            w.app = other->app;
            w.target = other->app == req.app;
            if (AppCatalog::find(other->app).is_service)
                w.closed_clients = 4;
            spec.workloads.push_back(std::move(w));
        }
        plan.sessions.push_back(std::move(session));
    }
    return plan;
}

void
Master::publishOne(RequestPlan &plan)
{
    TraceRequest &req = *plan.req;
    if (req.phase != RequestPhase::kRunning)
        return;  // failed during planning

    TraceReport report;
    report.request_id = req.id;
    report.app = req.app;
    report.period = plan.period;

    std::vector<std::vector<std::uint64_t>> decoded_profiles;
    std::vector<std::vector<std::uint64_t>> truth_profiles;
    double cpi_sum = 0.0;

    for (SessionPlan &session : plan.sessions) {
        ExperimentResult &result = session.result;

        // Data path: raw trace objects go to OSS, decoded rows to ODPS.
        std::uint64_t bytes = 0;
        for (std::size_t i = 0; i < result.raw_traces.size(); ++i) {
            const CollectedTrace &ct = result.raw_traces[i];
            bytes += ct.bytes.size();
            std::string key = "traces/" + req.app + "/req" +
                              std::to_string(req.id) + "/node" +
                              std::to_string(session.node) + "/core" +
                              std::to_string(ct.core);
            oss_.put(key, ct.bytes);
        }
        report.total_trace_bytes += bytes;

        TraceRow row;
        row.app = req.app;
        row.node = session.node;
        row.request_id = req.id;
        row.period = plan.period;
        row.decoded_branches = result.decoded_branches;
        row.accuracy = result.accuracy_wall;
        row.function_insns = result.decoded_function_insns;
        row.function_entries = result.decoded_function_entries;
        odps_.insert(std::move(row));

        report.traced_nodes.push_back(session.node);
        report.per_worker_accuracy.push_back(result.accuracy_wall);
        decoded_profiles.push_back(result.decoded_function_insns);
        truth_profiles.push_back(result.truth_function_insns);
        cpi_sum += result.at(req.app).cpi;
    }

    // Trace augmentation: merge repetitions, score against the merged
    // reference (§3.4, Fig. 20).
    report.merged_function_insns = mergeFunctionProfiles(decoded_profiles);
    report.merged_truth_function_insns =
        mergeFunctionProfiles(truth_profiles);
    report.merged_accuracy =
        wallWeightAccuracy(report.merged_function_insns,
                           report.merged_truth_function_insns);
    report.mean_target_cpi =
        plan.workers.empty()
            ? 0.0
            : cpi_sum / static_cast<double>(plan.workers.size());

    reports_.emplace(req.id, std::move(report));
    req.phase = RequestPhase::kCompleted;
}

Master::Footprint
Master::managementFootprint() const
{
    // Calibrated to the paper's Fig. 17 measurement: the RCO management
    // pod consumes < 3e-3 cores and ~40 MB on a ten-node cluster, with
    // sub-linear growth toward per-mille overhead at thousand scale.
    Footprint f;
    f.cores = 0.0008 + 0.0002 * cluster_->numNodes();
    f.memory_mb = 36.0 + 0.4 * cluster_->numNodes();
    return f;
}

}  // namespace exist
