#include "cluster/master.h"

#include "analysis/testbed.h"
#include "cluster/collection.h"
#include "cluster/control_journal.h"
#include "cluster/metrics.h"
#include "cluster/shard/plan.h"
#include "obs/trace_plane.h"
#include "runtime/thread_pool.h"
#include "util/logging.h"

namespace exist {

namespace {

/** Data-path sink over the plain (unstriped) stores. */
class SerialSink : public StoreSink
{
  public:
    SerialSink(ObjectStore &oss, OdpsTable &odps)
        : oss_(oss), odps_(odps)
    {
    }

    void
    putObject(const std::string &key,
              std::vector<std::uint8_t> bytes) override
    {
        oss_.put(key, std::move(bytes));
    }

    void
    insertRow(TraceRow row) override
    {
        odps_.insert(std::move(row));
    }

  private:
    ObjectStore &oss_;
    OdpsTable &odps_;
};

}  // namespace

Master::Master(Cluster *cluster, RcoConfig rco_cfg, int threads)
    : cluster_(cluster), rco_(rco_cfg), threads_(threads)
{
}

std::uint64_t
Master::submit(TraceRequest req)
{
    req.id = next_id_++;
    req.phase = RequestPhase::kPending;
    std::uint64_t id = req.id;
    EXIST_SPAN("reconcile.admit", id);
    // WAL-before-state: the admission is durable before the API-server
    // map reflects it, so a crash here replays the insert.
    if (journal_ != nullptr)
        journal_->onAdmit(req);
    requests_.emplace(id, std::move(req));
    return id;
}

std::uint64_t
Master::apply(const std::string &manifest)
{
    return submit(TraceRequest::parse(manifest));
}

const TraceRequest *
Master::request(std::uint64_t id) const
{
    auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

const TraceReport *
Master::report(std::uint64_t id) const
{
    auto it = reports_.find(id);
    return it == reports_.end() ? nullptr : &it->second;
}

void
Master::reconcile()
{
    // Phase 1 — plan serially in request-id order. Each request plans
    // on its private RNG stream (cluster/shard/plan.h), so the chosen
    // periods and worker sets depend only on (cluster state, id) —
    // the same plans the sharded control plane computes.
    std::vector<RequestPlan> plans;
    for (auto &[id, req] : requests_)
        if (req.phase == RequestPhase::kPending) {
            EXIST_SPAN("reconcile.plan", id);
            plans.push_back(planRequest(cluster_, rco_, req, threads_));
            if (journal_ != nullptr)
                journal_->onPlanned(id, plans.back().outcome);
            // Single-threaded API server: the transition needs no lock
            // here, unlike the sharded path (shard.mu).
            req.phase = plans.back().outcome;
        }

    // Phase 2 — run every (request, worker-node) session concurrently:
    // sessions are independent simulations, so they fan out across the
    // pool. Flatten to one task list so a request with one slow node
    // does not serialize the others.
    std::vector<SessionPlan *> jobs;
    for (RequestPlan &plan : plans)
        for (SessionPlan &s : plan.sessions)
            jobs.push_back(&s);

    auto runJob = [&](std::size_t i) {
        EXIST_SPAN("session.run", obs::corrId(jobs[i]->spec.seed, i));
        jobs[i]->result = Testbed::run(jobs[i]->spec);
    };
    if (threads_ == 1 || jobs.size() <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            runJob(i);
    } else if (threads_ > 1) {
        ThreadPool pool(threads_);
        pool.parallelFor(0, jobs.size(), runJob);
    } else {
        ThreadPool::shared().parallelFor(0, jobs.size(), runJob);
    }
    sessions_run_ += jobs.size();

    // Phase 2b — collection plane (when the request asked for net):
    // session results travel node agent -> master ingest over the
    // request's private simulated fabric before they are published.
    // Seeded per request, so the serial and sharded masters see the
    // same fault pattern and publish byte-identical reports.
    for (RequestPlan &plan : plans) {
        CollectHooks hooks;
        if (journal_ != nullptr)
            hooks = journal_->collectHooks(plan.req->id);
        collectPlan(plan, cluster_->config().seed,
                    &metrics::Registry::global(),
                    journal_ != nullptr ? &hooks : nullptr);
    }

    // Phase 3 — publish serially in request-id order: OSS uploads,
    // ODPS rows, coverage accounting and report assembly see session
    // results in the same order as the historical implementation.
    for (RequestPlan &plan : plans)
        publishOne(plan);
}

void
Master::publishOne(RequestPlan &plan)
{
    TraceRequest &req = *plan.req;
    if (req.phase != RequestPhase::kRunning)
        return;  // failed during planning

    EXIST_SPAN("reconcile.publish", req.id);
    SerialSink sink(oss_, odps_);
    if (journal_ != nullptr) {
        // WAL-before-state, physically: capture the pure publish,
        // journal the full effects, then apply. A crash after the
        // append replays the effects instead of re-running anything.
        PublishEffects fx = capturePublish(plan);
        journal_->onPublish(req.id, fx);
        applyPublish(fx, sink);
        ledger_.recordRequest(fx.ledger.app, fx.ledger.sessions,
                              fx.ledger.period, fx.ledger.trace_bytes);
        reports_.emplace(req.id, std::move(fx.report));
    } else {
        TraceReport report = publishRequest(plan, sink);
        ledger_.recordRequest(req.app, plan.sessions.size(),
                              plan.period, report.total_trace_bytes);
        reports_.emplace(req.id, std::move(report));
    }
    req.phase = RequestPhase::kCompleted;
}

ControlStateDump
Master::dumpState() const
{
    ControlStateDump dump;
    dump.next_id = next_id_;
    dump.requests = requests_;
    dump.reports = reports_;
    dump.ledger = ledger_;
    for (const auto &[key, bytes] : oss_.objects())
        dump.objects.emplace_back(key, bytes);
    dump.rows = odps_.rows();
    return dump;
}

void
Master::restoreForRecovery(const ControlStateDump &dump)
{
    next_id_ = dump.next_id;
    requests_ = dump.requests;
    reports_ = dump.reports;
    ledger_ = dump.ledger;
    for (const auto &[key, bytes] : dump.objects)
        oss_.put(key, bytes);
    // Re-insert preserves the dump's row order, which for the serial
    // master is the original insertion (publish) order.
    for (const TraceRow &row : dump.rows)
        odps_.insert(row);
}

Master::Footprint
Master::managementFootprint() const
{
    // Calibrated to the paper's Fig. 17 measurement: the RCO management
    // pod consumes < 3e-3 cores and ~40 MB on a ten-node cluster, with
    // sub-linear growth toward per-mille overhead at thousand scale.
    // Pool threads are parked outside reconcile, so they cost stack
    // memory and housekeeping, not cores.
    int threads = threads_ > 0 ? threads_ : ThreadPool::defaultThreads();
    Footprint f;
    f.cores = 0.0008 + 0.0002 * cluster_->numNodes() + 5e-6 * threads;
    f.memory_mb = 36.0 + 0.4 * cluster_->numNodes() + 8.0 * threads;
    return f;
}

}  // namespace exist
