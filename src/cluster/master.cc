#include "cluster/master.h"

#include <algorithm>

#include "analysis/accuracy.h"
#include "analysis/testbed.h"
#include "util/logging.h"
#include "workload/app_profile.h"

namespace exist {

Master::Master(Cluster *cluster, RcoConfig rco_cfg)
    : cluster_(cluster), rco_(rco_cfg),
      rng_(cluster->config().seed ^ 0x6d617374ULL)
{
}

std::uint64_t
Master::submit(TraceRequest req)
{
    req.id = next_id_++;
    req.phase = RequestPhase::kPending;
    std::uint64_t id = req.id;
    requests_.emplace(id, std::move(req));
    return id;
}

std::uint64_t
Master::apply(const std::string &manifest)
{
    return submit(TraceRequest::parse(manifest));
}

const TraceRequest *
Master::request(std::uint64_t id) const
{
    auto it = requests_.find(id);
    return it == requests_.end() ? nullptr : &it->second;
}

const TraceReport *
Master::report(std::uint64_t id) const
{
    auto it = reports_.find(id);
    return it == reports_.end() ? nullptr : &it->second;
}

void
Master::reconcile()
{
    for (auto &[id, req] : requests_)
        if (req.phase == RequestPhase::kPending)
            reconcileOne(req);
}

void
Master::reconcileOne(TraceRequest &req)
{
    req.phase = RequestPhase::kRunning;

    if (cluster_->replicasOf(req.app) == 0) {
        warn("trace request %llu: app %s not deployed",
             (unsigned long long)req.id, req.app.c_str());
        req.phase = RequestPhase::kFailed;
        return;
    }

    // Temporal decider + spatial sampler (§3.4).
    AppDeployment meta = cluster_->metadataFor(req.app, req.anomaly);
    Cycles period = req.period_override ? req.period_override
                                        : rco_.decidePeriod(meta);
    std::vector<int> workers = rco_.selectWorkers(meta, rng_);
    auto pods = cluster_->podsOf(req.app);

    TraceReport report;
    report.request_id = req.id;
    report.app = req.app;
    report.period = period;

    std::vector<std::vector<std::uint64_t>> decoded_profiles;
    std::vector<std::vector<std::uint64_t>> truth_profiles;
    double cpi_sum = 0.0;

    for (int widx : workers) {
        const PodInstance *pod =
            pods[static_cast<std::size_t>(widx)];

        // Node-level session: simulate this worker node with every pod
        // placed on it, tracing the requested app with EXIST.
        ExperimentSpec spec;
        spec.node.num_cores = cluster_->config().cores_per_node;
        spec.backend = "EXIST";
        spec.session.period = period;
        spec.session.budget_mb = req.budget_mb;
        spec.session.ring_buffers = req.ring_buffers;
        spec.session.core_sample_ratio = req.core_sample_ratio;
        spec.decode = true;
        spec.ground_truth = true;
        spec.keep_traces = true;
        spec.warmup = secondsToCycles(0.05);
        spec.seed = cluster_->config().seed * 1000003ULL +
                    static_cast<std::uint64_t>(pod->node) * 131ULL +
                    req.id;

        std::vector<std::string> seen;
        for (const PodInstance *other :
             cluster_->podsOn(pod->node)) {
            if (std::find(seen.begin(), seen.end(), other->app) !=
                seen.end())
                continue;
            seen.push_back(other->app);
            WorkloadSpec w;
            w.app = other->app;
            w.target = other->app == req.app;
            if (AppCatalog::find(other->app).is_service)
                w.closed_clients = 4;
            spec.workloads.push_back(std::move(w));
        }

        ExperimentResult result = Testbed::run(spec);
        ++sessions_run_;

        // Data path: raw trace objects go to OSS, decoded rows to ODPS.
        std::uint64_t bytes = 0;
        for (std::size_t i = 0; i < result.raw_traces.size(); ++i) {
            const CollectedTrace &ct = result.raw_traces[i];
            bytes += ct.bytes.size();
            std::string key = "traces/" + req.app + "/req" +
                              std::to_string(req.id) + "/node" +
                              std::to_string(pod->node) + "/core" +
                              std::to_string(ct.core);
            oss_.put(key, ct.bytes);
        }
        report.total_trace_bytes += bytes;

        TraceRow row;
        row.app = req.app;
        row.node = pod->node;
        row.request_id = req.id;
        row.period = period;
        row.decoded_branches = result.decoded_branches;
        row.accuracy = result.accuracy_wall;
        row.function_insns = result.decoded_function_insns;
        row.function_entries = result.decoded_function_entries;
        odps_.insert(std::move(row));

        report.traced_nodes.push_back(pod->node);
        report.per_worker_accuracy.push_back(result.accuracy_wall);
        decoded_profiles.push_back(result.decoded_function_insns);
        truth_profiles.push_back(result.truth_function_insns);
        cpi_sum += result.at(req.app).cpi;
    }

    // Trace augmentation: merge repetitions, score against the merged
    // reference (§3.4, Fig. 20).
    report.merged_function_insns = mergeFunctionProfiles(decoded_profiles);
    report.merged_truth_function_insns =
        mergeFunctionProfiles(truth_profiles);
    report.merged_accuracy =
        wallWeightAccuracy(report.merged_function_insns,
                           report.merged_truth_function_insns);
    report.mean_target_cpi =
        workers.empty() ? 0.0
                        : cpi_sum / static_cast<double>(workers.size());

    reports_.emplace(req.id, std::move(report));
    req.phase = RequestPhase::kCompleted;
}

Master::Footprint
Master::managementFootprint() const
{
    // Calibrated to the paper's Fig. 17 measurement: the RCO management
    // pod consumes < 3e-3 cores and ~40 MB on a ten-node cluster, with
    // sub-linear growth toward per-mille overhead at thousand scale.
    Footprint f;
    f.cores = 0.0008 + 0.0002 * cluster_->numNodes();
    f.memory_mb = 36.0 + 0.4 * cluster_->numNodes();
    return f;
}

}  // namespace exist
