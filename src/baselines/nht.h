/**
 * @file
 * NHT — Native Hardware Tracing, the `perf record -e intel_pt//` model
 * (Table 2). The conventional per-thread-buffer design the paper
 * criticises (§2.3, §3.3): tracing state is reconfigured at *every*
 * context switch of the target (disable, swap output base, enable —
 * each an RTIT MSR sequence), the aux buffer is write-back memory whose
 * stores compete with the application, and every aux-buffer fill raises
 * a PMI whose handler copies the data out to perf.data.
 */
#ifndef EXIST_BASELINES_NHT_H
#define EXIST_BASELINES_NHT_H

#include <memory>
#include <unordered_map>

#include "baselines/backend.h"
#include "hwtrace/topa.h"

namespace exist {

class NhtBackend final : public TracerBackend
{
  public:
    /** Per-thread aux buffer size (real MB), perf's default ballpark.
     *  Other hardware-tracing designs differ mainly in this knob:
     *  REPT-style reverse debugging uses tiny per-thread rings, JPortal
     *  uses huge ones (paper Fig. 6). */
    static constexpr std::uint64_t kAuxRealMb = 8;

    explicit NhtBackend(std::uint64_t aux_real_mb = kAuxRealMb)
        : aux_real_mb_(std::max<std::uint64_t>(1, aux_real_mb))
    {
    }

    std::string name() const override { return "NHT"; }
    void start(Kernel &kernel, const SessionSpec &spec) override;
    void stop(Kernel &kernel) override;
    bool active() const override { return hook_id_ != 0; }
    BackendStats stats() const override;
    std::vector<CollectedTrace> collect() override;
    bool producesInstructionTrace() const override { return true; }

  private:
    struct PerThread {
        TopaBuffer buffer;
        std::vector<std::uint8_t> dump;  ///< perf.data aux content
        CoreId last_core = kInvalidId;
    };

    PerThread &threadBuffer(ThreadId tid);
    Cycles attachTo(Kernel &kernel, CoreId core, Thread &t, Cycles now);
    Cycles drain(CoreId core, Cycles now);

    std::uint64_t aux_real_mb_;
    bool ring_only_ = false;
    Kernel *kernel_ = nullptr;
    int hook_id_ = 0;
    ProcessId target_pid_ = kInvalidId;
    std::uint64_t target_cr3_ = 0;

    std::unordered_map<ThreadId, std::unique_ptr<PerThread>> bufs_;
    std::unordered_map<CoreId, ThreadId> attached_;

    std::uint64_t msr_writes_ = 0;
    std::uint64_t control_ops_ = 0;
    std::uint64_t pmis_ = 0;
};

}  // namespace exist

#endif  // EXIST_BASELINES_NHT_H
