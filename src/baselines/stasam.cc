#include "baselines/stasam.h"

#include "os/costs.h"
#include "util/logging.h"

namespace exist {

void
StaSamBackend::start(Kernel &kernel, const SessionSpec &spec)
{
    EXIST_ASSERT(spec.target != nullptr, "StaSam needs a target");
    target_pid_ = spec.target->pid();
    samples_ = 0;
    function_samples_.clear();

    InterruptSource src;
    src.period = secondsToCycles(1.0 / freq_);
    src.cost = costs::kSamplingInterrupt;
    src.handler = [this](CoreId, Thread *t) {
        if (t == nullptr)
            return;  // idle core: no PMI (no cycles retired)
        ++samples_;
        if (t->process().pid() == target_pid_)
            ++function_samples_[t->currentFunctionId()];
    };
    source_id_ = kernel.addInterruptSource(src);

    kernel.setTimer(kernel.now() + spec.period,
                    [this, &kernel] { stop(kernel); });
}

void
StaSamBackend::stop(Kernel &kernel)
{
    if (source_id_ != 0) {
        kernel.removeInterruptSource(source_id_);
        source_id_ = 0;
    }
}

BackendStats
StaSamBackend::stats() const
{
    BackendStats s;
    s.samples = samples_;
    s.trace_real_bytes = samples_ * kBytesPerSample;
    return s;
}

}  // namespace exist
