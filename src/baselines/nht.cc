#include "baselines/nht.h"

#include <algorithm>

#include "hwtrace/packet.h"
#include "os/costs.h"
#include "util/logging.h"

namespace exist {

NhtBackend::PerThread &
NhtBackend::threadBuffer(ThreadId tid)
{
    auto it = bufs_.find(tid);
    if (it == bufs_.end()) {
        auto pt = std::make_unique<PerThread>();
        std::uint64_t model_bytes = std::max<std::uint64_t>(
            4096, aux_real_mb_ * 1024 * 1024 / kTraceByteScale);
        pt->buffer.configure(
            {TopaEntry{model_bytes, /*stop=*/false,
                       /*intr=*/!ring_only_}},
            /*ring=*/true);
        it = bufs_.emplace(tid, std::move(pt)).first;
    }
    return *it->second;
}

Cycles
NhtBackend::drain(CoreId core, Cycles now)
{
    (void)now;
    auto it = attached_.find(core);
    if (it == attached_.end())
        return 0;
    PerThread &pt = *bufs_.at(it->second);
    std::uint64_t n = pt.buffer.drainTo(pt.dump);
    ++pmis_;
    return costs::kAuxPmi +
           static_cast<Cycles>(static_cast<double>(n) *
                               costs::kAuxDumpPerModelByte);
}

Cycles
NhtBackend::attachTo(Kernel &kernel, CoreId core, Thread &t, Cycles now)
{
    CoreTracer &tr = kernel.tracer(core);
    Cycles cost = 0;

    if (tr.enabled()) {
        cost += tr.disable(now).cost;
        ++msr_writes_;
    }

    PerThread &pt = threadBuffer(t.tid());
    TracerConfig cfg;
    cfg.cr3_filter = true;
    cfg.cr3_match = target_cr3_;
    cfg.external_output = &pt.buffer;
    cfg.cache_bypass = false;  // perf aux buffers are write-back memory
    auto conf = tr.configure(cfg);
    cost += conf.cost;
    msr_writes_ += 4;

    auto en = tr.enable(now, t.process().cr3(), t.currentAddress());
    cost += en.cost;
    ++msr_writes_;
    ++control_ops_;

    attached_[core] = t.tid();
    pt.last_core = core;
    return cost;
}

void
NhtBackend::start(Kernel &kernel, const SessionSpec &spec)
{
    EXIST_ASSERT(spec.target != nullptr, "NHT needs a target");
    if (spec.nht_aux_mb > 0)
        aux_real_mb_ = spec.nht_aux_mb;
    ring_only_ = spec.nht_ring_only;
    kernel_ = &kernel;
    target_pid_ = spec.target->pid();
    target_cr3_ = spec.target->cr3();

    if (!ring_only_) {
        kernel.setPmiHandler(
            [this](CoreId core, Cycles now) -> Cycles {
                return drain(core, now);
            });
    }

    hook_id_ = kernel.addSchedSwitchHook(
        [this, &kernel](Cycles now, CoreId core, Thread *prev,
                        Thread *next) -> Cycles {
            Cycles cost = 0;
            bool prev_target =
                prev && prev->process().pid() == target_pid_;
            bool next_target =
                next && next->process().pid() == target_pid_;
            CoreTracer &tr = kernel.tracer(core);

            if (prev_target && tr.enabled()) {
                // Swap out: stop tracing; the lossless regimes also
                // drain the buffer so the ring never overwrites
                // (REPT-style post-mortem rings keep only the tail).
                cost += tr.disable(now).cost;
                ++msr_writes_;
                ++control_ops_;
                if (!ring_only_)
                    cost += drain(core, now);
                attached_.erase(core);
            }
            if (next_target)
                cost += attachTo(kernel, core, *next, now);
            return cost;
        });

    // Threads of the target already running when tracing starts.
    for (int c = 0; c < kernel.numCores(); ++c) {
        Thread *t = kernel.runningOn(c);
        if (t && t->process().pid() == target_pid_)
            attachTo(kernel, c, *t, kernel.now());
    }

    kernel.setTimer(kernel.now() + spec.period,
                    [this, &kernel] { stop(kernel); });
}

void
NhtBackend::stop(Kernel &kernel)
{
    if (hook_id_ == 0)
        return;
    kernel.removeSchedSwitchHook(hook_id_);
    hook_id_ = 0;
    kernel.setPmiHandler(nullptr);

    for (auto &[core, tid] : attached_) {
        CoreTracer &tr = kernel.tracer(core);
        if (tr.enabled()) {
            tr.disable(kernel.now());
            ++msr_writes_;
        }
    }
    // Final drain of all residual buffer content.
    for (auto &[tid, pt] : bufs_)
        pt->buffer.drainTo(pt->dump);
    attached_.clear();
}

BackendStats
NhtBackend::stats() const
{
    BackendStats s;
    for (const auto &[tid, pt] : bufs_)
        s.trace_real_bytes += pt->dump.size() * kTraceByteScale;
    s.msr_writes = msr_writes_;
    s.control_ops = control_ops_;
    s.pmis = pmis_;
    s.traced_cores = attached_.size();
    return s;
}

std::vector<CollectedTrace>
NhtBackend::collect()
{
    std::vector<CollectedTrace> out;
    for (auto &[tid, pt] : bufs_) {
        CollectedTrace ct;
        ct.thread = tid;
        ct.core = pt->last_core;
        ct.bytes = pt->dump;
        out.push_back(std::move(ct));
    }
    // bufs_ is hash-ordered; callers compare reports across runs, so
    // hand traces back in a stable per-thread order.
    std::sort(out.begin(), out.end(),
              [](const CollectedTrace &a, const CollectedTrace &b) {
                  return a.thread < b.thread;
              });
    return out;
}

}  // namespace exist
