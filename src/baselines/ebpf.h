/**
 * @file
 * eBPF baseline: `bpftrace -e 'tracepoint:raw_syscalls:sys_enter ...'`
 * (Table 2). A probe fires at every syscall entry system-wide; each hit
 * pays the probe dispatch + map update + amortized userspace processing
 * cost. Produces kernel-boundary event records only — user-level
 * execution remains a black box.
 */
#ifndef EXIST_BASELINES_EBPF_H
#define EXIST_BASELINES_EBPF_H

#include "baselines/backend.h"

namespace exist {

class EbpfBackend final : public TracerBackend
{
  public:
    /** Bytes per emitted sys_enter record. */
    static constexpr std::uint64_t kBytesPerEvent = 40;

    std::string name() const override { return "eBPF"; }
    void start(Kernel &kernel, const SessionSpec &spec) override;
    void stop(Kernel &kernel) override;
    bool active() const override { return hook_id_ != 0; }
    BackendStats stats() const override;

    std::uint64_t targetEvents() const { return target_events_; }

  private:
    int hook_id_ = 0;
    ProcessId target_pid_ = kInvalidId;
    std::uint64_t events_ = 0;
    std::uint64_t target_events_ = 0;
};

}  // namespace exist

#endif  // EXIST_BASELINES_EBPF_H
