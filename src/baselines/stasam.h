/**
 * @file
 * StaSam: statistical sampling a la `perf record -a -F 3999` (Table 2).
 * Every core takes a PMI at the sampling frequency; each interrupt
 * unwinds the stack of whatever runs there. Produces function-level
 * statistical profiles — no chronological instruction trace — at a
 * system-wide interrupt cost.
 */
#ifndef EXIST_BASELINES_STASAM_H
#define EXIST_BASELINES_STASAM_H

#include <unordered_map>

#include "baselines/backend.h"

namespace exist {

class StaSamBackend final : public TracerBackend
{
  public:
    /** Default perf sampling frequency used in the paper. */
    static constexpr double kDefaultFrequency = 3999.0;
    /** Bytes per recorded sample in perf.data (callchain included). */
    static constexpr std::uint64_t kBytesPerSample = 560;

    explicit StaSamBackend(double frequency = kDefaultFrequency)
        : freq_(frequency)
    {
    }

    std::string name() const override { return "StaSam"; }
    void start(Kernel &kernel, const SessionSpec &spec) override;
    void stop(Kernel &kernel) override;
    bool active() const override { return source_id_ != 0; }
    BackendStats stats() const override;

    /** Function-id -> sample count for the target process (the
     *  statistical profile a flamegraph would show). */
    const std::unordered_map<std::uint32_t, std::uint64_t> &
    functionSamples() const
    {
        return function_samples_;
    }

  private:
    double freq_;
    int source_id_ = 0;
    ProcessId target_pid_ = kInvalidId;
    std::uint64_t samples_ = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> function_samples_;
};

}  // namespace exist

#endif  // EXIST_BASELINES_STASAM_H
