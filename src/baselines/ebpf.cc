#include "baselines/ebpf.h"

#include "os/costs.h"
#include "util/logging.h"

namespace exist {

void
EbpfBackend::start(Kernel &kernel, const SessionSpec &spec)
{
    EXIST_ASSERT(spec.target != nullptr, "eBPF needs a target");
    target_pid_ = spec.target->pid();
    events_ = 0;
    target_events_ = 0;

    hook_id_ = kernel.addSyscallHook(
        [this](Cycles, CoreId, Thread &t) -> Cycles {
            ++events_;
            if (t.process().pid() == target_pid_)
                ++target_events_;
            return costs::kEbpfProbe;
        });

    kernel.setTimer(kernel.now() + spec.period,
                    [this, &kernel] { stop(kernel); });
}

void
EbpfBackend::stop(Kernel &kernel)
{
    if (hook_id_ != 0) {
        kernel.removeSyscallHook(hook_id_);
        hook_id_ = 0;
    }
}

BackendStats
EbpfBackend::stats() const
{
    BackendStats s;
    s.probe_hits = events_;
    s.trace_real_bytes = events_ * kBytesPerEvent;
    return s;
}

}  // namespace exist
