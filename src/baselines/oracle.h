/**
 * @file
 * The Oracle backend: normal execution with no tracing attached.
 * Baseline against which every slowdown in the evaluation is normalized.
 */
#ifndef EXIST_BASELINES_ORACLE_H
#define EXIST_BASELINES_ORACLE_H

#include "baselines/backend.h"

namespace exist {

class OracleBackend final : public TracerBackend
{
  public:
    std::string name() const override { return "Oracle"; }
    void
    start(Kernel &, const SessionSpec &) override
    {
        active_ = true;
    }
    void
    stop(Kernel &) override
    {
        active_ = false;
    }
    bool active() const override { return active_; }
    BackendStats stats() const override { return {}; }

  private:
    bool active_ = false;
};

}  // namespace exist

#endif  // EXIST_BASELINES_ORACLE_H
