/**
 * @file
 * Common interface for intra-service tracing backends: the Oracle
 * (no tracing), the three state-of-the-practice baselines of Table 2
 * (StaSam, eBPF, NHT) and EXIST itself (src/core). A backend attaches
 * instrumentation to a node kernel, traces one target process for a
 * bounded period, and exposes its collected data and cost counters.
 */
#ifndef EXIST_BASELINES_BACKEND_H
#define EXIST_BASELINES_BACKEND_H

#include <cstdint>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "util/types.h"

namespace exist {

/** What to trace and with which resources. */
struct SessionSpec {
    Process *target = nullptr;
    /** Tracing period (0.1s – 2s in the paper's deployment). */
    Cycles period = secondsToCycles(0.5);

    // Memory settings, in real MB (converted by kTraceByteScale
    // internally).
    std::uint64_t budget_mb = 500;       ///< node facility budget
    std::uint64_t min_core_buffer_mb = 4;
    std::uint64_t max_core_buffer_mb = 128;

    /** UMA core-sampling ratio for CPU-share pods; 0 = policy default
     *  (paper Fig. 19 sweeps this). */
    double core_sample_ratio = 0.0;

    /** Use ring buffers instead of compulsory STOP (ablation, §3.3). */
    bool ring_buffers = false;

    /** Emit CYC timing packets (IA32_RTIT_CTL.CYCEn). Off selects a
     *  control-flow-only tracing configuration: branch reconstruction
     *  and per-function attribution are unchanged, intra-segment
     *  timestamps coarsen to PSB/TSC granularity, and the trace-byte
     *  volume drops by roughly half on branch-dense workloads. */
    bool cyc_timing = true;

    /** Streaming decode support: split each core's ToPA chain into
     *  regions of this many real bytes so region-fill events fire
     *  throughout the session (0 = one region per core, historical).
     *  Capacity and byte stream are unchanged by the split. */
    std::uint64_t stream_region_bytes = 0;

    /** Per-thread aux buffer size for the NHT backend (real MB);
     *  0 = NHT's default. Lets the Fig. 6 harness reproduce REPT-,
     *  Griffin- and JPortal-style buffer regimes. */
    std::uint64_t nht_aux_mb = 0;

    /** Ablation: EXIST with conventional per-switch control instead of
     *  the enable-once hooker (isolates §3.2's contribution). */
    bool exist_eager_control = false;

    /** REPT-style regime: keep only the per-thread ring's final
     *  content (post-mortem snapshot) instead of draining it on every
     *  fill/switch. Cheaper, but coverage collapses to the ring size. */
    bool nht_ring_only = false;
};

/** Cost and volume counters every backend reports. */
struct BackendStats {
    std::uint64_t trace_real_bytes = 0;    ///< space used (real bytes)
    std::uint64_t dropped_real_bytes = 0;  ///< lost to compulsory STOP
    std::uint64_t msr_writes = 0;          ///< RTIT WRMSR count
    std::uint64_t control_ops = 0;         ///< enable/disable/config seqs
    std::uint64_t samples = 0;             ///< StaSam samples
    std::uint64_t probe_hits = 0;          ///< eBPF tracepoint hits
    std::uint64_t pmis = 0;                ///< aux-buffer PMIs
    std::uint64_t traced_cores = 0;
};

/** One core's (or thread's) collected trace bytes, for decoding. */
struct CollectedTrace {
    CoreId core = kInvalidId;
    ThreadId thread = kInvalidId;  ///< set for per-thread schemes
    std::vector<std::uint8_t> bytes;
};

class TracerBackend
{
  public:
    virtual ~TracerBackend() = default;

    virtual std::string name() const = 0;

    /** Attach to the kernel and begin tracing per `spec`. The backend
     *  stops itself when the period expires. */
    virtual void start(Kernel &kernel, const SessionSpec &spec) = 0;

    /** Force-stop and detach (idempotent). */
    virtual void stop(Kernel &kernel) = 0;

    virtual bool active() const = 0;

    virtual BackendStats stats() const = 0;

    /** Collected trace data for decoding; empty for backends that do
     *  not produce chronological instruction traces. */
    virtual std::vector<CollectedTrace> collect() { return {}; }

    /** Whether this backend produces decodable instruction traces. */
    virtual bool producesInstructionTrace() const { return false; }
};

}  // namespace exist

#endif  // EXIST_BASELINES_BACKEND_H
