#include "workload/program.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace exist {

namespace {

/** Base address of generated text, mimicking a PIE binary layout. */
constexpr std::uint64_t kTextBase = 0x400000;
constexpr std::uint64_t kFunctionAlign = 0x100;
constexpr int kBytesPerInsn = 4;

FunctionCategory
sampleCategory(const AppProfile &p, Rng &rng)
{
    double u = rng.uniform();
    double acc = 0.0;
    for (std::size_t i = 0; i < kNumFunctionCategories; ++i) {
        acc += p.category_weights[i];
        if (u < acc)
            return static_cast<FunctionCategory>(i);
    }
    return FunctionCategory::kCompute;
}

}  // namespace

ProgramBinary
ProgramBinary::generate(const AppProfile &profile, std::uint64_t seed)
{
    ProgramBinary prog;
    prog.name_ = profile.name;
    prog.profile_ = profile;

    Rng rng(seed ^ 0xabcdef0123456789ULL);

    const int nfn = std::max(profile.num_functions, 2);
    prog.functions_.reserve(static_cast<std::size_t>(nfn));

    // Pass 1: lay out functions and blocks (terminators filled later so
    // call targets can reference any function).
    std::uint64_t addr = kTextBase;
    for (int f = 0; f < nfn; ++f) {
        ProgramFunction fn;
        fn.category = f == 0 ? FunctionCategory::kCompute
                             : sampleCategory(profile, rng);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s_%s_%03d",
                      f == 0 ? "main_loop" : "fn",
                      functionCategoryName(fn.category), f);
        fn.name = buf;
        fn.first_block = static_cast<std::uint32_t>(prog.blocks_.size());
        fn.entry_block = fn.first_block;

        int nblocks = static_cast<int>(
            rng.uniformInt(profile.min_blocks_per_fn,
                           profile.max_blocks_per_fn));
        // The main loop is the dispatcher driving the whole binary; it
        // is larger so each pass fans out over many call sites.
        if (f == 0)
            nblocks = std::max(nblocks * 3,
                               profile.max_blocks_per_fn * 3);
        fn.num_blocks = static_cast<std::uint32_t>(nblocks);

        addr = (addr + kFunctionAlign - 1) & ~(kFunctionAlign - 1);
        fn.base_address = addr;

        for (int b = 0; b < nblocks; ++b) {
            BasicBlock blk;
            blk.function_id = static_cast<std::uint32_t>(f);
            double span = profile.avg_insns_per_block;
            blk.insns = static_cast<std::uint16_t>(std::max<std::int64_t>(
                4, rng.uniformInt(static_cast<std::int64_t>(span * 0.5),
                                  static_cast<std::int64_t>(span * 1.5))));
            blk.size_bytes =
                static_cast<std::uint16_t>(blk.insns * kBytesPerInsn);
            blk.address = addr;
            addr += blk.size_bytes;
            prog.blocks_.push_back(blk);
        }
        fn.size_bytes = static_cast<std::uint32_t>(addr - fn.base_address);
        prog.functions_.push_back(std::move(fn));
    }
    prog.text_bytes_ = addr - kTextBase;

    // Pass 2: assign terminators and targets.
    const double wsum = profile.terminatorWeightSum();
    EXIST_ASSERT(wsum > 0, "profile %s has zero terminator weights",
                 profile.name.c_str());
    // Syscalls are a runtime overlay (see ExecutionContext), which keeps
    // their rate exact regardless of which CFG paths are hot. A small
    // structural sprinkling remains so the kSyscall decode path stays
    // exercised.
    const double p_syscall_block = 0.0005;

    for (std::size_t fidx = 0; fidx < prog.functions_.size(); ++fidx) {
        ProgramFunction &fn = prog.functions_[fidx];
        const std::uint32_t first = fn.first_block;
        const std::uint32_t count = fn.num_blocks;
        const bool is_main = fidx == 0;

        auto local_block = [&](std::uint32_t i) { return first + i; };

        for (std::uint32_t b = 0; b < count; ++b) {
            BasicBlock &blk = prog.blocks_[local_block(b)];
            const bool last = (b == count - 1);
            const std::uint32_t next =
                last ? fn.entry_block : local_block(b + 1);

            if (last) {
                // Function epilogue: return; the main loop jumps back to
                // its own entry instead (the program runs forever).
                blk.kind = is_main ? BranchKind::kDirectJump
                                   : BranchKind::kReturn;
                blk.target0 = is_main ? fn.entry_block : kNoBlock;
                continue;
            }

            if (rng.bernoulli(p_syscall_block)) {
                blk.kind = BranchKind::kSyscall;
                blk.target1 = next;
                continue;
            }

            // The main loop is the driver that must fan out over the
            // binary on every pass: no early returns, conditional
            // taken-edges only skip forward (a pass always flows entry
            // -> last -> entry), and a call-heavy mix — direct calls
            // plus indirect call sites with wide target tables — so
            // the reachable closure covers most functions, as the hot
            // path of a real service binary does.
            double wc = profile.w_cond, wdj = profile.w_djump;
            double wdc = profile.w_dcall, wij = profile.w_ijump;
            double wic = profile.w_icall, wr = profile.w_ret;
            if (is_main) {
                wc = 0.40;
                wdj = 0.08;
                wdc = 0.27;
                wij = 0.05;
                wic = 0.20;
                wr = 0.0;
            }
            double u = rng.uniform() * (wc + wdj + wdc + wij + wic + wr);
            if ((u -= wc) < 0) {
                blk.kind = BranchKind::kConditional;
                blk.target0 =
                    is_main ? local_block(
                                  b + 1 +
                                  static_cast<std::uint32_t>(
                                      rng.uniformInt(count - b - 1)))
                            : local_block(static_cast<std::uint32_t>(
                                  rng.uniformInt(count)));
                blk.target1 = next;
                double p = profile.taken_bias + rng.uniform(-0.25, 0.25);
                p = std::clamp(p, 0.05, 0.95);
                blk.prob_taken_x1e4 =
                    static_cast<std::uint16_t>(p * 1e4);
            } else if ((u -= wdj) < 0) {
                // Direct jumps are forward-only so that chains of
                // statically-resolvable transfers can never cycle: the
                // decoder follows them without consuming packets and
                // must always reach a packet-consuming terminator.
                blk.kind = BranchKind::kDirectJump;
                blk.target0 = local_block(
                    b + 1 + static_cast<std::uint32_t>(
                                rng.uniformInt(count - b - 1)));
            } else if ((u -= wdc) < 0) {
                // Direct-call edges form a DAG (callee id > caller id)
                // so statically-followed call chains always terminate;
                // recursion is expressed through indirect calls, which
                // consume TIP packets. The last function falls back to
                // a conditional.
                if (fidx + 1 < prog.functions_.size()) {
                    blk.kind = BranchKind::kDirectCall;
                    auto callee = static_cast<std::uint32_t>(
                        fidx + 1 +
                        rng.uniformInt(static_cast<std::uint64_t>(
                            prog.functions_.size() - fidx - 1)));
                    blk.target0 = prog.functions_[callee].entry_block;
                    blk.target1 = next;
                } else {
                    blk.kind = BranchKind::kConditional;
                    blk.target0 = local_block(static_cast<std::uint32_t>(
                        rng.uniformInt(count)));
                    blk.target1 = next;
                    blk.prob_taken_x1e4 = 5000;
                }
            } else if ((u -= wij) < 0) {
                blk.kind = BranchKind::kIndirectJump;
                blk.itable_begin = static_cast<std::uint32_t>(
                    prog.indirect_targets_.size());
                int entries = static_cast<int>(rng.uniformInt(3, 10));
                float acc = 0.f;
                std::vector<float> ws(static_cast<std::size_t>(entries));
                for (auto &w : ws) {
                    w = static_cast<float>(rng.uniform(0.1, 1.0));
                    acc += w;
                }
                float cum = 0.f;
                for (int e = 0; e < entries; ++e) {
                    cum += ws[static_cast<std::size_t>(e)] / acc;
                    // The last entry always jumps forward: a table
                    // whose targets all point backward could close a
                    // conditional subgraph with no escape edge and
                    // trap execution in it forever.
                    std::uint32_t tgt =
                        e == entries - 1
                            ? local_block(
                                  b + 1 +
                                  static_cast<std::uint32_t>(
                                      rng.uniformInt(count - b - 1)))
                            : local_block(static_cast<std::uint32_t>(
                                  rng.uniformInt(count)));
                    prog.indirect_targets_.push_back(IndirectTarget{
                        tgt, e == entries - 1 ? 1.0f : cum});
                }
                blk.itable_count = static_cast<std::uint32_t>(entries);
            } else if ((u -= wic) < 0) {
                blk.kind = BranchKind::kIndirectCall;
                blk.target1 = next;
                blk.itable_begin = static_cast<std::uint32_t>(
                    prog.indirect_targets_.size());
                int entries = static_cast<int>(
                    rng.uniformInt(4, is_main ? 24 : 12));
                float cum = 0.f;
                for (int e = 0; e < entries; ++e) {
                    cum += 1.0f / static_cast<float>(entries);
                    std::uint32_t callee = static_cast<std::uint32_t>(
                        1 + rng.uniformInt(
                                static_cast<std::uint64_t>(nfn - 1)));
                    prog.indirect_targets_.push_back(IndirectTarget{
                        prog.functions_[callee].entry_block,
                        e == entries - 1 ? 1.0f : cum});
                }
                blk.itable_count = static_cast<std::uint32_t>(entries);
            } else {
                // Early return from mid-function.
                blk.kind = BranchKind::kReturn;
            }
        }
    }

    // The main loop's entry must be a conditional: the final block (and
    // any unbalanced return) jumps back to it, so a static-jump entry
    // could form a packet-free cycle and a return-at-entry would
    // self-loop forever on an empty call stack.
    {
        BasicBlock &entry = prog.blocks_[prog.functions_[0].entry_block];
        if (entry.kind != BranchKind::kConditional) {
            const std::uint32_t first = prog.functions_[0].first_block;
            const std::uint32_t count = prog.functions_[0].num_blocks;
            entry.kind = BranchKind::kConditional;
            // Forward-only, like every main-loop conditional.
            entry.target0 =
                count > 1 ? first + 1 +
                                static_cast<std::uint32_t>(
                                    rng.uniformInt(count - 1))
                          : first;
            entry.target1 = count > 1 ? first + 1 : first;
            entry.prob_taken_x1e4 = 5000;
        }
    }

    prog.block_addresses_.reserve(prog.blocks_.size());
    for (const auto &blk : prog.blocks_)
        prog.block_addresses_.push_back(blk.address);
    EXIST_ASSERT(std::is_sorted(prog.block_addresses_.begin(),
                                prog.block_addresses_.end()),
                 "generated block addresses not monotonic");
    return prog;
}

std::uint32_t
ProgramBinary::blockAtAddress(std::uint64_t addr) const
{
    auto it = std::upper_bound(block_addresses_.begin(),
                               block_addresses_.end(), addr);
    if (it == block_addresses_.begin())
        return kNoBlock;
    auto idx = static_cast<std::uint32_t>(it - block_addresses_.begin() - 1);
    const BasicBlock &b = blocks_[idx];
    if (addr < b.address + b.size_bytes)
        return idx;
    return kNoBlock;
}

std::uint32_t
ProgramBinary::resolveIndirect(const BasicBlock &b, double u) const
{
    EXIST_ASSERT(b.itable_count > 0, "indirect block without targets");
    const auto begin = indirect_targets_.begin() + b.itable_begin;
    const auto end = begin + b.itable_count;
    auto it = std::lower_bound(
        begin, end, static_cast<float>(u),
        [](const IndirectTarget &t, float v) {
            return t.cumulative_weight < v;
        });
    if (it == end)
        --it;
    return it->block;
}

}  // namespace exist
