/**
 * @file
 * Branch event vocabulary shared between the program model (which
 * produces branch events) and the hardware tracer (which encodes them
 * into Intel-PT-style packets).
 */
#ifndef EXIST_WORKLOAD_BRANCH_H
#define EXIST_WORKLOAD_BRANCH_H

#include <cstdint>

namespace exist {

/**
 * Kind of control transfer terminating a basic block. The split mirrors
 * what Intel PT can and cannot see: direct jumps/calls generate no
 * packets (the decoder follows them statically from the binary), while
 * conditional branches generate TNT bits and indirect transfers generate
 * TIP packets.
 */
enum class BranchKind : std::uint8_t {
    kConditional,   ///< TNT bit
    kDirectJump,    ///< no packet
    kDirectCall,    ///< no packet
    kIndirectJump,  ///< TIP
    kIndirectCall,  ///< TIP
    kReturn,        ///< TIP (return compression not modelled)
    kSyscall,       ///< control enters the kernel; PIP/MODE boundary
};

inline const char *
branchKindName(BranchKind k)
{
    switch (k) {
      case BranchKind::kConditional: return "cond";
      case BranchKind::kDirectJump: return "jmp";
      case BranchKind::kDirectCall: return "call";
      case BranchKind::kIndirectJump: return "ijmp";
      case BranchKind::kIndirectCall: return "icall";
      case BranchKind::kReturn: return "ret";
      case BranchKind::kSyscall: return "syscall";
    }
    return "?";
}

/** One retired control transfer, as seen by tracer and ground truth. */
struct BranchRecord {
    std::uint32_t source_block;  ///< global block index of the source
    std::uint32_t target_block;  ///< global block index of the target
    BranchKind kind;
    bool taken;  ///< meaningful for kConditional only
};

}  // namespace exist

#endif  // EXIST_WORKLOAD_BRANCH_H
