/**
 * @file
 * Application profiles: the statistical "shape" of each evaluated
 * workload. A profile drives both static program generation (the CFG a
 * tracer sees) and runtime behaviour (CPI, syscall rate, threading,
 * service demand). Profiles for the paper's workloads (Table 1) live in
 * the catalog; they are calibrated so the benchmark harness reproduces
 * the evaluation's shapes, not SPEC's absolute performance.
 */
#ifndef EXIST_WORKLOAD_APP_PROFILE_H
#define EXIST_WORKLOAD_APP_PROFILE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"
#include "workload/function_category.h"

namespace exist {

/** CPU provisioning mode of a pod (paper §3.3). */
enum class ProvisionMode : std::uint8_t {
    kCpuSet,    ///< pinned exclusively to a small core set
    kCpuShare,  ///< mapped to a large shared core pool
};

/** Memory-access width mix (fractions for widths 1, 2, 4, 8 bytes). */
using WidthMix = std::array<double, 4>;

/** Statistical description of one application. */
struct AppProfile {
    std::string name;
    std::string description;

    // --- Static program shape -----------------------------------------
    int num_functions = 256;
    int min_blocks_per_fn = 2;
    int max_blocks_per_fn = 20;
    double avg_insns_per_block = 48.0;

    /** Terminator mix weights (normalized during generation). */
    double w_cond = 0.58;
    double w_djump = 0.05;
    double w_dcall = 0.11;
    double w_ijump = 0.03;
    double w_icall = 0.03;
    double w_ret = 0.20;

    /** Mean probability that a conditional branch is taken. */
    double taken_bias = 0.55;

    // --- Runtime behaviour ---------------------------------------------
    double base_cpi = 1.0;
    int num_threads = 1;

    /**
     * Program-phase behaviour: real applications drift between phases
     * (input batches, cache states, GC cycles), so two capture windows
     * of the same service see different function mixes — the reason
     * the paper scores real-world accuracy against a separately
     * captured exhaustive reference. Phase length is in instructions;
     * strength in [0,1] scales how far branch and dispatch
     * distributions swing across a phase. 0 disables phases.
     */
    double phase_insns = 12e6;
    double phase_strength = 0.35;

    /** Syscalls per thousand retired instructions. */
    double syscalls_per_kinsn = 0.002;
    /** Fraction of syscalls that block the thread (I/O). */
    double blocking_fraction = 0.05;
    /** In-kernel service time of a non-blocking syscall (microseconds). */
    double syscall_kernel_us = 1.2;
    /** Mean blocked duration of a blocking syscall (microseconds). */
    double blocking_io_us_mean = 150.0;

    // --- Hardware event rates (per kilo-instruction, exclusive run) ----
    double branch_miss_pki = 4.0;
    double l1_miss_pki = 18.0;
    double llc_miss_pki = 0.8;
    /** CPI penalty factor per co-located busy thread sharing the LLC. */
    double llc_sensitivity = 0.03;
    /** CPI penalty factor when sharing a physical core (SMT sibling). */
    double smt_sensitivity = 0.10;

    // --- Service model (request-driven workloads) ----------------------
    bool is_service = false;
    /** Mean request service demand in instructions. */
    double demand_mean_insns = 50'000.0;
    /** Coefficient of variation of service demand (lognormal). */
    double demand_cv = 0.8;
    /** Downstream RPCs issued per request (0 for leaf services). */
    int downstream_rpcs = 0;

    // --- Case-study characterization (Figures 21 & 22) -----------------
    /** Weight of each function category among generated functions. */
    std::array<double, kNumFunctionCategories> category_weights{};
    /** Memory accesses per kilo-instruction and width mixes. */
    double mem_access_per_kinsn = 300.0;
    double read_only_ratio = 0.55;
    double write_only_ratio = 0.20;
    WidthMix width_ro{0.25, 0.25, 0.35, 0.15};
    WidthMix width_wo{0.30, 0.25, 0.30, 0.15};
    WidthMix width_rw{0.25, 0.25, 0.30, 0.20};

    // --- Cluster metadata (RCO temporal decider inputs, §3.4) ----------
    ProvisionMode provision = ProvisionMode::kCpuSet;
    double priority = 0.5;                   ///< [0,1], 1 = most critical
    std::uint64_t binary_bytes = 24ull << 20;
    int past_incidents = 0;

    /** Sum of terminator weights (for normalization). */
    double terminatorWeightSum() const;
};

/**
 * Catalog of the paper's evaluated workloads (Table 1) plus the two
 * extra case-study applications of §5.4 (Matching, Recommend).
 */
class AppCatalog
{
  public:
    /** The ten SPEC CPU 2017 Integer stand-ins: pb gcc mcf om xa x264
     *  de le ex xz. */
    static std::vector<AppProfile> specSuite();

    /** Online benchmarks: mc (memcached), ng (nginx), ms (mysql). */
    static std::vector<AppProfile> onlineSuite();

    /** Real-world cloud services: Search1 Search2 Cache Pred Agent. */
    static std::vector<AppProfile> cloudSuite();

    /** §5.4 case-study set: Search Cache Prediction Matching Recommend. */
    static std::vector<AppProfile> caseStudySuite();

    /** Auxiliary profiles for targeted micro-studies, outside the
     *  paper's Table 1 suites (so suite-iterating experiments are
     *  unaffected): lbm (loop-heavy fluid-dynamics stencil, the
     *  decode fast-path study workload). */
    static std::vector<AppProfile> auxSuite();

    /** Look up any profile by name; fatal on unknown names. */
    static AppProfile find(const std::string &name);

    /** Names across all suites. */
    static std::vector<std::string> allNames();
};

}  // namespace exist

#endif  // EXIST_WORKLOAD_APP_PROFILE_H
