#include "workload/app_profile.h"

#include "util/logging.h"

namespace exist {

double
AppProfile::terminatorWeightSum() const
{
    return w_cond + w_djump + w_dcall + w_ijump + w_icall + w_ret;
}

namespace {

using CW = std::array<double, kNumFunctionCategories>;

/**
 * Build a category-weight vector. Arguments are panel masses and
 * within-panel mixes:
 *   mem   = {JE, TC, ALLOC, FREE, COPY, SET, CMP, MOVE}
 *   sync  = {ATOMIC, SPINLOCK, MUTEX, CAS}
 *   kern  = {SCHE, IRQ, NET}
 * The compute share absorbs the remainder so the vector sums to 1.
 */
CW
weights(double mem_mass, std::array<double, 8> mem,
        double sync_mass, std::array<double, 4> sync,
        double kern_mass, std::array<double, 3> kern)
{
    CW w{};
    auto norm = [](auto &arr) {
        double s = 0;
        for (double v : arr)
            s += v;
        if (s > 0)
            for (double &v : arr)
                v /= s;
    };
    norm(mem);
    norm(sync);
    norm(kern);
    double compute = 1.0 - mem_mass - sync_mass - kern_mass;
    EXIST_ASSERT(compute >= 0.0, "category masses exceed 1");
    w[static_cast<std::size_t>(FunctionCategory::kCompute)] = compute;
    for (int i = 0; i < 8; ++i)
        w[static_cast<std::size_t>(FunctionCategory::kMemJe) + i] =
            mem_mass * mem[i];
    for (int i = 0; i < 4; ++i)
        w[static_cast<std::size_t>(FunctionCategory::kSyncAtomic) + i] =
            sync_mass * sync[i];
    for (int i = 0; i < 3; ++i)
        w[static_cast<std::size_t>(FunctionCategory::kKernelSche) + i] =
            kern_mass * kern[i];
    return w;
}

/** Default weight mix for compute-only benchmarks. */
CW
computeWeights()
{
    return weights(0.10, {5, 3, 25, 18, 20, 10, 12, 7},
                   0.02, {40, 20, 30, 10},
                   0.03, {60, 25, 15});
}

AppProfile
computeApp(const std::string &name, const std::string &desc)
{
    AppProfile p;
    p.name = name;
    p.description = desc;
    p.category_weights = computeWeights();
    return p;
}

AppProfile
serviceApp(const std::string &name, const std::string &desc)
{
    AppProfile p;
    p.name = name;
    p.description = desc;
    p.is_service = true;
    p.syscalls_per_kinsn = 0.15;
    p.blocking_fraction = 0.10;
    p.category_weights = weights(0.18, {10, 6, 22, 16, 18, 8, 12, 8},
                                 0.06, {30, 15, 40, 15},
                                 0.10, {40, 20, 40});
    return p;
}

}  // namespace

std::vector<AppProfile>
AppCatalog::specSuite()
{
    std::vector<AppProfile> suite;

    {  // 600.perlbench_s: interpreter, indirect-branch heavy.
        AppProfile p = computeApp("pb", "Perl interpreter");
        p.base_cpi = 1.10;
        p.num_functions = 420;
        p.w_icall = 0.07;
        p.w_ijump = 0.06;
        p.branch_miss_pki = 9.0;
        p.syscalls_per_kinsn = 0.045;
        p.binary_bytes = 12ull << 20;
        suite.push_back(p);
    }
    {  // 602.gcc_s: huge code footprint, many small functions.
        AppProfile p = computeApp("gcc", "GNU C compiler");
        p.base_cpi = 1.05;
        p.num_functions = 900;
        p.min_blocks_per_fn = 2;
        p.max_blocks_per_fn = 30;
        p.branch_miss_pki = 7.0;
        p.l1_miss_pki = 26.0;
        p.syscalls_per_kinsn = 0.060;
        p.binary_bytes = 90ull << 20;
        suite.push_back(p);
    }
    {  // 605.mcf_s: memory bound pointer chasing.
        AppProfile p = computeApp("mcf", "Route planning");
        p.base_cpi = 2.10;
        p.num_functions = 60;
        p.llc_miss_pki = 12.0;
        p.l1_miss_pki = 60.0;
        p.llc_sensitivity = 0.08;
        p.syscalls_per_kinsn = 0.020;
        p.binary_bytes = 2ull << 20;
        suite.push_back(p);
    }
    {  // 620.omnetpp_s: discrete-event simulation, virtual dispatch.
        AppProfile p = computeApp("om", "Discrete event simulation");
        p.base_cpi = 1.55;
        p.num_functions = 500;
        p.w_icall = 0.06;
        p.llc_miss_pki = 4.0;
        p.llc_sensitivity = 0.06;
        p.syscalls_per_kinsn = 0.030;
        p.binary_bytes = 28ull << 20;
        suite.push_back(p);
    }
    {  // 623.xalancbmk_s: XML transformation, string heavy.
        AppProfile p = computeApp("xa", "XML to HTML conversion");
        p.base_cpi = 1.15;
        p.num_functions = 700;
        p.l1_miss_pki = 30.0;
        p.syscalls_per_kinsn = 0.050;
        p.binary_bytes = 75ull << 20;
        suite.push_back(p);
    }
    {  // 625.x264_s: SIMD video encoder, few branches.
        AppProfile p = computeApp("x264", "Video compression");
        p.base_cpi = 0.80;
        p.num_functions = 300;
        p.avg_insns_per_block = 70.0;
        p.w_cond = 0.48;
        p.branch_miss_pki = 2.0;
        p.syscalls_per_kinsn = 0.015;
        p.binary_bytes = 10ull << 20;
        suite.push_back(p);
    }
    {  // 631.deepsjeng_s: alpha-beta search, recursion.
        AppProfile p = computeApp("de", "Alpha-beta tree search");
        p.base_cpi = 1.00;
        p.num_functions = 120;
        p.w_dcall = 0.14;
        p.w_ret = 0.23;
        p.branch_miss_pki = 8.0;
        p.syscalls_per_kinsn = 0.030;
        p.binary_bytes = 4ull << 20;
        suite.push_back(p);
    }
    {  // 641.leela_s: Monte-Carlo tree search.
        AppProfile p = computeApp("le", "Monte Carlo tree search");
        p.base_cpi = 1.10;
        p.num_functions = 180;
        p.branch_miss_pki = 6.5;
        p.syscalls_per_kinsn = 0.035;
        p.binary_bytes = 6ull << 20;
        suite.push_back(p);
    }
    {  // 648.exchange2_s: recursive generator, extremely branchy.
        AppProfile p = computeApp("ex", "Recursive solution generator");
        p.base_cpi = 0.90;
        p.num_functions = 40;
        p.avg_insns_per_block = 30.0;
        p.w_cond = 0.66;
        p.branch_miss_pki = 3.0;
        p.syscalls_per_kinsn = 0.012;
        p.binary_bytes = 3ull << 20;
        suite.push_back(p);
    }
    {  // 657.xz_s: data compression, the one multi-threaded member.
        AppProfile p = computeApp("xz", "General data compression");
        p.base_cpi = 1.30;
        p.num_functions = 150;
        p.num_threads = 4;
        p.l1_miss_pki = 35.0;
        p.llc_miss_pki = 3.0;
        p.syscalls_per_kinsn = 0.025;
        p.binary_bytes = 1ull << 20;
        suite.push_back(p);
    }
    return suite;
}

std::vector<AppProfile>
AppCatalog::auxSuite()
{
    std::vector<AppProfile> suite;

    {  // 619.lbm_s-style fluid-dynamics stencil: the loop-heavy end of
       // the spectrum. Nearly all control flow is loop backedges over
       // wide vectorized bodies — calls and returns are rare, so the
       // packet stream is long runs of strongly-biased TNT bits. This
       // is the profile the decode fast path (DESIGN.md §11) targets.
        AppProfile p = computeApp("lbm", "Fluid dynamics stencil");
        p.base_cpi = 0.70;
        p.num_functions = 24;
        p.min_blocks_per_fn = 4;
        p.avg_insns_per_block = 90.0;
        p.w_cond = 0.82;
        p.w_djump = 0.09;
        p.w_dcall = 0.03;
        p.w_ijump = 0.010;
        p.w_icall = 0.005;
        p.w_ret = 0.045;
        p.taken_bias = 0.86;
        p.branch_miss_pki = 0.6;
        p.l1_miss_pki = 28.0;
        p.phase_strength = 0.15;
        p.binary_bytes = 1ull << 20;
        suite.push_back(p);
    }
    return suite;
}

std::vector<AppProfile>
AppCatalog::onlineSuite()
{
    std::vector<AppProfile> suite;

    {  // Memcached under memtier, 1:1 set/get.
        AppProfile p = serviceApp("mc", "In-memory cache");
        p.base_cpi = 1.25;
        p.num_threads = 4;
        p.demand_mean_insns = 18'000.0;
        p.demand_cv = 0.6;
        p.syscalls_per_kinsn = 0.17;
        p.l1_miss_pki = 28.0;
        p.llc_miss_pki = 2.5;
        p.binary_bytes = 1ull << 20;
        suite.push_back(p);
    }
    {  // Nginx serving small static files under ab.
        AppProfile p = serviceApp("ng", "Web server");
        p.base_cpi = 1.15;
        p.num_threads = 4;
        p.demand_mean_insns = 26'000.0;
        p.demand_cv = 0.5;
        p.syscalls_per_kinsn = 0.15;
        p.binary_bytes = 2ull << 20;
        suite.push_back(p);
    }
    {  // MySQL with sysbench read/write on ten tables.
        AppProfile p = serviceApp("ms", "Online database");
        p.base_cpi = 1.40;
        p.num_threads = 8;
        p.demand_mean_insns = 140'000.0;
        p.demand_cv = 1.0;
        p.syscalls_per_kinsn = 0.05;
        p.blocking_fraction = 0.20;
        p.blocking_io_us_mean = 220.0;
        p.llc_miss_pki = 3.0;
        p.binary_bytes = 60ull << 20;
        suite.push_back(p);
    }
    return suite;
}

std::vector<AppProfile>
AppCatalog::cloudSuite()
{
    std::vector<AppProfile> suite;

    {  // Latency-sensitive CPU-set search engine (Havenask-like).
        AppProfile p = serviceApp("Search1", "LC CPU-set search engine");
        p.provision = ProvisionMode::kCpuSet;
        p.base_cpi = 1.20;
        p.num_threads = 6;
        p.demand_mean_insns = 120'000.0;
        p.demand_cv = 0.9;
        p.downstream_rpcs = 3;
        p.priority = 0.95;
        p.binary_bytes = 300ull << 20;
        p.past_incidents = 4;
        suite.push_back(p);
    }
    {  // Same engine under CPU-share provisioning.
        AppProfile p = serviceApp("Search2", "LC CPU-share search engine");
        p.provision = ProvisionMode::kCpuShare;
        p.base_cpi = 1.20;
        p.num_threads = 6;
        p.demand_mean_insns = 120'000.0;
        p.demand_cv = 0.9;
        p.downstream_rpcs = 3;
        p.priority = 0.9;
        p.binary_bytes = 300ull << 20;
        p.past_incidents = 3;
        suite.push_back(p);
    }
    {  // Best-effort in-memory graph cache (iGraph-like).
        AppProfile p = serviceApp("Cache", "BE memory graph caching");
        p.provision = ProvisionMode::kCpuShare;
        p.base_cpi = 1.60;
        p.num_threads = 4;
        p.demand_mean_insns = 60'000.0;
        p.llc_miss_pki = 8.0;
        p.l1_miss_pki = 45.0;
        p.priority = 0.3;
        p.binary_bytes = 80ull << 20;
        p.past_incidents = 1;
        suite.push_back(p);
    }
    {  // ML click-through-rate prediction (RTP-like).
        AppProfile p = serviceApp("Pred", "ML CTR prediction");
        p.provision = ProvisionMode::kCpuShare;
        p.base_cpi = 0.95;
        p.num_threads = 8;
        p.avg_insns_per_block = 80.0;
        p.w_cond = 0.45;
        p.demand_mean_insns = 350'000.0;
        p.demand_cv = 0.5;
        p.priority = 0.8;
        p.binary_bytes = 500ull << 20;
        p.past_incidents = 2;
        p.width_ro = {0.10, 0.15, 0.25, 0.50};
        p.width_wo = {0.10, 0.15, 0.30, 0.45};
        p.width_rw = {0.08, 0.12, 0.30, 0.50};
        suite.push_back(p);
    }
    {  // Node-level SLO management daemon: periodic, mostly idle.
        AppProfile p = serviceApp("Agent", "Node-level SLO daemon");
        p.provision = ProvisionMode::kCpuSet;
        p.base_cpi = 1.10;
        p.num_threads = 2;
        p.demand_mean_insns = 500'000.0;
        p.demand_cv = 0.3;
        p.syscalls_per_kinsn = 0.40;
        p.priority = 0.6;
        p.binary_bytes = 30ull << 20;
        p.past_incidents = 0;
        suite.push_back(p);
    }
    return suite;
}

std::vector<AppProfile>
AppCatalog::caseStudySuite()
{
    // Figure 21/22 applications. Search/Cache/Prediction reuse the cloud
    // profiles (renamed per the figure); Matching (BE engine) and
    // Recommend (MVAP) are the two extra AI-powered applications. The
    // category mixes below encode the figure's qualitative findings:
    // Recommend is heavily multi-threaded with rescheduling interrupts
    // followed by mutex synchronization; ML apps have high quad-width
    // memory access ratios.
    std::vector<AppProfile> suite;

    {
        AppProfile p = serviceApp("Search", "CPU-intensive search");
        p.base_cpi = 1.2;
        p.num_threads = 6;
        p.category_weights =
            weights(0.16, {8, 5, 26, 17, 15, 9, 12, 8},
                    0.05, {21, 11, 56, 12},
                    0.08, {26, 17, 57});
        suite.push_back(p);
    }
    {
        AppProfile p = serviceApp("Cache", "Memory-intensive caching");
        p.base_cpi = 1.6;
        p.num_threads = 4;
        p.llc_miss_pki = 8.0;
        p.category_weights =
            weights(0.24, {5, 4, 17, 15, 22, 10, 15, 12},
                    0.04, {17, 8, 63, 12},
                    0.06, {17, 40, 43});
        suite.push_back(p);
    }
    {
        AppProfile p = serviceApp("Prediction", "ML CTR prediction");
        p.base_cpi = 0.95;
        p.num_threads = 8;
        p.width_ro = {0.10, 0.15, 0.25, 0.50};
        p.width_wo = {0.10, 0.15, 0.30, 0.45};
        p.width_rw = {0.08, 0.12, 0.30, 0.50};
        p.category_weights =
            weights(0.20, {26, 8, 15, 10, 20, 8, 7, 6},
                    0.06, {13, 10, 65, 12},
                    0.07, {40, 26, 34});
        suite.push_back(p);
    }
    {
        AppProfile p = serviceApp("Matching", "BE-engine matching");
        p.base_cpi = 1.05;
        p.num_threads = 8;
        p.width_ro = {0.12, 0.18, 0.30, 0.40};
        p.width_wo = {0.12, 0.18, 0.35, 0.35};
        p.width_rw = {0.10, 0.15, 0.30, 0.45};
        p.category_weights =
            weights(0.18, {17, 10, 22, 15, 14, 8, 8, 6},
                    0.07, {11, 9, 68, 12},
                    0.08, {48, 17, 35});
        suite.push_back(p);
    }
    {
        AppProfile p = serviceApp("Recommend", "MVAP recommendation");
        p.base_cpi = 1.00;
        p.num_threads = 12;
        p.width_ro = {0.08, 0.12, 0.25, 0.55};
        p.width_wo = {0.08, 0.12, 0.30, 0.50};
        p.width_rw = {0.06, 0.10, 0.27, 0.57};
        p.category_weights =
            weights(0.18, {15, 10, 17, 12, 18, 10, 10, 8},
                    0.10, {10, 7, 71, 12},
                    0.12, {46, 40, 14});
        suite.push_back(p);
    }
    return suite;
}

AppProfile
AppCatalog::find(const std::string &name)
{
    for (auto maker : {&AppCatalog::specSuite, &AppCatalog::onlineSuite,
                       &AppCatalog::cloudSuite, &AppCatalog::caseStudySuite,
                       &AppCatalog::auxSuite}) {
        for (auto &p : maker())
            if (p.name == name)
                return p;
    }
    EXIST_FATAL("unknown application profile '%s'", name.c_str());
}

std::vector<std::string>
AppCatalog::allNames()
{
    std::vector<std::string> names;
    for (auto maker : {&AppCatalog::specSuite, &AppCatalog::onlineSuite,
                       &AppCatalog::cloudSuite, &AppCatalog::caseStudySuite,
                       &AppCatalog::auxSuite}) {
        for (auto &p : maker())
            names.push_back(p.name);
    }
    return names;
}

}  // namespace exist
