/**
 * @file
 * The execution engine: walks a ProgramBinary block by block, making
 * stochastic branch decisions, and reports each retired control transfer.
 * This is the event source both for virtual-time accounting (a block of
 * N instructions costs N * CPI cycles) and for the hardware tracer.
 */
#ifndef EXIST_WORKLOAD_EXECUTION_H
#define EXIST_WORKLOAD_EXECUTION_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "workload/branch.h"
#include "workload/program.h"

namespace exist {

/** Outcome of executing one basic block. */
struct StepResult {
    std::uint32_t insns;  ///< instructions retired by the block
    BranchRecord branch;  ///< the terminating control transfer
    /**
     * The thread enters the kernel after this block (syscall). This is
     * a runtime overlay driven by the profile's syscall rate rather
     * than a CFG property, so the rate is exact regardless of which
     * paths happen to be hot; structural kSyscall blocks (if any) also
     * set it.
     */
    bool syscall = false;
};

/**
 * Per-thread architectural execution state. Deterministic in
 * (program, seed); forked seeds give each thread an independent but
 * reproducible path through the CFG.
 */
class ExecutionContext
{
  public:
    ExecutionContext(const ProgramBinary *program, std::uint64_t seed)
        : prog_(program), rng_(seed), cur_(program->entryBlock())
    {
        stack_.reserve(kMaxStackDepth);
        double rate = program->profile().syscalls_per_kinsn;
        if (rate > 0.0) {
            syscall_mean_insns_ = 1000.0 / rate;
            insns_until_syscall_ =
                rng_.exponential(syscall_mean_insns_);
        }
        if (program->profile().phase_insns > 0.0 &&
            program->profile().phase_strength > 0.0) {
            phase_period_ = program->profile().phase_insns;
            phase_strength_ = program->profile().phase_strength;
            phase_origin_ = rng_.uniform();  // runs start mid-phase
        }
    }

    /** Execute the current block; advances to the branch target. */
    StepResult
    step()
    {
        const BasicBlock &b = prog_->block(cur_);
        BranchRecord rec;
        rec.source_block = cur_;
        rec.kind = b.kind;
        rec.taken = false;

        std::uint32_t target;
        switch (b.kind) {
          case BranchKind::kConditional: {
            double p = static_cast<double>(b.prob_taken_x1e4) * 1e-4;
            p = std::clamp(p + 0.5 * phase_strength_ * phase(), 0.02,
                           0.98);
            rec.taken = rng_.uniform() < p;
            target = rec.taken ? b.target0 : b.target1;
            break;
          }
          case BranchKind::kDirectJump:
            target = b.target0;
            break;
          case BranchKind::kDirectCall:
            pushReturn(b.target1);
            target = b.target0;
            break;
          case BranchKind::kIndirectJump:
            target = prog_->resolveIndirect(b, phasedUniform());
            break;
          case BranchKind::kIndirectCall:
            pushReturn(b.target1);
            target = prog_->resolveIndirect(b, phasedUniform());
            break;
          case BranchKind::kReturn:
            if (stack_.empty()) {
                // Unbalanced return (the generator allows early returns
                // in the main loop): restart the main loop. The TIP
                // packet carries the real target, so decoding is exact.
                target = prog_->entryBlock();
            } else {
                target = stack_.back();
                stack_.pop_back();
            }
            break;
          case BranchKind::kSyscall:
            target = b.target1;
            break;
          default:
            target = b.target0;
            break;
        }

        rec.target_block = target;
        cur_ = target;

        insns_total_ += b.insns;
        StepResult res{b.insns, rec, b.kind == BranchKind::kSyscall};
        if (syscall_mean_insns_ > 0.0) {
            insns_until_syscall_ -= static_cast<double>(b.insns);
            if (insns_until_syscall_ <= 0.0) {
                res.syscall = true;
                insns_until_syscall_ +=
                    rng_.exponential(syscall_mean_insns_);
            }
        }
        return res;
    }

    std::uint32_t currentBlock() const { return cur_; }
    const ProgramBinary &program() const { return *prog_; }
    std::size_t callDepth() const { return stack_.size(); }

  private:
    static constexpr std::size_t kMaxStackDepth = 96;

    /** Current phase position in [-1, 1]. */
    double
    phase() const
    {
        if (phase_period_ <= 0.0)
            return 0.0;
        double t = static_cast<double>(insns_total_) / phase_period_ +
                   phase_origin_;
        return std::sin(6.28318530717958647692 * t);
    }

    /** Uniform draw skewed by the phase: shifts which entries of an
     *  indirect-target table are favoured as phases change. */
    double
    phasedUniform()
    {
        double u = rng_.uniform() + 0.5 * phase_strength_ * phase();
        u -= std::floor(u);
        return u;
    }

    void
    pushReturn(std::uint32_t block)
    {
        if (stack_.size() >= kMaxStackDepth)
            stack_.erase(stack_.begin());
        stack_.push_back(block);
    }

    const ProgramBinary *prog_;
    Rng rng_;
    std::uint32_t cur_;
    std::vector<std::uint32_t> stack_;
    double syscall_mean_insns_ = 0.0;
    double insns_until_syscall_ = 0.0;
    std::uint64_t insns_total_ = 0;
    double phase_period_ = 0.0;
    double phase_strength_ = 0.0;
    double phase_origin_ = 0.0;
};

}  // namespace exist

#endif  // EXIST_WORKLOAD_EXECUTION_H
