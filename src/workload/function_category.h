/**
 * @file
 * Function-category taxonomy used by the case-study analysis (paper
 * Figure 21): memory operations, synchronization primitives and kernel
 * operations, plus generic compute.
 */
#ifndef EXIST_WORKLOAD_FUNCTION_CATEGORY_H
#define EXIST_WORKLOAD_FUNCTION_CATEGORY_H

#include <array>
#include <cstdint>

namespace exist {

/** Costly-function categories, following the paper's categorization. */
enum class FunctionCategory : std::uint8_t {
    kCompute,
    // Memory operations (Figure 21a).
    kMemJe,      ///< jemalloc-style allocator internals
    kMemTc,      ///< tcmalloc-style allocator internals
    kMemAlloc,
    kMemFree,
    kMemCopy,
    kMemSet,
    kMemCmp,
    kMemMove,
    // Synchronization (Figure 21b).
    kSyncAtomic,
    kSyncSpinlock,
    kSyncMutex,
    kSyncCas,
    // Kernel operations (Figure 21c).
    kKernelSche,
    kKernelIrq,
    kKernelNet,
    kNumCategories,
};

inline constexpr std::size_t kNumFunctionCategories =
    static_cast<std::size_t>(FunctionCategory::kNumCategories);

inline const char *
functionCategoryName(FunctionCategory c)
{
    static constexpr std::array<const char *, kNumFunctionCategories>
        names = {
            "COMPUTE",
            "MEM_JE", "MEM_TC", "MEM_ALLOC", "MEM_FREE",
            "MEM_COPY", "MEM_SET", "MEM_CMP", "MEM_MOVE",
            "SYNC_ATOMIC", "SYNC_SPINLOCK", "SYNC_MUTEX", "SYNC_CAS",
            "KERNEL_SCHE", "KERNEL_IRQ", "KERNEL_NET",
        };
    return names[static_cast<std::size_t>(c)];
}

inline constexpr bool
isMemoryCategory(FunctionCategory c)
{
    return c >= FunctionCategory::kMemJe && c <= FunctionCategory::kMemMove;
}

inline constexpr bool
isSyncCategory(FunctionCategory c)
{
    return c >= FunctionCategory::kSyncAtomic &&
           c <= FunctionCategory::kSyncCas;
}

inline constexpr bool
isKernelCategory(FunctionCategory c)
{
    return c >= FunctionCategory::kKernelSche &&
           c <= FunctionCategory::kKernelNet;
}

}  // namespace exist

#endif  // EXIST_WORKLOAD_FUNCTION_CATEGORY_H
