/**
 * @file
 * The static program model: a generated "binary" consisting of functions
 * made of basic blocks with realistic control-transfer structure. The
 * same object plays two roles, exactly as a real binary does for Intel
 * PT: the execution engine walks it to produce branch events, and the
 * trace decoder walks it again, consuming TNT bits and TIP targets, to
 * reconstruct the execution flow.
 */
#ifndef EXIST_WORKLOAD_PROGRAM_H
#define EXIST_WORKLOAD_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/app_profile.h"
#include "workload/branch.h"
#include "workload/function_category.h"

namespace exist {

/** Sentinel for "no static target". */
inline constexpr std::uint32_t kNoBlock = 0xffffffffu;

/**
 * A basic block. Targets are global block indices. For kConditional,
 * target0 is the taken target and target1 the fall-through; for direct
 * calls target0 is the callee entry and target1 the return-to block;
 * for kSyscall target1 is the continuation after kernel return; for
 * indirect transfers the candidate targets live in the program's
 * indirect-target table.
 */
struct BasicBlock {
    std::uint64_t address = 0;
    std::uint32_t function_id = 0;
    std::uint16_t insns = 0;
    std::uint16_t size_bytes = 0;
    BranchKind kind = BranchKind::kDirectJump;
    std::uint32_t target0 = kNoBlock;
    std::uint32_t target1 = kNoBlock;
    /** Taken probability for kConditional, scaled by 1e4. */
    std::uint16_t prob_taken_x1e4 = 5000;
    /** Range in ProgramBinary::indirect_targets for indirect kinds. */
    std::uint32_t itable_begin = 0;
    std::uint32_t itable_count = 0;
};

/** A function: a named, categorized contiguous range of blocks. */
struct ProgramFunction {
    std::string name;
    FunctionCategory category = FunctionCategory::kCompute;
    std::uint32_t entry_block = 0;
    std::uint32_t first_block = 0;
    std::uint32_t num_blocks = 0;
    std::uint64_t base_address = 0;
    std::uint32_t size_bytes = 0;
};

/** Weighted candidate of an indirect branch. */
struct IndirectTarget {
    std::uint32_t block;
    float cumulative_weight;  ///< cumulative in [0,1] within the table
};

/**
 * An immutable generated binary. Generation is deterministic in
 * (profile, seed): two nodes running "the same deployment" of an app
 * generate identical binaries, which is what lets the cluster-level
 * optimizer merge traces from different workers (paper §3.4).
 */
class ProgramBinary
{
  public:
    /** Generate a binary for the given application profile. */
    static ProgramBinary generate(const AppProfile &profile,
                                  std::uint64_t seed);

    const std::string &name() const { return name_; }
    const AppProfile &profile() const { return profile_; }

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const std::vector<ProgramFunction> &functions() const
    {
        return functions_;
    }
    const std::vector<IndirectTarget> &indirectTargets() const
    {
        return indirect_targets_;
    }

    const BasicBlock &block(std::uint32_t i) const { return blocks_[i]; }
    const ProgramFunction &function(std::uint32_t i) const
    {
        return functions_[i];
    }

    std::uint32_t numBlocks() const
    {
        return static_cast<std::uint32_t>(blocks_.size());
    }
    std::uint32_t numFunctions() const
    {
        return static_cast<std::uint32_t>(functions_.size());
    }

    /** Entry block of the program's main loop. */
    std::uint32_t entryBlock() const
    {
        return functions_[0].entry_block;
    }

    /** Total generated text size in bytes (symbolic). */
    std::uint64_t textBytes() const { return text_bytes_; }

    /** Map an instruction address to a block index; kNoBlock if none.
     *  Used by the decoder to resolve TIP payloads. */
    std::uint32_t blockAtAddress(std::uint64_t addr) const;

    /** Resolve the target of an indirect transfer given a uniform draw
     *  in [0,1). Shared by the execution engine (with RNG) and tests. */
    std::uint32_t resolveIndirect(const BasicBlock &b, double u) const;

  private:
    ProgramBinary() = default;

    std::string name_;
    AppProfile profile_;
    std::vector<BasicBlock> blocks_;
    std::vector<ProgramFunction> functions_;
    std::vector<IndirectTarget> indirect_targets_;
    std::uint64_t text_bytes_ = 0;
    // Sorted block start addresses for blockAtAddress.
    std::vector<std::uint64_t> block_addresses_;
};

}  // namespace exist

#endif  // EXIST_WORKLOAD_PROGRAM_H
