/**
 * @file
 * Tracing-accuracy metrics (paper §5.3):
 *
 *  - coverage accuracy: decoded branch transitions over ground-truth
 *    branches (benchmarks, where runs are directly comparable);
 *  - Wall's weight-matching accuracy: (maxerror - error)/maxerror over
 *    normalized per-function occurrence distributions, where error is
 *    the L1 distance and maxerror = 2 (real-world applications);
 *  - path precision/recall for exact block-path validation in tests.
 */
#ifndef EXIST_ANALYSIS_ACCURACY_H
#define EXIST_ANALYSIS_ACCURACY_H

#include <cstdint>
#include <vector>

namespace exist {

/** decoded/truth, clamped to [0,1]. */
double coverageAccuracy(std::uint64_t decoded_branches,
                        std::uint64_t truth_branches);

/**
 * Wall weight matching between two per-function weight vectors
 * (typically instruction counts). Returns (2 - L1(p, q)) / 2 where p, q
 * are the normalized distributions; 1.0 = identical, 0.0 = disjoint.
 */
double wallWeightAccuracy(const std::vector<std::uint64_t> &a,
                          const std::vector<std::uint64_t> &b);

/** In-order subsequence match of `decoded` against `truth`. */
struct PathMatch {
    std::uint64_t matched = 0;
    /** matched / decoded.size(): 1.0 means everything decoded really
     *  happened, in order. */
    double precision = 1.0;
    /** matched / truth.size(): the coverage of the reconstruction. */
    double recall = 0.0;
};
PathMatch matchPath(const std::vector<std::uint32_t> &decoded,
                    const std::vector<std::uint32_t> &truth);

/**
 * Merge per-function weight vectors from multiple tracing repetitions
 * (workers): element-wise sum, so mass one worker's buffer dropped is
 * complemented by the others (paper §3.4 trace augmentation).
 */
std::vector<std::uint64_t>
mergeFunctionProfiles(const std::vector<std::vector<std::uint64_t>> &ws);

}  // namespace exist

#endif  // EXIST_ANALYSIS_ACCURACY_H
