/**
 * @file
 * Plain-text table rendering for the benchmark harness: each bench
 * binary prints the same rows/series its paper figure or table reports.
 */
#ifndef EXIST_ANALYSIS_REPORT_H
#define EXIST_ANALYSIS_REPORT_H

#include <string>
#include <vector>

namespace exist {

/** Fixed-width text table with a header row. */
class TableWriter
{
  public:
    explicit TableWriter(std::vector<std::string> headers);

    TableWriter &row(std::vector<std::string> cells);

    /** Format helpers. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 2);
    static std::string mb(std::uint64_t bytes, int precision = 1);

    /** Render with aligned columns. */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner ("=== Figure 13 ... ==="). */
void printBanner(const std::string &title);

}  // namespace exist

#endif  // EXIST_ANALYSIS_REPORT_H
