#include "analysis/ground_truth.h"

#include "util/logging.h"

namespace exist {

void
GroundTruthRecorder::arm(Kernel &kernel, ProcessId pid, bool record_paths)
{
    pid_ = pid;
    record_paths_ = record_paths;
    total_branches_ = 0;
    total_insns_ = 0;
    per_core_.assign(static_cast<std::size_t>(kernel.numCores()), 0);
    paths_.assign(static_cast<std::size_t>(kernel.numCores()), {});
    function_insns_.clear();
    function_entries_.clear();
    per_thread_.clear();
    kernel.setBranchObserver(this);
}

void
GroundTruthRecorder::disarm(Kernel &kernel)
{
    kernel.setBranchObserver(nullptr);
}

void
GroundTruthRecorder::onBranch(CoreId core, const Thread &t,
                              const BranchRecord &rec, Cycles)
{
    if (t.process().pid() != pid_)
        return;
    const ProgramBinary &prog = t.process().binary();
    if (function_insns_.empty()) {
        function_insns_.assign(prog.numFunctions(), 0);
        function_entries_.assign(prog.numFunctions(), 0);
    }
    const BasicBlock &b = prog.block(rec.source_block);
    ++total_branches_;
    total_insns_ += b.insns;
    ++per_core_[static_cast<std::size_t>(core)];
    ++per_thread_[t.tid()];
    function_insns_[b.function_id] += b.insns;
    if (prog.function(b.function_id).entry_block == rec.source_block)
        ++function_entries_[b.function_id];
    if (record_paths_)
        paths_[static_cast<std::size_t>(core)].push_back(
            rec.source_block);
}

}  // namespace exist
