#include "analysis/attribution.h"

#include <algorithm>

#include "util/logging.h"

namespace exist {

namespace {

/** Decode timestamps trail the sidecar's by up to the CYC emission
 *  granularity; allow a small skew when intersecting. */
constexpr Cycles kSkewTolerance = usToCycles(30.0);

const std::vector<OccupancySlice> kEmptyTimeline;

}  // namespace

ThreadAttributor::ThreadAttributor(const std::vector<SwitchRecord> &log)
{
    // The log may interleave cores and, because per-core execution
    // cursors run slightly ahead of the global clock, arrive slightly
    // out of order; rebuild per-core, time-ordered.
    std::map<CoreId, std::vector<const SwitchRecord *>> per_core;
    for (const SwitchRecord &r : log)
        per_core[r.cpu].push_back(&r);

    for (auto &[core, records] : per_core) {
        std::stable_sort(records.begin(), records.end(),
                         [](const SwitchRecord *a,
                            const SwitchRecord *b) {
                             return a->timestamp < b->timestamp;
                         });
        std::vector<OccupancySlice> timeline;
        OccupancySlice open;
        bool has_open = false;
        for (const SwitchRecord *r : records) {
            if (r->op == 1) {  // sched in
                if (has_open) {
                    // Missing sched-out (lost record): close at the
                    // next in-event.
                    open.end = r->timestamp;
                    timeline.push_back(open);
                }
                open = OccupancySlice{r->timestamp,
                                      OccupancySlice::kOpenEnd,
                                      r->tid};
                has_open = true;
            } else {  // sched out
                if (has_open && open.tid == r->tid) {
                    open.end = r->timestamp;
                    timeline.push_back(open);
                    has_open = false;
                }
                // An out without a matching in (session started while
                // the thread was on-core): synthesize from time zero.
                else if (!has_open) {
                    timeline.push_back(OccupancySlice{
                        0, r->timestamp, r->tid});
                }
            }
        }
        if (has_open)
            timeline.push_back(open);
        timelines_.emplace(core, std::move(timeline));
    }
}

const std::vector<OccupancySlice> &
ThreadAttributor::timeline(CoreId core) const
{
    auto it = timelines_.find(core);
    return it == timelines_.end() ? kEmptyTimeline : it->second;
}

ThreadId
ThreadAttributor::threadAt(CoreId core, Cycles t) const
{
    for (const OccupancySlice &s : timeline(core))
        if (t >= s.start && (s.end == OccupancySlice::kOpenEnd ||
                             t < s.end))
            return s.tid;
    return kInvalidId;
}

std::map<ThreadId, ThreadTrace>
ThreadAttributor::attribute(CoreId core, const DecodedTrace &trace) const
{
    std::map<ThreadId, ThreadTrace> out;
    std::map<ThreadId, Cycles> last_end;

    for (const DecodedSegment &seg : trace.segments) {
        // Attribute by the midpoint, falling back to a skew-tolerant
        // probe of the start (short segments at slice boundaries).
        Cycles mid = seg.start_time +
                     (seg.end_time - seg.start_time) / 2;
        ThreadId tid = threadAt(core, mid);
        if (tid == kInvalidId)
            tid = threadAt(core, seg.start_time + kSkewTolerance);
        ThreadTrace &tt = out[tid];
        tt.tid = tid;
        ++tt.segments;
        tt.branches += seg.branches;
        tt.active_cycles += seg.end_time - seg.start_time;
        auto it = last_end.find(tid);
        if (it != last_end.end() && seg.start_time > it->second)
            tt.longest_gap = std::max(tt.longest_gap,
                                      seg.start_time - it->second);
        last_end[tid] = seg.end_time;
    }
    return out;
}

std::map<ThreadId, ThreadTrace>
ThreadAttributor::merge(
    const std::vector<std::map<ThreadId, ThreadTrace>> &parts)
{
    std::map<ThreadId, ThreadTrace> merged;
    for (const auto &part : parts) {
        for (const auto &[tid, tt] : part) {
            ThreadTrace &m = merged[tid];
            m.tid = tid;
            m.segments += tt.segments;
            m.branches += tt.branches;
            m.active_cycles += tt.active_cycles;
            m.longest_gap = std::max(m.longest_gap, tt.longest_gap);
        }
    }
    return merged;
}

}  // namespace exist
