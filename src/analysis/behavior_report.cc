#include "analysis/behavior_report.h"

#include <algorithm>
#include <cstdio>

#include "analysis/report.h"
#include "workload/function_category.h"

namespace exist {

std::string
BehaviorReport::synthesize(
    const ProgramBinary &binary,
    const std::vector<std::pair<CoreId, DecodedTrace>> &cores,
    const std::vector<SwitchRecord> &sidecar,
    const BehaviorReportOptions &opts)
{
    std::string out;
    auto append = [&out](const char *fmt, auto... args) {
        char buf[256];
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
    };

    // --- Aggregate --------------------------------------------------------
    std::vector<std::uint64_t> fn_insns(binary.numFunctions(), 0);
    std::uint64_t branches = 0, insns = 0, segments = 0;
    for (const auto &[core, trace] : cores) {
        branches += trace.branches_decoded;
        insns += trace.insns_decoded;
        segments += trace.segments.size();
        for (std::size_t f = 0; f < trace.function_insns.size(); ++f)
            fn_insns[f] += trace.function_insns[f];
    }

    append("EXIST behaviour report for '%s'\n",
           binary.name().c_str());
    append("  decoded: %llu branches, %llu instructions, %llu "
           "segments across %zu cores\n",
           (unsigned long long)branches, (unsigned long long)insns,
           (unsigned long long)segments, cores.size());

    // --- Hottest functions -------------------------------------------------
    std::vector<std::uint32_t> order(binary.numFunctions());
    for (std::uint32_t f = 0; f < binary.numFunctions(); ++f)
        order[f] = f;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return fn_insns[a] > fn_insns[b];
              });
    double total = 0;
    for (std::uint64_t v : fn_insns)
        total += static_cast<double>(v);

    out += "\nHottest functions:\n";
    for (int i = 0;
         i < opts.top_functions &&
         i < static_cast<int>(order.size());
         ++i) {
        std::uint32_t f = order[static_cast<std::size_t>(i)];
        if (fn_insns[f] == 0)
            break;
        append("  %-32s %6.2f%%\n", binary.function(f).name.c_str(),
               total > 0 ? 100.0 * static_cast<double>(fn_insns[f]) /
                               total
                         : 0.0);
    }

    // --- Category breakdown -------------------------------------------------
    double by_cat[kNumFunctionCategories] = {};
    for (std::uint32_t f = 0; f < binary.numFunctions(); ++f)
        by_cat[static_cast<std::size_t>(
            binary.function(f).category)] +=
            static_cast<double>(fn_insns[f]);
    out += "\nCostly-function categories (share of decoded "
           "instructions):\n";
    double mem = 0, sync = 0, kern = 0;
    for (std::size_t c = 0; c < kNumFunctionCategories; ++c) {
        auto cat = static_cast<FunctionCategory>(c);
        if (isMemoryCategory(cat))
            mem += by_cat[c];
        else if (isSyncCategory(cat))
            sync += by_cat[c];
        else if (isKernelCategory(cat))
            kern += by_cat[c];
    }
    append("  memory ops %.1f%%   synchronization %.1f%%   kernel ops "
           "%.1f%%\n",
           total > 0 ? 100 * mem / total : 0.0,
           total > 0 ? 100 * sync / total : 0.0,
           total > 0 ? 100 * kern / total : 0.0);

    // --- Per-thread view (via the five-tuple sidecar) -----------------------
    if (!sidecar.empty()) {
        ThreadAttributor attributor(sidecar);
        std::vector<std::map<ThreadId, ThreadTrace>> parts;
        for (const auto &[core, trace] : cores)
            parts.push_back(attributor.attribute(core, trace));
        auto merged = ThreadAttributor::merge(parts);

        out += "\nPer-thread activity (attributed via the 24-byte "
               "switch-log five-tuples):\n";
        for (const auto &[tid, tt] : merged) {
            if (tid == kInvalidId)
                continue;
            append("  tid %-6d  %6llu segments  %9llu branches  "
                   "%8.2f ms span  longest gap %8.2f ms%s\n",
                   tid, (unsigned long long)tt.segments,
                   (unsigned long long)tt.branches,
                   cyclesToMs(tt.active_cycles),
                   cyclesToMs(tt.longest_gap),
                   tt.longest_gap > opts.blocking_threshold
                       ? "  << BLOCKED"
                       : "");
        }
    }
    return out;
}

}  // namespace exist
