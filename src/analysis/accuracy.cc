#include "analysis/accuracy.h"

#include <algorithm>

namespace exist {

double
coverageAccuracy(std::uint64_t decoded_branches,
                 std::uint64_t truth_branches)
{
    if (truth_branches == 0)
        return decoded_branches == 0 ? 1.0 : 0.0;
    double r = static_cast<double>(decoded_branches) /
               static_cast<double>(truth_branches);
    return std::clamp(r, 0.0, 1.0);
}

double
wallWeightAccuracy(const std::vector<std::uint64_t> &a,
                   const std::vector<std::uint64_t> &b)
{
    double sa = 0, sb = 0;
    for (auto v : a)
        sa += static_cast<double>(v);
    for (auto v : b)
        sb += static_cast<double>(v);
    if (sa == 0 && sb == 0)
        return 1.0;
    if (sa == 0 || sb == 0)
        return 0.0;
    std::size_t n = std::max(a.size(), b.size());
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double pa = i < a.size() ? static_cast<double>(a[i]) / sa : 0.0;
        double pb = i < b.size() ? static_cast<double>(b[i]) / sb : 0.0;
        err += pa > pb ? pa - pb : pb - pa;
    }
    return (2.0 - err) / 2.0;
}

PathMatch
matchPath(const std::vector<std::uint32_t> &decoded,
          const std::vector<std::uint32_t> &truth)
{
    PathMatch m;
    std::size_t ti = 0;
    for (std::uint32_t blk : decoded) {
        while (ti < truth.size() && truth[ti] != blk)
            ++ti;
        if (ti == truth.size())
            break;
        ++m.matched;
        ++ti;
    }
    m.precision = decoded.empty()
                      ? 1.0
                      : static_cast<double>(m.matched) /
                            static_cast<double>(decoded.size());
    m.recall = truth.empty() ? 1.0
                             : static_cast<double>(m.matched) /
                                   static_cast<double>(truth.size());
    return m;
}

std::vector<std::uint64_t>
mergeFunctionProfiles(const std::vector<std::vector<std::uint64_t>> &ws)
{
    std::size_t n = 0;
    for (const auto &w : ws)
        n = std::max(n, w.size());
    std::vector<std::uint64_t> merged(n, 0);
    for (const auto &w : ws)
        for (std::size_t i = 0; i < w.size(); ++i)
            merged[i] += w[i];
    return merged;
}

}  // namespace exist
