#include "analysis/testbed.h"

#include <chrono>
#include <map>

#include "analysis/accuracy.h"
#include "analysis/ground_truth.h"
#include "baselines/ebpf.h"
#include "baselines/nht.h"
#include "baselines/oracle.h"
#include "baselines/stasam.h"
#include "core/exist_backend.h"
#include "decode/parallel_decoder.h"
#include "decode/streaming_decoder.h"
#include "hwtrace/tracer.h"
#include "obs/trace_plane.h"
#include "os/loadgen.h"
#include "os/service.h"
#include "util/logging.h"
#include "util/thread_annotations.h"
#include "workload/app_profile.h"

namespace exist {

namespace {

std::uint64_t
stableHash(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Cache binaries: generation is deterministic in (profile, seed), and
 *  sharing them keeps multi-run benchmarks fast. Mutex-guarded because
 *  sessions may run concurrently on pool workers (parallel cluster
 *  reconcile); generation happens outside the lock so a slow generate
 *  does not serialize unrelated sessions. */
std::shared_ptr<const ProgramBinary>
binaryFor(const std::string &app, std::uint64_t seed)
{
    static Mutex mu(lockorder::LockRank::kLeaf,
                    "testbed.binary_cache");
    static std::map<std::pair<std::string, std::uint64_t>,
                    std::shared_ptr<const ProgramBinary>>
        cache;
    auto key = std::make_pair(app, seed);
    {
        MutexLock lk(mu);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    AppProfile profile = AppCatalog::find(app);
    auto bin = std::make_shared<const ProgramBinary>(
        ProgramBinary::generate(profile, seed));
    MutexLock lk(mu);
    // A racing generator may have inserted first; keep the winner so
    // every caller shares one instance.
    return cache.emplace(key, bin).first->second;
}

struct DeployedWorkload {
    const WorkloadSpec *spec = nullptr;
    Process *proc = nullptr;
    std::unique_ptr<Service> service;
    std::unique_ptr<PoissonLoadGen> loadgen;
    std::unique_ptr<ClosedLoopLoadGen> closed_loadgen;
    TaskCounters baseline;  ///< counters snapshot at window start
    std::uint64_t completed_baseline = 0;
};

TaskCounters
processCounters(const Process &proc)
{
    TaskCounters total;
    for (const Thread *t : proc.threads())
        total.accumulate(t->counters());
    return total;
}

}  // namespace

const AppResult *
ExperimentResult::find(const std::string &name) const
{
    for (const auto &a : apps)
        if (a.name == name)
            return &a;
    return nullptr;
}

const AppResult &
ExperimentResult::at(const std::string &name) const
{
    const AppResult *r = find(name);
    EXIST_ASSERT(r != nullptr, "no app result named %s", name.c_str());
    return *r;
}

std::shared_ptr<const ProgramBinary>
Testbed::binaryForApp(const std::string &app, std::uint64_t seed)
{
    return binaryFor(app, seed ? seed : stableHash(app));
}

std::unique_ptr<TracerBackend>
Testbed::makeBackend(const std::string &name)
{
    if (name == "Oracle")
        return std::make_unique<OracleBackend>();
    if (name == "EXIST")
        return std::make_unique<ExistBackend>();
    if (name == "StaSam")
        return std::make_unique<StaSamBackend>();
    if (name == "eBPF")
        return std::make_unique<EbpfBackend>();
    if (name == "NHT")
        return std::make_unique<NhtBackend>();
    EXIST_FATAL("unknown backend '%s'", name.c_str());
}

ExperimentResult
Testbed::run(const ExperimentSpec &spec)
{
    EXIST_ASSERT(!spec.workloads.empty(), "experiment needs workloads");
    EXIST_SPAN("session.run", obs::corrId(spec.seed));

    NodeConfig node_cfg = spec.node;
    node_cfg.seed = spec.seed;
    Kernel kernel(node_cfg);

    // --- Deploy workloads -------------------------------------------------
    std::vector<DeployedWorkload> deployed;
    deployed.reserve(spec.workloads.size());
    const WorkloadSpec *target_spec = nullptr;

    Rng seeds(spec.seed ^ 0x9d2c5680u);
    for (const WorkloadSpec &w : spec.workloads) {
        std::uint64_t bseed =
            w.binary_seed ? w.binary_seed : stableHash(w.app);
        auto binary = binaryFor(w.app, bseed);
        const AppProfile &profile = binary->profile();

        DeployedWorkload d;
        d.spec = &w;
        d.proc = kernel.createProcess(w.app, binary, w.cores);

        int nthreads = w.workers > 0 ? w.workers : profile.num_threads;
        if (profile.is_service) {
            d.service = std::make_unique<Service>(
                &kernel, d.proc, seeds.fork(stableHash(w.app)).next());
            d.service->spawnWorkers(nthreads);
        } else {
            for (int i = 0; i < nthreads; ++i) {
                Thread *t = kernel.createThread(d.proc, nullptr);
                kernel.startThread(t);
            }
        }
        if (w.target) {
            EXIST_ASSERT(target_spec == nullptr,
                         "only one target workload allowed");
            target_spec = &w;
        }
        deployed.push_back(std::move(d));
    }

    // Wire RPC chains and load generators after all services exist.
    for (DeployedWorkload &d : deployed) {
        if (!d.spec->downstream.empty()) {
            EXIST_ASSERT(d.service != nullptr,
                         "%s has a downstream but is not a service",
                         d.spec->app.c_str());
            Service *down = nullptr;
            for (DeployedWorkload &o : deployed)
                if (o.spec->app == d.spec->downstream)
                    down = o.service.get();
            EXIST_ASSERT(down != nullptr, "downstream %s not found",
                         d.spec->downstream.c_str());
            d.service->setDownstream(down);
            if (d.spec->downstream_rpcs >= 0)
                d.service->setRpcsPerRequest(d.spec->downstream_rpcs);
        }
        if (d.service && d.spec->closed_clients > 0) {
            d.closed_loadgen = std::make_unique<ClosedLoopLoadGen>(
                &kernel, d.service.get(), d.spec->closed_clients,
                seeds.fork(stableHash(d.spec->app) ^ 0x10adULL).next());
            d.closed_loadgen->start();
        } else if (d.service && d.spec->load_rps > 0.0) {
            d.loadgen = std::make_unique<PoissonLoadGen>(
                &kernel, d.service.get(), d.spec->load_rps,
                seeds.fork(stableHash(d.spec->app) ^ 0x10adULL).next());
            d.loadgen->start();
        }
    }

    // --- Warm up ----------------------------------------------------------
    kernel.runFor(spec.warmup);

    // --- Arm the session --------------------------------------------------
    SessionSpec session = spec.session;
    if (target_spec != nullptr)
        session.target = kernel.findProcess(target_spec->app);

    // Streaming decode needs region-fill events throughout the session,
    // so split each core's ToPA chain. Ring buffers are incompatible
    // (a wrap would overwrite bytes not yet handed to the decoder), so
    // those sessions keep the batch path.
    const bool want_streaming =
        spec.streaming && spec.decode && !session.ring_buffers;
    if (want_streaming)
        session.stream_region_bytes =
            (spec.stream_region_kb ? spec.stream_region_kb : 256) * 1024;

    GroundTruthRecorder truth;
    if ((spec.ground_truth || spec.decode) && session.target)
        truth.arm(kernel, session.target->pid(), spec.record_paths);

    for (DeployedWorkload &d : deployed) {
        if (d.loadgen)
            d.loadgen->setWarmupUntil(kernel.now());
        if (d.closed_loadgen)
            d.closed_loadgen->setWarmupUntil(kernel.now());
        d.baseline = processCounters(*d.proc);
        d.completed_baseline = d.service ? d.service->completedCount() : 0;
    }
    std::vector<Cycles> busy0(
        static_cast<std::size_t>(kernel.numCores()));
    Cycles kern0 = 0;
    for (int c = 0; c < kernel.numCores(); ++c) {
        busy0[static_cast<std::size_t>(c)] = kernel.coreBusyCycles(c);
        kern0 += kernel.coreKernelCycles(c);
    }
    std::uint64_t switches0 = kernel.totalContextSwitches();

    std::unique_ptr<TracerBackend> backend = makeBackend(spec.backend);
    Cycles t0 = kernel.now();
    if (session.target != nullptr || spec.backend == "Oracle")
        backend->start(kernel, session);

    // Overlap collection with reconstruction: install region-ready
    // callbacks so every filled ToPA region is pushed to the streaming
    // decoder's workers while the session (and the ground-truth
    // recorder) is still running. Decode consumes real wall-clock time
    // only — virtual simulation time is untouched, so results stay
    // bit-identical to the batch path.
    auto *exist_backend = dynamic_cast<ExistBackend *>(backend.get());
    std::unique_ptr<StreamingDecoder> streamer;
    if (want_streaming && exist_backend != nullptr &&
        session.target != nullptr) {
        DecodeOptions sopts;
        sopts.record_path = spec.record_paths;
        sopts.block_cache = spec.decode_cache;
        sopts.tnt_memo_bits = spec.tnt_memo_bits;
        streamer = std::make_unique<StreamingDecoder>(
            &session.target->binary(), sopts, spec.decode_threads);
        for (const CoreAllocation &a : exist_backend->plan().allocations)
            streamer->addCore(a.core);
        for (const CoreAllocation &a :
             exist_backend->plan().allocations) {
            const CoreId core = a.core;
            StreamingDecoder *sd = streamer.get();
            kernel.tracer(core).setRegionReadyCallback(
                [sd, core](const std::uint8_t *d, std::uint64_t n) {
                    sd->publish(core, d, n);
                });
        }
    }

    // --- The measured window == the tracing period ------------------------
    {
        EXIST_SPAN("session.window",
                   obs::corrId(spec.seed, session.period));
        kernel.runFor(session.period);
        backend->stop(kernel);
    }
    if ((spec.ground_truth || spec.decode) && session.target)
        truth.disarm(kernel);

    // Trace end: the report-latency clock starts here (real time — the
    // offline decode stage is the only part of the pipeline that is
    // not simulated). Push the unpublished stream tails immediately so
    // streaming workers chew on them while the main thread gathers the
    // app statistics below.
    const auto trace_end = std::chrono::steady_clock::now();
    if (streamer != nullptr) {
        for (const CoreAllocation &a :
             exist_backend->plan().allocations) {
            kernel.tracer(a.core).output().flushRegionReady();
            kernel.tracer(a.core).setRegionReadyCallback(nullptr);
        }
    }

    // --- Collect ----------------------------------------------------------
    ExperimentResult result;
    result.window = kernel.now() - t0;
    result.backend_stats = backend->stats();
    result.context_switch_total =
        kernel.totalContextSwitches() - switches0;
    if (auto *eb = dynamic_cast<ExistBackend *>(backend.get()))
        result.switch_log = eb->switchLog();

    double window_s = cyclesToSeconds(result.window);
    Cycles busy_total = 0;
    Cycles kern1 = 0;
    for (int c = 0; c < kernel.numCores(); ++c) {
        busy_total += kernel.coreBusyCycles(c) -
                      busy0[static_cast<std::size_t>(c)];
        kern1 += kernel.coreKernelCycles(c);
    }
    result.node_utilization =
        static_cast<double>(busy_total) /
        (static_cast<double>(result.window) * kernel.numCores());
    result.node_kernel_cycles = kern1 - kern0;

    for (DeployedWorkload &d : deployed) {
        TaskCounters after = processCounters(*d.proc);
        AppResult ar;
        ar.name = d.spec->app;
        ar.insns = after.insns - d.baseline.insns;
        ar.user_cycles = after.user_cycles - d.baseline.user_cycles;
        ar.kernel_cycles =
            after.kernel_cycles - d.baseline.kernel_cycles;
        // CPI as a hardware counter would report it: all cycles the
        // task consumed (user + kernel context) per instruction.
        ar.cpi = ar.insns
                     ? static_cast<double>(ar.user_cycles +
                                           ar.kernel_cycles) /
                           static_cast<double>(ar.insns)
                     : 0.0;
        ar.insn_rate = static_cast<double>(ar.insns) / window_s;
        ar.context_switches =
            after.context_switches - d.baseline.context_switches;
        ar.migrations = after.migrations - d.baseline.migrations;
        ar.syscalls = after.syscalls - d.baseline.syscalls;
        ar.branch_misses = after.branch_misses - d.baseline.branch_misses;
        ar.l1_misses = after.l1_misses - d.baseline.l1_misses;
        ar.llc_misses = after.llc_misses - d.baseline.llc_misses;
        if (d.service)
            ar.completed =
                d.service->completedCount() - d.completed_baseline;
        if (d.loadgen)
            ar.latencies_us = d.loadgen->latencies();
        else if (d.closed_loadgen)
            ar.latencies_us = d.closed_loadgen->latencies();
        result.apps.push_back(std::move(ar));
    }

    // --- Decode & score ----------------------------------------------------
    if (session.target && (spec.decode || spec.ground_truth)) {
        result.truth_branches = truth.totalBranches();
        result.truth_function_insns = truth.functionInsns();
    }
    std::vector<CollectedTrace> collected;
    if ((spec.decode || spec.keep_traces) && session.target &&
        backend->producesInstructionTrace())
        collected = backend->collect();

    if (spec.decode && session.target &&
        backend->producesInstructionTrace()) {
        const ProgramBinary &binary = session.target->binary();
        DecodeOptions opts;
        opts.record_path = spec.record_paths;
        opts.block_cache = spec.decode_cache;
        opts.tnt_memo_bits = spec.tnt_memo_bits;

        // Per-core buffers are independent; fan the decode across the
        // pool and aggregate in collection order, which keeps every
        // result field bit-identical to the serial path. With the
        // streaming pipeline most bytes were reconstructed during the
        // session already, so only the tails remain here.
        std::vector<std::pair<CoreId, DecodedTrace>> decoded;
        if (streamer != nullptr) {
            decoded = streamer->finish();
            result.streamed = true;
        } else {
            ParallelDecoder rec(&binary, opts, spec.decode_threads);
            decoded = rec.decodeAll(collected);
        }

        result.decoded_function_insns.assign(binary.numFunctions(), 0);
        result.decoded_function_entries.assign(binary.numFunctions(), 0);
        std::uint64_t path_matched = 0, path_total = 0;

        for (const auto &[core, dt] : decoded) {
            result.decoded_branches += dt.branches_decoded;
            result.decode_errors += dt.decode_errors;
            result.decode_cache_hits += dt.cache_stats.memo_hits;
            result.decode_cache_misses += dt.cache_stats.memo_misses;
            result.decode_cache_fast_bits +=
                dt.cache_stats.memo_fast_bits;
            result.decode_cache_bytes +=
                dt.cache_stats.memo_bytes +
                dt.cache_stats.block_cache_bytes;
            for (std::size_t f = 0; f < dt.function_insns.size(); ++f) {
                result.decoded_function_insns[f] += dt.function_insns[f];
                result.decoded_function_entries[f] +=
                    dt.function_entries[f];
            }
            if (spec.record_paths && core != kInvalidId &&
                static_cast<std::size_t>(core) <
                    truth.paths().size()) {
                PathMatch pm = matchPath(
                    dt.block_path,
                    truth.paths()[static_cast<std::size_t>(core)]);
                path_matched += pm.matched;
                path_total += dt.block_path.size();
            }
        }
        result.accuracy_coverage = coverageAccuracy(
            result.decoded_branches, result.truth_branches);
        result.accuracy_wall = wallWeightAccuracy(
            result.decoded_function_insns, result.truth_function_insns);
        result.path_precision =
            path_total ? static_cast<double>(path_matched) /
                             static_cast<double>(path_total)
                       : 1.0;
        result.report_latency_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - trace_end)
                .count();
    }
    if (spec.keep_traces)
        result.raw_traces = std::move(collected);
    return result;
}

Testbed::Comparison
Testbed::compare(ExperimentSpec spec)
{
    Comparison cmp;
    ExperimentSpec oracle_spec = spec;
    oracle_spec.backend = "Oracle";
    oracle_spec.decode = false;
    oracle_spec.ground_truth = false;
    oracle_spec.record_paths = false;
    cmp.oracle = run(oracle_spec);
    cmp.traced = run(spec);
    return cmp;
}

double
Testbed::Comparison::slowdownOf(const std::string &app) const
{
    const AppResult &o = oracle.at(app);
    const AppResult &t = traced.at(app);
    if (t.insn_rate <= 0)
        return 1.0;
    return o.insn_rate / t.insn_rate;
}

double
Testbed::Comparison::throughputRatio(const std::string &app) const
{
    const AppResult &o = oracle.at(app);
    const AppResult &t = traced.at(app);
    if (o.completed == 0)
        return 1.0;
    return static_cast<double>(t.completed) /
           static_cast<double>(o.completed);
}

double
Testbed::Comparison::cpiOverheadOf(const std::string &app) const
{
    const AppResult &o = oracle.at(app);
    const AppResult &t = traced.at(app);
    if (o.cpi <= 0)
        return 0.0;
    return t.cpi / o.cpi - 1.0;
}

}  // namespace exist
