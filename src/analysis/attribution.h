/**
 * @file
 * Thread attribution of per-core traces — the consumer of EXIST's
 * 24-byte five-tuple context-switch sidecar (paper §3.3): "to reason
 * about the dependency across threads for multi-threaded applications
 * with per-core settings, the hook injected in the sched_switch
 * tracepoint records [Timestamp, CPUID, ProcessID, ThreadID,
 * Operation]".
 *
 * A per-core packet buffer interleaves execution segments of every
 * thread of the filtered process that ran there. Decoded segments carry
 * TSC/CYC timestamps; the attributor intersects them with the sidecar's
 * per-core occupancy timeline to say *which thread* each segment
 * belongs to, yielding per-thread control flows from per-core buffers.
 */
#ifndef EXIST_ANALYSIS_ATTRIBUTION_H
#define EXIST_ANALYSIS_ATTRIBUTION_H

#include <cstdint>
#include <map>
#include <vector>

#include "decode/flow_reconstructor.h"
#include "os/kernel.h"
#include "util/types.h"

namespace exist {

/** One interval during which a thread occupied a core. */
struct OccupancySlice {
    Cycles start = 0;
    Cycles end = 0;  ///< kOpenEnd while the thread is still on-core
    ThreadId tid = kInvalidId;

    static constexpr Cycles kOpenEnd = ~Cycles{0};
};

/** Per-thread aggregation of attributed decode results. */
struct ThreadTrace {
    ThreadId tid = kInvalidId;
    std::uint64_t segments = 0;
    std::uint64_t branches = 0;
    /** Sum of attributed segment spans (PGE..PGD wall time; may
     *  include in-segment syscall gaps the filter paused over). */
    Cycles active_cycles = 0;
    /** Longest gap between this thread's consecutive segments on the
     *  same core (blocking time; the §5.4 diagnosis signal). */
    Cycles longest_gap = 0;
};

class ThreadAttributor
{
  public:
    /** Build per-core occupancy timelines from the sidecar log (the
     *  log as EXIST captures it: already filtered to the target). */
    explicit ThreadAttributor(const std::vector<SwitchRecord> &log);

    /** Thread occupying `core` at time `t`; kInvalidId if none. */
    ThreadId threadAt(CoreId core, Cycles t) const;

    /** Attribute a decoded core trace to threads. Segments that match
     *  no slice (e.g. decode-time skew beyond tolerance) land under
     *  kInvalidId. */
    std::map<ThreadId, ThreadTrace>
    attribute(CoreId core, const DecodedTrace &trace) const;

    /** Merge per-core attributions into one per-thread view. */
    static std::map<ThreadId, ThreadTrace>
    merge(const std::vector<std::map<ThreadId, ThreadTrace>> &parts);

    const std::vector<OccupancySlice> &timeline(CoreId core) const;
    std::size_t coreCount() const { return timelines_.size(); }

  private:
    std::map<CoreId, std::vector<OccupancySlice>> timelines_;
};

}  // namespace exist

#endif  // EXIST_ANALYSIS_ATTRIBUTION_H
