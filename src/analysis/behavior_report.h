/**
 * @file
 * Behaviour synthesis (paper §3.1): "collected instruction traces are
 * automatically synthesized into human-readable application behaviors
 * for on-call engineers and developers". Turns decoded per-core traces
 * plus the switch-log sidecar into a text report: hottest functions,
 * category breakdown, per-thread activity, and blocking suspects (the
 * §5.4 diagnosis signal).
 */
#ifndef EXIST_ANALYSIS_BEHAVIOR_REPORT_H
#define EXIST_ANALYSIS_BEHAVIOR_REPORT_H

#include <string>
#include <utility>
#include <vector>

#include "analysis/attribution.h"
#include "decode/flow_reconstructor.h"
#include "os/kernel.h"
#include "workload/program.h"

namespace exist {

struct BehaviorReportOptions {
    int top_functions = 10;
    /** Flag threads whose longest off-CPU gap exceeds this
     *  (service threads naturally park on queues for ~ms). */
    Cycles blocking_threshold = usToCycles(5000.0);
};

class BehaviorReport
{
  public:
    /** Synthesize a report from decoded per-core traces. */
    static std::string
    synthesize(const ProgramBinary &binary,
               const std::vector<std::pair<CoreId, DecodedTrace>> &cores,
               const std::vector<SwitchRecord> &sidecar,
               const BehaviorReportOptions &opts = {});
};

}  // namespace exist

#endif  // EXIST_ANALYSIS_BEHAVIOR_REPORT_H
