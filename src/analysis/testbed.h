/**
 * @file
 * The experiment harness every benchmark and integration test drives:
 * it assembles a node (kernel + workloads + load), attaches a tracing
 * backend for one session, and measures what the paper measures —
 * progress (instructions retired), CPI, throughput, latency
 * percentiles, event counters, space, and decode accuracy. Runs are
 * seed-deterministic, so a backend run and its Oracle run differ only
 * by the backend's instrumentation.
 */
#ifndef EXIST_ANALYSIS_TESTBED_H
#define EXIST_ANALYSIS_TESTBED_H

#include <memory>
#include <string>
#include <vector>

#include "baselines/backend.h"
#include "durability/spec.h"
#include "net/fabric.h"
#include "os/kernel.h"
#include "util/stats.h"
#include "util/types.h"

namespace exist {

/** One workload deployed on the experiment node. */
struct WorkloadSpec {
    std::string app;            ///< catalog profile name
    std::vector<CoreId> cores;  ///< affinity; empty = all cores
    bool target = false;        ///< the session's traced process
    double load_rps = 0.0;      ///< open-loop load (services only)
    int closed_clients = 0;     ///< closed-loop concurrent clients
    int workers = 0;            ///< worker threads; 0 = profile default
    std::string downstream;     ///< app name this service RPCs into
    /** RPCs per request to the downstream (-1 = profile default). */
    int downstream_rpcs = -1;
    std::uint64_t binary_seed = 0;  ///< 0 = stable hash of app name
};

struct ExperimentSpec {
    NodeConfig node;
    std::vector<WorkloadSpec> workloads;
    /** Backend: Oracle | EXIST | StaSam | eBPF | NHT. */
    std::string backend = "Oracle";
    SessionSpec session;
    Cycles warmup = secondsToCycles(0.08);
    bool ground_truth = false;
    bool record_paths = false;
    bool decode = false;
    /** Keep the raw per-core trace bytes in the result (for upload to
     *  an object store by the cluster layer). */
    bool keep_traces = false;
    /** Workers for the per-core decode fan-out: 0 = the process-wide
     *  shared pool (hardware concurrency), 1 = inline serial decode,
     *  N > 1 = a dedicated pool. Output is bit-identical at any
     *  setting; this only changes wall-clock decode time. */
    int decode_threads = 0;
    /**
     * Streaming decode: tracers publish filled ToPA regions into the
     * StreamingDecoder while the session is still tracing (and while
     * ground truth is still being recorded — both replay the same
     * CFG), so only the stream tails remain to decode at trace end.
     * Requires decode with the EXIST backend and STOP (non-ring)
     * buffers; anything else falls back to the batch ParallelDecoder
     * path. Output is bit-identical to batch either way; only
     * report_latency_s changes. decode_threads is reused as the
     * streaming worker count (1 = inline on the collecting thread,
     * 0 = dedicated default-width pool, N = dedicated pool of N).
     */
    bool streaming = false;
    /** Streaming region granularity in real KB (0 = 256 KB). */
    std::uint64_t stream_region_kb = 0;
    /** Decode through the per-binary BlockCache + TNT-run memo fast
     *  path (DESIGN.md §11). Off = the legacy CFG walk, kept as the
     *  bit-identical reference. Only wall-clock decode time changes. */
    bool decode_cache = true;
    /** TNT-memo window size in bits (0 disables memoization, the
     *  block cache alone still applies); clamped to [0, 16]. */
    int tnt_memo_bits = 6;
    /**
     * Collection-plane transport (ISSUE 6): when enabled, the session
     * result's collection-borne fields travel node agent -> master
     * ingest over the simulated fabric instead of being handed over
     * in-process. Testbed::run itself ignores this — transport is
     * applied by the cluster layer (cluster/collection.h) after the
     * session finishes, so analysis stays independent of the cluster.
     */
    net::NetSpec net;
    /**
     * Durability plane (DESIGN.md §12): like `net`, Testbed::run
     * ignores this — the control plane (masters + durability journal)
     * consumes it. Carried here so one spec describes the whole
     * experiment, including its crash-recovery configuration.
     */
    durability::DurabilitySpec durability;
    std::uint64_t seed = 1;
};

/** Per-application measurements over the tracing window. */
struct AppResult {
    std::string name;
    std::uint64_t insns = 0;
    Cycles user_cycles = 0;
    Cycles kernel_cycles = 0;
    double cpi = 0.0;
    double insn_rate = 0.0;  ///< instructions per virtual second
    std::uint64_t completed = 0;
    std::uint64_t context_switches = 0;
    std::uint64_t migrations = 0;
    std::uint64_t syscalls = 0;
    double branch_misses = 0.0;
    double l1_misses = 0.0;
    double llc_misses = 0.0;
    Samples latencies_us;  ///< e2e latencies, when load-driven
};

struct ExperimentResult {
    std::vector<AppResult> apps;
    BackendStats backend_stats;
    Cycles window = 0;
    double node_utilization = 0.0;
    Cycles node_kernel_cycles = 0;
    std::uint64_t context_switch_total = 0;
    std::vector<SwitchRecord> switch_log;

    // Accuracy data (when spec.decode / ground_truth).
    std::uint64_t truth_branches = 0;
    std::uint64_t decoded_branches = 0;
    double accuracy_coverage = 0.0;
    double accuracy_wall = 0.0;
    std::uint64_t decode_errors = 0;
    std::vector<std::uint64_t> decoded_function_insns;
    std::vector<std::uint64_t> truth_function_insns;
    std::vector<std::uint64_t> decoded_function_entries;
    // Path-validation data (when record_paths).
    double path_precision = 1.0;
    /** Raw collected traces (when keep_traces). */
    std::vector<CollectedTrace> raw_traces;

    /** Wall-clock seconds from tracing stop to decoded results ready
     *  (trace-end→report-ready; real time, since decode is the offline
     *  stage). Only set when spec.decode. */
    double report_latency_s = 0.0;
    /** Whether the streaming pipeline ran (vs the batch fallback). */
    bool streamed = false;

    // Decode fast-path telemetry, aggregated over all decoded buffers
    // (pure observability — the values depend on chunking and warm-up,
    // so reports must never include them; the metrics registry does).
    std::uint64_t decode_cache_hits = 0;
    std::uint64_t decode_cache_misses = 0;
    std::uint64_t decode_cache_fast_bits = 0;
    std::uint64_t decode_cache_bytes = 0;

    const AppResult *find(const std::string &name) const;
    const AppResult &at(const std::string &name) const;
};

class Testbed
{
  public:
    static std::unique_ptr<TracerBackend>
    makeBackend(const std::string &name);

    /** The binary repository: deterministic binary for an application
     *  (seed 0 = the stable per-app default used by every node). */
    static std::shared_ptr<const ProgramBinary>
    binaryForApp(const std::string &app, std::uint64_t seed = 0);

    static ExperimentResult run(const ExperimentSpec &spec);

    /** A backend run and its matching Oracle run. */
    struct Comparison {
        ExperimentResult oracle;
        ExperimentResult traced;

        /** Execution-progress slowdown of one app (>= 1 is slower). */
        double slowdownOf(const std::string &app) const;
        /** Normalized throughput (traced / oracle, <= 1 is slower). */
        double throughputRatio(const std::string &app) const;
        /** CPI overhead of one app (traced CPI / oracle CPI - 1). */
        double cpiOverheadOf(const std::string &app) const;
    };

    static Comparison compare(ExperimentSpec spec);
};

}  // namespace exist

#endif  // EXIST_ANALYSIS_TESTBED_H
