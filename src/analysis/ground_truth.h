/**
 * @file
 * Ground-truth capture: a branch observer that records, outside the
 * simulated machine (zero cost), exactly what an exhaustive tracer
 * would see for the target process — per-core branch counts, the
 * per-function instruction histogram, and optionally full block paths.
 * Decoded traces are scored against this (paper §5.3 uses exhaustive
 * NHT as the reference; the simulator lets us use the true execution).
 */
#ifndef EXIST_ANALYSIS_GROUND_TRUTH_H
#define EXIST_ANALYSIS_GROUND_TRUTH_H

#include <cstdint>
#include <map>
#include <vector>

#include "os/kernel.h"

namespace exist {

class GroundTruthRecorder final : public BranchObserver
{
  public:
    /** Start recording branches of `pid` on `kernel`. */
    void arm(Kernel &kernel, ProcessId pid, bool record_paths = false);

    /** Stop recording (keeps the data). */
    void disarm(Kernel &kernel);

    void onBranch(CoreId core, const Thread &t, const BranchRecord &rec,
                  Cycles now) override;

    std::uint64_t totalBranches() const { return total_branches_; }
    std::uint64_t totalInsns() const { return total_insns_; }
    const std::vector<std::uint64_t> &branchesPerCore() const
    {
        return per_core_;
    }
    const std::vector<std::uint64_t> &functionInsns() const
    {
        return function_insns_;
    }
    const std::vector<std::uint64_t> &functionEntries() const
    {
        return function_entries_;
    }
    /** Full block path per core (only when record_paths). */
    const std::vector<std::vector<std::uint32_t>> &paths() const
    {
        return paths_;
    }

    /** Branch counts per thread of the target (attribution reference). */
    const std::map<ThreadId, std::uint64_t> &branchesPerThread() const
    {
        return per_thread_;
    }

  private:
    ProcessId pid_ = kInvalidId;
    bool record_paths_ = false;
    std::uint64_t total_branches_ = 0;
    std::uint64_t total_insns_ = 0;
    std::vector<std::uint64_t> per_core_;
    std::vector<std::uint64_t> function_insns_;
    std::vector<std::uint64_t> function_entries_;
    std::vector<std::vector<std::uint32_t>> paths_;
    std::map<ThreadId, std::uint64_t> per_thread_;
};

}  // namespace exist

#endif  // EXIST_ANALYSIS_GROUND_TRUTH_H
