#include "analysis/report.h"

#include <algorithm>
#include <cstdio>

namespace exist {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

TableWriter &
TableWriter::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
    return *this;
}

std::string
TableWriter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TableWriter::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
TableWriter::mb(std::uint64_t bytes, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision,
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
    return buf;
}

std::string
TableWriter::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &r : rows_)
        for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            line += cell;
            line.append(widths[i] > cell.size()
                            ? widths[i] - cell.size() + 2
                            : 2,
                        ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::string sep;
    for (std::size_t i = 0; i < widths.size(); ++i)
        sep += std::string(widths[i], '-') + "  ";
    while (!sep.empty() && sep.back() == ' ')
        sep.pop_back();
    out += sep + "\n";
    for (const auto &r : rows_)
        out += renderRow(r);
    return out;
}

void
TableWriter::print() const
{
    std::fputs(str().c_str(), stdout);
}

void
printBanner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace exist
