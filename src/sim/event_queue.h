/**
 * @file
 * Discrete-event engine for the EXIST node simulation.
 *
 * The queue orders callbacks by (time, insertion sequence), so events
 * scheduled for the same cycle fire in FIFO order, which keeps the
 * simulation deterministic.
 */
#ifndef EXIST_SIM_EVENT_QUEUE_H
#define EXIST_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/logging.h"
#include "util/types.h"

namespace exist {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/**
 * Time-ordered queue of callbacks. A thin core that higher layers (the
 * OS kernel, load generators, the cluster master) schedule against.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current virtual time. */
    Cycles now() const { return now_; }

    /** Schedule a callback at absolute time `when` (>= now). */
    EventId
    schedule(Cycles when, Callback cb)
    {
        EXIST_ASSERT(when >= now_, "scheduling into the past: %llu < %llu",
                     (unsigned long long)when, (unsigned long long)now_);
        EventId id = ++next_id_;
        heap_.push(Entry{when, id, std::move(cb)});
        ++live_;
        return id;
    }

    /** Schedule a callback `delay` cycles from now. */
    EventId
    scheduleAfter(Cycles delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /** Cancel an event; a no-op if it has already fired. */
    void
    cancel(EventId id)
    {
        if (id != kInvalidEvent)
            cancelled_.push_back(id);
    }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Time of the next pending event (kMaxTime when empty). */
    Cycles nextTime();

    /** Fire a single event; returns false if the queue is empty. */
    bool step();

    /** Run until the queue drains or time reaches `until`. */
    void runUntil(Cycles until);

    /** Run until the queue drains. */
    void run();

    static constexpr Cycles kMaxTime = ~Cycles{0};

  private:
    struct Entry {
        Cycles when;
        EventId id;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    bool isCancelled(EventId id);
    void popDead();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::vector<EventId> cancelled_;
    Cycles now_ = 0;
    EventId next_id_ = kInvalidEvent;
    std::size_t live_ = 0;
};

}  // namespace exist

#endif  // EXIST_SIM_EVENT_QUEUE_H
