#include "sim/event_queue.h"

#include <algorithm>

namespace exist {

bool
EventQueue::isCancelled(EventId id)
{
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end())
        return false;
    *it = cancelled_.back();
    cancelled_.pop_back();
    return true;
}

void
EventQueue::popDead()
{
    while (!heap_.empty() && isCancelled(heap_.top().id)) {
        heap_.pop();
        --live_;
    }
}

Cycles
EventQueue::nextTime()
{
    popDead();
    return heap_.empty() ? kMaxTime : heap_.top().when;
}

bool
EventQueue::step()
{
    popDead();
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; the callback must be moved out
    // before pop, so copy the entry (callbacks are cheap shared state).
    Entry e = heap_.top();
    heap_.pop();
    --live_;
    EXIST_ASSERT(e.when >= now_, "event queue time went backwards");
    now_ = e.when;
    e.cb();
    return true;
}

void
EventQueue::runUntil(Cycles until)
{
    while (true) {
        Cycles next = nextTime();
        if (next == kMaxTime || next > until)
            break;
        step();
    }
    if (now_ < until)
        now_ = until;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

}  // namespace exist
