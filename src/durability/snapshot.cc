#include "durability/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "durability/crash_point.h"
#include "util/logging.h"

namespace fs = std::filesystem;

namespace exist::durability {

namespace {

std::string
snapshotName(std::uint64_t barrier_lsn)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "snap-%016llx.img",
                  static_cast<unsigned long long>(barrier_lsn));
    return buf;
}

bool
parseSnapshotName(const std::string &name, std::uint64_t *lsn)
{
    if (name.size() != 5 + 16 + 4 || name.rfind("snap-", 0) != 0 ||
        name.substr(21) != ".img")
        return false;
    std::uint64_t v = 0;
    for (std::size_t i = 5; i < 21; ++i) {
        char c = name[i];
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    *lsn = v;
    return true;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    out->clear();
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out->insert(out->end(), buf, buf + n);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

void
putDump(net::ByteWriter &w, const ControlStateDump &dump)
{
    w.putVarint(dump.next_id);
    w.putVarint(dump.requests.size());
    for (const auto &[id, req] : dump.requests) {
        w.putVarint(id);
        w.putU8(static_cast<std::uint8_t>(req.phase));
        w.putString(req.toManifest());
    }
    w.putVarint(dump.reports.size());
    for (const auto &[id, report] : dump.reports) {
        w.putVarint(id);
        putReport(w, report);
    }
    w.putVarint(dump.ledger.apps().size());
    for (const auto &[app, cov] : dump.ledger.apps()) {
        w.putString(app);
        w.putVarint(cov.requests);
        w.putVarint(cov.sessions);
        w.putVarint(cov.trace_bytes);
        w.putVarint(cov.last_period);
    }
    w.putVarint(dump.ledger.totalRequests());
    w.putVarint(dump.ledger.totalSessions());
    w.putVarint(dump.objects.size());
    for (const auto &[key, bytes] : dump.objects) {
        w.putString(key);
        w.putVarint(bytes.size());
        w.putBytes(bytes.data(), bytes.size());
    }
    w.putVarint(dump.rows.size());
    for (const TraceRow &row : dump.rows)
        putRow(w, row);
}

bool
getDump(net::ByteReader &r, ControlStateDump *out)
{
    out->next_id = r.getVarint();
    std::uint64_t nreq = r.getVarint();
    if (!r.ok() || nreq > r.remaining())
        return false;
    for (std::uint64_t i = 0; i < nreq && r.ok(); ++i) {
        std::uint64_t id = r.getVarint();
        std::uint8_t phase = r.getU8();
        std::string manifest = r.getString();
        if (!r.ok() ||
            phase > static_cast<std::uint8_t>(RequestPhase::kFailed))
            return false;
        TraceRequest req = TraceRequest::parse(manifest);
        req.id = id;
        req.phase = static_cast<RequestPhase>(phase);
        out->requests.emplace(id, std::move(req));
    }
    std::uint64_t nrep = r.getVarint();
    if (!r.ok() || nrep > r.remaining())
        return false;
    for (std::uint64_t i = 0; i < nrep && r.ok(); ++i) {
        std::uint64_t id = r.getVarint();
        TraceReport report;
        if (!getReport(r, &report))
            return false;
        out->reports.emplace(id, std::move(report));
    }
    std::uint64_t napps = r.getVarint();
    if (!r.ok() || napps > r.remaining())
        return false;
    std::map<std::string, CoverageLedger::AppCoverage> apps;
    for (std::uint64_t i = 0; i < napps && r.ok(); ++i) {
        std::string app = r.getString();
        CoverageLedger::AppCoverage cov;
        cov.requests = r.getVarint();
        cov.sessions = r.getVarint();
        cov.trace_bytes = r.getVarint();
        cov.last_period = r.getVarint();
        apps.emplace(std::move(app), cov);
    }
    std::uint64_t total_requests = r.getVarint();
    std::uint64_t total_sessions = r.getVarint();
    if (!r.ok())
        return false;
    out->ledger.restore(std::move(apps), total_requests,
                        total_sessions);
    std::uint64_t nobj = r.getVarint();
    if (!r.ok() || nobj > r.remaining())
        return false;
    for (std::uint64_t i = 0; i < nobj && r.ok(); ++i) {
        std::string key = r.getString();
        std::uint64_t len = r.getVarint();
        const std::uint8_t *p = r.getBytes(len);
        if (p == nullptr)
            return false;
        out->objects.emplace_back(
            std::move(key), std::vector<std::uint8_t>(p, p + len));
    }
    std::uint64_t nrows = r.getVarint();
    if (!r.ok() || nrows > r.remaining())
        return false;
    for (std::uint64_t i = 0; i < nrows && r.ok(); ++i) {
        TraceRow row;
        if (!getRow(r, &row))
            return false;
        out->rows.push_back(std::move(row));
    }
    return r.ok();
}

void
putCursors(net::ByteWriter &w, const CursorMap &cursors)
{
    w.putVarint(cursors.size());
    for (const auto &[key, cur] : cursors) {
        w.putVarint(std::get<0>(key));
        w.putSVarint(std::get<1>(key));
        w.putVarint(std::get<2>(key));
        w.putVarint(cur.total_batches);
        w.putVarint(cur.cumulative);
        w.putVarint(cur.prefix.size());
        w.putBytes(cur.prefix.data(), cur.prefix.size());
    }
}

bool
getCursors(net::ByteReader &r, CursorMap *out)
{
    std::uint64_t n = r.getVarint();
    if (!r.ok() || n > r.remaining())
        return false;
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        std::uint64_t request = r.getVarint();
        NodeId node = static_cast<NodeId>(r.getSVarint());
        std::uint64_t stream = r.getVarint();
        StreamResume cur;
        cur.total_batches = r.getVarint();
        cur.cumulative = r.getVarint();
        std::uint64_t len = r.getVarint();
        const std::uint8_t *p = r.getBytes(len);
        if (p == nullptr)
            return false;
        cur.prefix.assign(p, p + len);
        out->emplace(std::make_tuple(request, node, stream),
                     std::move(cur));
    }
    return r.ok();
}

}  // namespace

bool
writeSnapshot(const std::string &dir, const SnapshotState &state,
              std::string *error)
{
    std::vector<std::uint8_t> body;
    net::ByteWriter w(&body);
    putMeta(w, state.meta);
    w.putVarint(state.barrier_lsn);
    putDump(w, state.dump);
    putCursors(w, state.cursors);

    std::vector<std::uint8_t> image;
    net::ByteWriter hw(&image);
    hw.putU32(kSnapMagic);
    hw.putU8(kSnapVersion);
    hw.putU64(body.size());
    hw.putU64(net::fnv1a64(body.data(), body.size()));
    hw.putBytes(body.data(), body.size());

    std::string final_path =
        (fs::path(dir) / snapshotName(state.barrier_lsn)).string();
    std::string tmp_path = final_path + ".tmp";
    std::FILE *f = std::fopen(tmp_path.c_str(), "wb");
    if (f == nullptr) {
        *error = "cannot open " + tmp_path;
        return false;
    }
    std::size_t n = std::fwrite(image.data(), 1, image.size(), f);
    bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (n != image.size() || !flushed) {
        *error = "short write to " + tmp_path;
        return false;
    }

    // The image is complete but not yet visible: a crash here leaves
    // only the ignored .tmp, and recovery uses the previous snapshot.
    crashpoint::hit("mid-snapshot");

    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        *error = "rename failed: " + ec.message();
        return false;
    }
    return true;
}

std::vector<std::pair<std::uint64_t, std::string>>
listSnapshots(const std::string &dir)
{
    std::vector<std::pair<std::uint64_t, std::string>> found;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        std::uint64_t lsn = 0;
        std::string name = entry.path().filename().string();
        if (parseSnapshotName(name, &lsn))
            found.emplace_back(lsn, entry.path().string());
    }
    std::sort(found.begin(), found.end());
    return found;
}

std::size_t
pruneSnapshots(const std::string &dir, std::size_t keep)
{
    auto snaps = listSnapshots(dir);
    std::size_t removed = 0;
    while (snaps.size() > keep) {
        std::error_code ec;
        fs::remove(snaps.front().second, ec);
        if (!ec)
            removed += 1;
        snaps.erase(snaps.begin());
    }
    return removed;
}

SnapshotLoad
loadNewestSnapshot(const std::string &dir)
{
    SnapshotLoad load;
    auto snaps = listSnapshots(dir);
    load.found = !snaps.empty();
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
        const std::string &path = it->second;
        std::vector<std::uint8_t> image;
        if (!readFile(path, &image)) {
            load.error += path + ": unreadable; ";
            continue;
        }
        net::ByteReader r(image.data(), image.size());
        std::uint32_t magic = r.getU32();
        std::uint8_t version = r.getU8();
        std::uint64_t body_len = r.getU64();
        std::uint64_t sum = r.getU64();
        if (!r.ok() || magic != kSnapMagic || version != kSnapVersion ||
            body_len != r.remaining()) {
            load.error += path + ": bad header; ";
            continue;
        }
        const std::uint8_t *body = r.getBytes(body_len);
        if (body == nullptr ||
            net::fnv1a64(body, body_len) != sum) {
            load.error += path + ": checksum mismatch; ";
            continue;
        }
        SnapshotState state;
        net::ByteReader br(body, body_len);
        if (!getMeta(br, &state.meta)) {
            load.error += path + ": bad meta; ";
            continue;
        }
        state.barrier_lsn = br.getVarint();
        if (!getDump(br, &state.dump) ||
            !getCursors(br, &state.cursors) || !br.ok() ||
            br.remaining() != 0 || state.barrier_lsn != it->first) {
            load.error += path + ": bad body; ";
            continue;
        }
        load.ok = true;
        load.path = path;
        load.state = std::move(state);
        return load;
    }
    return load;
}

}  // namespace exist::durability
