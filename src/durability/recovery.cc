#include "durability/recovery.h"

#include <limits>
#include <utility>

#include "cluster/crd.h"
#include "cluster/shard/plan.h"
#include "obs/trace_plane.h"
#include "util/logging.h"

namespace exist::durability {

namespace {

std::string
lsnError(std::uint64_t lsn, const std::string &what)
{
    return "wal record lsn " + std::to_string(lsn) + ": " + what;
}

}  // namespace

RecoveryResult
recover(const std::string &dir, metrics::Registry *registry)
{
    RecoveryResult result;
    RecoveredState &st = result.state;
    bool have_meta = false;

    EXIST_SPAN("recovery.load", obs::corrId(dir.size()));
    SnapshotLoad snap = loadNewestSnapshot(dir);
    if (snap.found && !snap.ok) {
        // Snapshots exist but none validates: the WAL below their
        // barriers may have been truncated, so a from-scratch replay
        // could silently miss records. Refuse.
        result.error = "no valid snapshot (" + snap.error + ")";
        return result;
    }
    std::uint64_t from_lsn = 1;
    if (snap.ok) {
        st.meta = snap.state.meta;
        st.dump = std::move(snap.state.dump);
        st.resume = std::move(snap.state.cursors);
        st.telemetry.snapshot_used = true;
        st.telemetry.snapshot_barrier = snap.state.barrier_lsn;
        from_lsn = snap.state.barrier_lsn;
        have_meta = true;
    }

    EXIST_SPAN("recovery.replay", from_lsn);
    Wal::ReplayResult replay = Wal::replay(dir, from_lsn);
    if (!replay.ok) {
        result.error = replay.error;
        return result;
    }
    st.telemetry.wal_records = replay.records.size();
    st.telemetry.wal_bytes = replay.bytes_read;

    for (WalRecord &rec : replay.records) {
        switch (rec.type) {
          case RecordType::kMeta:
            if (have_meta && !(rec.meta == st.meta)) {
                result.error = lsnError(
                    rec.lsn, "cluster meta mismatch with snapshot");
                return result;
            }
            st.meta = std::move(rec.meta);
            have_meta = true;
            break;

          case RecordType::kAdmit: {
            TraceRequest req = TraceRequest::parse(rec.manifest);
            req.id = rec.request_id;
            req.phase = RequestPhase::kPending;
            if (rec.request_id + 1 > st.dump.next_id)
                st.dump.next_id = rec.request_id + 1;
            st.dump.requests.insert_or_assign(rec.request_id,
                                              std::move(req));
            break;
          }

          case RecordType::kPlan: {
            if (!have_meta) {
                result.error = lsnError(rec.lsn, "plan before meta");
                return result;
            }
            std::uint64_t expected =
                requestPlanSeed(st.meta.cluster_seed, rec.request_id);
            if (rec.plan_seed != expected) {
                // The recovering binary would derive a different plan
                // stream than the one that wrote the log: replanning
                // the pending requests would diverge. Fail loudly.
                result.error = lsnError(
                    rec.lsn,
                    "plan seed mismatch for request " +
                        std::to_string(rec.request_id) +
                        " (logged " + std::to_string(rec.plan_seed) +
                        ", derived " + std::to_string(expected) + ")");
                return result;
            }
            auto it = st.dump.requests.find(rec.request_id);
            if (it == st.dump.requests.end()) {
                result.error =
                    lsnError(rec.lsn, "plan for unknown request " +
                                          std::to_string(rec.request_id));
                return result;
            }
            if (rec.outcome >
                static_cast<std::uint8_t>(RequestPhase::kFailed)) {
                result.error = lsnError(rec.lsn, "bad plan outcome");
                return result;
            }
            it->second.phase = static_cast<RequestPhase>(rec.outcome);
            break;
          }

          case RecordType::kIngestBatch: {
            StreamResume &cur = st.resume[std::make_tuple(
                rec.request_id, rec.node, rec.stream)];
            if (rec.seq != cur.cumulative) {
                result.error = lsnError(
                    rec.lsn,
                    "ingest watermark gap on stream " +
                        std::to_string(rec.stream) + " (seq " +
                        std::to_string(rec.seq) + ", cursor " +
                        std::to_string(cur.cumulative) + ")");
                return result;
            }
            if (cur.cumulative > 0 &&
                cur.total_batches != rec.total_batches) {
                result.error = lsnError(
                    rec.lsn, "ingest stream extent changed mid-stream");
                return result;
            }
            cur.total_batches = rec.total_batches;
            cur.prefix.insert(cur.prefix.end(), rec.chunk.begin(),
                              rec.chunk.end());
            cur.cumulative += 1;
            break;
          }

          case RecordType::kPublish: {
            auto it = st.dump.requests.find(rec.request_id);
            if (it == st.dump.requests.end()) {
                result.error = lsnError(
                    rec.lsn, "publish for unknown request " +
                                 std::to_string(rec.request_id));
                return result;
            }
            it->second.phase = RequestPhase::kCompleted;
            PublishEffects &fx = rec.effects;
            st.dump.reports.insert_or_assign(rec.request_id,
                                             std::move(fx.report));
            st.dump.ledger.recordRequest(fx.ledger.app,
                                         fx.ledger.sessions,
                                         fx.ledger.period,
                                         fx.ledger.trace_bytes);
            for (auto &obj : fx.objects)
                st.dump.objects.push_back(std::move(obj));
            for (auto &row : fx.rows)
                st.dump.rows.push_back(std::move(row));
            // The request is durably complete: its ingest cursors are
            // dead weight and must not seed a resumed stream.
            auto cit = st.resume.lower_bound(std::make_tuple(
                rec.request_id, std::numeric_limits<NodeId>::min(), 0));
            while (cit != st.resume.end() &&
                   std::get<0>(cit->first) == rec.request_id)
                cit = st.resume.erase(cit);
            st.telemetry.replayed_publishes += 1;
            break;
          }
        }
    }

    if (!have_meta) {
        result.error = "no cluster meta record (empty or foreign dir)";
        return result;
    }

    // Requests still kRunning were mid-flight when the crash hit:
    // reset them to kPending so the next reconcile re-plans them from
    // their (verified) logged seeds — reproducing the identical plan.
    for (auto &[id, req] : st.dump.requests) {
        if (req.phase == RequestPhase::kRunning)
            req.phase = RequestPhase::kPending;
        if (req.phase == RequestPhase::kPending)
            st.telemetry.pending_requests += 1;
    }

    if (registry != nullptr) {
        registry->counter("recovery.runs").add(1);
        registry->counter("recovery.wal_records")
            .add(st.telemetry.wal_records);
        registry->counter("recovery.wal_bytes")
            .add(st.telemetry.wal_bytes);
        registry->counter("recovery.replayed_publishes")
            .add(st.telemetry.replayed_publishes);
        registry->gauge("recovery.snapshot_used")
            .set(st.telemetry.snapshot_used ? 1 : 0);
        registry->gauge("recovery.pending_requests")
            .set(static_cast<std::int64_t>(
                st.telemetry.pending_requests));
    }
    result.ok = true;
    return result;
}

}  // namespace exist::durability
