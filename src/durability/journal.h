/**
 * @file
 * WAL-backed ControlJournal (DESIGN.md §12): the durability plane's
 * live half. Each master hook appends its record (flushed before the
 * call returns), crosses the matching crash point, and only then does
 * the caller mutate in-memory state — the WAL-before-state discipline
 * that makes recovery exact.
 *
 * Hook -> record -> crash point:
 *   onAdmit       kAdmit        "admit"
 *   onPlanned     kPlan         "post-plan"   (logs the plan seed)
 *   on_consume    kIngestBatch  "ingest-frame"
 *   onPublish     kPublish      "pre-store"
 *
 * Snapshots: maybeSnapshot() runs at quiesced reconcile boundaries
 * (callers pass a dump closure, evaluated only when due); it writes
 * the image (crossing "mid-snapshot" before the rename and
 * "post-snapshot" before truncation), keeps the two newest images,
 * and truncates WAL segments wholly below the older kept barrier.
 *
 * Thread-safety: hooks are called from concurrent shard lanes; the
 * Wal's kWal mutex orders appends (publish appends happen inside
 * CommitLog actions, so their LSN order is the global id order), the
 * snapshot counter is atomic, and the resume map is read-only after
 * setResume().
 */
#ifndef EXIST_DURABILITY_JOURNAL_H
#define EXIST_DURABILITY_JOURNAL_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "cluster/control_journal.h"
#include "cluster/metrics.h"
#include "durability/snapshot.h"
#include "durability/spec.h"
#include "durability/wal.h"

namespace exist::durability {

class Journal : public ControlJournal
{
  public:
    /**
     * Opens (or reopens after recovery) the WAL under spec.wal_dir.
     * On a fresh log the meta record is appended immediately, so even
     * a crash before the first admit leaves a recoverable (empty)
     * control plane.
     */
    Journal(const DurabilitySpec &spec, const ClusterMeta &meta,
            metrics::Registry *registry = nullptr);

    void onAdmit(const TraceRequest &req) override;
    void onPlanned(std::uint64_t id, RequestPhase outcome) override;
    CollectHooks collectHooks(std::uint64_t id) override;
    void onPublish(std::uint64_t id, const PublishEffects &fx) override;

    /** Install recovered ingest cursors (before the first reconcile;
     *  consumed by collectHooks of the matching requests). */
    void setResume(CursorMap cursors);

    /**
     * Snapshot when >= snapshot_interval publishes accumulated since
     * the last barrier (force = unconditionally). Call only at
     * quiesced boundaries — `dump` must see no in-flight mutation.
     * Returns true when an image was written.
     */
    bool maybeSnapshot(const std::function<ControlStateDump()> &dump,
                       bool force = false);

    std::uint64_t nextLsn() const { return wal_.nextLsn(); }
    const ClusterMeta &meta() const { return meta_; }

  private:
    const DurabilitySpec spec_;
    const ClusterMeta meta_;
    metrics::Registry *registry_;
    Wal wal_;
    std::atomic<std::uint64_t> publishes_since_snapshot_{0};
    CursorMap resume_;
};

}  // namespace exist::durability

#endif  // EXIST_DURABILITY_JOURNAL_H
