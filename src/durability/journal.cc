#include "durability/journal.h"

#include <utility>

#include "cluster/shard/plan.h"
#include "durability/crash_point.h"
#include "obs/trace_plane.h"
#include "util/logging.h"

namespace exist::durability {

Journal::Journal(const DurabilitySpec &spec, const ClusterMeta &meta,
                 metrics::Registry *registry)
    : spec_(spec),
      meta_(meta),
      registry_(registry),
      wal_(Wal::Config{spec.wal_dir}, registry)
{
    EXIST_ASSERT(spec_.enabled(), "Journal requires a wal_dir");
    if (wal_.nextLsn() == 1) {
        WalRecord rec;
        rec.type = RecordType::kMeta;
        rec.meta = meta_;
        wal_.append(std::move(rec));
    }
}

void
Journal::onAdmit(const TraceRequest &req)
{
    WalRecord rec;
    rec.type = RecordType::kAdmit;
    rec.request_id = req.id;
    rec.manifest = req.toManifest();
    wal_.append(std::move(rec));
    crashpoint::hit("admit");
}

void
Journal::onPlanned(std::uint64_t id, RequestPhase outcome)
{
    WalRecord rec;
    rec.type = RecordType::kPlan;
    rec.request_id = id;
    rec.plan_seed = requestPlanSeed(meta_.cluster_seed, id);
    rec.outcome = static_cast<std::uint8_t>(outcome);
    wal_.append(std::move(rec));
    crashpoint::hit("post-plan");
}

CollectHooks
Journal::collectHooks(std::uint64_t id)
{
    CollectHooks hooks;
    hooks.on_consume = [this, id](NodeId node, std::uint64_t stream,
                                  std::uint64_t seq,
                                  std::uint64_t total_batches,
                                  const std::vector<std::uint8_t> &chunk) {
        WalRecord rec;
        rec.type = RecordType::kIngestBatch;
        rec.request_id = id;
        rec.node = node;
        rec.stream = stream;
        rec.seq = seq;
        rec.total_batches = total_batches;
        rec.chunk = chunk;
        wal_.append(std::move(rec));
        crashpoint::hit("ingest-frame");
    };
    for (const auto &[key, cur] : resume_) {
        if (std::get<0>(key) != id)
            continue;
        hooks.resume.emplace(
            std::make_pair(std::get<1>(key), std::get<2>(key)), cur);
    }
    return hooks;
}

void
Journal::onPublish(std::uint64_t id, const PublishEffects &fx)
{
    WalRecord rec;
    rec.type = RecordType::kPublish;
    rec.request_id = id;
    rec.effects = fx;
    wal_.append(std::move(rec));
    publishes_since_snapshot_.fetch_add(1, std::memory_order_relaxed);
    crashpoint::hit("pre-store");
}

void
Journal::setResume(CursorMap cursors)
{
    resume_ = std::move(cursors);
}

bool
Journal::maybeSnapshot(const std::function<ControlStateDump()> &dump,
                       bool force)
{
    std::uint64_t pending =
        publishes_since_snapshot_.load(std::memory_order_relaxed);
    bool due = spec_.snapshot_interval > 0 &&
               pending >= spec_.snapshot_interval;
    if (!force && !due)
        return false;

    SnapshotState state;
    state.meta = meta_;
    state.barrier_lsn = wal_.nextLsn();
    EXIST_SPAN("wal.snapshot", state.barrier_lsn);
    state.dump = dump();
    std::string error;
    if (!writeSnapshot(spec_.wal_dir, state, &error))
        EXIST_FATAL("snapshot at barrier %llu failed: %s",
                    (unsigned long long)state.barrier_lsn,
                    error.c_str());
    crashpoint::hit("post-snapshot");

    // Keep the two newest images and truncate only below the OLDER
    // kept barrier: if the newest image is later found corrupt,
    // recovery still has the previous one plus an intact WAL tail.
    pruneSnapshots(spec_.wal_dir, 2);
    auto snaps = listSnapshots(spec_.wal_dir);
    if (snaps.size() >= 2)
        wal_.truncateBefore(snaps[snaps.size() - 2].first);

    publishes_since_snapshot_.store(0, std::memory_order_relaxed);
    if (registry_ != nullptr) {
        registry_->counter("wal.snapshots").add(1);
        registry_->gauge("wal.snapshot_barrier")
            .set(static_cast<std::int64_t>(state.barrier_lsn));
    }
    return true;
}

}  // namespace exist::durability
