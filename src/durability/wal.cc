#include "durability/wal.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "obs/trace_plane.h"
#include "util/logging.h"

namespace fs = std::filesystem;

namespace exist::durability {

namespace {

std::string
segmentName(std::uint64_t start_lsn)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "wal-%016llx.seg",
                  static_cast<unsigned long long>(start_lsn));
    return buf;
}

bool
parseSegmentName(const std::string &name, std::uint64_t *lsn)
{
    if (name.size() != 4 + 16 + 4 || name.rfind("wal-", 0) != 0 ||
        name.substr(20) != ".seg")
        return false;
    std::uint64_t v = 0;
    for (std::size_t i = 4; i < 20; ++i) {
        char c = name[i];
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    *lsn = v;
    return true;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    out->clear();
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out->insert(out->end(), buf, buf + n);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

/** One segment, scanned to its first invalid byte. */
struct SegmentScan {
    bool header_ok = false;
    std::uint64_t start_lsn = 0;
    std::vector<WalRecord> records;
    bool clean_end = false;  ///< file ended exactly on a record edge
    std::uint64_t bytes = 0;
};

SegmentScan
scanSegment(const std::string &path)
{
    SegmentScan scan;
    std::vector<std::uint8_t> data;
    if (!readFile(path, &data))
        return scan;
    scan.bytes = data.size();
    net::ByteReader r(data.data(), data.size());
    std::uint32_t magic = r.getU32();
    std::uint8_t version = r.getU8();
    std::uint64_t start = r.getU64();
    if (!r.ok() || magic != kWalMagic || version != kWalVersion)
        return scan;
    scan.header_ok = true;
    scan.start_lsn = start;
    for (;;) {
        if (r.remaining() == 0) {
            scan.clean_end = true;
            return scan;
        }
        std::uint32_t len = r.getU32();
        std::uint64_t sum = r.getU64();
        if (!r.ok() || len == 0 || len > kMaxRecordBytes)
            return scan;  // torn/corrupt framing
        const std::uint8_t *payload = r.getBytes(len);
        if (payload == nullptr)
            return scan;  // torn tail
        if (net::fnv1a64(payload, len) != sum)
            return scan;  // bit rot
        WalRecord rec;
        if (!decodeRecord(payload, len, &rec))
            return scan;
        scan.records.push_back(std::move(rec));
    }
}

}  // namespace

const char *
recordTypeName(RecordType t)
{
    switch (t) {
      case RecordType::kMeta: return "meta";
      case RecordType::kAdmit: return "admit";
      case RecordType::kPlan: return "plan";
      case RecordType::kIngestBatch: return "ingest-batch";
      case RecordType::kPublish: return "publish";
    }
    return "?";
}

void
putMeta(net::ByteWriter &w, const ClusterMeta &m)
{
    w.putU64(m.cluster_seed);
    w.putVarint(static_cast<std::uint64_t>(m.num_nodes));
    w.putVarint(static_cast<std::uint64_t>(m.cores_per_node));
    w.putVarint(static_cast<std::uint64_t>(m.shards));
    w.putVarint(m.snapshot_interval);
    w.putVarint(m.deployments.size());
    for (const auto &[app, replicas] : m.deployments) {
        w.putString(app);
        w.putVarint(static_cast<std::uint64_t>(replicas));
    }
}

bool
getMeta(net::ByteReader &r, ClusterMeta *out)
{
    out->cluster_seed = r.getU64();
    out->num_nodes = static_cast<int>(r.getVarint());
    out->cores_per_node = static_cast<int>(r.getVarint());
    out->shards = static_cast<int>(r.getVarint());
    out->snapshot_interval = r.getVarint();
    std::uint64_t n = r.getVarint();
    if (!r.ok() || n > r.remaining())
        return false;
    out->deployments.clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        std::string app = r.getString();
        int replicas = static_cast<int>(r.getVarint());
        out->deployments.emplace_back(std::move(app), replicas);
    }
    return r.ok();
}

void
putReport(net::ByteWriter &w, const TraceReport &report)
{
    w.putVarint(report.request_id);
    w.putString(report.app);
    w.putVarint(report.period);
    std::vector<std::uint64_t> nodes;
    nodes.reserve(report.traced_nodes.size());
    for (NodeId n : report.traced_nodes)
        nodes.push_back(static_cast<std::uint64_t>(n));
    w.putDeltaArray(nodes);
    w.putVarint(report.per_worker_accuracy.size());
    for (double a : report.per_worker_accuracy)
        w.putDouble(a);
    w.putDouble(report.merged_accuracy);
    w.putDeltaArray(report.merged_function_insns);
    w.putDeltaArray(report.merged_truth_function_insns);
    w.putVarint(report.total_trace_bytes);
    w.putDouble(report.mean_target_cpi);
}

bool
getReport(net::ByteReader &r, TraceReport *out)
{
    out->request_id = r.getVarint();
    out->app = r.getString();
    out->period = r.getVarint();
    std::vector<std::uint64_t> nodes = r.getDeltaArray();
    out->traced_nodes.clear();
    out->traced_nodes.reserve(nodes.size());
    for (std::uint64_t n : nodes)
        out->traced_nodes.push_back(static_cast<NodeId>(n));
    std::uint64_t accs = r.getVarint();
    if (!r.ok() || accs > r.remaining() / 8)
        return false;
    out->per_worker_accuracy.clear();
    for (std::uint64_t i = 0; i < accs && r.ok(); ++i)
        out->per_worker_accuracy.push_back(r.getDouble());
    out->merged_accuracy = r.getDouble();
    out->merged_function_insns = r.getDeltaArray();
    out->merged_truth_function_insns = r.getDeltaArray();
    out->total_trace_bytes = r.getVarint();
    out->mean_target_cpi = r.getDouble();
    return r.ok();
}

void
putRow(net::ByteWriter &w, const TraceRow &row)
{
    w.putString(row.app);
    w.putSVarint(row.node);
    w.putVarint(row.request_id);
    w.putVarint(row.period);
    w.putVarint(row.decoded_branches);
    w.putDouble(row.accuracy);
    w.putDeltaArray(row.function_insns);
    w.putDeltaArray(row.function_entries);
}

bool
getRow(net::ByteReader &r, TraceRow *out)
{
    out->app = r.getString();
    out->node = static_cast<NodeId>(r.getSVarint());
    out->request_id = r.getVarint();
    out->period = r.getVarint();
    out->decoded_branches = r.getVarint();
    out->accuracy = r.getDouble();
    out->function_insns = r.getDeltaArray();
    out->function_entries = r.getDeltaArray();
    return r.ok();
}

void
putEffects(net::ByteWriter &w, const PublishEffects &fx)
{
    putReport(w, fx.report);
    w.putVarint(fx.objects.size());
    for (const auto &[key, bytes] : fx.objects) {
        w.putString(key);
        w.putVarint(bytes.size());
        w.putBytes(bytes.data(), bytes.size());
    }
    w.putVarint(fx.rows.size());
    for (const TraceRow &row : fx.rows)
        putRow(w, row);
    w.putString(fx.ledger.app);
    w.putVarint(fx.ledger.sessions);
    w.putVarint(fx.ledger.period);
    w.putVarint(fx.ledger.trace_bytes);
}

bool
getEffects(net::ByteReader &r, PublishEffects *out)
{
    if (!getReport(r, &out->report))
        return false;
    std::uint64_t nobj = r.getVarint();
    if (!r.ok() || nobj > r.remaining())
        return false;
    out->objects.clear();
    for (std::uint64_t i = 0; i < nobj && r.ok(); ++i) {
        std::string key = r.getString();
        std::uint64_t len = r.getVarint();
        const std::uint8_t *p = r.getBytes(len);
        if (p == nullptr)
            return false;
        out->objects.emplace_back(
            std::move(key), std::vector<std::uint8_t>(p, p + len));
    }
    std::uint64_t nrows = r.getVarint();
    if (!r.ok() || nrows > r.remaining())
        return false;
    out->rows.clear();
    for (std::uint64_t i = 0; i < nrows && r.ok(); ++i) {
        TraceRow row;
        if (!getRow(r, &row))
            return false;
        out->rows.push_back(std::move(row));
    }
    out->ledger.app = r.getString();
    out->ledger.sessions = r.getVarint();
    out->ledger.period = r.getVarint();
    out->ledger.trace_bytes = r.getVarint();
    return r.ok();
}

std::vector<std::uint8_t>
encodeRecord(const WalRecord &rec)
{
    std::vector<std::uint8_t> out;
    net::ByteWriter w(&out);
    w.putU8(static_cast<std::uint8_t>(rec.type));
    w.putVarint(rec.lsn);
    switch (rec.type) {
      case RecordType::kMeta:
        putMeta(w, rec.meta);
        break;
      case RecordType::kAdmit:
        w.putVarint(rec.request_id);
        w.putString(rec.manifest);
        break;
      case RecordType::kPlan:
        w.putVarint(rec.request_id);
        w.putU64(rec.plan_seed);
        w.putU8(rec.outcome);
        break;
      case RecordType::kIngestBatch:
        w.putVarint(rec.request_id);
        w.putSVarint(rec.node);
        w.putVarint(rec.stream);
        w.putVarint(rec.seq);
        w.putVarint(rec.total_batches);
        w.putVarint(rec.chunk.size());
        w.putBytes(rec.chunk.data(), rec.chunk.size());
        break;
      case RecordType::kPublish:
        w.putVarint(rec.request_id);
        putEffects(w, rec.effects);
        break;
    }
    return out;
}

bool
decodeRecord(const std::uint8_t *data, std::size_t size, WalRecord *out)
{
    net::ByteReader r(data, size);
    std::uint8_t type = r.getU8();
    if (!r.ok() || type < 1 ||
        type > static_cast<std::uint8_t>(RecordType::kPublish))
        return false;
    out->type = static_cast<RecordType>(type);
    out->lsn = r.getVarint();
    switch (out->type) {
      case RecordType::kMeta:
        if (!getMeta(r, &out->meta))
            return false;
        break;
      case RecordType::kAdmit:
        out->request_id = r.getVarint();
        out->manifest = r.getString();
        break;
      case RecordType::kPlan:
        out->request_id = r.getVarint();
        out->plan_seed = r.getU64();
        out->outcome = r.getU8();
        break;
      case RecordType::kIngestBatch: {
        out->request_id = r.getVarint();
        out->node = static_cast<NodeId>(r.getSVarint());
        out->stream = r.getVarint();
        out->seq = r.getVarint();
        out->total_batches = r.getVarint();
        std::uint64_t len = r.getVarint();
        const std::uint8_t *p = r.getBytes(len);
        if (p == nullptr)
            return false;
        out->chunk.assign(p, p + len);
        break;
      }
      case RecordType::kPublish:
        out->request_id = r.getVarint();
        if (!getEffects(r, &out->effects))
            return false;
        break;
    }
    return r.ok();
}

Wal::Wal(Config cfg, metrics::Registry *registry)
    : cfg_(std::move(cfg)), registry_(registry)
{
    EXIST_ASSERT(!cfg_.dir.empty(), "wal dir must not be empty");
    std::error_code ec;
    fs::create_directories(cfg_.dir, ec);
    EXIST_ASSERT(!ec, "wal: cannot create dir %s: %s",
                 cfg_.dir.c_str(), ec.message().c_str());

    // Find the next LSN: the last segment's start + its valid record
    // count. A torn tail (or a header-less segment from a crash during
    // rotation) simply bounds the scan — appends land in a fresh
    // segment, never after possibly-torn bytes.
    std::vector<std::string> segments = listSegments(cfg_.dir);
    MutexLock lk(mu_);
    if (!segments.empty()) {
        const std::string &last = segments.back();
        SegmentScan scan = scanSegment(last);
        if (scan.header_ok) {
            next_lsn_ = scan.start_lsn + scan.records.size();
        } else {
            std::uint64_t name_lsn = 0;
            bool named = parseSegmentName(
                fs::path(last).filename().string(), &name_lsn);
            EXIST_ASSERT(named, "wal: unscannable segment %s",
                         last.c_str());
            next_lsn_ = name_lsn;
        }
    }
}

Wal::~Wal()
{
    MutexLock lk(mu_);
    if (file_ != nullptr)
        std::fclose(file_);
}

void
Wal::openSegment()
{
    if (file_ != nullptr)
        std::fclose(file_);
    std::string path =
        (fs::path(cfg_.dir) / segmentName(next_lsn_)).string();
    file_ = std::fopen(path.c_str(), "wb");
    EXIST_ASSERT(file_ != nullptr, "wal: cannot open %s", path.c_str());
    std::vector<std::uint8_t> header;
    net::ByteWriter w(&header);
    w.putU32(kWalMagic);
    w.putU8(kWalVersion);
    w.putU64(next_lsn_);
    std::size_t n = std::fwrite(header.data(), 1, header.size(), file_);
    EXIST_ASSERT(n == header.size(), "wal: short header write");
    segment_payload_ = 0;
    if (registry_ != nullptr)
        registry_->gauge("wal.segments").add(1);
}

std::uint64_t
Wal::append(WalRecord rec)
{
    MutexLock lk(mu_);
    rec.lsn = next_lsn_;
    // Covers encode + write + flush: the span length is the synchronous
    // durability tax every control-plane mutation pays.
    EXIST_SPAN("wal.append",
               obs::corrId(rec.lsn, static_cast<std::uint64_t>(rec.type)));
    std::vector<std::uint8_t> payload = encodeRecord(rec);
    EXIST_ASSERT(payload.size() <= kMaxRecordBytes,
                 "wal: oversized record (%zu bytes)", payload.size());
    if (file_ == nullptr || segment_payload_ >= cfg_.segment_bytes)
        openSegment();

    std::vector<std::uint8_t> frame;
    net::ByteWriter w(&frame);
    w.putU32(static_cast<std::uint32_t>(payload.size()));
    w.putU64(net::fnv1a64(payload.data(), payload.size()));
    w.putBytes(payload.data(), payload.size());
    std::size_t n = std::fwrite(frame.data(), 1, frame.size(), file_);
    EXIST_ASSERT(n == frame.size(), "wal: short record write");
    // Flush before acknowledging: the crash model is process death,
    // which loses stdio buffers but not what the kernel accepted.
    EXIST_ASSERT(std::fflush(file_) == 0, "wal: flush failed");

    segment_payload_ += frame.size();
    next_lsn_ += 1;
    appends_ += 1;
    bytes_ += frame.size();
    if (registry_ != nullptr) {
        registry_->counter("wal.appends").add();
        registry_->counter("wal.bytes").add(frame.size());
    }
    return rec.lsn;
}

std::uint64_t
Wal::nextLsn() const
{
    MutexLock lk(mu_);
    return next_lsn_;
}

std::size_t
Wal::truncateBefore(std::uint64_t lsn)
{
    MutexLock lk(mu_);
    std::vector<std::string> segments = listSegments(cfg_.dir);
    std::size_t removed = 0;
    // A segment is disposable when the NEXT segment starts at or below
    // the barrier: then every record it holds is < lsn. The last
    // (active) segment never qualifies.
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
        std::uint64_t next_start = 0;
        if (!parseSegmentName(
                fs::path(segments[i + 1]).filename().string(),
                &next_start))
            break;
        if (next_start > lsn)
            break;
        std::error_code ec;
        fs::remove(segments[i], ec);
        if (!ec)
            removed += 1;
    }
    if (registry_ != nullptr && removed > 0) {
        registry_->counter("wal.truncated_segments").add(removed);
        registry_->gauge("wal.segments")
            .add(-static_cast<std::int64_t>(removed));
    }
    return removed;
}

std::vector<std::string>
Wal::listSegments(const std::string &dir)
{
    std::vector<std::pair<std::uint64_t, std::string>> found;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        std::uint64_t lsn = 0;
        std::string name = entry.path().filename().string();
        if (parseSegmentName(name, &lsn))
            found.emplace_back(lsn, entry.path().string());
    }
    std::sort(found.begin(), found.end());
    std::vector<std::string> out;
    out.reserve(found.size());
    for (auto &[lsn, path] : found)
        out.push_back(std::move(path));
    return out;
}

Wal::ReplayResult
Wal::replay(const std::string &dir, std::uint64_t from_lsn)
{
    ReplayResult res;
    std::vector<std::string> segments = listSegments(dir);
    std::uint64_t expected = from_lsn;

    for (std::size_t i = 0; i < segments.size(); ++i) {
        bool last = i + 1 == segments.size();
        SegmentScan scan = scanSegment(segments[i]);
        res.bytes_read += scan.bytes;
        std::uint64_t name_lsn = 0;
        parseSegmentName(fs::path(segments[i]).filename().string(),
                         &name_lsn);
        if (!scan.header_ok) {
            // A header-less file is the crash-during-rotation layout —
            // tolerable only as the very tail of the log.
            if (last) {
                res.torn_tail = true;
                break;
            }
            res.error = "unreadable segment header mid-log: " +
                        segments[i];
            return res;
        }
        if (scan.start_lsn != name_lsn) {
            res.error = "segment name/header LSN mismatch: " +
                        segments[i];
            return res;
        }
        if (scan.start_lsn > expected) {
            res.error =
                "WAL gap: segment " + segments[i] + " starts at lsn " +
                std::to_string(scan.start_lsn) + ", expected " +
                std::to_string(expected);
            return res;
        }
        for (std::size_t k = 0; k < scan.records.size(); ++k) {
            WalRecord &rec = scan.records[k];
            if (rec.lsn != scan.start_lsn + k) {
                res.error = "non-contiguous record lsn in " +
                            segments[i];
                return res;
            }
            if (rec.lsn < expected)
                continue;  // below the barrier, or a duplicate
            res.records.push_back(std::move(rec));
            expected += 1;
        }
        if (!scan.clean_end) {
            if (last) {
                res.torn_tail = true;
                break;
            }
            // Torn mid-log is the reopen-after-crash layout only if
            // the next segment resumes where the valid prefix ended.
            std::uint64_t next_start = 0;
            parseSegmentName(
                fs::path(segments[i + 1]).filename().string(),
                &next_start);
            if (next_start > expected) {
                res.error = "records lost after torn record in " +
                            segments[i];
                return res;
            }
        }
    }

    res.ok = true;
    res.next_lsn = expected;
    return res;
}

}  // namespace exist::durability
