/**
 * @file
 * Crash-injection harness for the durability plane (DESIGN.md §12):
 * the journal threads named crash points through every WAL-append /
 * state-apply boundary, and tests arm exactly one of them to die
 * mid-mutation, then recover and byte-compare against a crash-free
 * run.
 *
 * Arming specs:
 *   "post-plan"     die at the first crossing of that named point
 *   "pre-store:3"   die at the 3rd crossing of that named point
 *   "step:17"       die at the 17th crossing of ANY point (the
 *                   randomized event-queue-step mode: every crossing
 *                   increments a global step counter, so a uniformly
 *                   drawn N kills the master at an arbitrary
 *                   journal-order boundary)
 *
 * Crash-point catalog (where `hit()` is called):
 *   admit          after the kAdmit WAL append, before the request is
 *                  inserted into the API-server map
 *   post-plan      after the kPlan append, before the phase flip
 *   ingest-frame   after a kIngestBatch append, before the ack that
 *                  lets the agent advance
 *   pre-store      after the kPublish append (full effects logged),
 *                  before any store/ledger/report state is written
 *   mid-snapshot   after the snapshot tmp file is written, before the
 *                  atomic rename
 *   post-snapshot  after the rename, before old segments truncate
 *
 * Two crash styles:
 *   - default handler: fprintf + std::_Exit(42) — a real process
 *     death for the existctl subprocess tests (nothing but flushed
 *     WAL bytes survives);
 *   - test handler: throw CrashInjected{} — in-process matrix tests
 *     run the control plane with threads=1 so the exception unwinds
 *     to the driver on the calling thread, the "dead" master's state
 *     is discarded, and recovery runs in the same process.
 *
 * Thread-safety: arming/disarming happens only between runs; hit()
 * uses atomics so concurrent shard threads may cross points freely.
 */
#ifndef EXIST_DURABILITY_CRASH_POINT_H
#define EXIST_DURABILITY_CRASH_POINT_H

#include <cstdint>
#include <string>

namespace exist::durability::crashpoint {

/** Thrown by a test-installed handler; never escapes production use
 *  (the default handler exits the process). */
struct CrashInjected {
    std::string point;
};

using Handler = void (*)(const std::string &point);

/** Arm a crash spec (see file comment). Empty string disarms. */
void arm(const std::string &spec);
void disarm();
bool armed();

/** Install the crash handler (nullptr = restore the default
 *  _Exit(42) handler). Returns the previous handler. */
Handler setHandler(Handler h);

/** Crossings of any point since the last resetSteps(). Counted even
 *  while disarmed, so a crash-free run measures the step space the
 *  randomized mode draws from. */
std::uint64_t steps();
void resetSteps();

/** Cross the named point: bumps the step counter, fires when armed. */
void hit(const char *point);

}  // namespace exist::durability::crashpoint

#endif  // EXIST_DURABILITY_CRASH_POINT_H
