/**
 * @file
 * Segmented, checksummed write-ahead log of control-plane mutations
 * (DESIGN.md §12). Record stream, in CommitLog global-id order for
 * everything sequenced (admissions may interleave across shards; they
 * are keyed by id and order-independent):
 *
 *   kMeta         cluster identity: seed, topology, shard count,
 *                 deployments — everything recovery needs to rebuild
 *                 the Cluster and verify determinism
 *   kAdmit        request admission: id + canonical manifest
 *   kPlan         planning finished: id, the private plan seed
 *                 splitmix64(cluster seed, id) (verified on replay —
 *                 a mismatch means the recovering binary would plan
 *                 differently, which must fail loudly, not diverge),
 *                 and the phase outcome
 *   kIngestBatch  ingest watermark: one in-order-consumed batch
 *                 (request, node, stream, seq, chunk bytes) — the
 *                 cursor agent streams resume from
 *   kPublish      physical redo of one publish: the full report, OSS
 *                 objects, ODPS rows and coverage-ledger delta, so a
 *                 completed request is never re-run after recovery
 *
 * On-disk format (all integers little-endian / LEB128 via net/wire.h):
 *
 *   segment file  wal-<%016llx start_lsn>.seg
 *     header      u32 magic "EXWL" | u8 version | u64 start_lsn
 *     record*     u32 payload_len | u64 fnv1a64(payload) | payload
 *     payload     u8 type | varint lsn | type-specific body
 *
 * LSNs start at 1 and are contiguous across segments; a segment's
 * name/header carry the LSN of its first record. Appends fflush()
 * before returning — the crash model is process death (std::_Exit in
 * the crash harness), which loses user-space buffers but not data the
 * kernel accepted — so every acknowledged append survives the crash.
 *
 * Replay rules (the loud-failure contract the corruption fuzz pins):
 *   - a record that fails framing/checksum/parse *in the last
 *     segment* is a torn tail: replay stops cleanly before it;
 *   - the same mid-log is tolerated only if the next segment resumes
 *     at or below the expected LSN (the crash-then-reopen layout);
 *     otherwise records are missing -> hard error;
 *   - a valid record below the expected LSN is a duplicate (segment
 *     copied or re-delivered) and is skipped; above it -> gap ->
 *     hard error. Recovery therefore never silently diverges.
 */
#ifndef EXIST_DURABILITY_WAL_H
#define EXIST_DURABILITY_WAL_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "cluster/control_journal.h"
#include "cluster/metrics.h"
#include "net/wire.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace exist::durability {

inline constexpr std::uint32_t kWalMagic = 0x4C575845;  // "EXWL"
inline constexpr std::uint8_t kWalVersion = 1;
/** Framing sanity bound; a length prefix past this is corruption. */
inline constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

/** Cluster identity, logged first and embedded in every snapshot. */
struct ClusterMeta {
    std::uint64_t cluster_seed = 0;
    int num_nodes = 0;
    int cores_per_node = 0;
    /** API-server shard count the log was written under; 0 = the
     *  serial Master. Recovery rebuilds the same control plane. */
    int shards = 0;
    std::uint64_t snapshot_interval = 0;
    /** (app, replicas) in deploy order. */
    std::vector<std::pair<std::string, int>> deployments;

    bool operator==(const ClusterMeta &) const = default;
};

enum class RecordType : std::uint8_t {
    kMeta = 1,
    kAdmit = 2,
    kPlan = 3,
    kIngestBatch = 4,
    kPublish = 5,
};

const char *recordTypeName(RecordType t);

/** One WAL record (tagged by `type`; unrelated fields stay empty). */
struct WalRecord {
    std::uint64_t lsn = 0;  ///< assigned by Wal::append
    RecordType type = RecordType::kMeta;

    ClusterMeta meta;             // kMeta
    std::uint64_t request_id = 0; // kAdmit/kPlan/kIngestBatch/kPublish
    std::string manifest;         // kAdmit
    std::uint64_t plan_seed = 0;  // kPlan
    std::uint8_t outcome = 0;     // kPlan (RequestPhase)
    NodeId node = kInvalidId;     // kIngestBatch
    std::uint64_t stream = 0;     // kIngestBatch
    std::uint64_t seq = 0;        // kIngestBatch
    std::uint64_t total_batches = 0;       // kIngestBatch
    std::vector<std::uint8_t> chunk;       // kIngestBatch
    PublishEffects effects;       // kPublish
};

/** Shared serializers (the snapshot image reuses them). All readers
 *  go through the latching ByteReader: corrupt input returns false,
 *  never UB. */
void putMeta(net::ByteWriter &w, const ClusterMeta &m);
bool getMeta(net::ByteReader &r, ClusterMeta *out);
void putReport(net::ByteWriter &w, const TraceReport &report);
bool getReport(net::ByteReader &r, TraceReport *out);
void putRow(net::ByteWriter &w, const TraceRow &row);
bool getRow(net::ByteReader &r, TraceRow *out);
void putEffects(net::ByteWriter &w, const PublishEffects &fx);
bool getEffects(net::ByteReader &r, PublishEffects *out);

/** Serialize a record payload (type + lsn + body). */
std::vector<std::uint8_t> encodeRecord(const WalRecord &rec);
/** Parse a record payload; false on any malformation. */
bool decodeRecord(const std::uint8_t *data, std::size_t size,
                  WalRecord *out);

class Wal
{
  public:
    struct Config {
        std::string dir;
        /** Rotate to a new segment past this many payload bytes. */
        std::size_t segment_bytes = 256 * 1024;
    };

    /**
     * Open `dir` for appending: scans existing segments for the last
     * valid LSN and starts a *new* segment at the next one (never
     * appends after a possibly-torn tail). Creates the directory if
     * missing. Fatal on an unscannable directory.
     */
    explicit Wal(Config cfg, metrics::Registry *registry = nullptr);
    ~Wal();

    Wal(const Wal &) = delete;
    Wal &operator=(const Wal &) = delete;

    /** Append + flush one record; returns its LSN. */
    std::uint64_t append(WalRecord rec) EXIST_EXCLUDES(mu_);

    /** LSN the next append will get. */
    std::uint64_t nextLsn() const EXIST_EXCLUDES(mu_);

    /**
     * Delete segments wholly below `lsn` (their every record is
     * covered by a snapshot barrier <= lsn). The active segment is
     * never deleted. Returns the number of segments removed.
     */
    std::size_t truncateBefore(std::uint64_t lsn) EXIST_EXCLUDES(mu_);

    /** Segment paths in `dir`, sorted by start LSN. */
    static std::vector<std::string> listSegments(const std::string &dir);

    struct ReplayResult {
        bool ok = false;
        std::string error;
        /** Contiguous records with lsn >= from_lsn, in LSN order. */
        std::vector<WalRecord> records;
        std::uint64_t next_lsn = 1;
        std::uint64_t bytes_read = 0;
        bool torn_tail = false;  ///< stopped at a torn final record
    };

    /** Read back the log from `from_lsn` under the rules in the file
     *  comment. Pure read: usable while no Wal has the dir open. */
    static ReplayResult replay(const std::string &dir,
                               std::uint64_t from_lsn);

  private:
    void openSegment() EXIST_REQUIRES(mu_);

    const Config cfg_;
    metrics::Registry *registry_;

    mutable Mutex mu_{lockorder::LockRank::kWal, "durability.wal"};
    std::FILE *file_ EXIST_GUARDED_BY(mu_) = nullptr;
    std::size_t segment_payload_ EXIST_GUARDED_BY(mu_) = 0;
    std::uint64_t next_lsn_ EXIST_GUARDED_BY(mu_) = 1;
    std::uint64_t appends_ EXIST_GUARDED_BY(mu_) = 0;
    std::uint64_t bytes_ EXIST_GUARDED_BY(mu_) = 0;
};

}  // namespace exist::durability

#endif  // EXIST_DURABILITY_WAL_H
