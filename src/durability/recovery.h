/**
 * @file
 * Deterministic crash recovery (DESIGN.md §12): load the newest valid
 * snapshot, replay the WAL tail from its barrier, and hand back a
 * state image the control plane resumes from:
 *
 *  - kMeta        sets (or cross-checks) the cluster identity; the
 *                 caller rebuilds the same topology + shard layout
 *  - kAdmit       re-inserts the request as kPending
 *  - kPlan        VERIFIES the logged plan seed against what this
 *                 binary would derive (splitmix64 of cluster seed and
 *                 id) — a mismatch means replanning would diverge, so
 *                 recovery fails loudly — then applies the outcome
 *  - kIngestBatch advances that stream's resume cursor (contiguous
 *                 seq required) and extends its reassembled prefix
 *  - kPublish     applies the physical redo: report, objects, rows,
 *                 ledger delta; the request completes without re-run
 *
 * After replay, requests still kRunning were mid-flight at the crash:
 * they reset to kPending and re-plan from their logged seeds, which
 * reproduces the identical plan — so the recovered run's reports are
 * byte-identical to a crash-free execution.
 *
 * recover() never terminates the process on corrupt input: it returns
 * ok=false with the reason, which the corruption fuzz pins as the
 * loud-failure contract.
 */
#ifndef EXIST_DURABILITY_RECOVERY_H
#define EXIST_DURABILITY_RECOVERY_H

#include <cstdint>
#include <string>

#include "cluster/control_journal.h"
#include "cluster/metrics.h"
#include "durability/snapshot.h"
#include "durability/wal.h"

namespace exist::durability {

/** What a recovered control plane starts from. */
struct RecoveredState {
    ClusterMeta meta;
    ControlStateDump dump;
    /** In-flight ingest cursors keyed (request, node, stream); feed
     *  into Journal::setResume so agent streams skip re-shipping
     *  already-consumed batches. */
    CursorMap resume;

    struct Telemetry {
        std::uint64_t wal_records = 0;
        std::uint64_t wal_bytes = 0;
        bool snapshot_used = false;
        std::uint64_t snapshot_barrier = 0;
        std::uint64_t replayed_publishes = 0;
        std::uint64_t pending_requests = 0;  ///< re-plan after recovery
    } telemetry;
};

struct RecoveryResult {
    bool ok = false;
    std::string error;
    RecoveredState state;
};

/**
 * Recover the control plane from `dir` (snapshot images + WAL
 * segments). Publishes recovery.* metrics when `registry` is given.
 */
RecoveryResult recover(const std::string &dir,
                       metrics::Registry *registry = nullptr);

}  // namespace exist::durability

#endif  // EXIST_DURABILITY_RECOVERY_H
