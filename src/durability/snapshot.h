/**
 * @file
 * Versioned, checksummed snapshots of the control plane (DESIGN.md
 * §12): a full ControlStateDump (requests by phase, reports, coverage
 * ledger, store manifests) plus the cluster meta and any in-flight
 * ingest cursors, taken at a quiesced reconcile boundary. The
 * `barrier_lsn` is the WAL position the image covers: recovery loads
 * the newest valid snapshot and replays only records at or past the
 * barrier, so recovery latency is bounded by the snapshot interval,
 * not the experiment length.
 *
 * On-disk format: snap-<%016llx barrier_lsn>.img
 *   u32 magic "EXSN" | u8 version | u64 body_len | u64 fnv1a64(body)
 *   body: meta | barrier_lsn | ControlStateDump | cursors
 *
 * Atomicity: the image is written to `<path>.tmp`, flushed, then
 * renamed — a crash mid-write leaves a `.tmp` recovery ignores. Two
 * most-recent snapshots are retained (pruneSnapshots), and the WAL is
 * truncated only below the *older* kept barrier, so a corrupt newest
 * image still recovers from the previous one plus a longer tail.
 */
#ifndef EXIST_DURABILITY_SNAPSHOT_H
#define EXIST_DURABILITY_SNAPSHOT_H

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/control_journal.h"
#include "durability/wal.h"

namespace exist::durability {

inline constexpr std::uint32_t kSnapMagic = 0x4E535845;  // "EXSN"
inline constexpr std::uint8_t kSnapVersion = 1;

/** Ingest cursors keyed (request id, node, stream). Empty at the
 *  quiesced barriers the journal snapshots at; carried in the image
 *  format so a future mid-epoch snapshotter needs no format bump. */
using CursorMap =
    std::map<std::tuple<std::uint64_t, NodeId, std::uint64_t>,
             StreamResume>;

struct SnapshotState {
    ClusterMeta meta;
    std::uint64_t barrier_lsn = 1;
    ControlStateDump dump;
    CursorMap cursors;
};

/**
 * Write one snapshot image into `dir` (tmp + rename; crosses the
 * mid-snapshot crash point between flush and rename). Returns false
 * with `*error` set on I/O failure.
 */
bool writeSnapshot(const std::string &dir, const SnapshotState &state,
                   std::string *error);

/** (barrier_lsn, path) of every non-tmp image in `dir`, ascending. */
std::vector<std::pair<std::uint64_t, std::string>>
listSnapshots(const std::string &dir);

/** Delete all but the `keep` newest images; returns removed count. */
std::size_t pruneSnapshots(const std::string &dir, std::size_t keep);

struct SnapshotLoad {
    bool found = false;  ///< at least one image existed
    bool ok = false;     ///< `state` holds a validated image
    std::string path;
    std::string error;  ///< why the newest candidate(s) failed
    SnapshotState state;
};

/**
 * Load the newest image that validates end to end (magic, version,
 * checksum, full parse). A corrupt newer image is skipped with its
 * reason recorded — falling back to an older barrier is safe because
 * truncation preserved the WAL tail behind it.
 */
SnapshotLoad loadNewestSnapshot(const std::string &dir);

}  // namespace exist::durability

#endif  // EXIST_DURABILITY_SNAPSHOT_H
