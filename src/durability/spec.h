/**
 * @file
 * Durability knobs a TraceRequest / experiment can ask for. Kept
 * header-only and dependency-free so analysis/testbed.h can embed it
 * the same way it embeds net::NetSpec: Testbed::run itself ignores
 * durability — journaling is applied by the cluster layer
 * (durability/journal.h) around the control-plane mutations, so the
 * analysis layer stays independent of the durability plane.
 */
#ifndef EXIST_DURABILITY_SPEC_H
#define EXIST_DURABILITY_SPEC_H

#include <cstdint>
#include <string>

namespace exist::durability {

struct DurabilitySpec {
    /** Directory holding WAL segments + snapshots; empty = durability
     *  off (the historical in-memory-only control plane). */
    std::string wal_dir;
    /** Take a snapshot after this many publishes since the last one
     *  (0 = never snapshot; recovery then replays the whole WAL). */
    std::uint64_t snapshot_interval = 8;

    bool enabled() const { return !wal_dir.empty(); }
};

}  // namespace exist::durability

#endif  // EXIST_DURABILITY_SPEC_H
