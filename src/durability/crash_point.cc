#include "durability/crash_point.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace exist::durability::crashpoint {

namespace {

[[noreturn]] void
defaultHandler(const std::string &point)
{
    // A real crash for subprocess tests: flush nothing, run no
    // destructors — only bytes already fsynced/flushed to the WAL
    // survive, which is exactly the guarantee recovery must meet.
    std::fprintf(stderr, "crash-point: dying at '%s'\n", point.c_str());
    // Flight-recorder last words (hook installed by the obs plane):
    // the per-thread event tails are the evidence of what led here.
    invokeCrashDumpHook(stderr);
    std::fflush(stderr);
    std::_Exit(42);
}

// Armed spec, parsed. `point` empty means step mode. Writes happen
// only from arm()/disarm() between runs; hit() readers use the atomic
// `armed_` gate first, so torn reads of the strings cannot occur
// while a run is in flight.
std::string armed_point;
std::uint64_t armed_count = 1;
std::atomic<bool> armed_flag{false};
std::atomic<std::uint64_t> point_hits{0};  ///< crossings of armed_point
std::atomic<std::uint64_t> step_count{0};
std::atomic<Handler> handler{&defaultHandler};

}  // namespace

void
arm(const std::string &spec)
{
    if (spec.empty()) {
        disarm();
        return;
    }
    std::string point = spec;
    std::uint64_t count = 1;
    if (auto colon = spec.rfind(':'); colon != std::string::npos) {
        point = spec.substr(0, colon);
        count = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
        EXIST_ASSERT(count > 0, "crash-point count must be >= 1 in '%s'",
                     spec.c_str());
    }
    if (point == "step") {
        armed_point.clear();
    } else {
        armed_point = point;
    }
    armed_count = count;
    point_hits.store(0, std::memory_order_relaxed);
    step_count.store(0, std::memory_order_relaxed);
    armed_flag.store(true, std::memory_order_release);
}

void
disarm()
{
    armed_flag.store(false, std::memory_order_release);
    armed_point.clear();
    armed_count = 1;
    point_hits.store(0, std::memory_order_relaxed);
}

bool
armed()
{
    return armed_flag.load(std::memory_order_acquire);
}

Handler
setHandler(Handler h)
{
    return handler.exchange(h != nullptr ? h : &defaultHandler);
}

std::uint64_t
steps()
{
    return step_count.load(std::memory_order_relaxed);
}

void
resetSteps()
{
    step_count.store(0, std::memory_order_relaxed);
}

void
hit(const char *point)
{
    std::uint64_t step =
        step_count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!armed_flag.load(std::memory_order_acquire))
        return;
    if (armed_point.empty()) {  // step mode
        if (step == armed_count)
            handler.load()(std::string("step:") + point);
        return;
    }
    if (armed_point != point)
        return;
    std::uint64_t nth =
        point_hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (nth == armed_count)
        handler.load()(armed_point);
}

}  // namespace exist::durability::crashpoint
