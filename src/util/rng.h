/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * We implement xoshiro256** seeded through splitmix64 rather than using
 * std::mt19937 so that streams are cheap to fork (every thread, workload
 * and node gets an independent, reproducible stream derived from a
 * top-level experiment seed).
 */
#ifndef EXIST_UTIL_RNG_H
#define EXIST_UTIL_RNG_H

#include <cmath>
#include <cstdint>

namespace exist {

/** splitmix64 step, used for seeding and stream splitting. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator. Small, fast, and forkable: fork(tag) derives an
 * independent stream, so sub-components never perturb each other's
 * randomness when the experiment configuration changes.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            uniformInt(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Standard normal via Box-Muller (one value per call). */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(6.28318530717958647692 * u2);
        return mean + stddev * z;
    }

    /** Lognormal with the given *underlying* normal mu/sigma. */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(normal(mu, sigma));
    }

    /** Derive an independent child stream for a tagged sub-component. */
    Rng
    fork(std::uint64_t tag)
    {
        std::uint64_t sm = next() ^ (tag * 0xd1342543de82ef95ULL);
        return Rng(splitmix64(sm));
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

}  // namespace exist

#endif  // EXIST_UTIL_RNG_H
