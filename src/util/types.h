/**
 * @file
 * Fundamental time and identifier types for the EXIST simulation.
 *
 * The simulator keeps virtual time in CPU cycles of a fixed-frequency
 * model clock. All overhead numbers reported by the benchmark harness are
 * ratios of virtual times, so the absolute frequency only sets the scale
 * of the simulation (how many block-level events one virtual second
 * costs), not the reproduced results.
 */
#ifndef EXIST_UTIL_TYPES_H
#define EXIST_UTIL_TYPES_H

#include <cstdint>

namespace exist {

/** Virtual time, expressed in model CPU cycles. */
using Cycles = std::uint64_t;

/** Model clock frequency in cycles per virtual second.
 *
 * One model cycle stands for a fixed slice of real CPU work. The model
 * core runs at 250 MHz; a production 2+ GHz core is represented by
 * scaling trace-data volume (see hwtrace::kTraceByteScale) rather than by
 * simulating 10x more branches. All reported overheads are time ratios
 * and are invariant to this choice.
 */
inline constexpr Cycles kCyclesPerSecond = 250'000'000;
inline constexpr Cycles kCyclesPerMs = kCyclesPerSecond / 1'000;
inline constexpr Cycles kCyclesPerUs = kCyclesPerSecond / 1'000'000;

/** Convert seconds (double) to model cycles. */
constexpr Cycles
secondsToCycles(double s)
{
    return static_cast<Cycles>(s * static_cast<double>(kCyclesPerSecond));
}

/** Convert model cycles to seconds. */
constexpr double
cyclesToSeconds(Cycles c)
{
    return static_cast<double>(c) / static_cast<double>(kCyclesPerSecond);
}

/** Convert microseconds to model cycles. */
constexpr Cycles
usToCycles(double us)
{
    return static_cast<Cycles>(us * static_cast<double>(kCyclesPerUs));
}

/** Convert model cycles to milliseconds. */
constexpr double
cyclesToMs(Cycles c)
{
    return static_cast<double>(c) / static_cast<double>(kCyclesPerMs);
}

/** Identifier types. Signed so that -1 can mean "invalid". */
using CoreId = int;
using ProcessId = int;
using ThreadId = int;
using NodeId = int;
using PodId = int;

inline constexpr int kInvalidId = -1;

}  // namespace exist

#endif  // EXIST_UTIL_TYPES_H
