/**
 * @file
 * Clang thread-safety annotations (Envoy/abseil style) plus the
 * repo's annotated locking primitives. Every mutex in src/ is an
 * `exist::Mutex` and every guarded field carries EXIST_GUARDED_BY, so
 * a Clang build with -DEXIST_THREAD_SAFETY=ON (the default under
 * Clang) proves the locking discipline at compile time:
 *
 *   class RegionQueue {
 *     Mutex mu_{lockorder::LockRank::kDecodeQueue, "decode.queue"};
 *     std::deque<TraceRegion> q_ EXIST_GUARDED_BY(mu_);
 *   };
 *
 * Under GCC (or with the option off) the attributes expand to nothing
 * and Mutex is a plain std::mutex wrapper. Under
 * -DEXIST_DEBUG_LOCK_ORDER=ON every Mutex additionally registers its
 * acquisitions with the runtime lock-order validator
 * (util/lock_order.h), which catches deadlock *candidates* — opposite
 * nesting orders — that neither TSan nor the static analysis can see.
 *
 * The raw std::mutex family is banned in src/ outside this header and
 * the validator itself; tools/determinism_lint.py enforces that.
 */
#ifndef EXIST_UTIL_THREAD_ANNOTATIONS_H
#define EXIST_UTIL_THREAD_ANNOTATIONS_H

#include <condition_variable>  // lint-allow: raw-locking (wrapped here)
#include <mutex>               // lint-allow: raw-locking (wrapped here)

#include "util/lock_order.h"

// --- Attribute macros -----------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define EXIST_TS_ATTR(x) __attribute__((x))
#else
#define EXIST_TS_ATTR(x)  // no-op: the analysis is Clang-only
#endif

/** Class is a lockable capability ("mutex"). */
#define EXIST_CAPABILITY(x) EXIST_TS_ATTR(capability(x))
/** RAII class whose lifetime equals a capability hold. */
#define EXIST_SCOPED_CAPABILITY EXIST_TS_ATTR(scoped_lockable)
/** Field may only be touched while holding `x`. */
#define EXIST_GUARDED_BY(x) EXIST_TS_ATTR(guarded_by(x))
/** Pointee may only be touched while holding `x`. */
#define EXIST_PT_GUARDED_BY(x) EXIST_TS_ATTR(pt_guarded_by(x))
/** Caller must hold the listed capabilities. */
#define EXIST_REQUIRES(...) \
    EXIST_TS_ATTR(requires_capability(__VA_ARGS__))
/** Function acquires the listed capabilities (empty: `this`). */
#define EXIST_ACQUIRE(...) \
    EXIST_TS_ATTR(acquire_capability(__VA_ARGS__))
/** Function releases the listed capabilities (empty: `this`). */
#define EXIST_RELEASE(...) \
    EXIST_TS_ATTR(release_capability(__VA_ARGS__))
/** Function acquires the capability iff it returns `b`. */
#define EXIST_TRY_ACQUIRE(b, ...) \
    EXIST_TS_ATTR(try_acquire_capability(b, __VA_ARGS__))
/** Caller must NOT hold the listed capabilities (deadlock guard for
 *  blocking calls). */
#define EXIST_EXCLUDES(...) EXIST_TS_ATTR(locks_excluded(__VA_ARGS__))
/** Function returns a reference to the capability guarding its
 *  result. */
#define EXIST_RETURN_CAPABILITY(x) EXIST_TS_ATTR(lock_returned(x))
/** Escape hatch: disable the analysis for one function. */
#define EXIST_NO_THREAD_SAFETY_ANALYSIS \
    EXIST_TS_ATTR(no_thread_safety_analysis)

namespace exist {

/**
 * The project mutex: std::mutex plus a capability annotation and, in
 * EXIST_DEBUG_LOCK_ORDER builds, a (rank, name) registration with the
 * lock-order validator. In release builds the rank/name constructor
 * arguments compile away entirely — sizeof(Mutex) == sizeof(std::mutex)
 * and lock()/unlock() inline to the std calls.
 */
class EXIST_CAPABILITY("mutex") Mutex
{
  public:
#if defined(EXIST_DEBUG_LOCK_ORDER)
    explicit Mutex(lockorder::LockRank rank = lockorder::LockRank::kLeaf,
                   const char *name = "mutex")
        : rank_(static_cast<int>(rank)), name_(name)
    {
    }
#else
    explicit Mutex(lockorder::LockRank = lockorder::LockRank::kLeaf,
                   const char * = "mutex")
    {
    }
#endif

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() EXIST_ACQUIRE()
    {
#if defined(EXIST_DEBUG_LOCK_ORDER)
        // Register before blocking so an about-to-deadlock acquisition
        // is reported instead of hanging the test.
        lockorder::onAcquire(this, rank_, name_);
#endif
        mu_.lock();
    }

    void
    unlock() EXIST_RELEASE()
    {
        mu_.unlock();
#if defined(EXIST_DEBUG_LOCK_ORDER)
        lockorder::onRelease(this);
#endif
    }

  private:
    std::mutex mu_;
#if defined(EXIST_DEBUG_LOCK_ORDER)
    int rank_;
    const char *name_;
#endif
};

/** RAII lock over an exist::Mutex (annotated std::lock_guard). */
class EXIST_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) EXIST_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() EXIST_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable waiting directly on an exist::Mutex (it is a
 * BasicLockable, so condition_variable_any applies). Callers hold the
 * mutex and open-code the predicate loop:
 *
 *   MutexLock lk(mu_);
 *   while (!ready_)        // ready_ is EXIST_GUARDED_BY(mu_)
 *       cv_.wait(mu_);
 *
 * keeping every guarded access inside the annotated function body
 * (predicate lambdas would escape the analysis).
 */
class CondVar
{
  public:
    /** Atomically release `mu`, sleep, reacquire. Spurious wakeups
     *  happen; always wrap in a predicate loop. */
    void
    wait(Mutex &mu) EXIST_REQUIRES(mu)
    {
        cv_.wait(mu);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

}  // namespace exist

#endif  // EXIST_UTIL_THREAD_ANNOTATIONS_H
