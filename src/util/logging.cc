#include "util/logging.h"

#include <cstdarg>

namespace exist {

namespace {
int g_verbosity = 1;
}  // namespace

int
logVerbosity()
{
    return g_verbosity;
}

void
setLogVerbosity(int level)
{
    g_verbosity = level;
}

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

void
message(const char *kind, int min_level, const std::string &msg)
{
    if (g_verbosity >= min_level)
        std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

void
terminate(const char *kind, const std::string &msg, const char *file,
          int line, bool core_dump)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    if (core_dump)
        std::abort();
    std::exit(1);
}

}  // namespace detail
}  // namespace exist
