#include "util/logging.h"

#include <chrono>
#include <cstdarg>

#include "util/thread_annotations.h"

namespace exist {

namespace {

int g_verbosity = 1;
CrashDumpHook g_crash_dump_hook = nullptr;

/** Leaf-ranked sink lock: one fully formatted line per acquisition, so
 *  concurrent writers never interleave mid-line. Never held across any
 *  other acquire. */
Mutex &
sinkMutex()
{
    static Mutex mu(lockorder::LockRank::kLeaf, "log.sink");
    return mu;
}

/** Monotonic milliseconds since the first log line of the process. */
double
monotonicMs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point base = clock::now();
    return std::chrono::duration<double, std::milli>(clock::now() - base)
        .count();
}

}  // namespace

int
logVerbosity()
{
    return g_verbosity;
}

void
setLogVerbosity(int level)
{
    g_verbosity = level;
}

CrashDumpHook
setCrashDumpHook(CrashDumpHook hook)
{
    CrashDumpHook prev = g_crash_dump_hook;
    g_crash_dump_hook = hook;
    return prev;
}

void
invokeCrashDumpHook(std::FILE *out)
{
    if (g_crash_dump_hook)
        g_crash_dump_hook(out);
}

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

void
sinkLine(const char *level, const char *component, const std::string &msg)
{
    double ms = monotonicMs();
    MutexLock lock(sinkMutex());
    std::fprintf(stderr, "[%10.3f] %-5s %s | %s\n", ms, level, component,
                 msg.c_str());
}

void
message(const char *kind, int min_level, const std::string &msg)
{
    if (g_verbosity >= min_level)
        sinkLine(kind, "exist", msg);
}

void
terminate(const char *kind, const std::string &msg, const char *file,
          int line, bool core_dump)
{
    sinkLine(kind, "exist",
             format("%s (%s:%d)", msg.c_str(), file, line));
    // Last words: the flight recorder's view of every thread's recent
    // events, when the obs plane is linked in.
    invokeCrashDumpHook(stderr);
    if (core_dump)
        std::abort();
    std::exit(1);
}

}  // namespace detail
}  // namespace exist
