/**
 * @file
 * Statistics helpers used throughout the harness: running moments,
 * percentile extraction, histograms and empirical CDFs.
 */
#ifndef EXIST_UTIL_STATS_H
#define EXIST_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace exist {

/** Welford running mean/variance accumulator. */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Sample reservoir with percentile queries. Keeps all samples; intended
 * for per-experiment latency distributions (at most a few million values).
 */
class Samples
{
  public:
    void add(double x) { values_.push_back(x); sorted_ = false; }
    void reserve(std::size_t n) { values_.reserve(n); }

    std::size_t count() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    double mean() const;
    double sum() const;
    double min() const;
    double max() const;

    /** Percentile in [0, 100] using linear interpolation. */
    double percentile(double p) const;

    const std::vector<double> &values() const { return values_; }

  private:
    void sort() const;

    mutable std::vector<double> values_;
    mutable bool sorted_ = false;
};

/** Fixed-bucket histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Empirical cumulative distribution function built from samples.
 * Used to reproduce the paper's Figure 8 (context-switch period CDF).
 */
class Cdf
{
  public:
    explicit Cdf(std::vector<double> samples);

    /** Fraction of samples <= x. */
    double at(double x) const;

    /** Value at the given quantile q in [0, 1]. */
    double quantile(double q) const;

    std::size_t count() const { return sorted_.size(); }

    /** Render as "x f(x)" rows over a log-spaced grid (for plotting). */
    std::string toTable(double lo, double hi, int points) const;

  private:
    std::vector<double> sorted_;
};

}  // namespace exist

#endif  // EXIST_UTIL_STATS_H
