/**
 * @file
 * Minimal logging and error-termination helpers, following the gem5
 * fatal/panic idiom: fatal() is for user errors (bad configuration),
 * panic() is for internal invariant violations (a bug in this library).
 */
#ifndef EXIST_UTIL_LOGGING_H
#define EXIST_UTIL_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace exist {

/** Verbosity level for inform()/warn(); 0 silences both. */
int logVerbosity();

/** Set global log verbosity (0 = quiet, 1 = warn, 2 = inform). */
void setLogVerbosity(int level);

namespace detail {

[[noreturn]] void terminate(const char *kind, const std::string &msg,
                            const char *file, int line, bool core_dump);

void message(const char *kind, int min_level, const std::string &msg);

std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace detail

/** Informational message for the user; printed at verbosity >= 2. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::message("info", 2, detail::format(fmt, args...));
}

/** Warning about suspicious but non-fatal conditions; verbosity >= 1. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::message("warn", 1, detail::format(fmt, args...));
}

/** Terminate because of a user error (bad config, invalid argument). */
#define EXIST_FATAL(...)                                                  \
    ::exist::detail::terminate("fatal", ::exist::detail::format(__VA_ARGS__), \
                               __FILE__, __LINE__, false)

/** Terminate because of an internal bug (invariant violation). */
#define EXIST_PANIC(...)                                                  \
    ::exist::detail::terminate("panic", ::exist::detail::format(__VA_ARGS__), \
                               __FILE__, __LINE__, true)

/** Assert an internal invariant with a formatted message. */
#define EXIST_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            EXIST_PANIC(__VA_ARGS__);                                     \
    } while (0)

}  // namespace exist

#endif  // EXIST_UTIL_LOGGING_H
