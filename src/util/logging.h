/**
 * @file
 * Structured logging and error-termination helpers, following the gem5
 * fatal/panic idiom: fatal() is for user errors (bad configuration),
 * panic() is for internal invariant violations (a bug in this library).
 *
 * Every line goes through a single serialized sink, so concurrent
 * writers (pool workers, agent callbacks, shard reconcilers) can never
 * interleave mid-line, and carries a structured prefix:
 *
 *   [   123.456] warn  agent | resend budget exhausted
 *
 * — a monotonic millisecond timestamp since process start, the level,
 * and the emitting component.  All logging is stderr-only: stdout is
 * reserved for report bytes and stays byte-comparable across runs.
 *
 * Levels map onto the existing verbosity knob: kError always prints,
 * kWarn and kNote at verbosity >= 1 (kNote is operator telemetry —
 * progress lines from existctl and the collection plane), kInfo at
 * >= 2, kDebug at >= 3.
 *
 * Fatal/panic termination additionally invokes the crash-dump hook if
 * one is installed; src/obs wires the flight recorder in through it so
 * every fatal error is followed by the last events of every thread.
 */
#ifndef EXIST_UTIL_LOGGING_H
#define EXIST_UTIL_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace exist {

/** Verbosity level for inform()/warn(); 0 silences both. */
int logVerbosity();

/** Set global log verbosity (0 = quiet, 1 = warn, 2 = inform). */
void setLogVerbosity(int level);

/** Severity of a log line (selects the prefix and the gate). */
enum class LogLevel {
    kError, ///< always printed
    kWarn,  ///< verbosity >= 1
    kNote,  ///< operator telemetry, verbosity >= 1
    kInfo,  ///< verbosity >= 2
    kDebug, ///< verbosity >= 3
};

/**
 * Hook invoked (with stderr) just before fatal/panic termination and
 * from the durability crash-point handler; returns the previous hook.
 * Installed by the obs plane to dump the flight recorder.
 */
using CrashDumpHook = void (*)(std::FILE *);
CrashDumpHook setCrashDumpHook(CrashDumpHook hook);

/** Invoke the installed crash-dump hook, if any (crash paths). */
void invokeCrashDumpHook(std::FILE *out);

namespace detail {

[[noreturn]] void terminate(const char *kind, const std::string &msg,
                            const char *file, int line, bool core_dump);

void message(const char *kind, int min_level, const std::string &msg);

/** Format one prefixed line and write it atomically to stderr. */
void sinkLine(const char *level, const char *component,
              const std::string &msg);

std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace detail

/** Minimum verbosity at which `level` prints (0 = always). */
constexpr int
logLevelRank(LogLevel level)
{
    switch (level) {
      case LogLevel::kError: return 0;
      case LogLevel::kWarn:
      case LogLevel::kNote: return 1;
      case LogLevel::kInfo: return 2;
      case LogLevel::kDebug: return 3;
    }
    return 0;
}

/** Display name of `level` in the line prefix. */
constexpr const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kError: return "error";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kNote: return "note";
      case LogLevel::kInfo: return "info";
      case LogLevel::kDebug: return "debug";
    }
    return "?";
}

/** Structured log line from `component` at `level`. */
template <typename... Args>
void
logLine(LogLevel level, const char *component, const char *fmt, Args... args)
{
    int rank = logLevelRank(level);
    if (rank != 0 && logVerbosity() < rank)
        return;
    detail::sinkLine(logLevelName(level), component,
                     detail::format(fmt, args...));
}

/** Operator telemetry (progress/config lines); printed at verbosity
 *  >= 1, which is the default — the replacement for bare fprintf. */
template <typename... Args>
void
note(const char *component, const char *fmt, Args... args)
{
    logLine(LogLevel::kNote, component, fmt, args...);
}

/** Informational message for the user; printed at verbosity >= 2. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::message("info", 2, detail::format(fmt, args...));
}

/** Warning about suspicious but non-fatal conditions; verbosity >= 1. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::message("warn", 1, detail::format(fmt, args...));
}

/** Terminate because of a user error (bad config, invalid argument). */
#define EXIST_FATAL(...)                                                  \
    ::exist::detail::terminate("fatal", ::exist::detail::format(__VA_ARGS__), \
                               __FILE__, __LINE__, false)

/** Terminate because of an internal bug (invariant violation). */
#define EXIST_PANIC(...)                                                  \
    ::exist::detail::terminate("panic", ::exist::detail::format(__VA_ARGS__), \
                               __FILE__, __LINE__, true)

/** Assert an internal invariant with a formatted message. */
#define EXIST_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            EXIST_PANIC(__VA_ARGS__);                                     \
    } while (0)

}  // namespace exist

#endif  // EXIST_UTIL_LOGGING_H
