#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace exist {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Samples::sort() const
{
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
}

double
Samples::mean() const
{
    return values_.empty() ? 0.0 : sum() / static_cast<double>(count());
}

double
Samples::sum() const
{
    double s = 0.0;
    for (double v : values_)
        s += v;
    return s;
}

double
Samples::min() const
{
    sort();
    return values_.empty() ? 0.0 : values_.front();
}

double
Samples::max() const
{
    sort();
    return values_.empty() ? 0.0 : values_.back();
}

double
Samples::percentile(double p) const
{
    EXIST_ASSERT(p >= 0.0 && p <= 100.0, "percentile %f out of range", p);
    if (values_.empty())
        return 0.0;
    sort();
    if (values_.size() == 1)
        return values_[0];
    double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, values_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values_[lo] + frac * (values_[hi] - values_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    EXIST_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return bucketLow(i) + width_;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
}

double
Cdf::at(double x) const
{
    if (sorted_.empty())
        return 0.0;
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
Cdf::quantile(double q) const
{
    EXIST_ASSERT(q >= 0.0 && q <= 1.0, "quantile %f out of range", q);
    if (sorted_.empty())
        return 0.0;
    auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted_.size() - 1));
    return sorted_[idx];
}

std::string
Cdf::toTable(double lo, double hi, int points) const
{
    EXIST_ASSERT(lo > 0.0 && hi > lo && points > 1, "bad CDF grid");
    std::string out;
    double log_lo = std::log10(lo);
    double log_hi = std::log10(hi);
    for (int i = 0; i < points; ++i) {
        double x = std::pow(
            10.0, log_lo + (log_hi - log_lo) * i /
                      static_cast<double>(points - 1));
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%12.6g %8.4f\n", x, at(x));
        out += buf;
    }
    return out;
}

}  // namespace exist
