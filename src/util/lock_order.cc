#include "util/lock_order.h"

#include <mutex>
#include <set>
#include <utility>

#include "util/logging.h"

namespace exist::lockorder {

namespace {

struct Held {
    const void *mu;
    int rank;
    const char *name;
};

/**
 * Per-thread stack of held locks, in acquisition order. Deliberately a
 * trivially-destructible fixed array, NOT a std::vector: hooks also run
 * after this thread's TLS destructors (e.g. the shared ThreadPool's
 * static destructor locking its deques at exit), so the stack must have
 * no destructor to run. Depth is the deepest legal nesting of the lock
 * hierarchy plus slack; overflow panics rather than truncating.
 */
constexpr std::size_t kMaxHeld = 64;
thread_local Held t_held[kMaxHeld];
thread_local std::size_t t_held_count = 0;

// Validator-internal state. Deliberately a raw std::mutex: the
// validator cannot instrument itself, and this lock is a leaf by
// construction (nothing is acquired while it is held). The handler and
// edge table are intentionally leaked (never destroyed) because hooks
// still run from atexit destructors — e.g. the shared ThreadPool
// locking its deques — after namespace-scope statics would have died.
// lint-allow: raw-locking
std::mutex g_mu;

Handler &
handlerSlot()
{
    static Handler *slot = new Handler;
    return *slot;
}

/** Observed same-rank acquisition orders (first -> second). */
std::set<std::pair<const void *, const void *>> &
edges()
{
    static auto *set =
        new std::set<std::pair<const void *, const void *>>;
    return *set;
}

void
report(Violation::Kind kind, std::string message)
{
    Handler handler;
    {
        std::lock_guard<std::mutex> lk(g_mu);
        handler = handlerSlot();
    }
    if (handler) {
        handler(Violation{kind, std::move(message)});
        return;
    }
    EXIST_PANIC("lock-order violation: %s", message.c_str());
}

std::string
describe(const void *mu, int rank, const char *name)
{
    return detail::format("%s (rank %d, %p)", name, rank, mu);
}

}  // namespace

Handler
setViolationHandler(Handler handler)
{
    std::lock_guard<std::mutex> lk(g_mu);
    std::swap(handlerSlot(), handler);
    return handler;
}

void
onAcquire(const void *mu, int rank, const char *name)
{
    EXIST_ASSERT(t_held_count < kMaxHeld,
                 "lock nesting deeper than %zu at %s", kMaxHeld,
                 describe(mu, rank, name).c_str());
    for (std::size_t i = 0; i < t_held_count; ++i) {
        if (t_held[i].mu == mu) {
            report(Violation::Kind::kRecursive,
                   detail::format("recursive acquisition of %s",
                                  describe(mu, rank, name).c_str()));
            // Still push: the matching onRelease will pop it.
            break;
        }
    }
    for (std::size_t i = 0; i < t_held_count; ++i) {
        const Held &h = t_held[i];
        if (h.mu == mu)
            continue;
        if (rank < h.rank) {
            report(Violation::Kind::kRankInversion,
                   detail::format(
                       "acquiring %s while holding higher-ranked %s",
                       describe(mu, rank, name).c_str(),
                       describe(h.mu, h.rank, h.name).c_str()));
            break;
        }
        if (rank == h.rank) {
            // Equal-rank nesting: tolerated, but both orders across
            // the program's lifetime form a deadlock candidate.
            bool reverse_seen;
            {
                std::lock_guard<std::mutex> lk(g_mu);
                auto &e = edges();
                reverse_seen = e.count({mu, h.mu}) != 0;
                e.insert({h.mu, mu});
            }
            if (reverse_seen) {
                report(Violation::Kind::kSameRankCycle,
                       detail::format(
                           "same-rank cycle: %s and %s have been "
                           "acquired in both nesting orders",
                           describe(h.mu, h.rank, h.name).c_str(),
                           describe(mu, rank, name).c_str()));
                break;
            }
        }
    }
    t_held[t_held_count++] = Held{mu, rank, name};
}

void
onRelease(const void *mu)
{
    for (std::size_t i = t_held_count; i > 0; --i) {
        if (t_held[i - 1].mu == mu) {
            for (std::size_t j = i - 1; j + 1 < t_held_count; ++j)
                t_held[j] = t_held[j + 1];
            --t_held_count;
            return;
        }
    }
    // A lock acquired before the validator was engaged (or on another
    // thread, for hand-off schemes) — nothing to pop.
}

std::size_t
heldCount()
{
    return t_held_count;
}

void
resetThread()
{
    t_held_count = 0;
}

void
forgetEdges()
{
    std::lock_guard<std::mutex> lk(g_mu);
    edges().clear();
}

}  // namespace exist::lockorder
