/**
 * @file
 * Debug lock-order validation: deadlock detection that TSan cannot
 * provide. Every annotated `exist::Mutex` (util/thread_annotations.h)
 * carries a rank in the repo-wide lock hierarchy; at acquire time a
 * thread-local held-lock stack checks that ranks only ever ascend.
 * Two lock acquisitions that different threads perform in opposite
 * orders deadlock only under the losing interleaving — the validator
 * flags the *ordering rule* violation on whichever interleaving the
 * test happens to run, so one single-threaded pass through the code
 * path is enough to catch it.
 *
 * Checks performed on each acquire:
 *  - recursive acquisition of the same (non-recursive) mutex;
 *  - rank inversion: acquiring a mutex ranked below one already held;
 *  - same-rank cycles: equal-rank nesting is tolerated (e.g. two leaf
 *    caches), but the (A, B) acquisition order is recorded in a global
 *    edge table and the reverse order (B, A) — a deadlock candidate —
 *    is reported.
 *
 * The validator itself is always compiled (so its unit tests run in
 * every build); the *hooks* in exist::Mutex are compiled in only under
 * EXIST_DEBUG_LOCK_ORDER, keeping release mutexes byte-identical to
 * std::mutex.
 *
 * The lock hierarchy (acquire downward only — see DESIGN.md §8):
 *   pool < decode queue < decode core < agent queue < commit log
 *        < ingest < shard < wal < store < metrics < obs < leaf
 */
#ifndef EXIST_UTIL_LOCK_ORDER_H
#define EXIST_UTIL_LOCK_ORDER_H

#include <cstddef>
#include <functional>
#include <string>

namespace exist::lockorder {

/**
 * Ranks of the repo's lock sites. Gaps leave room for new subsystems;
 * what matters is the relative order, which mirrors the nesting the
 * code actually performs (a CommitLog commit action acquires the
 * owning shard's state lock; everything else nests forward into
 * stores/metrics or not at all).
 */
enum class LockRank : int {
    kPool = 0,         ///< runtime/thread_pool deque + idle locks
    kDecodeQueue = 10, ///< streaming decode RegionQueue
    kDecodeCore = 20,  ///< streaming decode per-core stream state
    kAgentQueue = 25,  ///< agent/trace_agent bounded send queue
    kCommitLog = 30,   ///< cluster/shard sequenced commit log
    kIngest = 35,      ///< cluster/ingest reassembly + dedup state
    kShard = 40,       ///< ShardedMaster per-shard API-server state
    kWal = 45,         ///< durability WAL appender (taken inside
                       ///< commit actions and shard/ingest callbacks,
                       ///< before any store/metrics acquire)
    kStore = 50,       ///< striped OSS/ODPS stripe locks
    kMetrics = 60,     ///< metrics registry stripe locks
    kObs = 70,         ///< obs collector dump lock (trace snapshot /
                       ///< flight dump serialization; the span *emit*
                       ///< path is lock-free and never takes it)
    kLeaf = 100,       ///< caches etc. held across no other acquire
};

/** One detected ordering violation. */
struct Violation {
    enum class Kind {
        kRecursive,     ///< same mutex acquired twice by one thread
        kRankInversion, ///< rank below an already-held rank
        kSameRankCycle, ///< equal ranks nested in both orders
    };
    Kind kind;
    std::string message;
};

/**
 * Install a violation handler (tests install a recorder); returns the
 * previous handler. With no handler installed a violation is a panic —
 * the build is a debug build, loudness is the point.
 */
using Handler = std::function<void(const Violation &)>;
Handler setViolationHandler(Handler handler);

/** Record an acquire of `mu` (called BEFORE blocking on it, so an
 *  about-to-deadlock acquire is reported, not deadlocked on). */
void onAcquire(const void *mu, int rank, const char *name);

/** Record a release. Out-of-order release (hand-over-hand) is legal. */
void onRelease(const void *mu);

/** Locks the calling thread currently holds (test introspection). */
std::size_t heldCount();

/** Drop this thread's held stack (test isolation helper). */
void resetThread();

/** Forget all recorded same-rank edges (test isolation helper). */
void forgetEdges();

}  // namespace exist::lockorder

#endif  // EXIST_UTIL_LOCK_ORDER_H
