#include "decode/parallel_decoder.h"

#include "obs/trace_plane.h"
#include "runtime/thread_pool.h"

namespace exist {

ParallelDecoder::ParallelDecoder(const ProgramBinary *prog,
                                 DecodeOptions opts, int threads)
    : reconstructor_(prog, opts)
{
    if (threads == 0) {
        pool_ = &ThreadPool::shared();
    } else if (threads > 1) {
        owned_pool_ = std::make_unique<ThreadPool>(threads);
        pool_ = owned_pool_.get();
    }
}

ParallelDecoder::~ParallelDecoder() = default;

int
ParallelDecoder::threads() const
{
    return pool_ != nullptr ? pool_->size() : 1;
}

std::vector<std::pair<CoreId, DecodedTrace>>
ParallelDecoder::decodeViews(
    const std::vector<TraceBufferView> &views) const
{
    std::vector<std::pair<CoreId, DecodedTrace>> out(views.size());
    auto one = [&](std::size_t i) {
        EXIST_SPAN("decode.buffer",
                   obs::corrId(views[i].core, views[i].size));
        out[i].first = views[i].core;
        out[i].second =
            reconstructor_.decode(views[i].data, views[i].size);
    };
    if (pool_ == nullptr || views.size() <= 1) {
        for (std::size_t i = 0; i < views.size(); ++i)
            one(i);
    } else {
        pool_->parallelFor(0, views.size(), one);
    }
    return out;
}

}  // namespace exist
