#include "decode/flow_reconstructor.h"

#include <algorithm>

#include "util/logging.h"
#include "workload/branch.h"

namespace exist {

/*
 * A property of the real hardware this decoder must honour: the tracer
 * buffers up to six conditional outcomes before emitting a TNT packet,
 * while TIP packets are emitted immediately — so a TIP can appear in
 * the byte stream *before* TNT bits describing earlier branches.
 * Per-kind order is exact, though, so the decoder (like libipt) keeps
 * separate FIFO queues of pending TNT bits and TIP targets and pulls
 * from whichever the current block's terminator requires. PacketEn
 * boundaries flush pending TNT bits, so queues drain at PGD.
 */

namespace {

/**
 * The decoder's per-block working set, resolved either from the flat
 * BlockCache (fast path) or from workload::Program (legacy reference
 * path, kept bit-for-bit as the cache-off baseline). drainT/visitT
 * are templated over these so both paths share one state machine.
 */
struct BlockView {
    std::uint32_t target0;
    std::uint32_t target1;
    std::uint32_t function_id;
    std::uint16_t insns;
    BranchKind kind;
};

/** Deferred-drain flush threshold (bits). TNT packets carry 6 bits
 *  (up to 60 when the parser batches a run), so this defers ~2-5
 *  batched packets — dozens of full memo windows retire per drain and
 *  the drain entry/exit overhead amortizes away, while the deferred
 *  window stays far too small to matter for streaming latency. */
constexpr std::size_t kTntDeferBits = 192;

struct CacheAccess {
    const BlockCache *c;

    BlockView
    view(std::uint32_t b) const
    {
        const BlockInfo &bi = c->info(b);
        return BlockView{bi.target0, bi.target1, bi.function_id,
                         bi.insns, bi.branchKind()};
    }
    bool
    isEntry(std::uint32_t b, std::uint32_t) const
    {
        return c->info(b).isFunctionEntry();
    }
    std::uint32_t
    blockAt(std::uint64_t addr) const
    {
        return c->blockAt(addr);
    }
};

struct ProgAccess {
    const ProgramBinary *p;

    BlockView
    view(std::uint32_t b) const
    {
        const BasicBlock &bb = p->block(b);
        return BlockView{bb.target0, bb.target1, bb.function_id,
                         bb.insns, bb.kind};
    }
    bool
    isEntry(std::uint32_t b, std::uint32_t fid) const
    {
        return p->function(fid).entry_block == b;
    }
    std::uint32_t
    blockAt(std::uint64_t addr) const
    {
        return p->blockAtAddress(addr);
    }
};

}  // namespace

FlowStream::FlowStream(const ProgramBinary *prog, DecodeOptions opts,
                       std::shared_ptr<const BlockCache> cache,
                       TntMemoPool *pool)
    : prog_(prog), opts_(opts), memo_pool_(pool)
{
    if (opts_.block_cache)
        cache_ = cache != nullptr ? std::move(cache)
                                  : BlockCache::forBinary(prog_);
    int k = std::clamp(opts_.tnt_memo_bits, 0,
                       static_cast<int>(TntMemo::kMaxBits));
    // The memo skips the per-visit path recording, so it only engages
    // when the full block path is not requested.
    if (cache_ != nullptr && k > 0 && !opts_.record_path) {
        if (memo_pool_ != nullptr)
            memo_ = memo_pool_->acquire(static_cast<unsigned>(k),
                                        cache_.get());
        if (memo_ == nullptr)
            memo_ = std::make_unique<TntMemo>(static_cast<unsigned>(k),
                                              cache_.get());
        memo_stats_base_ = memo_->stats();
    }
    out_.function_insns.assign(prog_->numFunctions(), 0);
    out_.function_entries.assign(prog_->numFunctions(), 0);
}

FlowStream::~FlowStream()
{
    // A stream abandoned before finish() still returns its memo.
    if (memo_ != nullptr && memo_pool_ != nullptr)
        memo_pool_->release(std::move(memo_));
}

void
FlowStream::openSegment(std::uint64_t offset)
{
    seg_ = DecodedSegment{};
    seg_.start_time = time_;
    seg_.first_offset = offset;
    segment_open_ = true;
}

void
FlowStream::materializeTail()
{
    if (!lazy_tail_stale_)
        return;
    static_tail_.clear();
    if (lazy_tail_len_ != 0) {
        const std::uint32_t *t = memo_->tailAt(lazy_tail_off_);
        for (std::uint8_t i = 0; i < lazy_tail_len_; ++i)
            static_tail_.push_back(t[i]);
    }
    lazy_tail_stale_ = false;
}

void
FlowStream::closeSegment()
{
    if (segment_open_) {
        seg_.end_time = time_;
        out_.segments.push_back(seg_);
        segment_open_ = false;
    }
    materializeTail();
    resume_hint_ = cur_;
    saved_tail_ = static_tail_;
    cur_ = kNoBlock;
    at_syscall_ = false;
    // Unconsumed queue entries at a boundary indicate loss.
    out_.decode_errors += tnt_queue_.size() + tip_queue_.size();
    tnt_queue_.clear();
    tip_queue_.clear();
}

template <typename Access>
void
FlowStream::visitT(const Access &acc, std::uint32_t block)
{
    const BlockView v = acc.view(block);
    out_.insns_decoded += v.insns;
    out_.function_insns[v.function_id] += v.insns;
    if (acc.isEntry(block, v.function_id))
        ++out_.function_entries[v.function_id];
    if (opts_.record_path)
        out_.block_path.push_back(block);
}

void
FlowStream::visit(std::uint32_t block)
{
    if (cache_ != nullptr)
        visitT(CacheAccess{cache_.get()}, block);
    else
        visitT(ProgAccess{prog_}, block);
}

template <typename Access>
void
FlowStream::transitionT(const Access &acc, std::uint32_t next,
                        bool from_packet)
{
    cur_ = next;
    visitT(acc, cur_);
    ++out_.branches_decoded;
    ++seg_.branches;
    if (from_packet) {
        static_tail_.clear();
        lazy_tail_stale_ = false;
    } else {
        materializeTail();
    }
    if (static_tail_.size() < static_tail_.capacity())
        static_tail_.push_back(next);
}

/**
 * Retire a whole memoized TNT run: one table lookup consumes up to k
 * pending outcomes plus every statically-resolvable transfer between
 * them. The entry's counters are exactly what the slow path below
 * would have added (TntMemo replays the same transitions at build
 * time), so applying it is invisible in the output. Falls back —
 * returning false — whenever the entry is unbuildable or would cross
 * the branch budget; the slow path then handles the edge precisely.
 */
bool
FlowStream::tryMemoRun()
{
    const unsigned k = memo_->k();
    const std::uint32_t window_mask = (1u << k) - 1;
    // Stream-wide totals accumulate in locals across the chained runs
    // and flush once at the end: six read-modify-writes per run become
    // six per drain visit, which is measurable at memo hit rates.
    std::uint64_t bits_total = 0;
    std::uint64_t branches_total = 0;
    std::uint64_t insns_total = 0;
    // Inline-delta runs chain within one function for long stretches
    // (a loop body), so their per-function counts accumulate in
    // registers and flush only when the function changes — not per
    // lookup. Pure reassociation of commutative adds: totals match
    // the slow path exactly.
    std::uint32_t acc_fn = kNoBlock;
    std::uint64_t acc_insns = 0;
    std::uint64_t acc_entries = 0;
    auto flushFn = [&]() {
        if (acc_fn != kNoBlock) {
            out_.function_insns[acc_fn] += acc_insns;
            out_.function_entries[acc_fn] += acc_entries;
            acc_insns = 0;
            acc_entries = 0;
            acc_fn = kNoBlock;
        }
    };
    bool chain = true;
    while (chain) {
        // Pull up to 64 pending outcomes into a register once, then
        // chain run after run by shifting locally; the queue is popped
        // once per refill instead of once per lookup.
        const unsigned avail = static_cast<unsigned>(
            std::min<std::size_t>(tnt_queue_.size(), 64));
        if (avail < k)
            break;
        std::uint64_t win = tnt_queue_.peekBits64(avail);
        unsigned consumed = 0;
        while (avail - consumed >= k) {
            const TntMemo::Entry *e = memo_->lookupOrBuild(
                cur_, static_cast<std::uint32_t>(win) & window_mask);
            if (e == nullptr) {
                chain = false;
                break;
            }
            if (out_.branches_decoded + branches_total +
                    e->branchCount() >
                opts_.max_branches) {
                chain = false;
                break;
            }
            const unsigned bits_used = e->bitsUsed();
            win >>= bits_used;
            consumed += bits_used;
            branches_total += e->branchCount();
            insns_total += e->insns;
            const unsigned dl = e->deltaLen();
            if (dl == 0) {
                // Single-function run, delta inlined in the entry:
                // the apply touches no payload cache line, and the
                // counts ride in registers until the function changes.
                if (e->fn != acc_fn) {
                    flushFn();
                    acc_fn = e->fn;
                }
                acc_insns += e->insns;
                acc_entries += e->inlineEntries();
            } else {
                flushFn();
                const TntMemo::FnDelta *deltas = memo_->deltas(e);
                for (unsigned i = 0; i < dl; ++i) {
                    const TntMemo::FnDelta &d = deltas[i];
                    out_.function_insns[d.fn] += d.insns;
                    out_.function_entries[d.fn] += d.entries;
                }
            }
            // The run's first transition is packet-consuming, which
            // clears the tail — so the entry's final tail is
            // independent of ours. It is only *borrowed* here (as an
            // arena offset; not even resolved to a pointer): the next
            // transition usually clears it again unread, and the rare
            // readers materialize the copy. A scratch
            // (arena-over-budget) entry's payload dies on the next
            // lookup, so that one is copied eagerly.
            cur_ = e->end_block;
            lazy_tail_len_ = static_cast<std::uint8_t>(e->tailLen());
            if (memo_->isScratch(e)) {
                static_tail_.clear();
                const std::uint32_t *t = memo_->tail(e);
                for (std::uint8_t i = 0; i < lazy_tail_len_; ++i)
                    static_tail_.push_back(t[i]);
                lazy_tail_stale_ = false;
            } else {
                lazy_tail_off_ = e->tailOffset();
                lazy_tail_stale_ = true;
            }
            // The entry records whether its run ended at a conditional
            // with the window exhausted — i.e. whether the next k bits
            // begin another run — so chaining needs no BlockInfo read.
            if (!e->chainable()) {
                chain = false;
                break;
            }
        }
        tnt_queue_.popBits(consumed);
        bits_total += consumed;
    }
    flushFn();
    if (bits_total == 0)
        return false;
    out_.tnt_bits_consumed += bits_total;
    out_.branches_decoded += branches_total;
    seg_.branches += branches_total;
    out_.insns_decoded += insns_total;
    out_.cache_stats.memo_fast_bits += bits_total;
    return true;
}

// Replay as far as the queued packets allow. With defer_tail (a drain
// triggered by TNT accumulation on a memo-enabled stream), a sub-window
// remainder (< k bits) is left queued for the next drain instead of
// being walked bit by bit: the bits are consumed at the same walk
// position either way, so the output cannot differ, and the remainder
// usually completes a full memoized window once more packets land.
template <typename Access>
void
FlowStream::drainT(const Access &acc, bool defer_tail)
{
    while (cur_ != kNoBlock &&
           out_.branches_decoded < opts_.max_branches) {
        const BlockView v = acc.view(cur_);
        switch (v.kind) {
          case BranchKind::kDirectJump:
          case BranchKind::kDirectCall:
            transitionT(acc, v.target0, /*from_packet=*/false);
            continue;
          case BranchKind::kConditional: {
            if (memo_ != nullptr && tnt_queue_.size() >= memo_->k() &&
                tryMemoRun())
                continue;  // a whole run retired; cur_ advanced
            if (tnt_queue_.empty())
                return;
            if (defer_tail && memo_ != nullptr &&
                tnt_queue_.size() < memo_->k())
                return;
            bool taken = tnt_queue_.front();
            tnt_queue_.pop_front();
            ++out_.tnt_bits_consumed;
            transitionT(acc, taken ? v.target0 : v.target1,
                        /*from_packet=*/true);
            continue;
          }
          case BranchKind::kIndirectJump:
          case BranchKind::kIndirectCall:
          case BranchKind::kReturn: {
            if (tip_queue_.empty())
                return;
            std::uint64_t ip = tip_queue_.front();
            tip_queue_.pop_front();
            ++out_.tips_consumed;
            std::uint32_t nb = acc.blockAt(ip);
            if (nb == kNoBlock) {
                ++out_.decode_errors;
                closeSegment();
                return;
            }
            transitionT(acc, nb, /*from_packet=*/true);
            continue;
          }
          case BranchKind::kSyscall:
            // The tracer emits PGD here and PGE at kernel return;
            // hold position until those arrive.
            at_syscall_ = true;
            return;
        }
    }
}

void
FlowStream::drain(bool defer_tail)
{
    if (cache_ != nullptr)
        drainT(CacheAccess{cache_.get()}, defer_tail);
    else
        drainT(ProgAccess{prog_}, defer_tail);
}

std::uint32_t
FlowStream::blockAt(std::uint64_t addr) const
{
    return cache_ != nullptr ? cache_->blockAt(addr)
                             : prog_->blockAtAddress(addr);
}

void
FlowStream::handlePacket(const Packet &pkt)
{
    // Memo-enabled streams defer the per-TNT-packet drain so whole
    // k-bit windows accumulate for tryMemoRun (the writer flushes TNT
    // packets at 6 bits, so an eager drain would never see a full
    // window). Packets that read or reset walk state (flushDeferred in
    // their case below) first replay the queue to exactly the state the
    // eager drain would have reached. Timing and sideband packets
    // (TSC/CYC/PTW/PIP/MODE/PAD) are exempt: the deferred portion of a
    // drain consumes TNT bits only — every TIP is consumed at its own
    // arrival packet under either discipline — and that walk never
    // reads the clock, so draining across them is invisible in the
    // output.
    auto flushDeferred = [this] {
        if (memo_ != nullptr && !tnt_queue_.empty())
            drain();
    };
    switch (pkt.op) {
      case PacketOp::kExt:
        flushDeferred();
        if (pkt.value == kExtPsb)
            after_resync_ = parser_.resyncCount() > 0;
        break;
      case PacketOp::kTsc:
        time_ = pkt.value;
        break;
      case PacketOp::kCyc:
        time_ += pkt.value;
        break;
      case PacketOp::kTipPge: {
        flushDeferred();
        std::uint32_t b = blockAt(pkt.value);
        if (b == kNoBlock) {
            ++out_.decode_errors;
            break;
        }
        if (at_syscall_ && segment_open_ && cur_ != kNoBlock) {
            // Kernel return: continue the current segment at the
            // syscall continuation.
            at_syscall_ = false;
            if (cache_ != nullptr) {
                transitionT(CacheAccess{cache_.get()}, b,
                            /*from_packet=*/true);
            } else {
                transitionT(ProgAccess{prog_}, b, /*from_packet=*/true);
            }
            drain();
            break;
        }
        if (segment_open_)
            closeSegment();
        openSegment(parser_.offset());
        // When execution resumes where — or statically behind
        // where — the previous segment's decode stopped, the
        // blocks from b to resume_hint were already visited by the
        // static walk that outran the encoded branches; re-visiting
        // them would duplicate path entries. Resume in place.
        bool in_tail = b == resume_hint_;
        for (std::uint32_t tb : saved_tail_)
            in_tail = in_tail || tb == b;
        if (in_tail && resume_hint_ != kNoBlock) {
            cur_ = resume_hint_;
            static_tail_ = saved_tail_;
        } else {
            cur_ = b;
            static_tail_.clear();
            static_tail_.push_back(b);
            visit(cur_);
        }
        drain();
        break;
      }
      case PacketOp::kTipPgd:
        flushDeferred();
        if (at_syscall_) {
            // Expected filter exit at syscall entry: keep the
            // segment open; the matching PGE resumes it.
            break;
        }
        closeSegment();
        break;
      case PacketOp::kTnt6:
        tnt_queue_.pushBits(pkt.tnt_bits,
                            static_cast<unsigned>(pkt.tnt_count));
        if (memo_ == nullptr || tnt_queue_.size() >= kTntDeferBits)
            drain(/*defer_tail=*/memo_ != nullptr);
        break;
      case PacketOp::kTip:
        flushDeferred();
        tip_queue_.push_back(pkt.value);
        drain();
        break;
      case PacketOp::kFup:
        flushDeferred();
        // After a mid-stream resync (ring wrap), the FUP inside
        // the PSB block is the decoder's re-entry point.
        if (after_resync_ && !segment_open_ && pkt.value != 0) {
            std::uint32_t b = blockAt(pkt.value);
            if (b != kNoBlock) {
                openSegment(parser_.offset());
                cur_ = b;
                visit(cur_);
                drain();
            }
            after_resync_ = false;
        }
        break;
      case PacketOp::kOvf:
        flushDeferred();
        ++out_.decode_errors;
        closeSegment();
        break;
      case PacketOp::kPtw:
        out_.ptwrites.emplace_back(time_, pkt.value);
        break;
      case PacketOp::kPip:
      case PacketOp::kMode:
      case PacketOp::kPad:
      case PacketOp::kTntPartial:
        break;
    }
}

void
FlowStream::pump(const std::uint8_t *data, std::size_t size, bool final)
{
    parser_.rebind(data, size);
    parser_.setFinal(final);
    // Replicate the batch loop exactly, including its one-packet
    // lookahead past the branch budget: after the budget check fails,
    // exactly one more packet has been consumed and dropped, and
    // next() is never called again. A packet cut off by a mid-stream
    // chunk boundary is rolled back inside next() itself, so the retry
    // sees the whole packet once the next chunk lands.
    if (budget_exhausted_)
        return;
    Packet pkt;
    while (parser_.next(pkt)) {
        if (out_.branches_decoded >= opts_.max_branches) {
            budget_exhausted_ = true;
            break;
        }
        handlePacket(pkt);
    }
}

void
FlowStream::append(const std::uint8_t *data, std::size_t n)
{
    EXIST_ASSERT(!finished_, "append to a finished FlowStream");
    // Streaming feeds chunks of similar size (ToPA regions), so the
    // current chunk is the best available hint for what follows:
    // reserve ahead of the insert — doubling, never exact-fit, to keep
    // amortized growth — and project the segment vector forward at the
    // density observed so far, replacing log2(chunks) incremental
    // regrows of both with one reservation.
    const std::size_t need = buf_.size() + n;
    if (buf_.capacity() < need)
        buf_.reserve(std::max(need, 2 * buf_.capacity()));
    if (!out_.segments.empty() && !buf_.empty()) {
        const std::size_t projected =
            out_.segments.size() +
            (out_.segments.size() * n) / buf_.size() + 1;
        if (out_.segments.capacity() < projected)
            out_.segments.reserve(
                std::max(projected, 2 * out_.segments.capacity()));
    }
    buf_.insert(buf_.end(), data, data + n);
    pump(buf_.data(), buf_.size(), /*final=*/false);
}

DecodedTrace
FlowStream::seal()
{
    // Flush any TNT bits still deferred for the memo window before the
    // boundary accounting below can mistake them for loss.
    if (memo_ != nullptr && !tnt_queue_.empty())
        drain();
    closeSegment();
    out_.resyncs = parser_.resyncCount();
    if (memo_ != nullptr) {
        // Deltas against the acquire-time snapshot: a pooled memo
        // arrives warm and its lifetime counters keep running.
        const TntMemo::Stats ms = memo_->stats();
        out_.cache_stats.memo_hits = ms.hits - memo_stats_base_.hits;
        out_.cache_stats.memo_misses =
            ms.misses - memo_stats_base_.misses;
        out_.cache_stats.memo_unusable =
            ms.unusable - memo_stats_base_.unusable;
        out_.cache_stats.memo_evictions =
            ms.evictions - memo_stats_base_.evictions;
        out_.cache_stats.memo_bytes = memo_->bytes();
        if (memo_pool_ != nullptr)
            memo_pool_->release(std::move(memo_));
    }
    if (cache_ != nullptr)
        out_.cache_stats.block_cache_bytes = cache_->bytes();
    finished_ = true;
    return std::move(out_);
}

DecodedTrace
FlowStream::finish()
{
    EXIST_ASSERT(!finished_, "FlowStream finished twice");
    pump(buf_.data(), buf_.size(), /*final=*/true);
    return seal();
}

DecodedTrace
FlowStream::finishWith(const std::uint8_t *data, std::size_t n)
{
    EXIST_ASSERT(!finished_ && buf_.empty(),
                 "finishWith on a used FlowStream");
    pump(data, n, /*final=*/true);
    return seal();
}

DecodedTrace
FlowReconstructor::decode(const std::uint8_t *data, std::size_t size) const
{
    // One-shot decode == streaming decode of a single final chunk; the
    // shared FlowStream state machine makes batch and streaming output
    // identical by construction.
    return FlowStream(prog_, opts_, cache_, &memo_pool_)
        .finishWith(data, size);
}

}  // namespace exist
