#include "decode/flow_reconstructor.h"

#include <deque>

#include "decode/packet_parser.h"
#include "util/logging.h"
#include "workload/branch.h"

namespace exist {

/*
 * A property of the real hardware this decoder must honour: the tracer
 * buffers up to six conditional outcomes before emitting a TNT packet,
 * while TIP packets are emitted immediately — so a TIP can appear in
 * the byte stream *before* TNT bits describing earlier branches.
 * Per-kind order is exact, though, so the decoder (like libipt) keeps
 * separate FIFO queues of pending TNT bits and TIP targets and pulls
 * from whichever the current block's terminator requires. PacketEn
 * boundaries flush pending TNT bits, so queues drain at PGD.
 */
DecodedTrace
FlowReconstructor::decode(const std::uint8_t *data, std::size_t size) const
{
    DecodedTrace out;
    out.function_insns.assign(prog_->numFunctions(), 0);
    out.function_entries.assign(prog_->numFunctions(), 0);

    PacketParser parser(data, size);

    std::uint32_t cur = kNoBlock;
    Cycles time = 0;
    bool segment_open = false;
    bool after_resync = false;
    bool at_syscall = false;  ///< waiting for the PGD/PGE pair
    DecodedSegment seg;
    std::deque<bool> tnt_queue;
    std::deque<std::uint64_t> tip_queue;

    auto openSegment = [&](std::uint64_t offset) {
        seg = DecodedSegment{};
        seg.start_time = time;
        seg.first_offset = offset;
        segment_open = true;
    };

    std::uint32_t resume_hint = kNoBlock;
    // Blocks visited since the last packet-consuming transition: the
    // decoder reaches them by statically walking ahead of the last
    // encoded branch, so a PGD may land "behind" them and the matching
    // PGE re-enter one of them without re-execution having happened in
    // between. Resuming must not re-visit them.
    std::vector<std::uint32_t> static_tail;
    std::vector<std::uint32_t> saved_tail;

    auto closeSegment = [&]() {
        if (segment_open) {
            seg.end_time = time;
            out.segments.push_back(seg);
            segment_open = false;
        }
        resume_hint = cur;
        saved_tail = static_tail;
        cur = kNoBlock;
        at_syscall = false;
        // Unconsumed queue entries at a boundary indicate loss.
        out.decode_errors += tnt_queue.size() + tip_queue.size();
        tnt_queue.clear();
        tip_queue.clear();
    };

    auto visit = [&](std::uint32_t block) {
        const BasicBlock &b = prog_->block(block);
        out.insns_decoded += b.insns;
        out.function_insns[b.function_id] += b.insns;
        if (prog_->function(b.function_id).entry_block == block)
            ++out.function_entries[b.function_id];
        if (opts_.record_path)
            out.block_path.push_back(block);
    };

    auto transition = [&](std::uint32_t next, bool from_packet) {
        cur = next;
        visit(cur);
        ++out.branches_decoded;
        ++seg.branches;
        if (from_packet)
            static_tail.clear();
        // Keep only a short window: this is the resume-disambiguation
        // set, and an overly long one mistakes a different thread's
        // PGE (same CR3, per-core multiplexing) for a static-overshoot
        // resume, which desynchronizes decode far more than the
        // duplicate visits a false fresh-open costs.
        if (static_tail.size() < 12)
            static_tail.push_back(next);
    };

    // Replay as far as the queued packets allow.
    auto drain = [&]() {
        while (cur != kNoBlock &&
               out.branches_decoded < opts_.max_branches) {
            const BasicBlock &b = prog_->block(cur);
            switch (b.kind) {
              case BranchKind::kDirectJump:
              case BranchKind::kDirectCall:
                transition(b.target0, /*from_packet=*/false);
                continue;
              case BranchKind::kConditional: {
                if (tnt_queue.empty())
                    return;
                bool taken = tnt_queue.front();
                tnt_queue.pop_front();
                ++out.tnt_bits_consumed;
                transition(taken ? b.target0 : b.target1,
                           /*from_packet=*/true);
                continue;
              }
              case BranchKind::kIndirectJump:
              case BranchKind::kIndirectCall:
              case BranchKind::kReturn: {
                if (tip_queue.empty())
                    return;
                std::uint64_t ip = tip_queue.front();
                tip_queue.pop_front();
                ++out.tips_consumed;
                std::uint32_t nb = prog_->blockAtAddress(ip);
                if (nb == kNoBlock) {
                    ++out.decode_errors;
                    closeSegment();
                    return;
                }
                transition(nb, /*from_packet=*/true);
                continue;
              }
              case BranchKind::kSyscall:
                // The tracer emits PGD here and PGE at kernel return;
                // hold position until those arrive.
                at_syscall = true;
                return;
            }
        }
    };

    Packet pkt;
    while (parser.next(pkt) &&
           out.branches_decoded < opts_.max_branches) {
        switch (pkt.op) {
          case PacketOp::kExt:
            if (pkt.value == kExtPsb)
                after_resync = parser.resyncCount() > 0;
            break;
          case PacketOp::kTsc:
            time = pkt.value;
            break;
          case PacketOp::kCyc:
            time += pkt.value;
            break;
          case PacketOp::kTipPge: {
            std::uint32_t b = prog_->blockAtAddress(pkt.value);
            if (b == kNoBlock) {
                ++out.decode_errors;
                break;
            }
            if (at_syscall && segment_open && cur != kNoBlock) {
                // Kernel return: continue the current segment at the
                // syscall continuation.
                at_syscall = false;
                transition(b, /*from_packet=*/true);
                drain();
                break;
            }
            if (segment_open)
                closeSegment();
            openSegment(parser.offset());
            // When execution resumes where — or statically behind
            // where — the previous segment's decode stopped, the
            // blocks from b to resume_hint were already visited by the
            // static walk that outran the encoded branches; re-visiting
            // them would duplicate path entries. Resume in place.
            bool in_tail = b == resume_hint;
            for (std::uint32_t tb : saved_tail)
                in_tail = in_tail || tb == b;
            if (in_tail && resume_hint != kNoBlock) {
                cur = resume_hint;
                static_tail = saved_tail;
            } else {
                cur = b;
                static_tail.clear();
                static_tail.push_back(b);
                visit(cur);
            }
            drain();
            break;
          }
          case PacketOp::kTipPgd:
            if (at_syscall) {
                // Expected filter exit at syscall entry: keep the
                // segment open; the matching PGE resumes it.
                break;
            }
            closeSegment();
            break;
          case PacketOp::kTnt6:
            for (int i = 0; i < pkt.tnt_count; ++i)
                tnt_queue.push_back(((pkt.tnt_bits >> i) & 1) != 0);
            drain();
            break;
          case PacketOp::kTip:
            tip_queue.push_back(pkt.value);
            drain();
            break;
          case PacketOp::kFup:
            // After a mid-stream resync (ring wrap), the FUP inside
            // the PSB block is the decoder's re-entry point.
            if (after_resync && !segment_open && pkt.value != 0) {
                std::uint32_t b = prog_->blockAtAddress(pkt.value);
                if (b != kNoBlock) {
                    openSegment(parser.offset());
                    cur = b;
                    visit(cur);
                    drain();
                }
                after_resync = false;
            }
            break;
          case PacketOp::kOvf:
            ++out.decode_errors;
            closeSegment();
            break;
          case PacketOp::kPtw:
            out.ptwrites.emplace_back(time, pkt.value);
            break;
          case PacketOp::kPip:
          case PacketOp::kMode:
          case PacketOp::kPad:
          case PacketOp::kTntPartial:
            break;
        }
    }
    closeSegment();
    out.resyncs = parser.resyncCount();
    return out;
}

}  // namespace exist
