#include "decode/flow_reconstructor.h"

#include "util/logging.h"
#include "workload/branch.h"

namespace exist {

/*
 * A property of the real hardware this decoder must honour: the tracer
 * buffers up to six conditional outcomes before emitting a TNT packet,
 * while TIP packets are emitted immediately — so a TIP can appear in
 * the byte stream *before* TNT bits describing earlier branches.
 * Per-kind order is exact, though, so the decoder (like libipt) keeps
 * separate FIFO queues of pending TNT bits and TIP targets and pulls
 * from whichever the current block's terminator requires. PacketEn
 * boundaries flush pending TNT bits, so queues drain at PGD.
 */

FlowStream::FlowStream(const ProgramBinary *prog, DecodeOptions opts)
    : prog_(prog), opts_(opts)
{
    out_.function_insns.assign(prog_->numFunctions(), 0);
    out_.function_entries.assign(prog_->numFunctions(), 0);
}

void
FlowStream::openSegment(std::uint64_t offset)
{
    seg_ = DecodedSegment{};
    seg_.start_time = time_;
    seg_.first_offset = offset;
    segment_open_ = true;
}

void
FlowStream::closeSegment()
{
    if (segment_open_) {
        seg_.end_time = time_;
        out_.segments.push_back(seg_);
        segment_open_ = false;
    }
    resume_hint_ = cur_;
    saved_tail_ = static_tail_;
    cur_ = kNoBlock;
    at_syscall_ = false;
    // Unconsumed queue entries at a boundary indicate loss.
    out_.decode_errors += tnt_queue_.size() + tip_queue_.size();
    tnt_queue_.clear();
    tip_queue_.clear();
}

void
FlowStream::visit(std::uint32_t block)
{
    const BasicBlock &b = prog_->block(block);
    out_.insns_decoded += b.insns;
    out_.function_insns[b.function_id] += b.insns;
    if (prog_->function(b.function_id).entry_block == block)
        ++out_.function_entries[b.function_id];
    if (opts_.record_path)
        out_.block_path.push_back(block);
}

void
FlowStream::transition(std::uint32_t next, bool from_packet)
{
    cur_ = next;
    visit(cur_);
    ++out_.branches_decoded;
    ++seg_.branches;
    if (from_packet)
        static_tail_.clear();
    // Keep only a short window: this is the resume-disambiguation
    // set, and an overly long one mistakes a different thread's
    // PGE (same CR3, per-core multiplexing) for a static-overshoot
    // resume, which desynchronizes decode far more than the
    // duplicate visits a false fresh-open costs.
    if (static_tail_.size() < 12)
        static_tail_.push_back(next);
}

// Replay as far as the queued packets allow.
void
FlowStream::drain()
{
    while (cur_ != kNoBlock &&
           out_.branches_decoded < opts_.max_branches) {
        const BasicBlock &b = prog_->block(cur_);
        switch (b.kind) {
          case BranchKind::kDirectJump:
          case BranchKind::kDirectCall:
            transition(b.target0, /*from_packet=*/false);
            continue;
          case BranchKind::kConditional: {
            if (tnt_queue_.empty())
                return;
            bool taken = tnt_queue_.front();
            tnt_queue_.pop_front();
            ++out_.tnt_bits_consumed;
            transition(taken ? b.target0 : b.target1,
                       /*from_packet=*/true);
            continue;
          }
          case BranchKind::kIndirectJump:
          case BranchKind::kIndirectCall:
          case BranchKind::kReturn: {
            if (tip_queue_.empty())
                return;
            std::uint64_t ip = tip_queue_.front();
            tip_queue_.pop_front();
            ++out_.tips_consumed;
            std::uint32_t nb = prog_->blockAtAddress(ip);
            if (nb == kNoBlock) {
                ++out_.decode_errors;
                closeSegment();
                return;
            }
            transition(nb, /*from_packet=*/true);
            continue;
          }
          case BranchKind::kSyscall:
            // The tracer emits PGD here and PGE at kernel return;
            // hold position until those arrive.
            at_syscall_ = true;
            return;
        }
    }
}

void
FlowStream::handlePacket(const Packet &pkt)
{
    switch (pkt.op) {
      case PacketOp::kExt:
        if (pkt.value == kExtPsb)
            after_resync_ = parser_.resyncCount() > 0;
        break;
      case PacketOp::kTsc:
        time_ = pkt.value;
        break;
      case PacketOp::kCyc:
        time_ += pkt.value;
        break;
      case PacketOp::kTipPge: {
        std::uint32_t b = prog_->blockAtAddress(pkt.value);
        if (b == kNoBlock) {
            ++out_.decode_errors;
            break;
        }
        if (at_syscall_ && segment_open_ && cur_ != kNoBlock) {
            // Kernel return: continue the current segment at the
            // syscall continuation.
            at_syscall_ = false;
            transition(b, /*from_packet=*/true);
            drain();
            break;
        }
        if (segment_open_)
            closeSegment();
        openSegment(parser_.offset());
        // When execution resumes where — or statically behind
        // where — the previous segment's decode stopped, the
        // blocks from b to resume_hint were already visited by the
        // static walk that outran the encoded branches; re-visiting
        // them would duplicate path entries. Resume in place.
        bool in_tail = b == resume_hint_;
        for (std::uint32_t tb : saved_tail_)
            in_tail = in_tail || tb == b;
        if (in_tail && resume_hint_ != kNoBlock) {
            cur_ = resume_hint_;
            static_tail_ = saved_tail_;
        } else {
            cur_ = b;
            static_tail_.clear();
            static_tail_.push_back(b);
            visit(cur_);
        }
        drain();
        break;
      }
      case PacketOp::kTipPgd:
        if (at_syscall_) {
            // Expected filter exit at syscall entry: keep the
            // segment open; the matching PGE resumes it.
            break;
        }
        closeSegment();
        break;
      case PacketOp::kTnt6:
        for (int i = 0; i < pkt.tnt_count; ++i)
            tnt_queue_.push_back(((pkt.tnt_bits >> i) & 1) != 0);
        drain();
        break;
      case PacketOp::kTip:
        tip_queue_.push_back(pkt.value);
        drain();
        break;
      case PacketOp::kFup:
        // After a mid-stream resync (ring wrap), the FUP inside
        // the PSB block is the decoder's re-entry point.
        if (after_resync_ && !segment_open_ && pkt.value != 0) {
            std::uint32_t b = prog_->blockAtAddress(pkt.value);
            if (b != kNoBlock) {
                openSegment(parser_.offset());
                cur_ = b;
                visit(cur_);
                drain();
            }
            after_resync_ = false;
        }
        break;
      case PacketOp::kOvf:
        ++out_.decode_errors;
        closeSegment();
        break;
      case PacketOp::kPtw:
        out_.ptwrites.emplace_back(time_, pkt.value);
        break;
      case PacketOp::kPip:
      case PacketOp::kMode:
      case PacketOp::kPad:
      case PacketOp::kTntPartial:
        break;
    }
}

void
FlowStream::pump(const std::uint8_t *data, std::size_t size, bool final)
{
    parser_.rebind(data, size);
    parser_.setFinal(final);
    // Replicate the batch loop exactly, including its one-packet
    // lookahead past the branch budget: after the budget check fails,
    // exactly one more packet has been consumed and dropped, and
    // next() is never called again.
    if (budget_exhausted_)
        return;
    Packet pkt;
    while (true) {
        PacketParser::State st = parser_.state();
        if (!parser_.next(pkt)) {
            // Mid-stream this can mean "packet cut off by the chunk
            // boundary": roll back so the retry sees the full packet
            // once the next chunk lands.
            if (!final)
                parser_.setState(st);
            break;
        }
        if (out_.branches_decoded >= opts_.max_branches) {
            budget_exhausted_ = true;
            break;
        }
        handlePacket(pkt);
    }
}

void
FlowStream::append(const std::uint8_t *data, std::size_t n)
{
    EXIST_ASSERT(!finished_, "append to a finished FlowStream");
    buf_.insert(buf_.end(), data, data + n);
    pump(buf_.data(), buf_.size(), /*final=*/false);
}

DecodedTrace
FlowStream::finish()
{
    EXIST_ASSERT(!finished_, "FlowStream finished twice");
    pump(buf_.data(), buf_.size(), /*final=*/true);
    closeSegment();
    out_.resyncs = parser_.resyncCount();
    finished_ = true;
    return std::move(out_);
}

DecodedTrace
FlowStream::finishWith(const std::uint8_t *data, std::size_t n)
{
    EXIST_ASSERT(!finished_ && buf_.empty(),
                 "finishWith on a used FlowStream");
    pump(data, n, /*final=*/true);
    closeSegment();
    out_.resyncs = parser_.resyncCount();
    finished_ = true;
    return std::move(out_);
}

DecodedTrace
FlowReconstructor::decode(const std::uint8_t *data, std::size_t size) const
{
    // One-shot decode == streaming decode of a single final chunk; the
    // shared FlowStream state machine makes batch and streaming output
    // identical by construction.
    return FlowStream(prog_, opts_).finishWith(data, size);
}

}  // namespace exist
