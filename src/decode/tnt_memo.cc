#include "decode/tnt_memo.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/logging.h"

namespace exist {

TntMemo::TntMemo(unsigned k, const BlockCache *cache)
    : k_(k), cache_(cache)
{
    EXIST_ASSERT(k_ >= 1 && k_ <= kMaxBits, "tnt_memo_bits out of range");
    // Size the table to the binary: the working set is roughly (hot
    // conditional blocks) x (windows per block), so a small loop
    // kernel is served by a few hundred sets that stay L1/L2-resident
    // — lookup latency is the fast path's whole cost — while large
    // binaries grow up to the per-k cap.
    const std::size_t cap = k_ <= 4 ? kSetsSmall : kSetsLarge;
    std::size_t want = cache_->numBlocks();
    if (k_ > 4)
        want <<= (k_ - 4 < 4 ? k_ - 4 : 4);
    std::size_t sets = kSetsMin;
    while (sets < cap && sets < want)
        sets <<= 1;
    unsigned log2_sets = 0;
    while ((std::size_t{1} << log2_sets) < sets)
        ++log2_sets;
    set_shift_ = 64 - log2_sets;
    table_.assign(sets * kWays, Entry{});
    scratch_deltas_.reserve(64);
}

const TntMemo::Entry *
TntMemo::missPath(Entry *ways, std::uint32_t block, std::uint32_t bits)
{
    Entry *victim = &ways[0];
    for (std::size_t w = 1; w < kWays; ++w) {
        if (!victim->valid())
            break;  // free way wins outright
        Entry &e = ways[w];
        if (!e.valid() || e.last_use < victim->last_use)
            victim = &e;
    }
    return build(*victim, block, bits);
}

const TntMemo::Entry *
TntMemo::build(Entry &slot, std::uint32_t block, std::uint32_t bits)
{
    // Pure replay of the slow path over the k-bit window, against the
    // immutable block cache only: conditionals consume window bits in
    // order, statically resolvable transfers follow target0, and the
    // run ends at the first block whose successor needs input the
    // window cannot supply (window exhausted at a conditional, a
    // TIP-resolved transfer, or a syscall pause). Every counter below
    // mirrors FlowStream::visit()/transition() exactly — that is the
    // whole bit-identity argument.
    scratch_deltas_.clear();
    std::uint32_t tail_len = 0;
    std::uint32_t cur = block;
    unsigned used = 0;
    std::uint32_t branches = 0;
    std::uint64_t insns = 0;
    bool end_conditional = false;
    const std::uint32_t nblocks = cache_->numBlocks();

    for (;;) {
        const BlockInfo &bi = cache_->info(cur);
        std::uint32_t next;
        bool from_packet;
        BranchKind kind = bi.branchKind();
        if (kind == BranchKind::kConditional) {
            if (used == k_) {
                end_conditional = true;
                break;
            }
            bool taken = ((bits >> used) & 1) != 0;
            ++used;
            next = taken ? bi.target0 : bi.target1;
            from_packet = true;
        } else if (kind == BranchKind::kDirectJump ||
                   kind == BranchKind::kDirectCall) {
            next = bi.target0;
            from_packet = false;
        } else {
            break;  // indirect / return / syscall: needs input
        }
        if (next >= nblocks || ++branches > kMaxRunBranches) {
            // Malformed static target or a degenerate static cycle:
            // leave it to the slow path (which reports / bounds it).
            ++stats_.unusable;
            return nullptr;
        }
        const BlockInfo &nb = cache_->info(next);
        insns += nb.insns;
        // Per-function deltas; runs touch few distinct functions, so
        // a backwards linear probe beats any map.
        {
            FnDelta *d = nullptr;
            for (auto it = scratch_deltas_.rbegin();
                 it != scratch_deltas_.rend(); ++it) {
                if (it->fn == nb.function_id) {
                    d = &*it;
                    break;
                }
            }
            if (d == nullptr) {
                scratch_deltas_.push_back(FnDelta{nb.function_id, 0, 0});
                d = &scratch_deltas_.back();
            }
            d->insns += nb.insns;
            if (nb.isFunctionEntry())
                ++d->entries;
        }
        if (from_packet)
            tail_len = 0;
        if (tail_len < kDecodeStaticTailMax)
            scratch_tail_[tail_len++] = next;
        cur = next;
    }

    // The start block is a conditional and k >= 1, so the first
    // iteration always consumes a bit: used >= 1, progress guaranteed.
    EXIST_ASSERT(used >= 1, "memo run consumed no bits");
    if (scratch_deltas_.size() > 127) {
        // A run touching 128+ functions is a degenerate CFG; the
        // packed entry (7-bit delta count) cannot describe it, so the
        // slow path keeps it.
        ++stats_.unusable;
        return nullptr;
    }
    ++stats_.misses;

    Entry built{};
    built.key = Entry::makeKey(block, bits);
    built.end_block = cur;
    built.insns = static_cast<std::uint32_t>(insns);
    built.last_use = tick_;
    built.used_tail = static_cast<std::uint8_t>(((used - 1) << 4) |
                                                tail_len);

    // Single-function runs with a small entry count — the dominant
    // shape, a loop body staying inside its function — inline the
    // delta into the entry itself (fn + the top bits of branches;
    // insns is shared with the run total, which for one function is
    // the same number). Payload then carries only the tail.
    const bool inline_delta =
        scratch_deltas_.size() == 1 && scratch_deltas_[0].entries <= 7;
    std::uint32_t entries_bits = 0;
    std::size_t delta_words;
    if (inline_delta) {
        built.fn = scratch_deltas_[0].fn;
        entries_bits = scratch_deltas_[0].entries;
        delta_words = 0;
        built.delta_len =
            static_cast<std::uint8_t>(end_conditional ? 0x80u : 0u);
    } else {
        delta_words = 3 * scratch_deltas_.size();
        built.delta_len =
            static_cast<std::uint8_t>(scratch_deltas_.size() |
                                      (end_conditional ? 0x80u : 0u));
    }
    built.branches =
        static_cast<std::uint16_t>(branches | (entries_bits << 13));

    // Assemble the payload: the FnDelta triples, then the tail words.
    const std::size_t payload_words = delta_words + tail_len;
    const bool over_budget = arena_.bytesReserved() >= kArenaBudget;
    std::uint32_t *payload = nullptr;
    if (over_budget) {
        // Over the arena budget: serve this run from scratch storage
        // without inserting, so decode keeps its fast result but the
        // table stops growing. Valid until the next lookupOrBuild.
        scratch_payload_.resize(std::max<std::size_t>(payload_words, 1));
        payload = scratch_payload_.data();
        built.pay_off = MemoArena::kNoOffset;
    } else {
        payload =
            arena_.allocArray<std::uint32_t>(payload_words, &built.pay_off);
    }
    if (payload_words != 0) {
        std::memcpy(payload, scratch_deltas_.data(),
                    delta_words * sizeof(std::uint32_t));
        std::memcpy(payload + delta_words, scratch_tail_,
                    tail_len * sizeof(std::uint32_t));
    }

    if (over_budget) {
        scratch_entry_ = built;
        return &scratch_entry_;
    }
    if (slot.valid())
        ++stats_.evictions;
    slot = built;
    return &slot;
}

}  // namespace exist
