#include "decode/block_cache.h"

#include <map>

#include "util/thread_annotations.h"

namespace exist {

BlockCache::BlockCache(const ProgramBinary &prog) : prog_(&prog)
{
    blocks_.resize(prog.numBlocks());
    for (std::uint32_t i = 0; i < prog.numBlocks(); ++i) {
        const BasicBlock &b = prog.block(i);
        BlockInfo &bi = blocks_[i];
        bi.target0 = b.target0;
        bi.target1 = b.target1;
        bi.function_id = b.function_id;
        bi.insns = b.insns;
        bi.kind = static_cast<std::uint8_t>(b.kind);
        if (prog.function(b.function_id).entry_block == i)
            bi.flags |= BlockInfo::kFunctionEntry;
    }

    // Exact-start address index for blockAt(): power-of-two table at
    // <= 50% load so linear probes stay short.
    std::size_t slots = 2;
    while (slots < 2 * static_cast<std::size_t>(prog.numBlocks()))
        slots <<= 1;
    addr_slots_.assign(slots, AddrSlot{});
    const std::size_t mask = slots - 1;
    for (std::uint32_t i = 0; i < prog.numBlocks(); ++i) {
        const std::uint64_t addr = prog.block(i).address;
        std::uint64_t h = addr * 0x9e3779b97f4a7c15ULL;
        h ^= h >> 32;
        std::size_t s = h & mask;
        while (addr_slots_[s].addr != kEmptyAddr &&
               addr_slots_[s].addr != addr)
            s = (s + 1) & mask;
        // On a duplicate start address keep the higher block id: the
        // legacy upper_bound search resolves ties to the last block.
        addr_slots_[s] = AddrSlot{addr, i};
    }
}

std::shared_ptr<const BlockCache>
BlockCache::forBinary(const ProgramBinary *prog)
{
    // kLeaf: held across the (allocation-only) cache build, never
    // across another lock acquisition.
    static Mutex mu(lockorder::LockRank::kLeaf,
                    "decode.block_cache_registry");
    // Identity-keyed registry, never iterated into any report output.
    static std::map<const ProgramBinary *,  // lint-allow: pointer-keyed-container
                    std::weak_ptr<const BlockCache>>
        registry;

    MutexLock lk(mu);
    std::weak_ptr<const BlockCache> &slot = registry[prog];
    if (std::shared_ptr<const BlockCache> alive = slot.lock())
        return alive;
    auto built = std::make_shared<const BlockCache>(*prog);
    slot = built;
    // Drop expired slots so a long-lived process cycling through many
    // binaries (tests, benches) keeps the registry bounded.
    if (registry.size() > 64) {
        for (auto it = registry.begin(); it != registry.end();) {
            if (it->second.expired() && it->first != prog)
                it = registry.erase(it);
            else
                ++it;
        }
    }
    return built;
}

}  // namespace exist
