/**
 * @file
 * TNT-run memoization: the decoder's answer to EXIST's observation
 * that datacenter control flow is dominated by repetition (§3.4). A
 * hot loop replays the same few conditional blocks with the same few
 * outcome patterns millions of times; walking the CFG one TNT bit at a
 * time re-derives the same transitions every pass. TntMemo caches the
 * net effect of consuming the next k TNT bits starting at a given
 * block — end block, branches, instructions retired, per-function
 * count deltas, the static-resume tail — keyed by (block id, next k
 * TNT bits), so the hot path retires k outcomes with one table hit.
 *
 * Entries are built by a bounded *pure replay* over the immutable
 * BlockCache: the replay performs exactly the transitions the slow
 * path would (conditionals consume window bits in order, statically
 * resolvable transfers follow target0) and stops at the first point
 * that needs input the window cannot supply — window exhausted at a
 * conditional, a TIP-requiring transfer, or a syscall. Applying an
 * entry is therefore equivalent, count for count, to running the slow
 * path over the same bits; anything an entry cannot capture (TIP
 * resolution, segment boundaries, budget edges) falls back to the
 * slow path, which is how cache-on output stays bit-identical to
 * cache-off by construction (DESIGN.md §11).
 *
 * One TntMemo per FlowStream, i.e. per decode worker: lookups and
 * inserts are single-threaded by confinement and need no locks. Only
 * the BlockCache is shared.
 */
#ifndef EXIST_DECODE_TNT_MEMO_H
#define EXIST_DECODE_TNT_MEMO_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "decode/block_cache.h"
#include "util/thread_annotations.h"

namespace exist {

/** FlowStream's static-resume tail window (see its declaration). */
inline constexpr std::size_t kDecodeStaticTailMax = 12;

/**
 * Bump allocator for the variable-length payloads of memo entries
 * (per-function deltas, static tails). Entries live until the memo
 * dies with its stream, so there is no free list — just chunked
 * monotonic allocation with a byte budget that stops memoization
 * (never decode) when exhausted.
 */
class MemoArena
{
  public:
    /** Allocations are addressed by 32-bit offset (chunk index in the
     *  high bits): half the width of a pointer, which is what lets a
     *  memo entry keep its payload handle AND an inline FnDelta in one
     *  32-byte slot. */
    static constexpr std::uint32_t kNoOffset = ~std::uint32_t{0};

    template <typename T>
    T *
    allocArray(std::size_t n, std::uint32_t *off_out)
    {
        if (n == 0) {
            *off_out = kNoOffset;
            return nullptr;
        }
        std::size_t bytes = n * sizeof(T);
        std::size_t align = alignof(T);
        used_ = (used_ + align - 1) & ~(align - 1);
        if (chunks_.empty() || used_ + bytes > kChunkBytes) {
            chunks_.push_back(
                std::make_unique<unsigned char[]>(kChunkBytes));
            reserved_ += kChunkBytes;
            used_ = 0;
        }
        *off_out = static_cast<std::uint32_t>(
            (chunks_.size() - 1) * kChunkBytes + used_);
        T *p = reinterpret_cast<T *>(chunks_.back().get() + used_);
        used_ += bytes;
        return p;
    }

    /** Resolve an offset returned by allocArray. */
    const std::uint32_t *
    at(std::uint32_t off) const
    {
        return reinterpret_cast<const std::uint32_t *>(
            chunks_[off >> kChunkShift].get() + (off & (kChunkBytes - 1)));
    }

    /** Bytes reserved from the system (the budget currency). */
    std::size_t bytesReserved() const { return reserved_; }

  private:
    static constexpr unsigned kChunkShift = 16;
    static constexpr std::size_t kChunkBytes = std::size_t{1}
                                               << kChunkShift;

    std::vector<std::unique_ptr<unsigned char[]>> chunks_;
    std::size_t used_ = 0;
    std::size_t reserved_ = 0;
};

/** Memoized net effect of one TNT run. */
class TntMemo
{
  public:
    /** Per-function count delta accumulated over one run. */
    struct FnDelta {
        std::uint32_t fn = 0;
        std::uint32_t insns = 0;
        std::uint32_t entries = 0;
    };

    /** No valid (block << 16 | window) key collides with this: block
     *  ids are dense and far below 2^32. */
    static constexpr std::uint64_t kInvalidKey = ~0ULL;

    /**
     * One memoized run, packed to 32 bytes so a 4-way set probe
     * touches two cache lines — the probe is on the per-window hot
     * path, and lookup latency is where the fast path lives or dies.
     *
     * Runs overwhelmingly stay inside one function (a loop body), so
     * the dominant delta shape — exactly one function, few entries —
     * is stored *inline*: `fn` plus the entries count packed into the
     * top bits of `branches` (the run's insns already equal that
     * function's insns delta). Applying such a hit touches no payload
     * line at all. Multi-function runs keep the out-of-line payload
     * (FnDelta triples, then the static tail) addressed by a 32-bit
     * arena offset — half a pointer, which is what pays for the
     * inline `fn` field without growing the entry.
     */
    struct Entry {
        std::uint64_t key = kInvalidKey;  ///< (block << 16) | window
        /** Arena offset of the payload (deltas, then tail); tail-only
         *  when the delta is inline; kNoOffset when empty. */
        std::uint32_t pay_off = MemoArena::kNoOffset;
        std::uint32_t fn = 0;  ///< inline-delta function id
        std::uint32_t end_block = kNoBlock;
        std::uint32_t last_use = 0;  ///< LRU clock
        std::uint32_t insns = 0;     ///< instructions retired
        /** Low 13 bits: transitions in the run (cap kMaxRunBranches).
         *  High 3 bits: inline-delta function entry count. */
        std::uint16_t branches = 0;
        /** Low 7 bits: payload FnDelta count; 0 means the single
         *  delta is inline in `fn`/`insns`/entries bits (every run
         *  visits at least one block, so a true zero cannot occur).
         *  Bit 7: the run ended at a conditional with the window
         *  exhausted, so the next k bits start another run — the fast
         *  path chains on this flag without re-reading the end
         *  block's BlockInfo. */
        std::uint8_t delta_len = 0;
        std::uint8_t used_tail = 0;  ///< (bits_used-1) << 4 | tail_len

        static std::uint64_t
        makeKey(std::uint32_t block, std::uint32_t bits)
        {
            return (static_cast<std::uint64_t>(block) << 16) | bits;
        }
        bool valid() const { return key != kInvalidKey; }
        unsigned bitsUsed() const { return (used_tail >> 4) + 1u; }
        unsigned tailLen() const { return used_tail & 0xfu; }
        unsigned deltaLen() const { return delta_len & 0x7fu; }
        bool chainable() const { return (delta_len & 0x80u) != 0; }
        unsigned branchCount() const { return branches & 0x1fffu; }
        unsigned inlineEntries() const { return branches >> 13; }
        /** Byte offset of the tail words within the arena (valid only
         *  when tailLen() > 0 and the entry is not scratch-served). */
        std::uint32_t
        tailOffset() const
        {
            return pay_off +
                   12u * deltaLen();  // sizeof(FnDelta) per delta
        }
    };
    static_assert(sizeof(Entry) == 32, "Entry packing regressed");
    static_assert(sizeof(FnDelta) == 12 && alignof(FnDelta) == 4,
                  "payload layout assumes 3-word FnDelta");

    struct Stats {
        std::uint64_t hits = 0;       ///< derived: lookups - builds
        std::uint64_t misses = 0;     ///< built and inserted
        std::uint64_t unusable = 0;   ///< replay not memoizable
        std::uint64_t evictions = 0;  ///< valid entries replaced
    };

    /** k in [1, kMaxBits]; cache must outlive the memo. */
    TntMemo(unsigned k, const BlockCache *cache);

    static constexpr unsigned kMaxBits = 16;

    unsigned k() const { return k_; }
    const BlockCache *cache() const { return cache_; }

    /**
     * The entry for (block, bits), building it on miss. `block` must
     * be a conditional and `bits` a full k-bit window. Returns nullptr
     * when the run is not memoizable (replay cap, malformed target) —
     * the caller takes the slow path. The pointer is invalidated by
     * the next lookup.
     *
     * Inline hit path: one Fibonacci-hash multiply (power-of-two sets
     * make the golden-ratio multiply's top bits a sufficient mix; a
     * full fmix64 finalizer measurably costs at this call rate) and a
     * 4-way key probe; victim choice and replay live out of line.
     */
    const Entry *
    lookupOrBuild(std::uint32_t block, std::uint32_t bits)
    {
        ++tick_;
        const std::uint64_t key = Entry::makeKey(block, bits);
        const std::size_t set =
            static_cast<std::size_t>(key * 0x9e3779b97f4a7c15ULL >>
                                     set_shift_);
        Entry *ways = &table_[set * kWays];
        for (std::size_t w = 0; w < kWays; ++w) {
            if (ways[w].key == key) {
                ways[w].last_use = tick_;
                return &ways[w];
            }
        }
        return missPath(ways, block, bits);
    }

    /**
     * Whether @p e is the arena-budget-exhausted scratch entry, whose
     * payload is overwritten by the next lookup. Callers keeping a
     * borrowed payload pointer (the lazy tail) must copy it out first.
     */
    bool isScratch(const Entry *e) const { return e == &scratch_entry_; }

    /** The out-of-line FnDelta array of @p e (deltaLen() > 0 only). */
    const FnDelta *
    deltas(const Entry *e) const
    {
        const std::uint32_t *p = isScratch(e) ? scratch_payload_.data()
                                              : arena_.at(e->pay_off);
        return reinterpret_cast<const FnDelta *>(p);
    }

    /** The static-tail words of @p e (tailLen() > 0 only). */
    const std::uint32_t *
    tail(const Entry *e) const
    {
        if (isScratch(e))
            return scratch_payload_.data() + 3u * e->deltaLen();
        return arena_.at(e->tailOffset());
    }

    /** Resolve a tail byte offset recorded earlier from a non-scratch
     *  entry (FlowStream's lazy tail defers this until the tail is
     *  actually read, which is rare). */
    const std::uint32_t *
    tailAt(std::uint32_t off) const
    {
        return arena_.at(off);
    }

    /** Hit count is derived (tick_ counts every lookup; a lookup that
     *  is not a build or an unusable replay was a hit), keeping the
     *  hit path free of a second counter update. */
    Stats
    stats() const
    {
        Stats s = stats_;
        s.hits = tick_ - s.misses - s.unusable;
        return s;
    }

    /** Table + arena footprint, for decode.cache.bytes. */
    std::uint64_t
    bytes() const
    {
        return table_.size() * sizeof(Entry) + arena_.bytesReserved();
    }

  private:
    /** Set-count bounds: the ctor sizes the table to the binary's
     *  block count (see there), between kSetsMin and a per-k cap —
     *  wide windows multiply distinct keys per block, so k > 4 gets a
     *  higher conflict-floor cap. */
    static constexpr std::size_t kSetsMin = 512;
    static constexpr std::size_t kSetsSmall = 4096;   ///< cap, k <= 4
    static constexpr std::size_t kSetsLarge = 16384;  ///< cap, k > 4
    static constexpr std::size_t kWays = 4;
    /** Replay transition cap: a run past this is a degenerate CFG
     *  (the generator's forward-only static chains never get close);
     *  punt to the slow path rather than build an unbounded entry. */
    static constexpr std::uint32_t kMaxRunBranches = 4096;
    /** Arena budget; memoization stops (decode does not) beyond it. */
    static constexpr std::size_t kArenaBudget = 4 * 1024 * 1024;

    const Entry *missPath(Entry *ways, std::uint32_t block,
                          std::uint32_t bits);
    const Entry *build(Entry &slot, std::uint32_t block,
                       std::uint32_t bits);

    unsigned k_;
    const BlockCache *cache_;
    unsigned set_shift_;        ///< 64 - log2(sets)
    std::vector<Entry> table_;  ///< sets * kWays, set-major
    MemoArena arena_;
    std::uint32_t tick_ = 0;
    Stats stats_;
    /** Scratch for a replay in flight (committed to the arena only on
     *  insert; also the storage behind arena-budget-exhausted hits). */
    std::vector<FnDelta> scratch_deltas_;
    std::uint32_t scratch_tail_[kDecodeStaticTailMax];
    std::vector<std::uint32_t> scratch_payload_;
    Entry scratch_entry_;
};

/**
 * Recycler for TntMemo instances across streams of one reconstructor.
 * Memo contents never influence decode output (fast-path applies are
 * count-for-count the slow path's transitions), so a warm table from a
 * previous buffer of the same binary is pure profit: the next stream
 * starts at the steady-state hit rate instead of re-replaying every
 * hot window from cold. Each stream still owns its memo exclusively
 * between acquire and release — the pool is the only shared state, and
 * it is touched once per stream at each end.
 */
class TntMemoPool
{
  public:
    /** A warm memo for (k, cache), or null if none is pooled (the
     *  caller then builds a cold one). */
    std::unique_ptr<TntMemo>
    acquire(unsigned k, const BlockCache *cache)
    {
        MutexLock lk(mu_);
        for (std::size_t i = free_.size(); i-- > 0;) {
            if (free_[i]->k() == k && free_[i]->cache() == cache) {
                std::unique_ptr<TntMemo> m = std::move(free_[i]);
                free_.erase(free_.begin() +
                            static_cast<std::ptrdiff_t>(i));
                return m;
            }
        }
        return nullptr;
    }

    void
    release(std::unique_ptr<TntMemo> m)
    {
        if (m == nullptr)
            return;
        MutexLock lk(mu_);
        free_.push_back(std::move(m));
    }

  private:
    Mutex mu_{lockorder::LockRank::kLeaf, "decode.memo_pool"};
    std::vector<std::unique_ptr<TntMemo>> free_
        EXIST_GUARDED_BY(mu_);
};

}  // namespace exist

#endif  // EXIST_DECODE_TNT_MEMO_H
