/**
 * @file
 * Allocation-light containers for the decode hot path. FlowStream
 * used std::deque<bool> / std::deque<uint64_t> for the pending TNT and
 * TIP queues and heap vectors for the static-resume tail; every one of
 * those allocates on first use and deque<bool> costs a full byte plus
 * deque bookkeeping per branch outcome. These replacements keep the
 * common case inline (or in one flat power-of-two ring) and, for the
 * TNT queue, pack outcomes one bit per bit so the memo fast path can
 * peek k bits in O(1) words instead of k deque dereferences.
 *
 * All three are single-threaded value types: one per FlowStream, which
 * is itself confined to one decode worker (DESIGN.md §5).
 */
#ifndef EXIST_DECODE_SMALL_BUFFERS_H
#define EXIST_DECODE_SMALL_BUFFERS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace exist {

/**
 * FIFO of branch outcomes packed one bit per bit in a power-of-two
 * ring of 64-bit words. peekBits(n) exposes the next n outcomes as an
 * integer (bit i = i-th pending outcome) — the TNT-memo lookup key —
 * and popBits(n) retires a whole memoized run in O(1).
 */
class TntBitQueue
{
  public:
    TntBitQueue() : words_(kInitialWords, 0) {}

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    void
    push_back(bool taken)
    {
        if (count_ == capacityBits())
            grow();
        setBit((head_ + count_) & (capacityBits() - 1), taken);
        ++count_;
    }

    bool
    front() const
    {
        EXIST_ASSERT(count_ != 0, "front() on empty TntBitQueue");
        return getBit(head_);
    }

    void
    pop_front()
    {
        EXIST_ASSERT(count_ != 0, "pop_front() on empty TntBitQueue");
        head_ = (head_ + 1) & (capacityBits() - 1);
        --count_;
    }

    /**
     * Append the low n (<= 64) bits of @p bits in order (bit 0 first):
     * a whole batched TNT packet's outcomes in at most two masked word
     * stores instead of n read-modify-write passes.
     */
    void
    pushBits(std::uint64_t bits, unsigned n)
    {
        EXIST_ASSERT(n <= 64, "pushBits takes at most 64 bits");
        while (count_ + n > capacityBits())
            grow();
        const std::size_t cap_mask = capacityBits() - 1;
        const std::size_t pos = (head_ + count_) & cap_mask;
        const std::size_t w = pos >> 6;
        const unsigned off = pos & 63;
        const std::uint64_t v =
            n == 64 ? bits : bits & ((std::uint64_t{1} << n) - 1);
        const unsigned n1 = n < 64 - off ? n : 64 - off;
        const std::uint64_t m1 =
            (n1 == 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << n1) - 1)
            << off;
        words_[w] = (words_[w] & ~m1) | ((v << off) & m1);
        if (n > n1) {
            const std::size_t w2 = (w + 1) & (words_.size() - 1);
            const std::uint64_t m2 =
                (std::uint64_t{1} << (n - n1)) - 1;
            words_[w2] = (words_[w2] & ~m2) | ((v >> n1) & m2);
        }
        count_ += n;
    }

    /** Next n (<= 32, <= size()) outcomes as bits 0..n-1. */
    std::uint32_t
    peekBits(unsigned n) const
    {
        EXIST_ASSERT(n <= 32 && n <= count_, "peekBits out of range");
        if (n == 0)
            return 0;
        std::size_t w = head_ >> 6;
        unsigned off = head_ & 63;
        std::uint64_t bits = words_[w] >> off;
        if (off + n > 64)
            bits |= words_[(w + 1) & (words_.size() - 1)] << (64 - off);
        return static_cast<std::uint32_t>(
            bits & ((std::uint64_t{1} << n) - 1));
    }

    /** Next n (<= 64, <= size()) outcomes as bits 0..n-1: one wide
     *  read so the memo fast path can chain runs out of a register
     *  instead of re-extracting the queue head per lookup. */
    std::uint64_t
    peekBits64(unsigned n) const
    {
        EXIST_ASSERT(n <= 64 && n <= count_, "peekBits64 out of range");
        if (n == 0)
            return 0;
        std::size_t w = head_ >> 6;
        unsigned off = head_ & 63;
        std::uint64_t bits = words_[w] >> off;
        if (off + n > 64)
            bits |= words_[(w + 1) & (words_.size() - 1)] << (64 - off);
        if (n == 64)
            return bits;
        return bits & ((std::uint64_t{1} << n) - 1);
    }

    /** Retire the next n outcomes (a consumed memo run). */
    void
    popBits(unsigned n)
    {
        EXIST_ASSERT(n <= count_, "popBits past end of TntBitQueue");
        head_ = (head_ + n) & (capacityBits() - 1);
        count_ -= n;
    }

  private:
    static constexpr std::size_t kInitialWords = 4;  // 256 outcomes

    std::size_t capacityBits() const { return words_.size() * 64; }

    void
    setBit(std::size_t i, bool v)
    {
        std::uint64_t mask = std::uint64_t{1} << (i & 63);
        if (v)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    bool
    getBit(std::size_t i) const
    {
        return ((words_[i >> 6] >> (i & 63)) & 1) != 0;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> wider(words_.size() * 2, 0);
        // Re-linearize head_ -> 0 bit by bit; growth past 256 pending
        // outcomes means the producer is far ahead of drain, which is
        // rare enough that the O(n) copy never shows up.
        for (std::size_t i = 0; i < count_; ++i) {
            std::size_t src = (head_ + i) & (capacityBits() - 1);
            if (getBit(src))
                wider[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
        words_ = std::move(wider);
        head_ = 0;
    }

    std::vector<std::uint64_t> words_;
    std::size_t head_ = 0;   ///< bit index of the front outcome
    std::size_t count_ = 0;  ///< pending outcomes
};

/**
 * FIFO ring with N slots inline; spills to a heap ring only when more
 * than N entries are pending at once. TIP targets drain almost as fast
 * as they arrive, so the inline capacity covers virtually every
 * stream and the queue never touches the allocator.
 */
template <typename T, std::size_t N>
class SmallRing
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    void
    push_back(const T &v)
    {
        if (count_ == cap_)
            grow();
        slot((head_ + count_) % cap_) = v;
        ++count_;
    }

    const T &
    front() const
    {
        EXIST_ASSERT(count_ != 0, "front() on empty SmallRing");
        return slot(head_);
    }

    void
    pop_front()
    {
        EXIST_ASSERT(count_ != 0, "pop_front() on empty SmallRing");
        head_ = (head_ + 1) % cap_;
        --count_;
    }

  private:
    T &slot(std::size_t i) { return spilled() ? heap_[i] : inline_[i]; }
    const T &
    slot(std::size_t i) const
    {
        return spilled() ? heap_[i] : inline_[i];
    }
    bool spilled() const { return cap_ > N; }

    void
    grow()
    {
        std::vector<T> wider;
        wider.reserve(cap_ * 2);
        for (std::size_t i = 0; i < count_; ++i)
            wider.push_back(slot((head_ + i) % cap_));
        wider.resize(cap_ * 2);
        heap_ = std::move(wider);
        cap_ *= 2;
        head_ = 0;
    }

    std::array<T, N> inline_{};
    std::vector<T> heap_;
    std::size_t cap_ = N;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/**
 * Fixed-capacity inline vector for the static-resume tail (capped at
 * 12 entries by FlowStream; see the comment at its declaration).
 * push_back past capacity is a programming error, not a spill.
 */
template <typename T, std::size_t N>
class InlineVec
{
  public:
    bool empty() const { return n_ == 0; }
    std::size_t size() const { return n_; }
    static constexpr std::size_t capacity() { return N; }

    void clear() { n_ = 0; }

    void
    push_back(const T &v)
    {
        EXIST_ASSERT(n_ < N, "InlineVec overflow");
        v_[n_++] = v;
    }

    const T &operator[](std::size_t i) const { return v_[i]; }

    const T *begin() const { return v_.data(); }
    const T *end() const { return v_.data() + n_; }

  private:
    std::array<T, N> v_{};
    std::size_t n_ = 0;
};

}  // namespace exist

#endif  // EXIST_DECODE_SMALL_BUFFERS_H
