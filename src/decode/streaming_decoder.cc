#include "decode/streaming_decoder.h"

#include "obs/trace_plane.h"
#include "runtime/thread_pool.h"
#include "util/logging.h"

namespace exist {

// --- RegionQueue ----------------------------------------------------------

RegionQueue::RegionQueue(std::size_t capacity) : capacity_(capacity)
{
    EXIST_ASSERT(capacity_ > 0, "RegionQueue needs capacity");
}

bool
RegionQueue::push(TraceRegion region)
{
    MutexLock lk(mu_);
    while (q_.size() >= capacity_ && !closed_)
        not_full_.wait(mu_);
    if (closed_)
        return false;
    q_.push_back(std::move(region));
    if (q_.size() > high_water_)
        high_water_ = q_.size();
    not_empty_.notify_one();
    return true;
}

bool
RegionQueue::pop(TraceRegion &out)
{
    MutexLock lk(mu_);
    while (q_.empty() && !closed_)
        not_empty_.wait(mu_);
    if (q_.empty())
        return false;  // closed and drained
    out = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return true;
}

void
RegionQueue::close()
{
    MutexLock lk(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
}

std::size_t
RegionQueue::highWater() const
{
    MutexLock lk(mu_);
    return high_water_;
}

// --- StreamingDecoder -----------------------------------------------------

StreamingDecoder::StreamingDecoder(const ProgramBinary *prog,
                                   DecodeOptions opts, int threads,
                                   std::size_t queue_capacity)
    : prog_(prog), opts_(opts),
      cache_(opts.block_cache ? BlockCache::forBinary(prog) : nullptr),
      queue_(queue_capacity)
{
    if (threads != 1) {
        pool_ = std::make_unique<ThreadPool>(threads);
        consumers_.reserve(static_cast<std::size_t>(pool_->size()));
        for (int i = 0; i < pool_->size(); ++i)
            consumers_.push_back(
                pool_->submit([this] { consumerLoop(); }));
    }
}

StreamingDecoder::~StreamingDecoder()
{
    if (!finished_) {
        // Abandoned pipeline: release the parked consumers so the pool
        // can join.
        queue_.close();
        for (auto &f : consumers_)
            f.wait();
    }
}

int
StreamingDecoder::threads() const
{
    return pool_ != nullptr ? pool_->size() : 1;
}

void
StreamingDecoder::addCore(CoreId core)
{
    EXIST_ASSERT(!publishing_started_.load(std::memory_order_relaxed),
                 "addCore after first publish");
    cores_.push_back(
        std::make_unique<CoreState>(core, prog_, opts_, cache_));
}

StreamingDecoder::CoreState &
StreamingDecoder::stateOf(CoreId core)
{
    for (auto &cs : cores_)
        if (cs->core == core)
            return *cs;
    EXIST_FATAL("publish to unregistered core %d", core);
}

void
StreamingDecoder::publish(CoreId core, const std::uint8_t *data,
                          std::uint64_t n)
{
    if (n == 0)
        return;
    publishing_started_.store(true, std::memory_order_relaxed);
    CoreState &cs = stateOf(core);
    regions_published_.fetch_add(1, std::memory_order_relaxed);
    bytes_published_.fetch_add(n, std::memory_order_relaxed);

    if (pool_ == nullptr) {
        // Inline mode: decode on the publishing thread. The lock is
        // uncontended here but keeps the guarded-stream annotation
        // honest for every path.
        MutexLock lk(cs.mu);
        EXIST_SPAN("decode.chunk", obs::corrId(core, cs.next_pub_seq++));
        cs.stream.append(data, static_cast<std::size_t>(n));
        return;
    }
    TraceRegion region;
    region.core = core;
    {
        MutexLock lk(cs.mu);
        region.seq = cs.next_pub_seq++;
    }
    region.bytes.assign(data, data + n);
    // Link the producer-side publish to whichever consumer applies it.
    obs::flowBegin("decode.region", obs::corrId(core, region.seq));
    bool accepted = queue_.push(std::move(region));
    EXIST_ASSERT(accepted, "publish after finish");
}

void
StreamingDecoder::consumerLoop()
{
    TraceRegion region;
    while (queue_.pop(region)) {
        CoreState &cs = stateOf(region.core);
        MutexLock lk(cs.mu);
        cs.stash.emplace(region.seq, std::move(region.bytes));
        // Apply every in-order chunk now available; out-of-order
        // arrivals wait in the stash for their predecessors.
        auto it = cs.stash.find(cs.next_apply_seq);
        while (it != cs.stash.end()) {
            std::uint64_t chunk_corr =
                obs::corrId(region.core, cs.next_apply_seq);
            EXIST_SPAN("decode.chunk", chunk_corr);
            obs::flowEnd("decode.region", chunk_corr);
            cs.stream.append(it->second.data(), it->second.size());
            cs.stash.erase(it);
            ++cs.next_apply_seq;
            it = cs.stash.find(cs.next_apply_seq);
        }
    }
}

std::vector<std::pair<CoreId, DecodedTrace>>
StreamingDecoder::finish()
{
    EXIST_ASSERT(!finished_, "StreamingDecoder finished twice");
    finished_ = true;
    queue_.close();
    for (auto &f : consumers_)
        f.get();  // rethrows a consumer failure here

    // Decode the stream tails — the only work left after trace end —
    // fanned across the pool like the batch decoder fans whole buffers.
    std::vector<std::pair<CoreId, DecodedTrace>> out(cores_.size());
    auto one = [&](std::size_t i) {
        CoreState &cs = *cores_[i];
        EXIST_SPAN("decode.tail", obs::corrId(cs.core));
        // The consumers are joined, but take the core lock anyway:
        // stash/stream are guarded, and the uncontended acquire is
        // cheaper than an exemption from the analysis.
        MutexLock lk(cs.mu);
        EXIST_ASSERT(cs.stash.empty(),
                     "core %d has unapplied regions", cs.core);
        out[i].first = cs.core;
        out[i].second = cs.stream.finish();
    };
    if (pool_ == nullptr || cores_.size() <= 1) {
        for (std::size_t i = 0; i < cores_.size(); ++i)
            one(i);
    } else {
        pool_->parallelFor(0, cores_.size(), one);
    }
    return out;
}

StreamingDecoder::Stats
StreamingDecoder::stats() const
{
    Stats s;
    s.regions_published =
        regions_published_.load(std::memory_order_relaxed);
    s.bytes_published = bytes_published_.load(std::memory_order_relaxed);
    s.queue_high_water = queue_.highWater();
    return s;
}

}  // namespace exist
