#include "decode/packet_parser.h"

namespace exist {

std::uint64_t
PacketParser::readLe(std::size_t n)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += n;
    return v;
}

bool
PacketParser::resyncToPsb()
{
    // Look for the full 16-byte PSB pattern.
    while (pos_ + 2 * kPsbRepeat <= size_) {
        bool match = true;
        for (int i = 0; i < kPsbRepeat && match; ++i) {
            match = data_[pos_ + 2 * i] ==
                        static_cast<std::uint8_t>(PacketOp::kExt) &&
                    data_[pos_ + 2 * i + 1] == kExtPsb;
        }
        if (match) {
            pos_ += 2 * kPsbRepeat;
            ++resyncs_;
            last_ip_ = 0;
            return true;
        }
        ++pos_;
    }
    pos_ = size_;
    return false;
}

bool
PacketParser::next(Packet &out)
{
    while (pos_ < size_) {
        const std::size_t start = pos_;
        // A packet cut off by the end of a non-final buffer is left
        // unconsumed (pos_ restored to the packet start) so the retry
        // sees the whole packet once the next chunk lands; only at the
        // true stream end is it recorded as truncated. Keeping the
        // rollback here means the streaming consumer needs no
        // per-packet state snapshot on its hot loop.
        auto truncatedTail = [&]() {
            if (!final_) {
                pos_ = start;
                return false;
            }
            truncated_ = size_ - start;
            pos_ = size_;
            return false;
        };
        std::uint8_t b = data_[pos_];

        if (b & 0x80) {  // kTnt6: 0b10xxxxxx
            // Batch the whole run of adjacent TNT bytes (the dominant
            // byte in a loop-heavy trace) into one Packet: the bits
            // land in the queue in the same order either way, and the
            // caller's dispatch cost drops from per-6-bits to per-run.
            std::uint64_t bits = b & 0x3f;
            unsigned n = 6;
            ++pos_;
            while (n <= 54 && pos_ < size_ && (data_[pos_] & 0x80)) {
                bits |= static_cast<std::uint64_t>(data_[pos_] & 0x3f)
                        << n;
                n += 6;
                ++pos_;
            }
            out.op = PacketOp::kTnt6;
            out.tnt_bits = bits;
            out.tnt_count = static_cast<std::uint8_t>(n);
            return true;
        }

        switch (static_cast<PacketOp>(b)) {
          case PacketOp::kPad:
            ++pos_;
            continue;
          case PacketOp::kTntPartial: {
            if (!have(2))
                return truncatedTail();
            std::uint8_t p = data_[pos_ + 1];
            pos_ += 2;
            out.op = PacketOp::kTnt6;
            out.tnt_count = p >> 5;
            out.tnt_bits = p & 0x1f;
            return true;
          }
          case PacketOp::kExt: {
            if (!have(2))
                return truncatedTail();
            std::uint8_t sub = data_[pos_ + 1];
            if (sub == kExtPsb) {
                // Consume the full PSB run.
                std::size_t run = 0;
                while (have(2 * (run + 1)) &&
                       data_[pos_ + 2 * run] ==
                           static_cast<std::uint8_t>(PacketOp::kExt) &&
                       data_[pos_ + 2 * run + 1] == kExtPsb) {
                    ++run;
                }
                pos_ += 2 * run;
                last_ip_ = 0;
                out.op = PacketOp::kExt;
                out.value = kExtPsb;
                return true;
            }
            if (sub == kExtPsbEnd) {
                pos_ += 2;
                out.op = PacketOp::kExt;
                out.value = kExtPsbEnd;
                return true;
            }
            // Unknown ext: resync.
            if (!resyncToPsb()) {
                if (!final_)
                    pos_ = start;
                return false;
            }
            out.op = PacketOp::kExt;
            out.value = kExtPsb;
            return true;
          }
          case PacketOp::kTip:
          case PacketOp::kTipPge:
          case PacketOp::kTipPgd:
          case PacketOp::kFup: {
            if (!have(2))
                return truncatedTail();
            std::uint8_t len = data_[pos_ + 1];
            if (len > 8 || !have(2 + len))
                return truncatedTail();
            pos_ += 2;
            std::uint64_t ip = last_ip_;
            if (len > 0) {
                std::uint64_t low = readLe(len);
                std::uint64_t mask =
                    len >= 8 ? ~0ull : ((1ull << (8 * len)) - 1);
                ip = (last_ip_ & ~mask) | (low & mask);
            }
            last_ip_ = ip;
            out.op = static_cast<PacketOp>(b);
            out.value = ip;
            return true;
          }
          case PacketOp::kPip:
            if (!have(6))
                return truncatedTail();
            ++pos_;
            out.op = PacketOp::kPip;
            out.value = readLe(5);
            return true;
          case PacketOp::kMode:
            if (!have(2))
                return truncatedTail();
            ++pos_;
            out.op = PacketOp::kMode;
            out.value = readLe(1);
            return true;
          case PacketOp::kTsc:
            if (!have(8))
                return truncatedTail();
            ++pos_;
            out.op = PacketOp::kTsc;
            out.value = readLe(7);
            return true;
          case PacketOp::kCyc: {
            ++pos_;
            std::uint64_t v = 0;
            int shift = 0;
            bool complete = false;
            while (pos_ < size_) {
                std::uint8_t byte = data_[pos_++];
                v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
                shift += 7;
                if (!(byte & 0x80)) {
                    complete = true;
                    break;
                }
            }
            // A varint cut off by the buffer end: mid-stream the rest
            // may still arrive, so leave it unconsumed; at the true
            // stream end keep the historical truncated-value packet.
            if (!complete && !final_) {
                pos_ = start;
                return false;
            }
            out.op = PacketOp::kCyc;
            out.value = v;
            return true;
          }
          case PacketOp::kOvf:
            ++pos_;
            out.op = PacketOp::kOvf;
            return true;
          case PacketOp::kPtw: {
            if (!have(2))
                return truncatedTail();
            std::uint8_t len = data_[pos_ + 1];
            if (len > 8 || !have(2 + len))
                return truncatedTail();
            pos_ += 2;
            out.op = PacketOp::kPtw;
            out.value = readLe(len);
            return true;
          }
          default:
            // Unknown opcode (e.g. we landed mid-packet after a ring
            // wrap): resynchronise at the next PSB.
            if (!resyncToPsb()) {
                if (!final_)
                    pos_ = start;
                return false;
            }
            out.op = PacketOp::kExt;
            out.value = kExtPsb;
            return true;
        }
    }
    return false;
}

}  // namespace exist
