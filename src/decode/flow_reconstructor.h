/**
 * @file
 * Execution-flow reconstruction: replays the program binary against the
 * packet stream, following statically-resolvable transfers from the
 * binary, consuming TNT bits at conditionals and TIP targets at
 * indirect transfers. This is the software-decoder stage of the paper's
 * pipeline (libipt equivalent) that turns per-core packet bytes back
 * into human-readable application behaviour.
 */
#ifndef EXIST_DECODE_FLOW_RECONSTRUCTOR_H
#define EXIST_DECODE_FLOW_RECONSTRUCTOR_H

#include <cstdint>
#include <deque>
#include <vector>

#include "decode/packet_parser.h"
#include "util/types.h"
#include "workload/program.h"

namespace exist {

/** A contiguous decoded span of execution (between PGE and PGD). */
struct DecodedSegment {
    Cycles start_time = 0;  ///< from TSC/CYC packets, approximate
    Cycles end_time = 0;
    std::uint64_t first_offset = 0;  ///< byte offset where it began
    std::uint64_t branches = 0;      ///< block transitions decoded
};

/** The reconstruction result for one core's trace buffer. */
struct DecodedTrace {
    std::vector<DecodedSegment> segments;

    /** Block transitions decoded in total (== sum over segments). */
    std::uint64_t branches_decoded = 0;
    /** Instructions attributed (sum of insns of visited blocks). */
    std::uint64_t insns_decoded = 0;

    /** Per-function visit-instruction counts (index = function id). */
    std::vector<std::uint64_t> function_insns;
    /** Per-function entry counts (calls decoded into the function). */
    std::vector<std::uint64_t> function_entries;
    /** Optional full block path (only filled when record_path). */
    std::vector<std::uint32_t> block_path;

    /** PTWRITE payloads in stream order with their timestamps
     *  (SS6.1 data-flow enhancement). */
    std::vector<std::pair<Cycles, std::uint64_t>> ptwrites;

    std::uint64_t tnt_bits_consumed = 0;
    std::uint64_t tips_consumed = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t resyncs = 0;
};

/** Options for reconstruction. */
struct DecodeOptions {
    /** Record the full block path (memory-heavy; used by tests and the
     *  accuracy analysis, not by overhead experiments). */
    bool record_path = false;
    /** Safety valve for pathological inputs. */
    std::uint64_t max_branches = 400'000'000;
};

/**
 * Resumable reconstruction of one core's byte stream: the decode
 * state machine (packet parser position, pending TNT/TIP queues, open
 * segment, resume hints) lives in the object, so bytes can be fed in
 * arbitrary chunks as ToPA regions fill, long before the stream is
 * complete. finish() seals the stream and returns the result.
 *
 * Determinism: the result is a pure function of the concatenated
 * bytes — chunk boundaries never change it, because a parse attempt
 * that runs out of bytes mid-packet is rolled back and retried when
 * the next chunk arrives. The batch FlowReconstructor::decode path is
 * implemented on top of this class (one append + finish), so batch
 * and streaming decode are the same code by construction.
 */
class FlowStream
{
  public:
    explicit FlowStream(const ProgramBinary *prog, DecodeOptions opts = {});

    /** Feed the next chunk of the stream; decodes as far as the bytes
     *  allow. Illegal after finish(). */
    void append(const std::uint8_t *data, std::size_t n);

    /** Seal the stream: decode the tail, close the open segment and
     *  return the result. Call exactly once. */
    DecodedTrace finish();

    /** One-shot decode of a complete external buffer (no copy into the
     *  stream buffer); equivalent to append(data, n) + finish(). */
    DecodedTrace finishWith(const std::uint8_t *data, std::size_t n);

    bool finished() const { return finished_; }

    /** Bytes accumulated so far via append(). */
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    void pump(const std::uint8_t *data, std::size_t size, bool final);
    void openSegment(std::uint64_t offset);
    void closeSegment();
    void visit(std::uint32_t block);
    void transition(std::uint32_t next, bool from_packet);
    void drain();
    void handlePacket(const Packet &pkt);

    const ProgramBinary *prog_;
    DecodeOptions opts_;
    std::vector<std::uint8_t> buf_;
    PacketParser parser_{nullptr, 0};
    DecodedTrace out_;

    std::uint32_t cur_ = kNoBlock;
    Cycles time_ = 0;
    bool segment_open_ = false;
    bool after_resync_ = false;
    bool at_syscall_ = false;  ///< waiting for the PGD/PGE pair
    DecodedSegment seg_;
    std::deque<bool> tnt_queue_;
    std::deque<std::uint64_t> tip_queue_;
    std::uint32_t resume_hint_ = kNoBlock;
    // Blocks visited since the last packet-consuming transition: the
    // decoder reaches them by statically walking ahead of the last
    // encoded branch, so a PGD may land "behind" them and the matching
    // PGE re-enter one of them without re-execution having happened in
    // between. Resuming must not re-visit them.
    std::vector<std::uint32_t> static_tail_;
    std::vector<std::uint32_t> saved_tail_;
    bool budget_exhausted_ = false;
    bool finished_ = false;
};

/**
 * Reconstructor bound to one binary (the paper's decoder fetches the
 * binary from a repository keyed by the traced application).
 */
class FlowReconstructor
{
  public:
    explicit FlowReconstructor(const ProgramBinary *prog,
                               DecodeOptions opts = {})
        : prog_(prog), opts_(opts)
    {
    }

    /** Decode one core's trace bytes. */
    DecodedTrace decode(const std::uint8_t *data, std::size_t size) const;

    DecodedTrace
    decode(const std::vector<std::uint8_t> &bytes) const
    {
        return decode(bytes.data(), bytes.size());
    }

    /** Open a resumable stream for incremental decode. */
    FlowStream stream() const { return FlowStream(prog_, opts_); }

  private:
    const ProgramBinary *prog_;
    DecodeOptions opts_;
};

}  // namespace exist

#endif  // EXIST_DECODE_FLOW_RECONSTRUCTOR_H
