/**
 * @file
 * Execution-flow reconstruction: replays the program binary against the
 * packet stream, following statically-resolvable transfers from the
 * binary, consuming TNT bits at conditionals and TIP targets at
 * indirect transfers. This is the software-decoder stage of the paper's
 * pipeline (libipt equivalent) that turns per-core packet bytes back
 * into human-readable application behaviour.
 *
 * Two layers of repetition-awareness sit on the hot path (DESIGN.md
 * §11): a per-binary immutable BlockCache shared read-only across all
 * decode workers, and a per-stream TNT-run memo that retires k
 * conditional outcomes per table hit. Both are behind
 * DecodeOptions::block_cache / tnt_memo_bits and change only the
 * speed, never the output: every fast-path apply is count-for-count
 * the transitions the slow path would have made.
 */
#ifndef EXIST_DECODE_FLOW_RECONSTRUCTOR_H
#define EXIST_DECODE_FLOW_RECONSTRUCTOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "decode/packet_parser.h"
#include "decode/small_buffers.h"
#include "decode/tnt_memo.h"
#include "util/types.h"
#include "workload/program.h"

namespace exist {

/** A contiguous decoded span of execution (between PGE and PGD). */
struct DecodedSegment {
    Cycles start_time = 0;  ///< from TSC/CYC packets, approximate
    Cycles end_time = 0;
    std::uint64_t first_offset = 0;  ///< byte offset where it began
    std::uint64_t branches = 0;      ///< block transitions decoded
};

/**
 * Fast-path telemetry for one decoded stream. Pure observability:
 * the values depend on chunking and warm-up, so they are excluded
 * from every identity comparison (unlike everything else in
 * DecodedTrace, which is a pure function of the input bytes).
 */
struct DecodeCacheStats {
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t memo_unusable = 0;
    std::uint64_t memo_evictions = 0;
    /** TNT bits retired through the memo fast path. */
    std::uint64_t memo_fast_bits = 0;
    /** Memo table + arena footprint at finish. */
    std::uint64_t memo_bytes = 0;
    /** Shared BlockCache table footprint (whole binary, not a share). */
    std::uint64_t block_cache_bytes = 0;
};

/** The reconstruction result for one core's trace buffer. */
struct DecodedTrace {
    std::vector<DecodedSegment> segments;

    /** Block transitions decoded in total (== sum over segments). */
    std::uint64_t branches_decoded = 0;
    /** Instructions attributed (sum of insns of visited blocks). */
    std::uint64_t insns_decoded = 0;

    /** Per-function visit-instruction counts (index = function id). */
    std::vector<std::uint64_t> function_insns;
    /** Per-function entry counts (calls decoded into the function). */
    std::vector<std::uint64_t> function_entries;
    /** Optional full block path (only filled when record_path). */
    std::vector<std::uint32_t> block_path;

    /** PTWRITE payloads in stream order with their timestamps
     *  (SS6.1 data-flow enhancement). */
    std::vector<std::pair<Cycles, std::uint64_t>> ptwrites;

    std::uint64_t tnt_bits_consumed = 0;
    std::uint64_t tips_consumed = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t resyncs = 0;

    /** Fast-path telemetry; never part of identity comparisons. */
    DecodeCacheStats cache_stats;
};

/** Options for reconstruction. */
struct DecodeOptions {
    /** Record the full block path (memory-heavy; used by tests and the
     *  accuracy analysis, not by overhead experiments). */
    bool record_path = false;
    /** Safety valve for pathological inputs. */
    std::uint64_t max_branches = 400'000'000;
    /** Use the per-binary BlockCache (off: walk workload::Program
     *  directly — the legacy slow path, kept as the reference). */
    bool block_cache = true;
    /** TNT-run memo window size in bits; 0 disables memoization.
     *  Clamped to [0, TntMemo::kMaxBits]. Needs block_cache. 6 retires
     *  half again as many outcomes per table hit as 4 while the
     *  per-block pattern space (2^k) still keeps the hot working set
     *  cache-resident; much larger windows thrash on branchy
     *  workloads (hit rate collapses by k = 16). */
    int tnt_memo_bits = 6;
};

/**
 * Resumable reconstruction of one core's byte stream: the decode
 * state machine (packet parser position, pending TNT/TIP queues, open
 * segment, resume hints) lives in the object, so bytes can be fed in
 * arbitrary chunks as ToPA regions fill, long before the stream is
 * complete. finish() seals the stream and returns the result.
 *
 * Determinism: the result is a pure function of the concatenated
 * bytes — chunk boundaries never change it, because a parse attempt
 * that runs out of bytes mid-packet is rolled back and retried when
 * the next chunk arrives. The batch FlowReconstructor::decode path is
 * implemented on top of this class (one append + finish), so batch
 * and streaming decode are the same code by construction.
 */
class FlowStream
{
  public:
    /** `cache` may share a prebuilt BlockCache across streams; when
     *  null and opts.block_cache is set, the shared per-binary cache
     *  is fetched (built once) from BlockCache::forBinary(). `pool`
     *  (optional, must outlive the stream) recycles warm TNT memos
     *  across streams of the same reconstructor. */
    explicit FlowStream(const ProgramBinary *prog, DecodeOptions opts = {},
                        std::shared_ptr<const BlockCache> cache = nullptr,
                        TntMemoPool *pool = nullptr);

    FlowStream(FlowStream &&) = default;
    FlowStream &operator=(FlowStream &&) = default;
    ~FlowStream();

    /** Feed the next chunk of the stream; decodes as far as the bytes
     *  allow. Illegal after finish(). */
    void append(const std::uint8_t *data, std::size_t n);

    /** Seal the stream: decode the tail, close the open segment and
     *  return the result. Call exactly once. */
    DecodedTrace finish();

    /** One-shot decode of a complete external buffer (no copy into the
     *  stream buffer); equivalent to append(data, n) + finish(). */
    DecodedTrace finishWith(const std::uint8_t *data, std::size_t n);

    bool finished() const { return finished_; }

    /** Bytes accumulated so far via append(). */
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    void pump(const std::uint8_t *data, std::size_t size, bool final);
    void openSegment(std::uint64_t offset);
    void closeSegment();
    void visit(std::uint32_t block);
    void drain(bool defer_tail = false);
    template <typename Access> void visitT(const Access &acc,
                                           std::uint32_t block);
    template <typename Access> void transitionT(const Access &acc,
                                                std::uint32_t next,
                                                bool from_packet);
    template <typename Access>
    void drainT(const Access &acc, bool defer_tail);
    bool tryMemoRun();
    void materializeTail();
    std::uint32_t blockAt(std::uint64_t addr) const;
    void handlePacket(const Packet &pkt);
    DecodedTrace seal();

    const ProgramBinary *prog_;
    DecodeOptions opts_;
    std::shared_ptr<const BlockCache> cache_;  ///< null: legacy walk
    std::unique_ptr<TntMemo> memo_;            ///< null: bit-by-bit
    TntMemoPool *memo_pool_ = nullptr;  ///< memo_ returns here at seal
    /** Memo stats at stream start (a pooled memo arrives warm); the
     *  per-stream cache_stats are deltas against this. */
    TntMemo::Stats memo_stats_base_;
    std::vector<std::uint8_t> buf_;
    PacketParser parser_{nullptr, 0};
    DecodedTrace out_;

    std::uint32_t cur_ = kNoBlock;
    Cycles time_ = 0;
    bool segment_open_ = false;
    bool after_resync_ = false;
    bool at_syscall_ = false;  ///< waiting for the PGD/PGE pair
    DecodedSegment seg_;
    TntBitQueue tnt_queue_;
    SmallRing<std::uint64_t, 8> tip_queue_;
    std::uint32_t resume_hint_ = kNoBlock;
    // Blocks visited since the last packet-consuming transition: the
    // decoder reaches them by statically walking ahead of the last
    // encoded branch, so a PGD may land "behind" them and the matching
    // PGE re-enter one of them without re-execution having happened in
    // between. Resuming must not re-visit them.
    //
    // Keep only a short window (kDecodeStaticTailMax): this is the
    // resume-disambiguation set, and an overly long one mistakes a
    // different thread's PGE (same CR3, per-core multiplexing) for a
    // static-overshoot resume, which desynchronizes decode far more
    // than the duplicate visits a false fresh-open costs.
    InlineVec<std::uint32_t, kDecodeStaticTailMax> static_tail_;
    InlineVec<std::uint32_t, kDecodeStaticTailMax> saved_tail_;
    // Lazy static tail: after a memo run the tail usually dies unused
    // (the next packet-consuming transition clears it), so applying a
    // run only records the entry's arena tail *offset* here — not even
    // resolved to a pointer — and the copy into static_tail_ happens
    // on the rare reads/extensions (materializeTail). While stale_ is
    // set, static_tail_ is out of date.
    std::uint32_t lazy_tail_off_ = 0;
    std::uint8_t lazy_tail_len_ = 0;
    bool lazy_tail_stale_ = false;
    bool budget_exhausted_ = false;
    bool finished_ = false;
};

/**
 * Reconstructor bound to one binary (the paper's decoder fetches the
 * binary from a repository keyed by the traced application). Builds —
 * or joins — the binary's shared BlockCache once, so every stream it
 * opens (one per worker in ParallelDecoder) reads the same table.
 */
class FlowReconstructor
{
  public:
    explicit FlowReconstructor(const ProgramBinary *prog,
                               DecodeOptions opts = {})
        : prog_(prog), opts_(opts),
          cache_(opts.block_cache ? BlockCache::forBinary(prog) : nullptr)
    {
    }

    /** Decode one core's trace bytes. */
    DecodedTrace decode(const std::uint8_t *data, std::size_t size) const;

    DecodedTrace
    decode(const std::vector<std::uint8_t> &bytes) const
    {
        return decode(bytes.data(), bytes.size());
    }

    /** Open a resumable stream for incremental decode. Streams borrow
     *  the reconstructor's memo pool and must not outlive it. */
    FlowStream
    stream() const
    {
        return FlowStream(prog_, opts_, cache_, &memo_pool_);
    }

    /** The shared per-binary cache (null when disabled). */
    const std::shared_ptr<const BlockCache> &blockCache() const
    {
        return cache_;
    }

  private:
    const ProgramBinary *prog_;
    DecodeOptions opts_;
    std::shared_ptr<const BlockCache> cache_;
    /** Warm TNT memos recycled across this reconstructor's streams
     *  (decode() is const and concurrent; the pool is internally
     *  locked and each stream owns its memo exclusively). */
    mutable TntMemoPool memo_pool_;
};

}  // namespace exist

#endif  // EXIST_DECODE_FLOW_RECONSTRUCTOR_H
