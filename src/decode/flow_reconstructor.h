/**
 * @file
 * Execution-flow reconstruction: replays the program binary against the
 * packet stream, following statically-resolvable transfers from the
 * binary, consuming TNT bits at conditionals and TIP targets at
 * indirect transfers. This is the software-decoder stage of the paper's
 * pipeline (libipt equivalent) that turns per-core packet bytes back
 * into human-readable application behaviour.
 */
#ifndef EXIST_DECODE_FLOW_RECONSTRUCTOR_H
#define EXIST_DECODE_FLOW_RECONSTRUCTOR_H

#include <cstdint>
#include <vector>

#include "util/types.h"
#include "workload/program.h"

namespace exist {

/** A contiguous decoded span of execution (between PGE and PGD). */
struct DecodedSegment {
    Cycles start_time = 0;  ///< from TSC/CYC packets, approximate
    Cycles end_time = 0;
    std::uint64_t first_offset = 0;  ///< byte offset where it began
    std::uint64_t branches = 0;      ///< block transitions decoded
};

/** The reconstruction result for one core's trace buffer. */
struct DecodedTrace {
    std::vector<DecodedSegment> segments;

    /** Block transitions decoded in total (== sum over segments). */
    std::uint64_t branches_decoded = 0;
    /** Instructions attributed (sum of insns of visited blocks). */
    std::uint64_t insns_decoded = 0;

    /** Per-function visit-instruction counts (index = function id). */
    std::vector<std::uint64_t> function_insns;
    /** Per-function entry counts (calls decoded into the function). */
    std::vector<std::uint64_t> function_entries;
    /** Optional full block path (only filled when record_path). */
    std::vector<std::uint32_t> block_path;

    /** PTWRITE payloads in stream order with their timestamps
     *  (SS6.1 data-flow enhancement). */
    std::vector<std::pair<Cycles, std::uint64_t>> ptwrites;

    std::uint64_t tnt_bits_consumed = 0;
    std::uint64_t tips_consumed = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t resyncs = 0;
};

/** Options for reconstruction. */
struct DecodeOptions {
    /** Record the full block path (memory-heavy; used by tests and the
     *  accuracy analysis, not by overhead experiments). */
    bool record_path = false;
    /** Safety valve for pathological inputs. */
    std::uint64_t max_branches = 400'000'000;
};

/**
 * Reconstructor bound to one binary (the paper's decoder fetches the
 * binary from a repository keyed by the traced application).
 */
class FlowReconstructor
{
  public:
    explicit FlowReconstructor(const ProgramBinary *prog,
                               DecodeOptions opts = {})
        : prog_(prog), opts_(opts)
    {
    }

    /** Decode one core's trace bytes. */
    DecodedTrace decode(const std::uint8_t *data, std::size_t size) const;

    DecodedTrace
    decode(const std::vector<std::uint8_t> &bytes) const
    {
        return decode(bytes.data(), bytes.size());
    }

  private:
    const ProgramBinary *prog_;
    DecodeOptions opts_;
};

}  // namespace exist

#endif  // EXIST_DECODE_FLOW_RECONSTRUCTOR_H
