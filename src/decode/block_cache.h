/**
 * @file
 * Per-binary decode block cache: the flow reconstructor's working set,
 * flattened. FlowStream resolves every block transition against
 * `workload::ProgramBinary`, whose BasicBlock records are 40 bytes,
 * carry fields the decoder never reads (addresses, indirect tables,
 * taken probabilities), and put the function-entry test one extra
 * pointer chase away (`prog->function(fid).entry_block`). BlockCache
 * precomputes exactly what decode needs — successor ids, instruction
 * count, owning function, entry flag — into one dense 16-byte-per-block
 * table indexed by block id.
 *
 * The cache is immutable after construction (ProgramBinary itself is
 * immutable, so there is nothing to invalidate) and shared read-only
 * across every decode worker of a session via shared_ptr; forBinary()
 * keeps a process-wide registry so all decoders of the same binary —
 * batch, parallel, streaming, any shard — share one table.
 */
#ifndef EXIST_DECODE_BLOCK_CACHE_H
#define EXIST_DECODE_BLOCK_CACHE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "workload/branch.h"
#include "workload/program.h"

namespace exist {

/**
 * One block's decode view. 16 bytes, cache-line-friendly: a hot loop
 * of four blocks fits in a single line where the BasicBlock walk
 * touched three.
 */
struct BlockInfo {
    std::uint32_t target0 = kNoBlock;  ///< taken / static / callee
    std::uint32_t target1 = kNoBlock;  ///< not-taken / syscall resume
    std::uint32_t function_id = 0;
    std::uint16_t insns = 0;
    std::uint8_t kind = 0;  ///< BranchKind, narrowed
    std::uint8_t flags = 0;

    static constexpr std::uint8_t kFunctionEntry = 1u << 0;

    BranchKind branchKind() const
    {
        return static_cast<BranchKind>(kind);
    }
    bool isFunctionEntry() const
    {
        return (flags & kFunctionEntry) != 0;
    }
};

/** Immutable flat successor table for one ProgramBinary. */
class BlockCache
{
  public:
    explicit BlockCache(const ProgramBinary &prog);

    const BlockInfo &info(std::uint32_t block) const
    {
        return blocks_[block];
    }
    std::uint32_t numBlocks() const
    {
        return static_cast<std::uint32_t>(blocks_.size());
    }

    /**
     * TIP-address resolution: ProgramBinary::blockAtAddress semantics
     * (any address inside a block maps to it) at hash-probe cost for
     * the case the encoder actually produces — exact block starts.
     * Misses (mid-block or foreign addresses, i.e. corrupt streams)
     * fall back to the legacy range search, so the result is identical
     * for every input by construction.
     */
    std::uint32_t
    blockAt(std::uint64_t addr) const
    {
        const std::size_t mask = addr_slots_.size() - 1;
        std::uint64_t h = addr * 0x9e3779b97f4a7c15ULL;
        h ^= h >> 32;
        for (std::size_t i = h & mask;; i = (i + 1) & mask) {
            const AddrSlot &s = addr_slots_[i];
            if (s.addr == addr)
                return s.block;
            if (s.addr == kEmptyAddr)
                return prog_->blockAtAddress(addr);
        }
    }

    /** Table footprint, published as decode.cache.bytes. */
    std::uint64_t bytes() const
    {
        return blocks_.size() * sizeof(BlockInfo) +
               addr_slots_.size() * sizeof(AddrSlot);
    }

    /**
     * The shared cache for `prog`, built on first request. Keyed by
     * binary identity (address): safe because a live cache pins no
     * binary but is only ever held by decoders whose binary outlives
     * them, so a reused address implies the old cache already expired.
     */
    static std::shared_ptr<const BlockCache>
    forBinary(const ProgramBinary *prog);

  private:
    /** Open-addressing slot for the exact-start address index. No
     *  valid instruction address is all-ones. */
    struct AddrSlot {
        std::uint64_t addr = kEmptyAddr;
        std::uint32_t block = kNoBlock;
    };
    static constexpr std::uint64_t kEmptyAddr = ~0ULL;

    std::vector<BlockInfo> blocks_;
    std::vector<AddrSlot> addr_slots_;
    const ProgramBinary *prog_;  ///< legacy fallback for inexact hits
};

}  // namespace exist

#endif  // EXIST_DECODE_BLOCK_CACHE_H
