/**
 * @file
 * Multi-core decode front-end: fans a session's per-core trace buffers
 * across the work-stealing pool and merges the per-buffer
 * DecodedTraces deterministically. Per-core ToPA buffers are
 * independent by construction (the five-tuple switch log, not the
 * byte streams, carries cross-core ordering), so each buffer decodes
 * on its own worker with a shared read-only FlowReconstructor — and,
 * through it, one shared per-binary BlockCache; only the TNT-memo
 * tables are per-stream, keeping every worker lock-free; the
 * result vector preserves the collection order (ascending core id),
 * which makes the parallel output bit-identical to the serial path at
 * any thread count.
 */
#ifndef EXIST_DECODE_PARALLEL_DECODER_H
#define EXIST_DECODE_PARALLEL_DECODER_H

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "decode/flow_reconstructor.h"
#include "util/types.h"

namespace exist {

class ThreadPool;

/** Non-owning view of one core's collected trace bytes. */
struct TraceBufferView {
    CoreId core = kInvalidId;
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
};

class ParallelDecoder
{
  public:
    /**
     * threads == 0 uses the process-wide shared pool (hardware
     * concurrency); threads == 1 decodes inline on the caller thread,
     * preserving the historical serial behaviour exactly; threads > 1
     * runs a dedicated pool of that width.
     */
    explicit ParallelDecoder(const ProgramBinary *prog,
                             DecodeOptions opts = {}, int threads = 0);
    ~ParallelDecoder();

    /** Effective worker count (1 for the inline-serial mode). */
    int threads() const;

    /** Decode every view; result i corresponds to input view i. */
    std::vector<std::pair<CoreId, DecodedTrace>>
    decodeViews(const std::vector<TraceBufferView> &views) const;

    /** Decode any container of CollectedTrace-shaped items (anything
     *  with `.core` and `.bytes` members), preserving input order. */
    template <typename Container>
    std::vector<std::pair<CoreId, DecodedTrace>>
    decodeAll(const Container &traces) const
    {
        std::vector<TraceBufferView> views;
        views.reserve(traces.size());
        for (const auto &t : traces)
            views.push_back(
                TraceBufferView{t.core, t.bytes.data(), t.bytes.size()});
        return decodeViews(views);
    }

  private:
    FlowReconstructor reconstructor_;
    /** Null in inline-serial mode; else the pool decode runs on. */
    ThreadPool *pool_ = nullptr;
    std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace exist

#endif  // EXIST_DECODE_PARALLEL_DECODER_H
