/**
 * @file
 * Byte-stream to packet-stream parser for the modelled trace format.
 * Mirrors libipt's role: it maintains the last-IP decompression state
 * and can resynchronise at PSB boundaries after corruption or a ring
 * wrap that landed mid-packet.
 */
#ifndef EXIST_DECODE_PACKET_PARSER_H
#define EXIST_DECODE_PACKET_PARSER_H

#include <cstddef>
#include <cstdint>

#include "hwtrace/packet.h"

namespace exist {

/** A parsed packet. */
struct Packet {
    PacketOp op = PacketOp::kPad;
    std::uint64_t value = 0;   ///< IP / CR3 / TSC / CYC delta
    std::uint8_t tnt_bits = 0; ///< for TNT packets
    std::uint8_t tnt_count = 0;
};

/** Streaming parser over a contiguous trace byte buffer. */
class PacketParser
{
  public:
    PacketParser(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    /** Parse the next packet; false at end of stream. */
    bool next(Packet &out);

    /** Skip forward to just after the next PSB; false if none left. */
    bool resyncToPsb();

    std::size_t offset() const { return pos_; }
    std::size_t resyncCount() const { return resyncs_; }
    std::size_t truncated() const { return truncated_; }

  private:
    bool have(std::size_t n) const { return pos_ + n <= size_; }
    std::uint64_t readLe(std::size_t n);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::uint64_t last_ip_ = 0;
    std::size_t resyncs_ = 0;
    std::size_t truncated_ = 0;
};

}  // namespace exist

#endif  // EXIST_DECODE_PACKET_PARSER_H
