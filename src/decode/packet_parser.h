/**
 * @file
 * Byte-stream to packet-stream parser for the modelled trace format.
 * Mirrors libipt's role: it maintains the last-IP decompression state
 * and can resynchronise at PSB boundaries after corruption or a ring
 * wrap that landed mid-packet.
 */
#ifndef EXIST_DECODE_PACKET_PARSER_H
#define EXIST_DECODE_PACKET_PARSER_H

#include <cstddef>
#include <cstdint>

#include "hwtrace/packet.h"

namespace exist {

/** A parsed packet. A kTnt6 Packet may carry the outcomes of several
 *  consecutive TNT bytes (up to 60 bits, oldest in bit 0): adjacent
 *  one-byte TNT packets are batched into one Packet so the hot decode
 *  loop pays its per-packet dispatch once per run, not once per six
 *  branches. Bit order is unchanged, so consumers that iterate
 *  tnt_count bits see exactly the unbatched stream. */
struct Packet {
    PacketOp op = PacketOp::kPad;
    std::uint64_t value = 0;     ///< IP / CR3 / TSC / CYC delta
    std::uint64_t tnt_bits = 0;  ///< for TNT packets
    std::uint8_t tnt_count = 0;
};

/** Streaming parser over a contiguous trace byte buffer. */
class PacketParser
{
  public:
    /** Decompression/progress state, snapshotable so an incremental
     *  consumer can roll back a parse attempt that ran out of bytes
     *  and retry it once more of the stream has arrived. */
    struct State {
        std::size_t pos = 0;
        std::uint64_t last_ip = 0;
        std::size_t resyncs = 0;
        std::size_t truncated = 0;
    };

    PacketParser(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    /** Parse the next packet; false at end of stream. */
    bool next(Packet &out);

    /** Skip forward to just after the next PSB; false if none left. */
    bool resyncToPsb();

    /**
     * Point the parser at a grown (or relocated) copy of the same
     * byte stream; position and decompression state carry over. Used
     * by the streaming decoder, whose buffer grows between pumps.
     */
    void rebind(const std::uint8_t *data, std::size_t size)
    {
        data_ = data;
        size_ = size;
    }

    /**
     * Whether the current buffer end is the true end of the stream
     * (default) or more bytes may still arrive. When not final, a CYC
     * varint that runs off the buffer end is left unconsumed and
     * next() returns false instead of emitting a truncated value that
     * a longer buffer would have parsed differently.
     */
    void setFinal(bool final) { final_ = final; }

    State state() const
    {
        return State{pos_, last_ip_, resyncs_, truncated_};
    }
    void setState(const State &s)
    {
        pos_ = s.pos;
        last_ip_ = s.last_ip;
        resyncs_ = s.resyncs;
        truncated_ = s.truncated;
    }

    std::size_t offset() const { return pos_; }
    std::size_t resyncCount() const { return resyncs_; }
    std::size_t truncated() const { return truncated_; }

  private:
    bool have(std::size_t n) const { return pos_ + n <= size_; }
    std::uint64_t readLe(std::size_t n);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::uint64_t last_ip_ = 0;
    std::size_t resyncs_ = 0;
    std::size_t truncated_ = 0;
    bool final_ = true;
};

}  // namespace exist

#endif  // EXIST_DECODE_PACKET_PARSER_H
