/**
 * @file
 * Streaming decode pipeline: overlap ToPA collection with flow
 * reconstruction. Tracers publish each filled ToPA region into a
 * bounded MPSC RegionQueue while the session is still tracing; worker
 * threads pop regions and advance the per-core FlowStream state
 * machines, so by the time tracing stops only the stream tails remain
 * to decode (cf. "Efficient Trace for RISC-V": decode keeps pace with
 * generation when regions are consumed incrementally).
 *
 * Backpressure: the queue is bounded in regions; a producer whose
 * push finds it full blocks until a consumer catches up, which bounds
 * the pipeline's memory to (queue capacity + per-core stream buffers)
 * instead of letting an outpaced decoder accumulate regions without
 * limit.
 *
 * Determinism: per-core regions carry sequence numbers and are applied
 * to that core's FlowStream strictly in order, and FlowStream results
 * are a pure function of the concatenated bytes — so the merged output
 * (emitted in core-registration order, i.e. collection order) is
 * bit-identical to the batch ParallelDecoder path at any thread count,
 * region size, or arrival interleaving.
 */
#ifndef EXIST_DECODE_STREAMING_DECODER_H
#define EXIST_DECODE_STREAMING_DECODER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "decode/flow_reconstructor.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace exist {

class ThreadPool;

/** One published chunk of a core's trace byte stream. */
struct TraceRegion {
    CoreId core = kInvalidId;
    std::uint64_t seq = 0;  ///< per-core arrival order
    std::vector<std::uint8_t> bytes;
};

/**
 * Bounded multi-producer single-consumer-group queue handing filled
 * regions from the collecting (simulation) thread to decode workers.
 */
class RegionQueue
{
  public:
    explicit RegionQueue(std::size_t capacity);

    /** Blocks while full; false (region dropped) once closed. */
    bool push(TraceRegion region) EXIST_EXCLUDES(mu_);

    /** Blocks while empty; false when closed and drained. */
    bool pop(TraceRegion &out) EXIST_EXCLUDES(mu_);

    /** Wake producers and consumers; pending regions still drain. */
    void close() EXIST_EXCLUDES(mu_);

    /** Peak queue depth observed (telemetry for tuning capacity). */
    std::size_t highWater() const EXIST_EXCLUDES(mu_);

  private:
    mutable Mutex mu_{lockorder::LockRank::kDecodeQueue,
                      "decode.region_queue"};
    CondVar not_full_;
    CondVar not_empty_;
    std::deque<TraceRegion> q_ EXIST_GUARDED_BY(mu_);
    const std::size_t capacity_;
    std::size_t high_water_ EXIST_GUARDED_BY(mu_) = 0;
    bool closed_ EXIST_GUARDED_BY(mu_) = false;
};

/**
 * The pipeline front-end: register the session's cores (in collection
 * order), publish regions as they fill, finish() after tracing stops.
 *
 * threads semantics: 1 decodes inline on the publishing thread (no
 * overlap, fully deterministic scheduling — the serial reference);
 * 0 runs a dedicated pool of ThreadPool::defaultThreads() workers;
 * N > 1 a dedicated pool of N. The process-wide shared pool is never
 * used: consumers park on workers for a whole session, and a producer
 * blocked on backpressure inside nested shared-pool parallelism (e.g.
 * cluster reconcile sessions) could deadlock the pool.
 */
class StreamingDecoder
{
  public:
    struct Stats {
        std::uint64_t regions_published = 0;
        std::uint64_t bytes_published = 0;
        std::size_t queue_high_water = 0;
    };

    StreamingDecoder(const ProgramBinary *prog, DecodeOptions opts = {},
                     int threads = 0, std::size_t queue_capacity = 128);
    ~StreamingDecoder();

    StreamingDecoder(const StreamingDecoder &) = delete;
    StreamingDecoder &operator=(const StreamingDecoder &) = delete;

    /** Register a core; registration order defines the merge order of
     *  finish(). Must precede the first publish. */
    void addCore(CoreId core);

    /**
     * Publish one filled region of `core`'s stream. Thread-safe across
     * cores; regions of the same core must be published by one thread
     * (they are: a core's tracer runs on the collecting thread).
     * Blocks when the queue is full (backpressure).
     */
    void publish(CoreId core, const std::uint8_t *data, std::uint64_t n);

    /**
     * Seal every stream: close the queue, join the workers, decode the
     * tails and return per-core results in registration order. Call
     * exactly once, after the last publish.
     */
    std::vector<std::pair<CoreId, DecodedTrace>> finish();

    /** Effective worker count (1 = inline mode). */
    int threads() const;

    Stats stats() const;

  private:
    struct CoreState {
        CoreId core = kInvalidId;
        Mutex mu{lockorder::LockRank::kDecodeCore,
                 "decode.core_state"};
        /** The resumable per-core reconstruction; consumers advance it
         *  strictly in seq order, so it is guarded even though regions
         *  arrive from many workers. */
        FlowStream stream EXIST_GUARDED_BY(mu);
        std::uint64_t next_pub_seq EXIST_GUARDED_BY(mu) = 0;
        std::uint64_t next_apply_seq EXIST_GUARDED_BY(mu) = 0;
        /** Out-of-order arrivals parked until their predecessors. */
        std::map<std::uint64_t, std::vector<std::uint8_t>> stash
            EXIST_GUARDED_BY(mu);

        CoreState(CoreId c, const ProgramBinary *prog,
                  DecodeOptions opts,
                  std::shared_ptr<const BlockCache> cache)
            : core(c), stream(prog, opts, std::move(cache))
        {
        }
    };

    void consumerLoop();
    CoreState &stateOf(CoreId core);

    const ProgramBinary *prog_;
    DecodeOptions opts_;
    /** One BlockCache per session, read-only across every core's
     *  stream and worker (null when decode_cache is off). */
    std::shared_ptr<const BlockCache> cache_;
    std::unique_ptr<ThreadPool> pool_;  ///< null in inline mode
    RegionQueue queue_;
    std::vector<std::unique_ptr<CoreState>> cores_;
    std::vector<std::future<void>> consumers_;
    std::atomic<std::uint64_t> regions_published_{0};
    std::atomic<std::uint64_t> bytes_published_{0};
    std::atomic<bool> publishing_started_{false};
    bool finished_ = false;
};

}  // namespace exist

#endif  // EXIST_DECODE_STREAMING_DECODER_H
