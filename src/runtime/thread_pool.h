/**
 * @file
 * Work-stealing thread pool for the offline stages of the pipeline
 * (trace decoding, cluster reconcile fan-out). The paper's design
 * pushes all heavy work off the traced node into the decoder, so the
 * decoder's throughput — not capture — bounds end-to-end observability;
 * per-core ToPA buffers are independent by construction, which makes
 * that work embarrassingly parallel.
 *
 * Shape: fixed worker threads, one deque per worker. A worker pops its
 * own deque LIFO (cache-warm) and steals FIFO from a victim when empty.
 * Tasks submitted from a worker thread go to that worker's deque; tasks
 * submitted from outside are distributed round-robin. Exceptions
 * propagate to the caller through the returned futures. Destruction
 * drains every queued task before joining, so submitted work is never
 * silently dropped.
 */
#ifndef EXIST_RUNTIME_THREAD_POOL_H
#define EXIST_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.h"

namespace exist {

class ThreadPool
{
  public:
    /** threads == 0 picks defaultThreads(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /** Tasks executed so far (by workers or by helping waiters). */
    std::uint64_t tasksRun() const
    {
        return tasks_run_.load(std::memory_order_relaxed);
    }
    /** Tasks taken from another worker's deque (load-balance events —
     *  a coarse skew signal for the control-plane metrics). */
    std::uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /** Hardware concurrency, clamped to at least 1. */
    static int defaultThreads();

    /** Process-wide pool of defaultThreads() workers, built lazily.
     *  Shared by every decode/reconcile site that does not request a
     *  specific width, so nested parallelism queues instead of
     *  oversubscribing. */
    static ThreadPool &shared();

    /** Schedule a callable; the future carries its result or its
     *  exception. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        push([task]() { (*task)(); });
        return fut;
    }

    /**
     * Run body(i) for every i in [begin, end) and block until all
     * complete. Runs inline for single-worker pools or trivial ranges.
     * The calling thread helps execute queued tasks while it waits, so
     * a worker may call parallelFor without deadlocking its own pool.
     * The first exception thrown by any iteration is rethrown here.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

  private:
    using Task = std::function<void()>;

    struct WorkerDeque {
        Mutex mu{lockorder::LockRank::kPool, "pool.deque"};
        std::deque<Task> tasks EXIST_GUARDED_BY(mu);
    };

    void push(Task task);
    void workerLoop(std::size_t index);
    /** Pop from own deque, else steal; false if everything is empty. */
    bool takeTask(std::size_t home, Task &out);
    bool popLocal(std::size_t index, Task &out);
    bool stealFrom(std::size_t victim, Task &out);

    std::vector<std::unique_ptr<WorkerDeque>> deques_;
    std::vector<std::thread> workers_;

    // queued_ counts tasks visible in the deques: incremented BEFORE
    // the task is pushed, decremented after it is taken, so it can
    // never underflow when a worker races a push. stop_ is flipped
    // under idle_mu_ before notifying so sleepers cannot miss it; a
    // producer takes idle_mu_ (even empty) between bumping queued_ and
    // notifying for the same reason.
    Mutex idle_mu_{lockorder::LockRank::kPool, "pool.idle"};
    CondVar idle_cv_;
    std::atomic<std::size_t> queued_{0};
    std::atomic<std::size_t> next_queue_{0};
    std::atomic<bool> stop_{false};

    // Telemetry (relaxed: trend counters, not synchronization).
    std::atomic<std::uint64_t> tasks_run_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> task_seq_{0};  ///< pool.task span ids
};

}  // namespace exist

#endif  // EXIST_RUNTIME_THREAD_POOL_H
