#include "runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/trace_plane.h"
#include "util/logging.h"

namespace exist {

namespace {

/** Which pool (if any) owns the current thread: local pushes and
 *  steal scans start from the worker's own deque. */
struct WorkerBinding {
    ThreadPool *pool = nullptr;
    std::size_t index = 0;
};
thread_local WorkerBinding t_binding;

}  // namespace

int
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(defaultThreads());
    return pool;
}

ThreadPool::ThreadPool(int threads)
{
    int n = threads > 0 ? threads : defaultThreads();
    deques_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        deques_.push_back(std::make_unique<WorkerDeque>());
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back(
            [this, i]() { workerLoop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(idle_mu_);
        stop_.store(true, std::memory_order_relaxed);
    }
    idle_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    EXIST_ASSERT(queued_.load() == 0,
                 "thread pool destroyed with %llu tasks undrained",
                 (unsigned long long)queued_.load());
}

void
ThreadPool::push(Task task)
{
    // Correlate the submit site with whichever worker eventually runs
    // the task: a flow-begin here, a span + flow-end around execution.
    std::uint64_t span_id =
        obs::corrId(reinterpret_cast<std::uint64_t>(this),
                    task_seq_.fetch_add(1, std::memory_order_relaxed));
    obs::flowBegin("pool.task", span_id);
    Task wrapped = [span_id, fn = std::move(task)]() {
        EXIST_SPAN("pool.task", span_id);
        obs::flowEnd("pool.task", span_id);
        fn();
    };
    task = std::move(wrapped);

    std::size_t q;
    if (t_binding.pool == this) {
        q = t_binding.index;
    } else {
        q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
            deques_.size();
    }
    // Count the task before it becomes stealable: a worker that takes
    // it the instant the deque lock drops must not decrement queued_
    // below zero (the old post-push increment could transiently wrap
    // the counter and trip the drained-shutdown assert).
    queued_.fetch_add(1, std::memory_order_relaxed);
    {
        WorkerDeque &d = *deques_[q];
        MutexLock lk(d.mu);
        d.tasks.push_back(std::move(task));
    }
    {
        // Empty critical section: pairs with the sleeper's predicate
        // check under idle_mu_, so the increment above is visible
        // before notify and no wakeup is lost.
        MutexLock lk(idle_mu_);
    }
    idle_cv_.notify_one();
}

bool
ThreadPool::popLocal(std::size_t index, Task &out)
{
    WorkerDeque &d = *deques_[index];
    MutexLock lk(d.mu);
    if (d.tasks.empty())
        return false;
    out = std::move(d.tasks.back());
    d.tasks.pop_back();
    return true;
}

bool
ThreadPool::stealFrom(std::size_t victim, Task &out)
{
    WorkerDeque &d = *deques_[victim];
    MutexLock lk(d.mu);
    if (d.tasks.empty())
        return false;
    out = std::move(d.tasks.front());
    d.tasks.pop_front();
    return true;
}

bool
ThreadPool::takeTask(std::size_t home, Task &out)
{
    if (popLocal(home, out)) {
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }
    std::size_t n = deques_.size();
    for (std::size_t k = 1; k < n; ++k) {
        if (stealFrom((home + k) % n, out)) {
            queued_.fetch_sub(1, std::memory_order_relaxed);
            steals_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    t_binding = WorkerBinding{this, index};
    char name[32];
    std::snprintf(name, sizeof(name), "pool.worker.%zu", index);
    obs::setThreadName(name);
    Task task;
    for (;;) {
        if (takeTask(index, task)) {
            task();
            task = nullptr;
            tasks_run_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        // Nothing queued anywhere. Exit only when stopping: a task
        // still running on another worker may push follow-up work, but
        // that worker re-scans after it, so drained shutdown holds.
        if (stop_.load(std::memory_order_relaxed))
            return;
        MutexLock lk(idle_mu_);
        while (!stop_.load(std::memory_order_relaxed) &&
               queued_.load(std::memory_order_relaxed) == 0)
            idle_cv_.wait(idle_mu_);
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;
    EXIST_SPAN("pool.parallel_for", obs::corrId(begin, end));
    std::size_t n = end - begin;
    if (size() <= 1 || n == 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    // Chunk so stealing has granularity to balance skew without one
    // mutex acquisition per index.
    std::size_t chunks =
        std::min(n, static_cast<std::size_t>(size()) * 4);
    std::size_t per = n / chunks;
    std::size_t extra = n % chunks;

    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    std::size_t lo = begin;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t hi = lo + per + (c < extra ? 1 : 0);
        futures.push_back(submit([&body, lo, hi]() {
            for (std::size_t i = lo; i < hi; ++i)
                body(i);
        }));
        lo = hi;
    }

    // Help while waiting: run queued tasks (ours or anybody's) so a
    // worker blocked here cannot starve its own pool.
    std::size_t home = t_binding.pool == this ? t_binding.index : 0;
    Task task;
    for (std::future<void> &f : futures) {
        while (f.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (takeTask(home, task)) {
                task();
                task = nullptr;
                tasks_run_.fetch_add(1, std::memory_order_relaxed);
            } else {
                f.wait_for(std::chrono::microseconds(100));
            }
        }
    }
    for (std::future<void> &f : futures)
        f.get();  // rethrow the first failure
}

}  // namespace exist
