#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>

#include "obs/trace_plane.h"
#include "util/types.h"

namespace exist::obs {
namespace {

const char *
kindLetter(Kind k)
{
    switch (k) {
      case Kind::kBegin: return "B";
      case Kind::kEnd: return "E";
      case Kind::kInstant: return "i";
      case Kind::kFlowBegin: return "s";
      case Kind::kFlowEnd: return "f";
      case Kind::kSimSpan: return "X";
    }
    return "?";
}

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0)
        out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                              sizeof(buf) - 1));
}

}  // namespace

std::string
flightDumpText(std::size_t last_n)
{
    auto threads = snapshot();
    // Anchor real timestamps at the newest real event so lines read as
    // "T-123.4us": time before the crash/dump point.
    std::uint64_t t_max = 0;
    for (const auto &t : threads)
        for (const auto &ev : t.events)
            if (ev.clock == Clock::kReal)
                t_max = std::max(t_max, ev.ts);

    std::string out;
    appendf(out,
            "== exist flight recorder: %" PRIu64 " thread(s), %" PRIu64
            " event(s) recorded ==\n",
            threadsRegistered(), eventsRecorded());
    for (const auto &t : threads) {
        std::size_t n = t.events.size();
        std::size_t first = n > last_n ? n - last_n : 0;
        appendf(out, "-- ring %d (%s): last %zu of %" PRIu64 " --\n",
                t.ring, t.name.c_str(), n - first, t.total);
        for (std::size_t i = first; i < n; ++i) {
            const EventView &ev = t.events[i];
            const char *name = ev.name ? ev.name : "<null>";
            if (ev.clock == Clock::kReal) {
                double rel_us =
                    static_cast<double>(t_max - std::min(ev.ts, t_max)) /
                    1000.0;
                appendf(out, "  real T-%010.3fus %s %-24s corr=%016" PRIx64
                             " arg=%" PRIu64 "\n",
                        rel_us, kindLetter(ev.kind), name, ev.corr, ev.arg);
            } else {
                appendf(out, "  sim  @%-12" PRIu64 " %s %-24s corr=%016"
                             PRIx64 " node=%" PRIu64 " payload=%" PRIu64
                             "\n",
                        ev.ts, kindLetter(ev.kind), name, ev.corr,
                        ev.arg & 0xffff, ev.arg >> 16);
            }
        }
    }
    std::uint64_t dropped = threadsDropped();
    if (dropped)
        appendf(out, "-- %" PRIu64 " thread(s) unrecorded (table full) --\n",
                dropped);
    return out;
}

void
flightDumpTo(std::FILE *out, std::size_t last_n)
{
    std::string text = flightDumpText(last_n);
    std::fwrite(text.data(), 1, text.size(), out);
    std::fflush(out);
}

}  // namespace exist::obs
