#include "obs/trace_plane.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace exist::obs {
namespace {

constexpr std::size_t kRingCapacity = 8192;  // slots per thread (256 KiB)
constexpr std::size_t kRingMask = kRingCapacity - 1;
constexpr int kMaxRings = 256;
constexpr int kNameWords = 4;  // 32-byte thread name

static_assert((kRingCapacity & kRingMask) == 0, "capacity power of two");

/** One 32-byte event, stored as four relaxed atomic words so a
 *  concurrent snapshot copy is TSan-clean; torn reads of slots being
 *  overwritten are trimmed by the cursor re-check in snapshot(). */
struct Slot {
    std::atomic<std::uint64_t> w[4];
};

struct Ring {
    std::atomic<std::uint64_t> write_pos{0};
    std::atomic<std::uint64_t> name_words[kNameWords] = {};
    std::atomic<bool> retired{false};
    int index = -1;
    Slot slots[kRingCapacity];
};

std::atomic<int> g_enabled{1};
std::atomic<Ring *> g_rings[kMaxRings] = {};
std::atomic<int> g_ring_count{0};
std::atomic<std::uint64_t> g_threads_dropped{0};

// Serializes collectors (snapshot/export/dump) against each other; the
// emit path never touches it — that is the no-blocking property the
// analyzer proves for event-loop reachability.
Mutex g_dump_mu{lockorder::LockRank::kObs, "obs.dump"};

thread_local Ring *t_ring = nullptr;
thread_local bool t_dropped = false;

void
storeName(Ring *r, const char *name)
{
    char buf[kNameWords * 8] = {};
    std::strncpy(buf, name ? name : "", sizeof(buf) - 1);
    for (int i = 0; i < kNameWords; ++i) {
        std::uint64_t w = 0;
        std::memcpy(&w, buf + i * 8, 8);
        r->name_words[i].store(w, std::memory_order_relaxed);
    }
}

std::string
loadName(const Ring *r)
{
    char buf[kNameWords * 8 + 1] = {};
    for (int i = 0; i < kNameWords; ++i) {
        std::uint64_t w = r->name_words[i].load(std::memory_order_relaxed);
        std::memcpy(buf + i * 8, &w, 8);
    }
    return std::string(buf);
}

Ring *
claimRetiredRing()
{
    int n = g_ring_count.load(std::memory_order_acquire);
    if (n > kMaxRings)
        n = kMaxRings;
    for (int i = 0; i < n; ++i) {
        Ring *r = g_rings[i].load(std::memory_order_acquire);
        if (r && r->retired.load(std::memory_order_relaxed) &&
            r->retired.exchange(false, std::memory_order_acq_rel)) {
            return r;
        }
    }
    return nullptr;
}

Ring *
registerThisThread()
{
    if (t_dropped)
        return nullptr;
    Ring *r = claimRetiredRing();
    if (!r) {
        int idx = g_ring_count.fetch_add(1, std::memory_order_acq_rel);
        if (idx >= kMaxRings) {
            // Table full and nothing retired: this thread stays silent.
            g_threads_dropped.fetch_add(1, std::memory_order_relaxed);
            t_dropped = true;
            return nullptr;
        }
        r = new Ring;  // never freed: rings outlive their threads so
                       // flight dumps can still show a dead thread's
                       // tail (bounded by kMaxRings; reclaimed on exit)
        r->index = idx;
        storeName(r, "thread");
        g_rings[idx].store(r, std::memory_order_release);
    }
    t_ring = r;
    return r;
}

/** Retire the calling thread's ring on thread exit so a later thread
 *  (e.g. the next test's pool worker) reuses it instead of growing the
 *  table without bound. Contents are kept: they are process history. */
struct ThreadRetirer {
    ~ThreadRetirer()
    {
        if (t_ring) {
            t_ring->retired.store(true, std::memory_order_release);
            t_ring = nullptr;
        }
    }
};
thread_local ThreadRetirer t_retirer;

constexpr std::uint64_t kArgMask = (std::uint64_t{1} << 48) - 1;

std::uint64_t
pack(Kind kind, Clock clock, std::uint64_t arg)
{
    return (static_cast<std::uint64_t>(kind) << 56) |
           (static_cast<std::uint64_t>(clock) << 48) | (arg & kArgMask);
}

void
emitEvent(std::uint64_t ts, const char *name, std::uint64_t corr, Kind kind,
          Clock clock, std::uint64_t arg)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    Ring *r = t_ring;
    if (!r) {
        (void)t_retirer;  // force the retirer's construction
        r = registerThisThread();
        if (!r)
            return;
    }
    std::uint64_t seq = r->write_pos.load(std::memory_order_relaxed);
    Slot &s = r->slots[seq & kRingMask];
    s.w[0].store(ts, std::memory_order_relaxed);
    s.w[1].store(reinterpret_cast<std::uint64_t>(name),
                 std::memory_order_relaxed);
    s.w[2].store(corr, std::memory_order_relaxed);
    s.w[3].store(pack(kind, clock, arg), std::memory_order_relaxed);
    r->write_pos.store(seq + 1, std::memory_order_release);
}

std::uint64_t
simArg(std::uint32_t node, std::uint32_t payload)
{
    return (static_cast<std::uint64_t>(payload) << 16) | (node & 0xffff);
}

/** Applies EXIST_OBS=off|0 before main() (single-threaded), and hooks
 *  the flight recorder into fatal/panic termination. */
struct PlaneInit {
    PlaneInit()
    {
        const char *env = std::getenv("EXIST_OBS");
        if (env && (std::strcmp(env, "off") == 0 ||
                    std::strcmp(env, "0") == 0)) {
            g_enabled.store(0, std::memory_order_relaxed);
        }
        setCrashDumpHook(+[](std::FILE *out) { flightDumpTo(out, 64); });
    }
};
PlaneInit g_plane_init;

}  // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed) != 0;
}

void
setEnabled(bool on)
{
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t
corrId(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t state = 0x0b5e3f1d2c4a6987ULL ^ a;
    std::uint64_t r = splitmix64(state);
    state = r ^ b;
    r = splitmix64(state);
    state = r ^ c;
    return splitmix64(state);
}

std::uint64_t
realNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
setThreadName(const char *name)
{
    Ring *r = t_ring;
    if (!r) {
        (void)t_retirer;
        r = registerThisThread();
        if (!r)
            return;
    }
    storeName(r, name);
}

void
begin(const char *name, std::uint64_t corr)
{
    emitEvent(realNowNs(), name, corr, Kind::kBegin, Clock::kReal, 0);
}

void
end(const char *name, std::uint64_t corr)
{
    emitEvent(realNowNs(), name, corr, Kind::kEnd, Clock::kReal, 0);
}

void
instant(const char *name, std::uint64_t corr, std::uint64_t payload)
{
    emitEvent(realNowNs(), name, corr, Kind::kInstant, Clock::kReal,
              payload);
}

void
flowBegin(const char *name, std::uint64_t corr)
{
    emitEvent(realNowNs(), name, corr, Kind::kFlowBegin, Clock::kReal, 0);
}

void
flowEnd(const char *name, std::uint64_t corr)
{
    emitEvent(realNowNs(), name, corr, Kind::kFlowEnd, Clock::kReal, 0);
}

void
simInstant(const char *name, std::uint64_t corr, Cycles now,
           std::uint32_t node, std::uint32_t payload)
{
    emitEvent(now, name, corr, Kind::kInstant, Clock::kSim,
              simArg(node, payload));
}

void
simSpan(const char *name, std::uint64_t corr, Cycles start, Cycles dur,
        std::uint32_t node)
{
    std::uint32_t dur32 = dur > 0xffffffffULL
                              ? 0xffffffffU
                              : static_cast<std::uint32_t>(dur);
    emitEvent(start, name, corr, Kind::kSimSpan, Clock::kSim,
              simArg(node, dur32));
}

void
simFlowBegin(const char *name, std::uint64_t corr, Cycles now,
             std::uint32_t node)
{
    emitEvent(now, name, corr, Kind::kFlowBegin, Clock::kSim,
              simArg(node, 0));
}

void
simFlowEnd(const char *name, std::uint64_t corr, Cycles now,
           std::uint32_t node)
{
    emitEvent(now, name, corr, Kind::kFlowEnd, Clock::kSim,
              simArg(node, 0));
}

std::vector<ThreadSnapshot>
snapshot()
{
    MutexLock dump_lock(g_dump_mu);
    std::vector<ThreadSnapshot> out;
    int n = g_ring_count.load(std::memory_order_acquire);
    if (n > kMaxRings)
        n = kMaxRings;
    for (int i = 0; i < n; ++i) {
        Ring *r = g_rings[i].load(std::memory_order_acquire);
        if (!r)
            continue;
        ThreadSnapshot ts;
        ts.ring = r->index;
        ts.name = loadName(r);
        std::uint64_t end = r->write_pos.load(std::memory_order_acquire);
        ts.total = end;
        std::uint64_t begin = end > kRingCapacity ? end - kRingCapacity : 0;
        std::vector<std::uint64_t> raw;
        raw.reserve((end - begin) * 4);
        for (std::uint64_t seq = begin; seq < end; ++seq) {
            const Slot &s = r->slots[seq & kRingMask];
            for (int w = 0; w < 4; ++w)
                raw.push_back(s.w[w].load(std::memory_order_relaxed));
        }
        // Anything the writer lapped during the copy is torn: keep only
        // slots still inside the window implied by the final cursor.
        std::uint64_t end2 = r->write_pos.load(std::memory_order_acquire);
        std::uint64_t valid_from =
            end2 > kRingCapacity ? end2 - kRingCapacity : 0;
        for (std::uint64_t seq = begin; seq < end; ++seq) {
            if (seq < valid_from)
                continue;
            const std::uint64_t *w = raw.data() + (seq - begin) * 4;
            EventView ev;
            ev.ts = w[0];
            ev.name = reinterpret_cast<const char *>(w[1]);
            ev.corr = w[2];
            ev.kind = static_cast<Kind>(w[3] >> 56);
            ev.clock = static_cast<Clock>((w[3] >> 48) & 0xff);
            ev.arg = w[3] & kArgMask;
            ts.events.push_back(ev);
        }
        out.push_back(std::move(ts));
    }
    return out;
}

std::uint64_t
eventsRecorded()
{
    std::uint64_t total = 0;
    int n = g_ring_count.load(std::memory_order_acquire);
    if (n > kMaxRings)
        n = kMaxRings;
    for (int i = 0; i < n; ++i) {
        Ring *r = g_rings[i].load(std::memory_order_acquire);
        if (r)
            total += r->write_pos.load(std::memory_order_acquire);
    }
    return total;
}

std::uint64_t
threadsRegistered()
{
    int n = g_ring_count.load(std::memory_order_acquire);
    return static_cast<std::uint64_t>(n > kMaxRings ? kMaxRings : n);
}

std::uint64_t
threadsDropped()
{
    return g_threads_dropped.load(std::memory_order_relaxed);
}

}  // namespace exist::obs
